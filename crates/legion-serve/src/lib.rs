//! Online GNN inference serving over the simulated multi-GPU server.
//!
//! Legion's pipeline (§5) is built for throughput: epochs over a fixed
//! training set, where the only clock that matters is time-to-last-batch.
//! This crate asks the latency question instead — what happens when the
//! same multi-GPU machine, samplers, caches and traffic meters face an
//! *open-loop* request stream that arrives on its own schedule?
//!
//! The pieces, in data-flow order:
//!
//! * [`workload`] — Poisson / bursty arrival processes and Zipf-skewed,
//!   drifting target-vertex sampling ([`ArrivalProcess`],
//!   [`TargetSampler`]);
//! * [`queue`] — bounded per-GPU admission queues that shed load
//!   explicitly instead of queueing without bound ([`AdmissionQueue`]);
//! * [`batcher`] — the dynamic micro-batching policy: close at
//!   `max_batch` requests or `max_wait` simulated seconds
//!   ([`BatchPolicy`]);
//! * [`cache_policy`] — the serving-time cache trade-off: a statically
//!   planned hot set (Legion's offline planner pointed at requests),
//!   a dynamic FIFO cache that follows request-skew drift, or the
//!   re-planned cache ([`PolicyKind`]);
//! * [`replan`] — online re-planning: a sliding-window hotness
//!   estimator feeding CSLP + the `(B, α)` cost-model sweep, swapped in
//!   through a versioned double buffer at batch boundaries
//!   ([`ReplanState`]);
//! * [`engine`] — the discrete-event loop that runs real
//!   sample→extract→infer operators against the metered server and the
//!   `legion-pipeline` time model ([`serve`]);
//! * [`slo`] — per-request latency histograms and SLO attainment
//!   ([`SloTracker`]);
//! * [`sweep`] — capacity-anchored offered-load sweeps producing
//!   throughput–latency curves ([`run_sweep`]).
//!
//! # Invariants
//!
//! * **Determinism** — the same `(config, dataset, server)` triple
//!   yields byte-identical metric snapshots. Everything that varies is
//!   derived from [`ServeConfig::seed`]; counters and histograms are
//!   integers; gauges are written once per run.
//! * **Conservation** — `offered == completed + shed` for every run;
//!   the engine's tests pin this.
//! * **Open loop** — arrivals never wait for the server. Backpressure
//!   exists only as bounded admission queues that shed excess load.
//! * **Plan atomicity** — under [`PolicyKind::Replan`], plans change
//!   only between batches; no request is served against a mixed
//!   old/new cache view ([`replan::PlanBuffer`]).
//! * **Comparable meters** — all three policies account cache hits and
//!   misses under the same counter names, so snapshots are directly
//!   comparable across policies.
//!
//! # Counter-name glossary
//!
//! | Metric | Kind | Meaning |
//! |---|---|---|
//! | `serve.offered` / `serve.completed` / `serve.shed` | counter | request conservation triple |
//! | `serve.slo_ok` | counter | completed requests within the SLO |
//! | `serve.latency_us` | histogram | end-to-end request latency |
//! | `serve.gpu{g}.batches` / `.busy_ns` / `.shed` | counter | per-GPU loop activity |
//! | `serve.p50_us` / `.p95_us` / `.p99_us` | gauge | latency quantiles of the run |
//! | `serve.slo_attainment` / `.makespan_s` / `.throughput_rps` | gauge | run summary |
//! | `serve.phase{k}.feature_{hits,misses}` | counter | per-drift-phase hit accounting (drift runs only) |
//! | `serve.phase{k}.tail_feature_{hits,misses}` | counter | same, second half of each phase only |
//! | `serve.replan.count` / `serve.gpu{g}.replans` | counter | committed plan swaps |
//! | `serve.replan.swap_bytes` / `serve.gpu{g}.replan.swap_bytes` | counter | refill traffic charged by swaps |
//! | `serve.replan.recover_us` | histogram | drift-trigger → hit-rate-recovery time |
//! | `serve.gpu{g}.window_hit_rate` | gauge | sliding-window feature hit rate |
//! | `cache.gpu{g}.{topology,feature}_{hits,misses}` | counter | shared with `legion-sampling`'s access engine |
//! | `serve.class{c}.latency_us` | histogram | per-class end-to-end latency (multi-class runs) |
//! | `serve.class{c}.{completed,slo_ok,shed}` | counter | per-class conservation + SLO accounting |
//! | `serve.class{c}.p99_us` / `.slo_attainment` | gauge | per-class run summary |
//! | `serve.route.clique{q}.{routed,spilled,shed}` | counter | per-clique routing outcomes (`--router` runs) |
//! | `serve.route.locality` | gauge | mean fraction of the routed probe resident in the chosen clique |
//! | `serve.route.steals` | counter | spilled requests re-assigned by quantum-boundary work stealing (sharded router runs) |
//! | `serve.shard{s}.{batches,completed}` | counter | per-shard event-loop totals (`--shards > 1` runs only) |
//! | `serve.replan.mid_batch_commits` | counter | audit: plan-version bumps observed mid-batch (always 0 — commits are batch-boundary only) |
//! | `stage.gpu{g}.{sample,extract,train}_ns` | counter | per-batch stage times (shared with `legion-pipeline`; `train` holds inference) |
//! | `pipeline.gpu{g}.queue_depth` | histogram | admission-queue depth at each batch launch |
//! | `serve.store.{prefetch_hits,late_stalls,cold_reads,evictions}` | counter | out-of-core staging outcomes (`--store` runs only) |
//! | `serve.store.inflight` | histogram | staged-but-unfinished SSD reads at each batch launch |
//! | `serve.store.{migrations,migrated_bytes}` | counter | DRAM↔SSD rows moved by re-plan commits |
//! | `store.nvme.bytes` | counter | bytes moved off the simulated NVMe device, whole blocks |
//! | `store.nvme.queue_depth` | histogram | commands per device wave (cold, prefetch, migrate) |
//! | `store.nvme.read_us` | histogram | duration of each device wave, microseconds |
//! | `serve.remote.reads` | counter | HBM misses resolved from another server's shard (fleet runs only) |
//! | `serve.remote.bytes` | counter | wire bytes (payload + headers) those remote reads moved |
//! | `serve.remote.coalesced_msgs` | counter | batched per-owner messages the coalesced remote wave sent (coalescing runs only) |
//! | `serve.remote.dedup_hits` | counter | remote misses served from the coalescing staging window instead of re-fetched |
//! | `serve.remote.per_owner_bytes` | counter | wire bytes charged through per-owner batched messages |
//! | `graph.mut.{inserts,deletes}` | counter | stream edge mutations actually applied to the overlay (churn runs only) |
//! | `graph.mut.compactions` | counter | batch-boundary folds of pending deltas into contiguous rows |
//! | `graph.mut.overlay_rows` | counter | adjacency rows first dirtied by a mutation |
//! | `serve.invalidate.topo_rows` | counter | mutations whose vertex had a (now stale) cached topology row |
//! | `serve.invalidate.residency_bits` | counter | residency-index bits cleared by the mutation fast path |
//!
//! (`{g}` is a zero-based GPU index; `{k}` a zero-padded drift-phase
//! index, e.g. `serve.phase003.feature_hits`; `{c}` a class priority
//! index — 0 = `Interactive`, 1 = `Standard`, 2 = `Batch`; `{q}` a
//! route-group / clique index; `{s}` an event-loop shard index. Class
//! and route metrics are registered only when the run actually uses
//! them: per-class metrics for multi-class mixes, route metrics for the
//! residency router, shard metrics for `--shards > 1`,
//! `serve.store.*` / `store.nvme.*` only when [`StoreConfig`] actually
//! places rows on the SSD tier, `serve.remote.*` only when
//! [`RemoteConfig`] marks the run as one server of a fleet, the
//! `serve.remote.{coalesced_msgs,dedup_hits,per_owner_bytes}` triple
//! only when that config enables per-owner coalescing, and the
//! `graph.mut.*` / `serve.invalidate.*` families only when
//! [`ServeConfig::mutations`] streams churn into the run.)

pub mod batcher;
pub mod cache_policy;
pub mod engine;
pub mod queue;
pub mod replan;
mod shard;
pub mod slo;
pub mod sweep;
pub mod workload;

pub use batcher::{BatchPolicy, PendingWindow};
pub use cache_policy::{
    adaptive_replicated_rows, build_partitioned_layout, build_partitioned_layout_adaptive,
    build_static_layout, warmup_hot_vertices, warmup_hot_vertices_weighted, PolicyKind,
};
pub use engine::{serve, serve_requests, ServeReport};
pub use legion_dyn::{
    ChurnConfig, DeltaOverlay, Mutation, MutationLog, MutationOp, MutationSource,
};
pub use legion_hw::{NetGeneration, NetModel};
pub use legion_router::{PriorityClass, RouterConfig, RouterPolicy, CLASS_COUNT};
pub use legion_store::{NvmeGeneration, NvmeModel, Tier, VertexStore};
pub use queue::AdmissionQueue;
pub use replan::{
    plan_layout, profile_warmup, DriftDetector, PlanBuffer, ReplanConfig, ReplanState,
    WindowEstimator,
};
pub use slo::{latency_buckets, SloTracker};
pub use sweep::{
    estimate_capacity_rps, run_sweep, LoadPoint, SMOKE_MULTIPLIERS, SWEEP_MULTIPLIERS,
};
pub use workload::{
    generate_workload, generate_workload_classed, ArrivalProcess, ClassSampler, Request,
    TargetSampler,
};

/// Full configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Arrival process of the open-loop request stream.
    pub arrival: ArrivalProcess,
    /// Number of requests to offer.
    pub num_requests: usize,
    /// Zipf exponent of the target-vertex popularity distribution.
    pub zipf_exponent: f64,
    /// Requests between drift steps of the hot set (0 disables drift).
    pub drift_period: usize,
    /// Positions the rank→vertex mapping rotates per drift step.
    pub drift_stride: usize,
    /// Micro-batch size trigger.
    pub max_batch: usize,
    /// Micro-batch age trigger, simulated seconds.
    pub max_wait: f64,
    /// Per-GPU admission-queue capacity; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Latency SLO target, microseconds.
    pub slo_us: u64,
    /// Feature-cache policy.
    pub policy: PolicyKind,
    /// Online re-planning knobs (used only by [`PolicyKind::Replan`]).
    pub replan: ReplanConfig,
    /// Feature rows each GPU's cache holds (static fill size / FIFO
    /// capacity).
    pub cache_rows_per_gpu: usize,
    /// Warmup requests the static planner profiles before filling.
    pub warmup_requests: usize,
    /// Per-hop sampling fan-outs (outermost first).
    pub fanouts: Vec<usize>,
    /// Hidden width of the inference model.
    pub hidden_dim: usize,
    /// Output classes of the inference model.
    pub num_classes: usize,
    /// Front-end routing (round-robin vs residency-aware dispatch).
    pub router: RouterConfig,
    /// Priority-class mix and QoS knobs.
    pub classes: ClassConfig,
    /// Event-loop shards (OS threads), one per NVLink clique at most;
    /// `1` (the default) runs the sequential global loop, byte-identical
    /// to the pre-sharding engine.
    pub shards: usize,
    /// Coordination quantum of the sharded residency-routed loop,
    /// simulated seconds: the coordinator routes arrivals and drains the
    /// steal pool once per quantum. Ignored at `shards <= 1` and under
    /// round-robin routing (which needs no coordination). When
    /// `adaptive_quantum` is set this value is the initial/maximum
    /// quantum the EWMA adapts below.
    pub shard_quantum: f64,
    /// Whether the sharded residency coordinator adapts its quantum to
    /// the measured batch service time (EWMA) instead of stepping at the
    /// fixed `shard_quantum`.
    pub adaptive_quantum: bool,
    /// Out-of-core feature store (SSD tier below host DRAM).
    pub store: StoreConfig,
    /// Cross-server residency of the fleet tier; `None` (the default)
    /// means every feature row is machine-local — the pre-fleet engine,
    /// byte-identical.
    pub remote: Option<RemoteConfig>,
    /// Streaming graph mutations applied while serving (edge
    /// inserts/deletes, vertex churn) through a delta-CSR overlay with
    /// fast-path cache/residency invalidation. `None` (the default)
    /// freezes the graph — the pre-mutation engine, byte-identical, with
    /// no `graph.mut.*` / `serve.invalidate.*` telemetry registered.
    pub mutations: Option<MutationSource>,
    /// Master seed; every internal RNG stream derives from it.
    pub seed: u64,
}

/// Cross-server residency handed down by the fleet tier.
///
/// When a serving run is one server of a fleet, some feature rows live
/// on *other* servers' shards. Every HBM-cache miss whose vertex is not
/// locally owned is charged through the cluster-interconnect model
/// instead of the local memory hierarchy, and metered under
/// `serve.remote.{reads,bytes}`. The default `None` in [`ServeConfig`]
/// keeps the single-machine engine (and its snapshots) byte-identical.
#[derive(Debug, Clone)]
pub struct RemoteConfig {
    /// `owned[v]` — whether vertex `v`'s feature row is resident on
    /// this server (its shard or the replicated hot head). Length must
    /// equal the graph's vertex count.
    pub owned: std::sync::Arc<Vec<bool>>,
    /// The analytic network model remote reads are charged through.
    pub net: legion_hw::NetModel,
    /// Per-owning-server coalescing of each batch's remote wave;
    /// `None` (the default) keeps the flat per-row pool — every miss
    /// charged as its own RPC, byte-identical to the pre-coalescing
    /// engine.
    pub coalesce: Option<CoalesceConfig>,
    /// Servers assumed concurrently active on the shared uplink (the
    /// fleet size) — the `k` handed to
    /// [`legion_hw::NetModel::read_seconds_at`]. Only meaningful when
    /// `net` carries an [`legion_hw::UplinkConfig`]; `1` (or a `net`
    /// without contention) charges the uncontended fabric.
    pub concurrent_servers: usize,
}

/// Per-owner coalescing of the cross-server remote-read wave.
///
/// Instead of charging every unowned HBM miss as its own RPC (payload
/// plus a full per-message header, one in-flight slot each), the
/// engine buckets each batch's misses by *owning server* and charges
/// one batched message per owner — the header and round-trip waves
/// amortize across every row the owner ships. Rows fetched within the
/// last [`window_batches`](Self::window_batches) batches are still
/// resident in the remote staging buffer and are deduplicated instead
/// of re-fetched. Metered under
/// `serve.remote.{coalesced_msgs,dedup_hits,per_owner_bytes}`.
#[derive(Debug, Clone)]
pub struct CoalesceConfig {
    /// `shard[v]` — the server whose shard owns vertex `v` (the fleet
    /// plan's partition vector). Length must equal the graph's vertex
    /// count.
    pub shard: std::sync::Arc<Vec<u32>>,
    /// Servers in the fleet (bounds the shard ids).
    pub num_servers: usize,
    /// How many batches a fetched remote row stays deduplicable in the
    /// staging buffer; `0` restricts dedup to the current batch (where
    /// the sampler's sorted-unique vertex set never repeats, so the
    /// counter stays 0).
    pub window_batches: u64,
}

/// Configuration of the SSD-backed out-of-core feature tier.
///
/// The default (`dram_budget_bytes: None`) disables the store: feature
/// rows missing the GPU caches live entirely in host DRAM, exactly the
/// pre-store engine, and no `store.*` telemetry is registered. Setting
/// a DRAM budget turns on three-tier placement: the cost model's
/// tiered sweep ([`legion_cache::CostModel::best_plan_tiered`]) splits
/// the feature hotness order into HBM / DRAM / SSD prefixes, and every
/// SSD-tier row is served through a per-GPU [`legion_store::VertexStore`]
/// — staged ahead of time by the lookahead prefetcher when possible,
/// read cold off the simulated NVMe device when not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Host-DRAM byte budget for feature rows that miss the GPU caches.
    /// `None` keeps every row DRAM-resident (store disabled); a budget
    /// large enough for the whole table degenerates to the same
    /// two-tier system byte-for-byte.
    pub dram_budget_bytes: Option<u64>,
    /// Rows the per-GPU DRAM staging window holds (staged + in flight).
    pub staging_rows: usize,
    /// Simulated NVMe device generation.
    pub nvme: legion_store::NvmeGeneration,
    /// Queued requests the prefetcher peeks past the batch head when
    /// assembling its candidate set.
    pub lookahead_requests: usize,
    /// Leading neighbors of each looked-ahead target added to the
    /// prefetch candidates (the first hop the sampler will most likely
    /// touch).
    pub prefetch_neighbors: usize,
    /// Maximum rows one prefetch wave may request from the device.
    pub prefetch_budget: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            dram_budget_bytes: None,
            staging_rows: 4096,
            nvme: legion_store::NvmeGeneration::Gen3x4,
            lookahead_requests: 64,
            prefetch_neighbors: 8,
            prefetch_budget: 256,
        }
    }
}

impl StoreConfig {
    /// Whether the SSD tier is enabled at all.
    pub fn active(&self) -> bool {
        self.dram_budget_bytes.is_some()
    }

    /// Checks the invariants the engine relies on.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on the first violated
    /// invariant.
    pub fn validate(&self) {
        if self.active() {
            assert!(
                self.staging_rows > 0,
                "store.staging_rows must be positive when the store is active"
            );
            assert!(
                self.prefetch_budget <= self.staging_rows,
                "store.prefetch_budget must not exceed staging_rows"
            );
        }
    }
}

/// Priority-class workload mix and QoS discipline of a serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassConfig {
    /// Relative class weights in priority order
    /// (`[Interactive, Standard, Batch]`); normalized internally. The
    /// default `[0, 1, 0]` reproduces the legacy single-class stream
    /// byte-for-byte.
    pub mix: [f64; CLASS_COUNT],
    /// Zipf-exponent multiplier for `Interactive` targets (drawn from a
    /// hotter head); `1.0` disables class-correlated skew.
    pub interactive_boost: f64,
    /// Per-class latency SLO targets, microseconds, in priority order.
    pub slo_us: [u64; CLASS_COUNT],
    /// Whether admission queues run the QoS discipline (priority drain,
    /// weighted quotas, inverse-priority shedding) instead of FIFO.
    pub qos: bool,
    /// Per-class admission-quota weights (fraction of queue capacity
    /// guaranteed to each class under QoS); must sum to at most 1.
    pub qos_weights: [f64; CLASS_COUNT],
    /// Per-class minimum *service* shares under QoS: each batch drain
    /// reserves `ceil(floor * max_batch)` slots for floored classes so
    /// strict priority cannot starve them (the Batch-starvation fix).
    /// `[0, 0, 0]` (the default) reproduces the strict priority drain
    /// byte-for-byte; must sum to at most 1.
    pub qos_floors: [f64; CLASS_COUNT],
}

impl Default for ClassConfig {
    fn default() -> Self {
        Self {
            mix: [0.0, 1.0, 0.0],
            interactive_boost: 1.5,
            slo_us: [500, 1000, 8000],
            qos: false,
            qos_weights: [0.5, 0.3, 0.2],
            qos_floors: [0.0; CLASS_COUNT],
        }
    }
}

impl ClassConfig {
    /// Whether more than one class has positive weight — per-class
    /// telemetry is registered only for such runs.
    pub fn multi_class(&self) -> bool {
        self.mix.iter().filter(|&&w| w > 0.0).count() > 1
    }

    /// Checks the invariants the engine relies on.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on the first violated
    /// invariant.
    pub fn validate(&self) {
        assert!(
            self.mix.iter().all(|&w| w >= 0.0) && self.mix.iter().sum::<f64>() > 0.0,
            "class mix must be non-negative with positive total"
        );
        assert!(
            self.interactive_boost >= 1.0,
            "interactive_boost must be >= 1.0"
        );
        assert!(
            self.slo_us.iter().all(|&s| s > 0),
            "per-class SLOs must be positive"
        );
        assert!(
            self.qos_weights.iter().all(|&w| (0.0..=1.0).contains(&w)),
            "qos_weights must be in [0, 1]"
        );
        assert!(
            self.qos_weights.iter().sum::<f64>() <= 1.0 + 1e-9,
            "qos_weights must sum to at most 1"
        );
        assert!(
            self.qos_floors.iter().all(|&f| (0.0..=1.0).contains(&f)),
            "qos_floors must be in [0, 1]"
        );
        assert!(
            self.qos_floors.iter().sum::<f64>() <= 1.0 + 1e-9,
            "qos_floors must sum to at most 1"
        );
    }
}

impl Default for ServeConfig {
    /// Defaults tuned so a capacity-anchored sweep shows a clear knee:
    /// light-load p99 is floored at `max_wait` + one batch service, while
    /// deep overload drains a full `queue_capacity`-deep queue — roughly
    /// an order of magnitude apart for the PR preset. The stream is long
    /// enough (`num_requests`) that overload actually accumulates that
    /// backlog before the workload ends.
    fn default() -> Self {
        Self {
            arrival: ArrivalProcess::Poisson { rate: 2000.0 },
            num_requests: 6000,
            zipf_exponent: 1.1,
            drift_period: 250,
            drift_stride: 4096,
            max_batch: 32,
            max_wait: 2e-4,
            queue_capacity: 1024,
            slo_us: 1000,
            policy: PolicyKind::Fifo,
            replan: ReplanConfig::default(),
            cache_rows_per_gpu: 4096,
            warmup_requests: 512,
            fanouts: vec![10, 5],
            hidden_dim: 32,
            num_classes: 16,
            router: RouterConfig::default(),
            classes: ClassConfig::default(),
            shards: 1,
            shard_quantum: 1e-3,
            adaptive_quantum: false,
            store: StoreConfig::default(),
            remote: None,
            mutations: None,
            seed: 42,
        }
    }
}

impl ServeConfig {
    /// Checks the invariants the engine relies on.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on the first violated invariant.
    pub fn validate(&self) {
        assert!(self.num_requests > 0, "num_requests must be positive");
        assert!(self.zipf_exponent > 0.0, "zipf_exponent must be positive");
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(self.max_wait >= 0.0, "max_wait must be non-negative");
        assert!(self.queue_capacity > 0, "queue_capacity must be positive");
        assert!(!self.fanouts.is_empty(), "need at least one sampling hop");
        assert!(self.hidden_dim > 0, "hidden_dim must be positive");
        assert!(self.num_classes > 0, "num_classes must be positive");
        assert!(
            self.arrival.mean_rate() > 0.0,
            "arrival rate must be positive"
        );
        assert!(self.shards > 0, "shards must be positive");
        assert!(self.shard_quantum > 0.0, "shard_quantum must be positive");
        if let Some(m) = &self.mutations {
            if let Err(e) = m.validate() {
                panic!("mutations: {e}");
            }
            assert!(
                self.shards <= 1,
                "mutations require the sequential event loop (shards <= 1)"
            );
        }
        self.replan.validate();
        self.router.validate();
        self.classes.validate();
        self.store.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ServeConfig::default().validate();
    }

    #[test]
    fn default_knee_headroom() {
        // Light-load tail is bounded by max_wait + service; overload tail
        // by a full queue drained max_batch at a time. The defaults keep
        // those regimes far apart (the >= 5x knee the sweep asserts).
        let c = ServeConfig::default();
        let batches_to_drain = c.queue_capacity / c.max_batch;
        assert!(
            batches_to_drain >= 32,
            "queue must be deep enough to show overload"
        );
        assert!(
            c.max_wait <= 2e-3,
            "age trigger must keep light-load latency low"
        );
    }

    #[test]
    #[should_panic(expected = "num_requests must be positive")]
    fn zero_requests_invalid() {
        ServeConfig {
            num_requests: 0,
            ..ServeConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one sampling hop")]
    fn empty_fanouts_invalid() {
        ServeConfig {
            fanouts: vec![],
            ..ServeConfig::default()
        }
        .validate();
    }
}
