//! The discrete-event serving loop.
//!
//! One global event loop interleaves two event kinds in simulated time
//! across every GPU: request arrivals (route, then admit or shed) and
//! batch launches (close the micro-batch, run the real
//! sample→extract→infer operators against the metered server, and
//! record per-request latency). Batches on one GPU are serial; within a
//! batch, sampling and extraction overlap as in the paper's §5
//! pipeline, so service time is `max(sample, extract) + infer`.
//!
//! Arrivals pass through the front-end router first. Under
//! [`RouterPolicy::RoundRobin`] a request goes to GPU `id % num_gpus` —
//! byte-identical to the legacy per-GPU loops, because each worker's
//! event sequence is independent of the interleaving and every shared
//! meter is a commuting integer add. Under [`RouterPolicy::Residency`]
//! the [`Dispatcher`] scores NVLink cliques by cached-neighborhood
//! coverage of the request's target (from a per-clique
//! [`ResidencyIndex`](legion_router::ResidencyIndex) refreshed on every
//! plan commit) and spills to the least-loaded GPU when the best clique
//! saturates.
//!
//! A batch's distinct targets are expanded and fetched once no matter
//! how many requests in the batch named the same vertex — duplicate
//! seeds previously re-expanded the same uncached vertex and
//! double-counted its miss (see `batch_seeds`).
//!
//! Under [`PolicyKind::Replan`] the loop additionally drives a per-GPU
//! [`ReplanState`]: staged plans commit at the top of a batch (never
//! mid-batch), the swap's refill is charged to the PCIe meters and to
//! that batch's service time, and the router's residency index for that
//! GPU is rebuilt from the newly active plan.
//!
//! At [`ServeConfig::shards`](crate::ServeConfig::shards) `> 1` the
//! event loop re-shards across OS threads, one shard per NVLink clique
//! (see `shard.rs`): each shard owns its
//! clique's admission queues, batcher state and sampler/extractor
//! scratch outright, and shared meters accumulate batch-wise through
//! commuting integer adds. Round-robin routing shards free-running
//! (byte-identical to the sequential loop); residency routing runs a
//! quantum-stepped coordinator that routes arrivals against projected
//! queue depths and drains spilled requests to the least-loaded GPU at
//! quantum boundaries (work stealing). `shards == 1` — the default and
//! `--sequential` — is the unsharded global loop below, byte-identical
//! to the pre-sharding engine.
//!
//! Everything is driven by seeded RNG streams and integer telemetry, so
//! the same `(config, dataset, server)` triple reproduces a run down to
//! byte-identical metric snapshots.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use legion_cache::{cslp, CostModel, FifoCache};
use legion_dyn::{DeltaOverlay, MutationLog, MutationOp};
use legion_gnn::{GnnModel, ModelKind};
use legion_graph::{topology_bytes_for_degree, CsrGraph, FeatureTable, VertexId};
use legion_hw::pcm::TrafficKind;
use legion_hw::traffic::Source;
use legion_hw::{GpuId, MultiGpuServer};
use legion_partition::{detect_cliques, LdgPartitioner, Partitioner};
use legion_pipeline::{QueueDepthMeter, StageRecorder, TimeModel};
use legion_router::{
    Admission, ClassedQueue, Dispatcher, PriorityClass, RouteDecision, RouterPolicy, CLASS_COUNT,
};
use legion_sampling::access::{AccessEngine, BatchTotals, CacheLayout, TopologyPlacement};
use legion_sampling::{KHopSampler, SampleScratch};
use legion_store::{NvmeModel, Tier, VertexStore};
use legion_telemetry::{Counter, Gauge, Histogram, Registry, Snapshot};

use crate::batcher::BatchPolicy;
use crate::cache_policy::{
    build_partitioned_layout, build_partitioned_layout_adaptive, build_static_layout,
    warmup_hot_vertices_weighted, PolicyKind,
};
use crate::replan::{plan_layout, profile_warmup, ReplanState, SwapDelta, WarmupProfile};
use crate::shard;
use crate::slo::{latency_buckets, SloBatch, SloTracker};
use crate::workload::{generate_workload_classed, ClassSampler, Request, TargetSampler};
use crate::{ServeConfig, StoreConfig};

/// Bucket bounds of the store's depth-shaped histograms
/// (`serve.store.inflight`, `store.nvme.queue_depth`).
const STORE_DEPTH_BUCKETS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Summary of one serving run; `metrics` is the full registry snapshot
/// (PCM, traffic matrix, cache hits, latency histogram, gauges).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The cache policy the run used.
    pub policy: PolicyKind,
    /// Requests offered by the workload.
    pub offered: u64,
    /// Requests that completed inference.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Latency quantiles in microseconds.
    pub p50_us: u64,
    /// 95th percentile latency.
    pub p95_us: u64,
    /// 99th percentile latency.
    pub p99_us: u64,
    /// Fraction of completed requests within the SLO.
    pub slo_attainment: f64,
    /// Simulated time of the last completion, seconds.
    pub makespan_s: f64,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// Per-class completed counts (`[Interactive, Standard, Batch]`);
    /// all zeros for single-class runs, which register no per-class
    /// trackers.
    pub class_completed: [u64; CLASS_COUNT],
    /// Per-class p99 latency, microseconds; zeros for single-class runs.
    pub class_p99_us: [u64; CLASS_COUNT],
    /// Per-class SLO attainment against
    /// [`ClassConfig::slo_us`](crate::ClassConfig::slo_us); `1.0` for
    /// single-class runs.
    pub class_slo_attainment: [f64; CLASS_COUNT],
    /// Per-class shed counts (arrival drops plus QoS evictions) — live
    /// in every run, since the classed queue always attributes sheds.
    pub class_shed: [u64; CLASS_COUNT],
    /// Requests placed in their coverage-chosen clique
    /// ([`RouterPolicy::Residency`] runs; zero otherwise).
    pub routed: u64,
    /// Requests diverted to the globally least-loaded GPU because the
    /// best clique was saturated.
    pub spilled: u64,
    /// Mean fraction of each routed request's probe (target + leading
    /// neighbors) resident in the clique it was sent to; `1.0` when the
    /// router is off.
    pub route_locality: f64,
    /// Full telemetry snapshot of the run.
    pub metrics: Snapshot,
}

/// Pre-resolved handles for the FIFO policy's manual feature metering;
/// uses the same counter names as [`AccessEngine`], so snapshots are
/// comparable across policies.
pub(crate) struct FifoMeters {
    hits: Counter,
    misses: Counter,
    rows: Counter,
}

/// Global meters of the re-planning loop, registered only for
/// [`PolicyKind::Replan`] runs. `mid_batch` audits plan-commit
/// visibility: it counts batches whose plan version changed *after* the
/// batch-top commit point — [`ReplanState::roll`] only stages, so the
/// counter must stay 0 in every run, sharded or not.
struct ReplanMeters {
    count: Counter,
    swap_bytes: Counter,
    recover: Histogram,
    mid_batch: Counter,
}

/// Shared meters of the out-of-core store, registered only when the
/// tiered placement actually put rows on the SSD. All counters and
/// histogram buckets are commuting integer adds, so per-GPU stores on
/// shard threads flush into the same names without ordering effects.
struct StoreMeters {
    prefetch_hits: Counter,
    late_stalls: Counter,
    cold_reads: Counter,
    evictions: Counter,
    inflight: Histogram,
    migrations: Counter,
    migrated_bytes: Counter,
    nvme_bytes: Counter,
    nvme_queue_depth: Histogram,
    nvme_read_us: Histogram,
}

impl StoreMeters {
    fn new(registry: &Arc<Registry>) -> Self {
        Self {
            prefetch_hits: registry.counter("serve.store.prefetch_hits"),
            late_stalls: registry.counter("serve.store.late_stalls"),
            cold_reads: registry.counter("serve.store.cold_reads"),
            evictions: registry.counter("serve.store.evictions"),
            inflight: registry.histogram("serve.store.inflight", &STORE_DEPTH_BUCKETS),
            migrations: registry.counter("serve.store.migrations"),
            migrated_bytes: registry.counter("serve.store.migrated_bytes"),
            nvme_bytes: registry.counter("store.nvme.bytes"),
            nvme_queue_depth: registry.histogram("store.nvme.queue_depth", &STORE_DEPTH_BUCKETS),
            nvme_read_us: registry.histogram("store.nvme.read_us", &latency_buckets()),
        }
    }
}

/// The tier assignment shared by every per-GPU store: where each
/// vertex's feature row lives, as chosen by the three-tier cost-model
/// sweep, plus the device model. Built once per run.
pub(crate) struct StorePlacement {
    nvme: NvmeModel,
    tiers: Arc<Vec<Tier>>,
    /// SSD-placed vertices in descending warmup hotness — the order the
    /// staging warm-start fills from (warmup-untouched rows last).
    ssd_hot: Arc<Vec<VertexId>>,
}

/// Runs the three-tier placement for a store-enabled config: warmup
/// profile → CSLP orders → [`CostModel::best_plan_tiered`] under the
/// HBM budget (`cache_rows_per_gpu` rows) and the configured DRAM
/// budget. Vertices the warmup never touched soak up whatever DRAM
/// budget the warm prefix left over (ascending id); the rest start on
/// the SSD. Returns `None` when the store is disabled *or* when the
/// budget swallows the whole table — the all-resident degenerate case
/// runs the legacy two-tier path with zero store state.
fn plan_store_placement(
    graph: &CsrGraph,
    features: &FeatureTable,
    server: &MultiGpuServer,
    config: &ServeConfig,
    all_targets: &[VertexId],
    row_bytes: u64,
) -> Option<StorePlacement> {
    let dram_budget = config.store.dram_budget_bytes?;
    let nvme = NvmeModel::new(config.store.nvme);
    let mut warm = TargetSampler::new(all_targets.to_vec(), config.zipf_exponent, 0, 0);
    let profile = profile_warmup(
        graph,
        &mut warm,
        config.warmup_requests,
        &config.fanouts,
        config.seed,
    );
    let t = cslp(&profile.topo);
    let f = cslp(&profile.feat);
    let model = CostModel::new(
        graph,
        &t.clique_order,
        &t.accumulated,
        &f.clique_order,
        &f.accumulated,
        profile.n_tsum,
        features.dim(),
        server.pcie().cls(),
    );
    let hbm_budget = config.cache_rows_per_gpu as u64 * row_bytes;
    // One NVMe block transaction costs its bandwidth ratio against the
    // PCIe link in PCIe-transaction-equivalent terms.
    let block_payload = nvme.bytes_for_payload(row_bytes) as f64;
    let ssd_penalty = server.pcie().effective_bandwidth(row_bytes as f64)
        / nvme.effective_bandwidth(block_payload);
    let tiered = model.best_plan_tiered(
        hbm_budget,
        dram_budget,
        config.replan.delta_alpha,
        nvme.block_bytes(),
        ssd_penalty,
    );
    let hbm_end = tiered.plan.feat_cached_vertices;
    let dram_end = hbm_end + tiered.dram_feat_vertices;
    let mut tiers = vec![Tier::Ssd; graph.num_vertices()];
    let mut placed = vec![false; graph.num_vertices()];
    for (i, &v) in f.clique_order.iter().enumerate() {
        tiers[v as usize] = if i < hbm_end {
            Tier::Hbm
        } else if i < dram_end {
            Tier::Dram
        } else {
            Tier::Ssd
        };
        placed[v as usize] = true;
    }
    let mut spare =
        (dram_budget / row_bytes.max(1)).saturating_sub(tiered.dram_feat_vertices as u64);
    for (v, was_placed) in placed.iter().enumerate() {
        if !was_placed && spare > 0 {
            tiers[v] = Tier::Dram;
            spare -= 1;
        }
    }
    let ssd_rows = tiers.iter().filter(|&&t| t == Tier::Ssd).count();
    // Descending-hotness SSD rows: the warm prefix of the clique order
    // that spilled past the DRAM budget, then warmup-untouched rows.
    let mut ssd_hot: Vec<VertexId> = f
        .clique_order
        .iter()
        .skip(dram_end)
        .copied()
        .filter(|&v| tiers[v as usize] == Tier::Ssd)
        .collect();
    ssd_hot.extend(
        (0..graph.num_vertices() as VertexId)
            .filter(|&v| !placed[v as usize] && tiers[v as usize] == Tier::Ssd),
    );
    (ssd_rows > 0).then(|| StorePlacement {
        nvme,
        tiers: Arc::new(tiers),
        ssd_hot: Arc::new(ssd_hot),
    })
}

/// Per-worker out-of-core state: the GPU's NUMA-local store (NVMe
/// namespace + pinned staging window), its placement-time tier map for
/// migration decisions, the shared meters, and the prefetcher's knobs
/// and scratch.
pub(crate) struct StoreWorker {
    store: VertexStore,
    baseline: Arc<Vec<Tier>>,
    meters: StoreMeters,
    lookahead: usize,
    prefetch_neighbors: usize,
    prefetch_budget: usize,
    missed: Vec<VertexId>,
    candidates: Vec<VertexId>,
}

impl StoreWorker {
    fn new(
        placement: &StorePlacement,
        cfg: &StoreConfig,
        row_bytes: u64,
        registry: &Arc<Registry>,
    ) -> Self {
        let mut store = VertexStore::new(
            placement.nvme,
            placement.tiers.len(),
            row_bytes,
            cfg.staging_rows,
        );
        for (v, &t) in placement.tiers.iter().enumerate() {
            if t != Tier::Dram {
                store.assign(v as VertexId, t);
            }
        }
        // Warm-start the staging window with the hottest SSD rows, the
        // same warmup traffic the HBM plan was filled from — staged
        // during the warmup epoch, outside the measured serving window.
        store.warm(placement.ssd_hot.iter().copied());
        Self {
            store,
            baseline: Arc::clone(&placement.tiers),
            meters: StoreMeters::new(registry),
            lookahead: cfg.lookahead_requests,
            prefetch_neighbors: cfg.prefetch_neighbors,
            prefetch_budget: cfg.prefetch_budget,
            missed: Vec::new(),
            candidates: Vec::new(),
        }
    }

    /// Resolves the batch's collected HBM misses (`self.missed`)
    /// against the store at simulated time `at` and returns the
    /// extraction stall to charge, metering every outcome.
    fn charge_batch(&mut self, at: f64) -> f64 {
        if self.missed.is_empty() {
            return 0.0;
        }
        let out = self.store.read(at, &self.missed);
        self.missed.clear();
        self.meters.prefetch_hits.add(out.prefetch_hits);
        self.meters.late_stalls.add(out.late_stalls);
        self.meters.cold_reads.add(out.cold_reads);
        self.meters.evictions.add(out.evictions);
        if out.nvme_reads > 0 {
            self.meters.nvme_bytes.add(out.nvme_bytes);
            self.meters.nvme_queue_depth.observe(out.nvme_reads);
            self.meters.nvme_read_us.observe(out.read_us);
        }
        out.stall_s
    }

    /// Lookahead prefetch at a batch boundary: peeks the requests still
    /// queued behind the batch just drained and stages their targets'
    /// (and leading neighbors') SSD rows, so those batches launch
    /// against warm staging instead of cold flash.
    fn prefetch_lookahead(&mut self, graph: &CsrGraph, queue: &ClassedQueue<Request>, at: f64) {
        if self.lookahead == 0 || self.prefetch_budget == 0 {
            return;
        }
        self.candidates.clear();
        for r in queue.peek_upto(self.lookahead) {
            self.candidates.push(r.target);
            self.candidates.extend(
                graph
                    .neighbors(r.target)
                    .iter()
                    .take(self.prefetch_neighbors)
                    .copied(),
            );
        }
        if self.candidates.is_empty() {
            return;
        }
        self.issue_prefetch(at);
    }

    /// Admission-time prefetch: stages the just-admitted request's
    /// target and leading neighbors the moment the router commits it to
    /// a queue, overlapping the NVMe read with the micro-batcher's
    /// accumulation window. Batch-boundary lookahead alone misses the
    /// low-load regime, where a request arrives at an idle worker and is
    /// serviced with no intervening batch boundary to prefetch it.
    fn prefetch_admitted(&mut self, graph: &CsrGraph, target: VertexId, at: f64) {
        if self.prefetch_budget == 0 {
            return;
        }
        self.candidates.clear();
        self.candidates.push(target);
        self.candidates.extend(
            graph
                .neighbors(target)
                .iter()
                .take(self.prefetch_neighbors)
                .copied(),
        );
        self.issue_prefetch(at);
    }

    /// Issues the accumulated `candidates` to the store under the
    /// per-call budget and meters the device traffic.
    fn issue_prefetch(&mut self, at: f64) {
        let out = self
            .store
            .prefetch(at, self.candidates.drain(..), self.prefetch_budget);
        if out.issued > 0 {
            self.meters.evictions.add(out.evictions);
            self.meters.nvme_bytes.add(out.nvme_bytes);
            self.meters.nvme_queue_depth.observe(out.issued);
            self.meters.nvme_read_us.observe(out.read_us);
        }
    }

    /// Batch-boundary migration for a committed re-plan: rows entering
    /// the HBM plan are read up off the SSD (their host copies stay
    /// DRAM-resident afterwards), while rows that left the plan and
    /// were SSD-placed at planning time fall back out, keeping DRAM
    /// occupancy bounded. Returns the device time the committing batch
    /// pays.
    fn migrate_commit(
        &mut self,
        at: f64,
        old_feat: &[VertexId],
        new_feat: &[VertexId],
        refill: &[VertexId],
    ) -> f64 {
        let promote: Vec<VertexId> = refill
            .iter()
            .copied()
            .filter(|&v| self.store.tier(v) == Tier::Ssd)
            .collect();
        // `new_feat` is ascending, so membership is a binary search.
        let demote: Vec<VertexId> = old_feat
            .iter()
            .copied()
            .filter(|&v| new_feat.binary_search(&v).is_err())
            .filter(|&v| self.baseline[v as usize] == Tier::Ssd && self.store.tier(v) == Tier::Dram)
            .collect();
        if promote.is_empty() && demote.is_empty() {
            return 0.0;
        }
        let out = self.store.migrate(at, &promote, &demote);
        let moves = out.promoted + out.demoted;
        if moves > 0 {
            self.meters.migrations.add(moves);
            self.meters.migrated_bytes.add(out.nvme_bytes);
            self.meters.nvme_bytes.add(out.nvme_bytes);
            self.meters.nvme_queue_depth.observe(moves);
            self.meters
                .nvme_read_us
                .observe((out.swap_s * 1e6).round() as u64);
        }
        out.swap_s
    }
}

/// Per-worker fleet state: which vertices are locally owned (this
/// server's shard plus the replicated hot head), the cluster-network
/// model, and the shared remote-read meters. HBM-cache misses on
/// unowned vertices bypass the local DRAM/SSD tiers entirely — their
/// rows live on another server — and are charged one batched RPC wave
/// through [`NetModel::read_seconds`](legion_hw::NetModel::read_seconds)
/// instead.
pub(crate) struct RemoteWorker {
    owned: Arc<Vec<bool>>,
    net: legion_hw::NetModel,
    row_bytes: u64,
    /// Fleet size assumed concurrently active on the shared uplink.
    concurrent: usize,
    reads: Counter,
    bytes: Counter,
    pending: u64,
    /// Per-owner coalescing state; `None` keeps the flat per-row pool
    /// (and registers none of the coalescing meters), byte-identical
    /// to the pre-coalescing engine.
    coalesce: Option<CoalesceState>,
}

/// The coalescing side of [`RemoteWorker`]: a batch-window dedup map
/// plus per-owner row buckets, drained once per batch into one batched
/// message per owning server.
struct CoalesceState {
    shard: Arc<Vec<u32>>,
    /// `last_fetch[v]` — the batch index that last pulled `v` over the
    /// wire (`u64::MAX` = never). A row re-missed within
    /// `window_batches` of its fetch is still resident in the remote
    /// staging buffer and is deduplicated instead of re-fetched.
    last_fetch: Vec<u64>,
    window_batches: u64,
    batch_idx: u64,
    /// Rows this batch fetches from each owner; reset per batch by
    /// walking `touched`.
    owner_rows: Vec<u64>,
    touched: Vec<u32>,
    payloads: Vec<u64>,
    coalesced_msgs: Counter,
    dedup_hits: Counter,
    per_owner_bytes: Counter,
}

impl RemoteWorker {
    fn new(rc: &crate::RemoteConfig, row_bytes: u64, registry: &Arc<Registry>) -> Self {
        let coalesce = rc.coalesce.as_ref().map(|cc| {
            assert_eq!(
                cc.shard.len(),
                rc.owned.len(),
                "coalescing shard map must cover every vertex"
            );
            CoalesceState {
                shard: Arc::clone(&cc.shard),
                last_fetch: vec![u64::MAX; cc.shard.len()],
                window_batches: cc.window_batches,
                batch_idx: 0,
                owner_rows: vec![0; cc.num_servers],
                touched: Vec::new(),
                payloads: Vec::new(),
                coalesced_msgs: registry.counter("serve.remote.coalesced_msgs"),
                dedup_hits: registry.counter("serve.remote.dedup_hits"),
                per_owner_bytes: registry.counter("serve.remote.per_owner_bytes"),
            }
        });
        Self {
            owned: Arc::clone(&rc.owned),
            net: rc.net,
            row_bytes,
            concurrent: rc.concurrent_servers.max(1),
            reads: registry.counter("serve.remote.reads"),
            bytes: registry.counter("serve.remote.bytes"),
            pending: 0,
            coalesce,
        }
    }

    /// Classifies one HBM miss: if `v` is not locally owned it joins
    /// this batch's remote wave and the local tiers never see it.
    /// Under coalescing the miss is first checked against the staging
    /// window (recently fetched rows dedupe) and then bucketed by its
    /// owning shard.
    fn note_miss(&mut self, v: VertexId) -> bool {
        if self.owned[v as usize] {
            return false;
        }
        self.pending += 1;
        if let Some(c) = self.coalesce.as_mut() {
            let last = c.last_fetch[v as usize];
            if last != u64::MAX && c.batch_idx - last <= c.window_batches {
                c.dedup_hits.inc();
            } else {
                c.last_fetch[v as usize] = c.batch_idx;
                let owner = c.shard[v as usize];
                if c.owner_rows[owner as usize] == 0 {
                    c.touched.push(owner);
                }
                c.owner_rows[owner as usize] += 1;
            }
        }
        true
    }

    /// Charges the batch's accumulated remote reads and returns the
    /// extraction stall, metering reads and wire bytes. The flat pool
    /// charges every miss as its own RPC
    /// ([`NetModel::read_seconds_at`](legion_hw::NetModel::read_seconds_at));
    /// coalescing charges one batched message per owning server —
    /// headers and round-trip waves amortize across each owner's rows,
    /// and staging-window dedup hits cost no wire at all.
    fn charge_batch(&mut self) -> f64 {
        if self.pending == 0 {
            if let Some(c) = self.coalesce.as_mut() {
                c.batch_idx += 1;
            }
            return 0.0;
        }
        let n = std::mem::take(&mut self.pending);
        self.reads.add(n);
        let Some(c) = self.coalesce.as_mut() else {
            self.bytes
                .add(n * self.net.bytes_for_payload(self.row_bytes));
            return self.net.read_seconds_at(n, self.row_bytes, self.concurrent);
        };
        // Drain the owner buckets in ascending server order so the
        // payload vector (and therefore the charged time) is a pure
        // function of the miss set.
        c.touched.sort_unstable();
        let mut wire = 0u64;
        c.payloads.clear();
        for &owner in &c.touched {
            let rows = std::mem::take(&mut c.owner_rows[owner as usize]);
            let payload = rows * self.row_bytes;
            c.payloads.push(payload);
            wire += self.net.bytes_for_payload(payload);
        }
        c.coalesced_msgs.add(c.payloads.len() as u64);
        c.per_owner_bytes.add(wire);
        self.bytes.add(wire);
        c.touched.clear();
        c.batch_idx += 1;
        self.net
            .coalesced_read_seconds_at(&c.payloads, self.concurrent)
    }
}

/// Attributes each batch's feature hit/miss deltas to the drift phase of
/// its oldest request (`phase = id / drift_period`), plus tail-only
/// counters covering the second half of each phase — the "settled" hit
/// rate after a policy has had time to react to the rotation.
struct PhaseMeter {
    registry: Arc<Registry>,
    drift_period: u64,
    hits: Counter,
    misses: Counter,
}

impl PhaseMeter {
    fn new(registry: &Arc<Registry>, drift_period: usize, gpu: GpuId) -> Self {
        Self {
            registry: Arc::clone(registry),
            drift_period: drift_period as u64,
            hits: registry.counter(&format!("cache.gpu{gpu}.feature_hits")),
            misses: registry.counter(&format!("cache.gpu{gpu}.feature_misses")),
        }
    }

    fn totals(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    fn record(&self, first_id: u64, hits_before: u64, misses_before: u64) {
        let dh = self.hits.get() - hits_before;
        let dm = self.misses.get() - misses_before;
        let phase = first_id / self.drift_period;
        self.registry
            .counter(&format!("serve.phase{phase:03}.feature_hits"))
            .add(dh);
        self.registry
            .counter(&format!("serve.phase{phase:03}.feature_misses"))
            .add(dm);
        if (first_id % self.drift_period) * 2 >= self.drift_period {
            self.registry
                .counter(&format!("serve.phase{phase:03}.tail_feature_hits"))
                .add(dh);
            self.registry
                .counter(&format!("serve.phase{phase:03}.tail_feature_misses"))
                .add(dm);
        }
    }
}

/// The distinct targets of a micro-batch, ascending.
///
/// Several requests in one batch frequently name the same (hot) vertex;
/// expanding each copy separately made the engine re-read the same
/// uncached adjacency and count one physical topology miss once per
/// duplicate request. Batched inference resolves one vertex once, so the
/// seed list is deduplicated here and the per-request results share it.
fn batch_seeds(batch: &[Request], seeds: &mut Vec<VertexId>) {
    seeds.clear();
    seeds.extend(batch.iter().map(|r| r.target));
    seeds.sort_unstable();
    seeds.dedup();
}

/// Per-GPU scratch reused across every micro-batch of the event loop:
/// the deduplicated seed list, the sampler's arena, the feature gather
/// buffer, and the batch-local meter totals. Steady-state batches
/// therefore run without per-vertex heap allocation or atomic RMWs.
struct BatchScratch {
    seeds: Vec<VertexId>,
    sample: SampleScratch,
    features: Vec<f32>,
    totals: BatchTotals,
}

impl BatchScratch {
    fn new(num_gpus: usize) -> Self {
        Self {
            seeds: Vec::new(),
            sample: SampleScratch::new(),
            features: Vec::new(),
            totals: BatchTotals::new(num_gpus),
        }
    }
}

/// Replan-only per-worker state: the sliding-window estimator plus the
/// plan double-buffer, and this GPU's swap/hit meters.
pub(crate) struct ReplanWorker {
    pub(crate) state: ReplanState,
    gpu_replans: Counter,
    gpu_swap_bytes: Counter,
    window_gauge: Gauge,
    feat_hits: Counter,
    feat_misses: Counter,
}

/// Cache-policy-specific batch machinery of one worker.
pub(crate) enum WorkerPolicy {
    /// StaticHot and Fifo: a fixed layout (possibly empty) plus the
    /// manual FIFO cache and its meters.
    Flat { fifo: FifoCache, meters: FifoMeters },
    /// Replan: the per-GPU re-planning loop.
    Replan(Box<ReplanWorker>),
}

impl WorkerPolicy {
    /// The active plan's `(version, resident feature set)` if this is a
    /// replan worker — what the residency index needs after a commit.
    pub(crate) fn plan_residency(&self) -> Option<(u64, &[VertexId])> {
        match self {
            WorkerPolicy::Replan(rw) => Some((
                rw.state.plan.version(),
                rw.state.plan.active().contents.feat.as_slice(),
            )),
            WorkerPolicy::Flat { .. } => None,
        }
    }
}

/// One GPU of the event loop: its admission queue, busy horizon, RNG
/// stream, scratch, meters, and policy state. Exactly one shard (or the
/// sequential loop) owns a worker at any time — all of this state is
/// single-writer by construction.
pub(crate) struct Worker {
    pub(crate) gpu: GpuId,
    pub(crate) queue: ClassedQueue<Request>,
    pub(crate) free_at: f64,
    pub(crate) makespan: f64,
    rng: StdRng,
    scratch: BatchScratch,
    batches: Counter,
    busy: Counter,
    pub(crate) gpu_shed: Counter,
    phase: Option<PhaseMeter>,
    depth: QueueDepthMeter,
    stages: StageRecorder,
    slo_batch: SloBatch,
    class_batches: Option<Vec<SloBatch>>,
    pub(crate) policy: WorkerPolicy,
    /// Out-of-core store state; `None` unless the run's tiered
    /// placement put rows on the SSD.
    pub(crate) store: Option<Box<StoreWorker>>,
    /// Fleet state; `None` unless this run is one server of a fleet.
    pub(crate) remote: Option<Box<RemoteWorker>>,
    /// Plan version last pushed into the router's residency index
    /// (Replan + Residency runs only).
    pub(crate) last_plan_version: u64,
}

/// Residency-routing state of one run: the dispatcher plus per-clique
/// route counters and the locality accumulator.
pub(crate) struct RouterState {
    pub(crate) dispatcher: Dispatcher,
    pub(crate) routed: Vec<Counter>,
    pub(crate) spilled: Vec<Counter>,
    pub(crate) shed: Vec<Counter>,
    probe_neighbors: usize,
    covered: u64,
    probed: u64,
    probe: Vec<VertexId>,
    queue_lens: Vec<usize>,
}

impl RouterState {
    fn new(registry: &Arc<Registry>, dispatcher: Dispatcher, probe_neighbors: usize) -> Self {
        let per_group = |suffix: &str| -> Vec<Counter> {
            (0..dispatcher.num_groups())
                .map(|q| registry.counter(&format!("serve.route.clique{q}.{suffix}")))
                .collect()
        };
        Self {
            routed: per_group("routed"),
            spilled: per_group("spilled"),
            shed: per_group("shed"),
            dispatcher,
            probe_neighbors,
            covered: 0,
            probed: 0,
            probe: Vec::new(),
            queue_lens: Vec::new(),
        }
    }

    /// Scores one request against the cliques at the given queue depths
    /// and returns the raw decision, accumulating the locality meters
    /// but *not* the routed/spilled counters — the caller decides
    /// whether the request is placed now ([`note_routed`](Self::note_routed))
    /// or parked for stealing (sharded spills).
    pub(crate) fn decide(
        &mut self,
        graph: &CsrGraph,
        queue_lens: &[usize],
        r: &Request,
    ) -> RouteDecision {
        self.probe.clear();
        self.probe.push(r.target);
        self.probe.extend(
            graph
                .neighbors(r.target)
                .iter()
                .take(self.probe_neighbors)
                .copied(),
        );
        let dec = self.dispatcher.route(&self.probe, queue_lens);
        self.covered += self.dispatcher.score(dec.group, &self.probe) as u64;
        self.probed += self.probe.len() as u64;
        dec
    }

    /// Meters a decision that placed the request immediately.
    pub(crate) fn note_routed(&self, dec: &RouteDecision) {
        if dec.spilled {
            self.spilled[dec.group].inc();
        } else {
            self.routed[dec.group].inc();
        }
    }

    /// Routes one request in the sequential loop: builds the probe
    /// (target + leading neighbors), scores the cliques against current
    /// queue depths, and returns the destination GPU, metering the
    /// decision.
    fn route(&mut self, graph: &CsrGraph, workers: &[Worker], r: &Request) -> GpuId {
        self.queue_lens.clear();
        self.queue_lens
            .extend(workers.iter().map(|w| w.queue.len()));
        let lens = std::mem::take(&mut self.queue_lens);
        let dec = self.decide(graph, &lens, r);
        self.queue_lens = lens;
        self.note_routed(&dec);
        dec.gpu
    }
}

/// One micro-batch's stage durations, simulated seconds. Service time
/// follows the §5 intra-batch overlap: sampling and extraction run
/// concurrently, inference (and any plan-swap refill) serializes after.
pub(crate) struct BatchTiming {
    sample_s: f64,
    extract_s: f64,
    infer_s: f64,
    swap_s: f64,
}

impl BatchTiming {
    /// `max(sample, extract) + infer + swap`.
    fn service(&self) -> f64 {
        self.sample_s.max(self.extract_s) + self.infer_s + self.swap_s
    }
}

/// Charges a committed plan swap: the entries the new plan holds that
/// the old one did not are refilled from CPU memory (PCM transactions +
/// traffic-matrix bytes), the GPU's memory budget is moved to the new
/// footprint, and the PCIe transfer time is returned so the committing
/// batch pays for it.
#[allow(clippy::too_many_arguments)]
fn charge_swap(
    server: &MultiGpuServer,
    graph: &CsrGraph,
    time_model: &TimeModel,
    gpu: GpuId,
    row_bytes: u64,
    delta: &SwapDelta,
    swap_bytes_total: &Counter,
    gpu_swap_bytes: &Counter,
) -> f64 {
    let feat_tx = delta.new_feat.len() as u64 * server.pcie().transactions_for_payload(row_bytes);
    let mut bytes = delta.new_feat.len() as u64 * row_bytes;
    let mut topo_tx = 0u64;
    for &v in &delta.new_topo {
        let b = topology_bytes_for_degree(graph.degree(v));
        bytes += b;
        topo_tx += server.pcie().transactions_for_payload(b);
    }
    server.pcm().add(gpu, TrafficKind::Feature, feat_tx);
    server.pcm().add(gpu, TrafficKind::Topology, topo_tx);
    server.traffic().add(gpu, Source::Cpu, bytes);
    server
        .free(gpu, delta.old_bytes)
        .expect("retired plan freed");
    server
        .alloc(gpu, delta.new_bytes)
        .expect("replanned cache exceeds GPU memory");
    swap_bytes_total.add(bytes);
    gpu_swap_bytes.add(bytes);
    time_model.extract_seconds(feat_tx + topo_tx, 0)
}

/// Runs one replan-policy micro-batch: commit any staged plan (paying
/// the swap), sample and extract against the active plan's layout while
/// feeding the window estimator, roll the window (possibly staging the
/// next plan), and return the batch's service time.
#[allow(clippy::too_many_arguments)]
fn replan_batch_service(
    graph: &CsrGraph,
    features: &FeatureTable,
    server: &MultiGpuServer,
    time_model: &TimeModel,
    sampler: &KHopSampler,
    model: &GnnModel,
    replan_meters: &ReplanMeters,
    row_bytes: u64,
    gpu: GpuId,
    rw: &mut ReplanWorker,
    batch: &[Request],
    at: f64,
    rng: &mut StdRng,
    scratch: &mut BatchScratch,
    mut store: Option<&mut StoreWorker>,
    mut remote: Option<&mut RemoteWorker>,
    overlay: Option<&DeltaOverlay>,
) -> BatchTiming {
    // Batch-boundary swap: in-flight requests finished against the old
    // plan; this batch starts on the new one and pays its refill.
    let mut swap_t = 0.0f64;
    let old_feat = (store.is_some() && rw.state.plan.has_staged())
        .then(|| rw.state.plan.active().contents.feat.clone());
    if let Some(delta) = rw.state.commit() {
        rw.gpu_replans.inc();
        replan_meters.count.inc();
        swap_t = charge_swap(
            server,
            graph,
            time_model,
            gpu,
            row_bytes,
            &delta,
            &replan_meters.swap_bytes,
            &rw.gpu_swap_bytes,
        );
        // Rows the new plan pulls into HBM come up off the SSD; rows
        // that left it fall back to their placement-time tier. Swap
        // bytes are charged to the NVMe model and the committing batch
        // pays the device time.
        if let (Some(sw), Some(old)) = (store.as_deref_mut(), old_feat) {
            swap_t += sw.migrate_commit(
                at,
                &old,
                &rw.state.plan.active().contents.feat,
                &delta.new_feat,
            );
        }
    }
    // Plan-commit visibility audit: from here to the end of the batch
    // the version must not move — `roll` below only *stages* the next
    // plan, and no other thread ever touches this worker's buffer.
    let version_in_batch = rw.state.plan.version();
    let plan_engine = AccessEngine::new(
        graph,
        features,
        rw.state.plan.active_layout(),
        server,
        TopologyPlacement::CpuUva,
    )
    .with_overlay(overlay);
    batch_seeds(batch, &mut scratch.seeds);
    let topo_before = server.pcm().gpu_kind(gpu, TrafficKind::Topology);
    let window = &mut rw.state.window;
    let mut on_edge = |v: VertexId| window.note_edge(v);
    let sample = sampler.sample_batch_with(
        &plan_engine,
        gpu,
        &scratch.seeds,
        rng,
        Some(&mut on_edge),
        &mut scratch.sample,
    );
    for &v in &sample.all_vertices {
        window.note_feature(v);
    }
    let topo_tx = server.pcm().gpu_kind(gpu, TrafficKind::Topology) - topo_before;
    let sample_t = time_model.sample_seconds(topo_tx, sample.total_edges() as u64);
    let feat_tx_before = server.pcm().gpu_kind(gpu, TrafficKind::Feature);
    let (h0, m0) = (rw.feat_hits.get(), rw.feat_misses.get());
    plan_engine.read_features_batch(
        gpu,
        &sample.all_vertices,
        &mut scratch.features,
        &mut scratch.totals,
    );
    let feat_tx = server.pcm().gpu_kind(gpu, TrafficKind::Feature) - feat_tx_before;
    let mut extract_t = time_model.extract_seconds(feat_tx, 0);
    if store.is_some() || remote.is_some() {
        if let Some(sw) = store.as_deref_mut() {
            sw.missed.clear();
        }
        for &v in &sample.all_vertices {
            if plan_engine.feature_would_hit(gpu, v) {
                continue;
            }
            if remote.as_deref_mut().is_some_and(|rw| rw.note_miss(v)) {
                continue;
            }
            if let Some(sw) = store.as_deref_mut() {
                sw.missed.push(v);
            }
        }
        if let Some(rw) = remote {
            extract_t += rw.charge_batch();
        }
        if let Some(sw) = store {
            extract_t += sw.charge_batch(at);
        }
    }
    rw.state.window.note_batch(
        batch.len(),
        rw.feat_hits.get() - h0,
        rw.feat_misses.get() - m0,
        topo_tx,
    );
    drop(plan_engine);
    if let Some(outcome) = rw.state.roll(at, graph, features) {
        rw.window_gauge.set(outcome.window_hit_rate);
        if let Some(dt) = outcome.recovered_after {
            replan_meters.recover.observe((dt * 1e6).round() as u64);
        }
    }
    if rw.state.plan.version() != version_in_batch {
        replan_meters.mid_batch.inc();
    }
    let infer_t = time_model.train_seconds(model.inference_flops(&sample));
    BatchTiming {
        sample_s: sample_t,
        extract_s: extract_t,
        infer_s: infer_t,
        swap_s: swap_t,
    }
}

/// Everything the batch path reads but never mutates: the dataset, the
/// metered server, the run config, and the shared trackers whose
/// interior mutability is limited to commuting integer atomics. One
/// `&ServeContext` is shared by the sequential loop and by every shard
/// thread; all single-writer state lives in [`Worker`].
pub(crate) struct ServeContext<'a> {
    pub(crate) graph: &'a CsrGraph,
    pub(crate) features: &'a FeatureTable,
    pub(crate) server: &'a MultiGpuServer,
    pub(crate) config: &'a ServeConfig,
    engine: AccessEngine<'a>,
    time_model: TimeModel,
    sampler: KHopSampler,
    model: GnnModel,
    pub(crate) registry: Arc<Registry>,
    slo: SloTracker,
    class_slos: Option<Vec<SloTracker>>,
    shed_total: Counter,
    pub(crate) batch_policy: BatchPolicy,
    row_bytes: u64,
    replan_shared: Option<(WarmupProfile, ReplanMeters)>,
}

/// Offers one routed request to its worker's admission queue, metering
/// sheds (global, per-GPU, and — when routing is on — per-clique via
/// `route_shed`).
pub(crate) fn offer_request(
    ctx: &ServeContext<'_>,
    w: &mut Worker,
    r: Request,
    route_shed: Option<&Counter>,
) {
    let admitted = match w.queue.offer(r) {
        Admission::Admitted => true,
        admission @ (Admission::AdmittedEvicting(_) | Admission::Shed) => {
            ctx.shed_total.inc();
            w.gpu_shed.inc();
            if let Some(c) = route_shed {
                c.inc();
            }
            matches!(admission, Admission::AdmittedEvicting(_))
        }
    };
    if admitted {
        if let Some(sw) = w.store.as_deref_mut() {
            sw.prefetch_admitted(ctx.graph, r.target, r.arrival);
        }
    }
}

/// Runs one worker's micro-batch launched at `at`: drains the queue,
/// runs the policy's operators, records stage times and batch-local
/// latency tallies (flushed to the shared trackers once per batch), and
/// advances the worker's busy horizon. Returns the batch length.
pub(crate) fn run_worker_batch(ctx: &ServeContext<'_>, w: &mut Worker, at: f64) -> usize {
    w.depth.observe(w.queue.len());
    let batch = w.queue.take(ctx.config.max_batch);
    if let Some(sw) = w.store.as_deref_mut() {
        sw.meters.inflight.observe(sw.store.inflight(at) as u64);
    }
    let before = w.phase.as_ref().map(|p| p.totals());
    let timing = match &mut w.policy {
        WorkerPolicy::Flat { fifo, meters } => batch_service_seconds(
            &ctx.engine,
            ctx.server,
            &ctx.time_model,
            &ctx.sampler,
            &ctx.model,
            ctx.config.policy,
            fifo,
            meters,
            w.gpu,
            &batch,
            at,
            &mut w.rng,
            &mut w.scratch,
            w.store.as_deref_mut(),
            w.remote.as_deref_mut(),
        ),
        WorkerPolicy::Replan(rw) => {
            let (_, replan_meters) = ctx.replan_shared.as_ref().expect("replan meters");
            replan_batch_service(
                ctx.graph,
                ctx.features,
                ctx.server,
                &ctx.time_model,
                &ctx.sampler,
                &ctx.model,
                replan_meters,
                ctx.row_bytes,
                w.gpu,
                rw,
                &batch,
                at,
                &mut w.rng,
                &mut w.scratch,
                w.store.as_deref_mut(),
                w.remote.as_deref_mut(),
                ctx.engine.overlay(),
            )
        }
    };
    // Lookahead prefetch: the requests still queued behind the batch
    // just drained are exactly what the next few batches will ask for —
    // stage their SSD rows now so those launches find warm staging.
    if let Some(sw) = w.store.as_deref_mut() {
        sw.prefetch_lookahead(ctx.graph, &w.queue, at);
    }
    if let (Some(p), Some((h0, m0))) = (w.phase.as_ref(), before) {
        p.record(batch[0].id, h0, m0);
    }
    let service = timing.service();
    w.stages
        .record(timing.sample_s, timing.extract_s, timing.infer_s);
    w.batches.inc();
    w.busy.add_secs(service);
    let completion = at + service;
    for r in &batch {
        let latency_us = ((completion - r.arrival) * 1e6).round() as u64;
        ctx.slo.record_batched(&mut w.slo_batch, latency_us);
        if let Some(trackers) = ctx.class_slos.as_ref() {
            let tallies = w.class_batches.as_mut().expect("class tallies");
            trackers[r.class.index()].record_batched(&mut tallies[r.class.index()], latency_us);
        }
    }
    ctx.slo.flush(&mut w.slo_batch);
    if let (Some(trackers), Some(tallies)) = (ctx.class_slos.as_ref(), w.class_batches.as_mut()) {
        for (t, tally) in trackers.iter().zip(tallies.iter_mut()) {
            t.flush(tally);
        }
    }
    w.free_at = completion;
    w.makespan = w.makespan.max(completion);
    batch.len()
}

/// Drives a resolved mutation stream through the sequential event loop:
/// applies each op to the [`DeltaOverlay`] at its timestamp, meters the
/// `graph.mut.*` family, and runs the fast invalidation path — stale
/// cached topology rows are counted, the router's residency bits for
/// the mutated vertex are cleared (routing stops crediting a stale
/// row), and every replan worker's window estimator gets a hotness
/// nudge so the slow re-planning path eventually folds the change into
/// a fresh plan. Compaction runs only at batch boundaries, once the
/// overlay's pending delta edges cross the configured threshold.
pub(crate) struct MutationDriver<'a> {
    log: Arc<MutationLog>,
    cursor: usize,
    overlay: &'a DeltaOverlay,
    compact_threshold: usize,
    inserts: Counter,
    deletes: Counter,
    compactions: Counter,
    overlay_rows: Counter,
    invalidate_topo: Counter,
    invalidate_bits: Counter,
}

impl<'a> MutationDriver<'a> {
    /// Binds a resolved log to the run's overlay and registers the
    /// mutation counter families (only churn-enabled runs reach here,
    /// so frozen-graph snapshots never see the names).
    pub(crate) fn new(
        log: Arc<MutationLog>,
        compact_threshold: usize,
        overlay: &'a DeltaOverlay,
        registry: &Registry,
    ) -> Self {
        MutationDriver {
            log,
            cursor: 0,
            overlay,
            compact_threshold,
            inserts: registry.counter("graph.mut.inserts"),
            deletes: registry.counter("graph.mut.deletes"),
            compactions: registry.counter("graph.mut.compactions"),
            overlay_rows: registry.counter("graph.mut.overlay_rows"),
            invalidate_topo: registry.counter("serve.invalidate.topo_rows"),
            invalidate_bits: registry.counter("serve.invalidate.residency_bits"),
        }
    }

    /// Timestamp of the next unapplied mutation, if any remain.
    fn next_at(&self) -> Option<f64> {
        self.log.ops.get(self.cursor).map(|m| m.at)
    }

    /// Applies the next mutation and runs the fast invalidation path.
    fn fire(
        &mut self,
        ctx: &ServeContext<'_>,
        workers: &mut [Worker],
        router: &mut Option<RouterState>,
    ) {
        let m = self.log.ops[self.cursor];
        self.cursor += 1;
        let effect = self.overlay.apply(ctx.graph, &m.op);
        self.inserts.add(effect.inserted);
        self.deletes.add(effect.deleted);
        self.overlay_rows.add(effect.newly_dirty);
        if !effect.changed() {
            return;
        }
        let v = match m.op {
            MutationOp::InsertEdge { src, .. } | MutationOp::DeleteEdge { src, .. } => src,
            MutationOp::ChurnVertex { v } => v,
        };
        // A cached copy of the mutated row — in the serving layout or in
        // any replan worker's active plan — is now stale; samplers
        // detect this through the overlay's dirty bit and fall back to
        // CPU UVA, but we count the invalidation here for telemetry.
        let cached = ctx.engine.topology_cached_anywhere(v)
            || workers.iter().any(|w| match &w.policy {
                WorkerPolicy::Replan(rw) => rw
                    .state
                    .plan
                    .active_layout()
                    .cliques
                    .iter()
                    .any(|c| c.has_topology(v)),
                WorkerPolicy::Flat { .. } => false,
            });
        if cached {
            self.invalidate_topo.inc();
        }
        if let Some(rs) = router.as_mut() {
            let cleared = rs.dispatcher.invalidate_vertex(v);
            self.invalidate_bits.add(cleared as u64);
        }
        // Hotness nudge: a mutated vertex's neighborhood just changed,
        // so the windowed estimators treat it as freshly touched — the
        // slow path (re-planning) will re-examine it next roll.
        for w in workers.iter_mut() {
            if let WorkerPolicy::Replan(rw) = &mut w.policy {
                rw.state.window.note_edge(v);
                if let MutationOp::InsertEdge { dst, .. } = m.op {
                    rw.state.window.note_feature(dst);
                }
            }
        }
    }

    /// Batch-boundary compaction: once enough delta edges are pending,
    /// fold the dirtied rows into fresh compacted rows (bounded work,
    /// never mid-batch). A threshold of zero disables compaction.
    fn maybe_compact(&mut self, ctx: &ServeContext<'_>) {
        if self.compact_threshold > 0
            && self.overlay.pending_delta_edges() >= self.compact_threshold
            && self.overlay.compact(ctx.graph) > 0
        {
            self.compactions.inc();
        }
    }
}

/// The sequential global event loop (`shards <= 1`): repeatedly take
/// the earliest event — the next arrival or the earliest batch launch
/// across all workers (launch ties go to the lowest GPU; an arrival
/// tying a launch yields to it, the same rule the per-GPU loops used).
/// When a mutation stream is attached its events interleave too: a
/// mutation fires whenever it is due no later than both the next
/// arrival and the earliest launch (ties go to the mutation, so an edge
/// changed "now" is visible to the batch launching "now").
fn run_sequential(
    ctx: &ServeContext<'_>,
    workers: &mut [Worker],
    router: &mut Option<RouterState>,
    requests: &[Request],
    mut driver: Option<MutationDriver<'_>>,
) {
    let num_gpus = workers.len();
    let mut next_req = 0usize;
    loop {
        let mut launch: Option<(f64, usize)> = None;
        for (wi, w) in workers.iter().enumerate() {
            if let Some(t) = ctx.batch_policy.launch_time(&w.queue, w.free_at) {
                if launch.is_none_or(|(bt, _)| t < bt) {
                    launch = Some((t, wi));
                }
            }
        }
        if let Some(d) = driver.as_mut() {
            if let Some(mt) = d.next_at() {
                let before_arrival = requests.get(next_req).is_none_or(|r| mt <= r.arrival);
                let before_launch = launch.is_none_or(|(t, _)| mt <= t);
                if before_arrival && before_launch {
                    d.fire(ctx, workers, router);
                    continue;
                }
            }
        }
        match (requests.get(next_req), launch) {
            (Some(r), l) if l.is_none_or(|(t, _)| r.arrival < t) => {
                next_req += 1;
                let wi = match router.as_mut() {
                    Some(rs) => rs.route(ctx.graph, workers, r),
                    None => (r.id % num_gpus as u64) as usize,
                };
                let route_shed = router
                    .as_ref()
                    .map(|rs| &rs.shed[rs.dispatcher.group_of(wi)]);
                offer_request(ctx, &mut workers[wi], *r, route_shed);
            }
            (_, Some((at, wi))) => {
                run_worker_batch(ctx, &mut workers[wi], at);
                // Batch boundary: fold pending overlay deltas into
                // fresh compacted rows once the budget is crossed.
                if let Some(d) = driver.as_mut() {
                    d.maybe_compact(ctx);
                }
                // A committed plan changed this GPU's resident set:
                // rebuild its residency group from the active plan.
                if let Some(rs) = router.as_mut() {
                    let Worker {
                        gpu,
                        policy,
                        last_plan_version,
                        ..
                    } = &mut workers[wi];
                    if let Some((version, feat)) = policy.plan_residency() {
                        if version != *last_plan_version {
                            *last_plan_version = version;
                            let g = rs.dispatcher.group_of(*gpu);
                            rs.dispatcher.refresh_group(g, feat);
                        }
                    }
                }
            }
            // Only (None, None) reaches here: a pending arrival with no
            // launch deadline always takes the first arm.
            _ => break,
        }
    }
}

/// Runs the full serving simulation for `config` against `server`.
///
/// Generates the open-loop workload from the config's seed and hands it
/// to [`serve_requests`]; the server is reset first (memory and all
/// counters) and on return its registry holds the run's complete
/// metrics.
pub fn serve(
    graph: &CsrGraph,
    features: &FeatureTable,
    server: &MultiGpuServer,
    config: &ServeConfig,
) -> ServeReport {
    config.validate();
    let all_targets: Vec<u32> = (0..graph.num_vertices() as u32).collect();

    // Open-loop workload: arrivals, priority classes, and (drifting)
    // targets. The class stream is seeded independently, and the target
    // sampler only gets the boosted Interactive head when the mix can
    // actually produce Interactive requests — so the default
    // single-class config reproduces the legacy stream byte-for-byte.
    let mut target_sampler = TargetSampler::new(
        all_targets,
        config.zipf_exponent,
        config.drift_period,
        config.drift_stride,
    );
    if config.classes.mix[PriorityClass::Interactive.index()] > 0.0 {
        target_sampler = target_sampler.with_interactive_boost(config.classes.interactive_boost);
    }
    let mut class_sampler = ClassSampler::new(config.classes.mix, config.seed);
    let mut workload_rng = StdRng::seed_from_u64(config.seed);
    let requests = generate_workload_classed(
        &config.arrival,
        &mut target_sampler,
        &mut class_sampler,
        config.num_requests,
        &mut workload_rng,
    );
    serve_requests(graph, features, server, config, &requests)
}

/// Runs the serving simulation over a *pre-generated* request stream.
///
/// This is [`serve`] with the workload supplied by the caller instead
/// of drawn from the config's seed — the entry point the fleet tier
/// uses to hand each simulated server its routed slice of the global
/// stream. Arrivals must be sorted by time. An empty slice is legal
/// (a fleet server may receive no traffic) and produces an all-zero
/// report. Everything after workload generation is shared with
/// [`serve`], so `serve(cfg) == serve_requests(cfg, generated)`
/// byte-for-byte.
pub fn serve_requests(
    graph: &CsrGraph,
    features: &FeatureTable,
    server: &MultiGpuServer,
    config: &ServeConfig,
    requests: &[Request],
) -> ServeReport {
    config.validate();
    if let Some(rc) = config.remote.as_ref() {
        assert_eq!(
            rc.owned.len(),
            graph.num_vertices(),
            "remote ownership map must cover every vertex"
        );
    }
    server.reset();
    let num_gpus = server.num_gpus();
    let all_targets: Vec<u32> = (0..graph.num_vertices() as u32).collect();

    let residency = config.router.policy == RouterPolicy::Residency;

    // Cache layout per policy. The static planner profiles warmup traffic
    // drawn from the *initial* (pre-drift) skew — it cannot see the
    // future, which is exactly the handicap under drift. The replan
    // policy starts from the same handicapped position (a warmup-profiled
    // plan) but may revise it from observed traffic. Under the residency
    // router the static plan becomes clique-partitioned: a pooled
    // per-clique cache holding a replicated global head plus the
    // clique's own partition of the warm tail.
    let mut static_groups: Option<Vec<Vec<GpuId>>> = None;
    let layout = match config.policy {
        PolicyKind::StaticHot => {
            let mut warm = TargetSampler::new(all_targets.clone(), config.zipf_exponent, 0, 0);
            let (hot, weight) = warmup_hot_vertices_weighted(
                graph,
                &mut warm,
                config.warmup_requests,
                &config.fanouts,
                config.seed,
            );
            if residency {
                // The replicated head is sized adaptively from measured
                // warmup hotness by default; `adaptive_replication:
                // false` restores the fixed `replicate_frac` split.
                let (layout, groups) = if config.router.adaptive_replication {
                    let (layout, groups, replicated) = build_partitioned_layout_adaptive(
                        graph,
                        features,
                        server,
                        &hot,
                        &weight,
                        config.cache_rows_per_gpu,
                    );
                    let meter = server.telemetry().counter("serve.route.replicated_rows");
                    meter.add(replicated.iter().map(|&r| r as u64).sum());
                    (layout, groups)
                } else {
                    build_partitioned_layout(
                        graph,
                        features,
                        server,
                        &hot,
                        config.cache_rows_per_gpu,
                        config.router.replicate_frac,
                    )
                };
                static_groups = Some(groups);
                layout
            } else {
                build_static_layout(graph, features, server, &hot, config.cache_rows_per_gpu)
            }
        }
        PolicyKind::Fifo | PolicyKind::Replan => CacheLayout::none(num_gpus),
    };
    // Streaming mutations: the delta-CSR overlay shared by every
    // sampler path. `None` — the default — leaves the engine overlay-
    // free and the run byte-identical to the frozen-graph engine.
    let overlay: Option<DeltaOverlay> = config
        .mutations
        .as_ref()
        .map(|_| DeltaOverlay::new(graph.num_vertices()));
    let engine = AccessEngine::new(graph, features, &layout, server, TopologyPlacement::CpuUva)
        .with_overlay(overlay.as_ref());
    let time_model = TimeModel::new(server.spec());
    let sampler = KHopSampler::new(config.fanouts.clone());
    let mut model_rng = StdRng::seed_from_u64(config.seed ^ 0x6d5f_3a21_9b4e_c087);
    let model = GnnModel::new(
        ModelKind::GraphSage,
        features.dim(),
        config.hidden_dim,
        config.num_classes,
        config.fanouts.len(),
        &mut model_rng,
    );

    let registry = server.telemetry();
    let slo = SloTracker::new(registry, config.slo_us);
    let class_slos: Option<Vec<SloTracker>> = config.classes.multi_class().then(|| {
        (0..CLASS_COUNT)
            .map(|c| {
                SloTracker::named(
                    registry,
                    &format!("serve.class{c}"),
                    config.classes.slo_us[c],
                )
            })
            .collect()
    });
    registry.counter("serve.offered").add(requests.len() as u64);
    let shed_total = registry.counter("serve.shed");
    let batch_policy = BatchPolicy::new(config.max_batch, config.max_wait);
    let row_bytes = features.row_bytes();

    // Out-of-core placement: the three-tier cost-model sweep decides,
    // per vertex, whether its feature row lives in HBM (the GPU plan),
    // host DRAM, or on the simulated SSD. `None` — the default config,
    // or any DRAM budget that swallows the whole table — leaves every
    // worker storeless, so the legacy two-tier path (and its snapshot)
    // is byte-identical.
    let store_placement =
        plan_store_placement(graph, features, server, config, &all_targets, row_bytes);

    // Replan-only shared state: the warmup-profiled initial hotness and
    // the global swap meters. The budget equals the other policies'
    // footprint (`cache_rows_per_gpu` feature rows); the cost model's α
    // splits it between topology and features.
    let replan_budget = config.cache_rows_per_gpu as u64 * row_bytes;
    let replan_shared = (config.policy == PolicyKind::Replan).then(|| {
        let mut warm = TargetSampler::new(all_targets, config.zipf_exponent, 0, 0);
        let profile = profile_warmup(
            graph,
            &mut warm,
            config.warmup_requests,
            &config.fanouts,
            config.seed,
        );
        let meters = ReplanMeters {
            count: registry.counter("serve.replan.count"),
            swap_bytes: registry.counter("serve.replan.swap_bytes"),
            recover: registry.histogram("serve.replan.recover_us", &latency_buckets()),
            mid_batch: registry.counter("serve.replan.mid_batch_commits"),
        };
        (profile, meters)
    });

    // Everything the batch path reads but never mutates, bundled so the
    // sequential loop and the shard threads share one `&ServeContext`.
    // All interior mutability below this point is commuting integer
    // atomics (counters, histograms, the server's meters) — the reason
    // sharded runs can flush batch-wise without changing any total.
    let ctx = ServeContext {
        graph,
        features,
        server,
        config,
        engine,
        time_model,
        sampler,
        model,
        registry: Arc::clone(registry),
        slo,
        class_slos,
        shed_total,
        batch_policy,
        row_bytes,
        replan_shared,
    };

    let mut workers: Vec<Worker> = (0..num_gpus)
        .map(|gpu| {
            let queue = if config.classes.qos {
                ClassedQueue::new_qos(config.queue_capacity, config.classes.qos_weights)
                    .with_service_floors(config.classes.qos_floors)
            } else {
                ClassedQueue::new_fifo(config.queue_capacity)
            };
            let policy = match config.policy {
                PolicyKind::StaticHot | PolicyKind::Fifo => WorkerPolicy::Flat {
                    fifo: FifoCache::new(config.cache_rows_per_gpu),
                    meters: FifoMeters {
                        hits: registry.counter(&format!("cache.gpu{gpu}.feature_hits")),
                        misses: registry.counter(&format!("cache.gpu{gpu}.feature_misses")),
                        rows: registry.counter(&format!("extract.gpu{gpu}.rows")),
                    },
                },
                PolicyKind::Replan => {
                    let (profile, _) = ctx.replan_shared.as_ref().expect("replan profile");
                    let cls = server.pcie().cls();
                    let initial = plan_layout(
                        gpu,
                        num_gpus,
                        graph,
                        features,
                        &profile.topo,
                        &profile.feat,
                        profile.n_tsum,
                        replan_budget,
                        config.replan.delta_alpha,
                        cls,
                    );
                    server
                        .alloc(gpu, initial.contents.total_bytes())
                        .expect("replanned cache exceeds GPU memory");
                    let state = ReplanState::new(
                        config.replan.clone(),
                        initial,
                        graph.num_vertices(),
                        gpu,
                        num_gpus,
                        replan_budget,
                        cls,
                    );
                    WorkerPolicy::Replan(Box::new(ReplanWorker {
                        state,
                        gpu_replans: registry.counter(&format!("serve.gpu{gpu}.replans")),
                        gpu_swap_bytes: registry
                            .counter(&format!("serve.gpu{gpu}.replan.swap_bytes")),
                        window_gauge: registry.gauge(&format!("serve.gpu{gpu}.window_hit_rate")),
                        feat_hits: registry.counter(&format!("cache.gpu{gpu}.feature_hits")),
                        feat_misses: registry.counter(&format!("cache.gpu{gpu}.feature_misses")),
                    }))
                }
            };
            Worker {
                gpu,
                queue,
                free_at: 0.0,
                makespan: 0.0,
                rng: StdRng::seed_from_u64(config.seed ^ (gpu as u64).wrapping_mul(0x517c_c1b7)),
                scratch: BatchScratch::new(num_gpus),
                batches: registry.counter(&format!("serve.gpu{gpu}.batches")),
                busy: registry.counter(&format!("serve.gpu{gpu}.busy_ns")),
                gpu_shed: registry.counter(&format!("serve.gpu{gpu}.shed")),
                phase: (config.drift_period > 0)
                    .then(|| PhaseMeter::new(registry, config.drift_period, gpu)),
                depth: QueueDepthMeter::for_gpu(registry, gpu),
                stages: StageRecorder::for_gpu(registry, gpu),
                slo_batch: ctx.slo.batch(),
                class_batches: ctx
                    .class_slos
                    .as_ref()
                    .map(|trackers| trackers.iter().map(SloTracker::batch).collect()),
                policy,
                store: store_placement
                    .as_ref()
                    .map(|p| Box::new(StoreWorker::new(p, &config.store, row_bytes, registry))),
                remote: config
                    .remote
                    .as_ref()
                    .map(|rc| Box::new(RemoteWorker::new(rc, row_bytes, registry))),
                last_plan_version: 0,
            }
        })
        .collect();

    // Residency router: route groups and their initial residency sets
    // are policy-specific. StaticHot exports the partitioned clique
    // caches; Fifo approximates each clique's future content with its
    // LDG partition (§4.1 ownership); Replan runs per-GPU groups seeded
    // from each worker's initial plan and refreshed on every commit.
    let mut router = residency.then(|| {
        let groups = match config.policy {
            PolicyKind::StaticHot => static_groups.take().expect("partitioned layout built"),
            PolicyKind::Fifo => detect_cliques(server.nvlink()),
            PolicyKind::Replan => (0..num_gpus).map(|g| vec![g]).collect(),
        };
        let spill_len =
            (config.router.spill_threshold * config.queue_capacity as f64).ceil() as usize;
        let mut dispatcher = Dispatcher::new(groups, graph.num_vertices(), spill_len);
        match config.policy {
            PolicyKind::StaticHot => {
                for g in 0..dispatcher.num_groups() {
                    let member = dispatcher.group_members(g)[0];
                    let resident = layout
                        .for_gpu(member)
                        .expect("partitioned layout covers every GPU")
                        .0
                        .feature_vertices();
                    dispatcher.refresh_group(g, &resident);
                }
            }
            PolicyKind::Fifo => {
                let part = LdgPartitioner::default().partition(graph, dispatcher.num_groups());
                for g in 0..dispatcher.num_groups() {
                    let owned: Vec<VertexId> = (0..graph.num_vertices() as VertexId)
                        .filter(|&v| part[v as usize] as usize == g)
                        .collect();
                    dispatcher.refresh_group(g, &owned);
                }
            }
            PolicyKind::Replan => {
                for w in &mut workers {
                    if let WorkerPolicy::Replan(rw) = &w.policy {
                        let g = dispatcher.group_of(w.gpu);
                        dispatcher.refresh_group(g, &rw.state.plan.active().contents.feat);
                        w.last_plan_version = rw.state.plan.version();
                    }
                }
            }
        }
        RouterState::new(registry, dispatcher, config.router.probe_neighbors)
    });

    // Event-loop dispatch: the sequential global loop at `shards <= 1`
    // (and whenever the topology collapses to one usable shard),
    // free-running shard threads under round-robin routing, and the
    // quantum-stepped coordinator under residency routing.
    let eff_shards = if config.shards > 1 {
        shard::effective_shards(server, config.shards)
    } else {
        1
    };
    // Mutation stream: resolved once per run (generated from the
    // config's churn knobs up to the last arrival, or replayed from a
    // logged stream) and interleaved into the sequential loop. The
    // config validator pins churn runs to `shards <= 1`.
    let mutation_driver = config.mutations.as_ref().map(|src| {
        let horizon = requests.last().map(|r| r.arrival).unwrap_or(0.0);
        let (log, compact_threshold) = src.resolve(graph, config.seed, horizon);
        MutationDriver::new(
            log,
            compact_threshold,
            overlay.as_ref().expect("churn runs build an overlay"),
            registry,
        )
    });
    if eff_shards <= 1 {
        run_sequential(&ctx, &mut workers, &mut router, requests, mutation_driver);
    } else if let Some(rs) = router.as_mut() {
        shard::run_residency_sharded(&ctx, &mut workers, rs, requests, eff_shards);
    } else {
        shard::run_roundrobin_sharded(&ctx, &mut workers, requests, eff_shards);
    }
    let makespan = workers.iter().fold(0.0f64, |m, w| m.max(w.makespan));

    let slo = &ctx.slo;
    let class_slos = &ctx.class_slos;
    let completed = slo.completed();
    let throughput = if makespan > 0.0 {
        completed as f64 / makespan
    } else {
        0.0
    };
    registry
        .gauge("serve.p50_us")
        .set(slo.quantile_us(0.50) as f64);
    registry
        .gauge("serve.p95_us")
        .set(slo.quantile_us(0.95) as f64);
    registry
        .gauge("serve.p99_us")
        .set(slo.quantile_us(0.99) as f64);
    registry.gauge("serve.slo_attainment").set(slo.attainment());
    registry.gauge("serve.makespan_s").set(makespan);
    registry.gauge("serve.throughput_rps").set(throughput);

    // Per-class accounting: sheds are attributed by the queues in every
    // run; latency trackers and their exported gauges exist only for
    // multi-class runs.
    let mut class_shed = [0u64; CLASS_COUNT];
    for w in &workers {
        for (c, shed) in class_shed.iter_mut().enumerate() {
            *shed += w.queue.shed(PriorityClass::from_index(c));
        }
    }
    let mut class_completed = [0u64; CLASS_COUNT];
    let mut class_p99_us = [0u64; CLASS_COUNT];
    let mut class_slo_attainment = [1.0f64; CLASS_COUNT];
    if let Some(trackers) = class_slos.as_ref() {
        for (c, t) in trackers.iter().enumerate() {
            class_completed[c] = t.completed();
            class_p99_us[c] = t.quantile_us(0.99);
            class_slo_attainment[c] = t.attainment();
            registry
                .counter(&format!("serve.class{c}.shed"))
                .add(class_shed[c]);
            registry
                .gauge(&format!("serve.class{c}.p99_us"))
                .set(class_p99_us[c] as f64);
            registry
                .gauge(&format!("serve.class{c}.slo_attainment"))
                .set(class_slo_attainment[c]);
        }
    }

    let (routed, spilled, route_locality) = match router.as_ref() {
        Some(rs) => {
            let routed: u64 = rs.routed.iter().map(Counter::get).sum();
            let spilled: u64 = rs.spilled.iter().map(Counter::get).sum();
            let locality = if rs.probed > 0 {
                rs.covered as f64 / rs.probed as f64
            } else {
                1.0
            };
            registry.gauge("serve.route.locality").set(locality);
            (routed, spilled, locality)
        }
        // No routing tier: nothing was probed, so locality is reported
        // as zero rather than a vacuous 100%.
        None => (0, 0, 0.0),
    };

    ServeReport {
        policy: config.policy,
        offered: requests.len() as u64,
        completed,
        shed: ctx.shed_total.get(),
        p50_us: slo.quantile_us(0.50),
        p95_us: slo.quantile_us(0.95),
        p99_us: slo.quantile_us(0.99),
        slo_attainment: slo.attainment(),
        makespan_s: makespan,
        throughput_rps: throughput,
        class_completed,
        class_p99_us,
        class_slo_attainment,
        class_shed,
        routed,
        spilled,
        route_locality,
        metrics: registry.snapshot(),
    }
}

/// Runs one micro-batch through the real operators and returns its
/// stage timing; service time is `max(sample, extract) + infer` (§5
/// intra-batch overlap; batches on one GPU are serial).
#[allow(clippy::too_many_arguments)]
fn batch_service_seconds(
    engine: &AccessEngine<'_>,
    server: &MultiGpuServer,
    time_model: &TimeModel,
    sampler: &KHopSampler,
    model: &GnnModel,
    policy: PolicyKind,
    fifo: &mut FifoCache,
    meters: &FifoMeters,
    gpu: GpuId,
    batch: &[Request],
    at: f64,
    rng: &mut StdRng,
    scratch: &mut BatchScratch,
    mut store: Option<&mut StoreWorker>,
    mut remote: Option<&mut RemoteWorker>,
) -> BatchTiming {
    batch_seeds(batch, &mut scratch.seeds);

    let topo_before = server.pcm().gpu_kind(gpu, TrafficKind::Topology);
    let sample =
        sampler.sample_batch_with(engine, gpu, &scratch.seeds, rng, None, &mut scratch.sample);
    let topo_tx = server.pcm().gpu_kind(gpu, TrafficKind::Topology) - topo_before;
    let sample_t = time_model.sample_seconds(topo_tx, sample.total_edges() as u64);

    let (feat_tx, peer_bytes) = match policy {
        PolicyKind::StaticHot => {
            // The engine's layout holds the static caches; the normal
            // extraction path meters hits, misses and NVLink traffic.
            let tx_before = server.pcm().gpu_kind(gpu, TrafficKind::Feature);
            let peer_before: u64 = (0..server.num_gpus())
                .map(|s| server.traffic().gpu_to_gpu(s, gpu))
                .sum();
            engine.read_features_batch(
                gpu,
                &sample.all_vertices,
                &mut scratch.features,
                &mut scratch.totals,
            );
            let tx = server.pcm().gpu_kind(gpu, TrafficKind::Feature) - tx_before;
            let peer: u64 = (0..server.num_gpus())
                .map(|s| server.traffic().gpu_to_gpu(s, gpu))
                .sum::<u64>()
                - peer_before;
            if store.is_some() || remote.is_some() {
                if let Some(sw) = store.as_deref_mut() {
                    sw.missed.clear();
                }
                for &v in &sample.all_vertices {
                    if engine.feature_would_hit(gpu, v) {
                        continue;
                    }
                    // Unowned rows live on another server: the remote
                    // wave takes them and the local tiers never see them.
                    if remote.as_deref_mut().is_some_and(|rw| rw.note_miss(v)) {
                        continue;
                    }
                    if let Some(sw) = store.as_deref_mut() {
                        sw.missed.push(v);
                    }
                }
            }
            (tx, peer)
        }
        PolicyKind::Fifo => {
            // Dynamic cache: the resident set mutates per access, so the
            // extraction is metered manually with the same counter names
            // and per-row transaction charge as the engine's path,
            // accumulated locally and flushed with one add per counter.
            // Replacement bookkeeping itself is not charged to time
            // (an intentional simplification; see DESIGN.md).
            let row_bytes = engine.features().row_bytes();
            let row_tx = server.pcie().transactions_for_payload(row_bytes);
            let mut hits = 0u64;
            let mut misses = 0u64;
            let mut tx = 0u64;
            let mut bytes = 0u64;
            if let Some(sw) = store.as_deref_mut() {
                sw.missed.clear();
            }
            for &v in &sample.all_vertices {
                if fifo.access(v) {
                    hits += 1;
                } else {
                    misses += 1;
                    tx += row_tx;
                    bytes += row_bytes;
                    if remote.as_deref_mut().is_some_and(|rw| rw.note_miss(v)) {
                        continue;
                    }
                    if let Some(sw) = store.as_deref_mut() {
                        sw.missed.push(v);
                    }
                }
            }
            meters.rows.add(sample.all_vertices.len() as u64);
            meters.hits.add(hits);
            meters.misses.add(misses);
            server.pcm().add(gpu, TrafficKind::Feature, tx);
            server.traffic().add(gpu, Source::Cpu, bytes);
            (tx, 0)
        }
        PolicyKind::Replan => unreachable!("replan batches run through replan_batch_service"),
    };
    let mut extract_t = time_model.extract_seconds(feat_tx, peer_bytes);
    if let Some(rw) = remote {
        // Cross-server rows arrive as one batched RPC wave; the stall
        // extends extraction just like a slower PCIe crossing would.
        extract_t += rw.charge_batch();
    }
    if let Some(sw) = store {
        // SSD-tier misses resolve against the staging window or the
        // device; the stall extends extraction, exactly like a slower
        // PCIe crossing would.
        extract_t += sw.charge_batch(at);
    }
    let infer_t = time_model.train_seconds(model.inference_flops(&sample));
    BatchTiming {
        sample_s: sample_t,
        extract_s: extract_t,
        infer_s: infer_t,
        swap_s: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replan::{DriftDetector, ReplanConfig};
    use crate::workload::ArrivalProcess;
    use crate::{ChurnConfig, ClassConfig, MutationSource, RouterConfig};
    use legion_graph::GraphBuilder;
    use legion_hw::ServerSpec;

    fn tiny_graph() -> (CsrGraph, FeatureTable) {
        let mut b = GraphBuilder::new(256);
        for v in 0..256u32 {
            for d in 1..6u32 {
                b.push_edge(v, (v + d * 7) % 256);
            }
        }
        let g = b.build();
        let f = FeatureTable::zeros(256, 16);
        (g, f)
    }

    fn tiny_config(policy: PolicyKind) -> ServeConfig {
        ServeConfig {
            arrival: ArrivalProcess::Poisson { rate: 20_000.0 },
            num_requests: 300,
            max_batch: 8,
            max_wait: 5e-4,
            queue_capacity: 64,
            cache_rows_per_gpu: 32,
            warmup_requests: 64,
            fanouts: vec![3, 2],
            policy,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serve_completes_all_requests_under_light_load() {
        let (g, f) = tiny_graph();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let mut config = tiny_config(PolicyKind::Fifo);
        config.arrival = ArrivalProcess::Poisson { rate: 50.0 };
        let report = serve(&g, &f, &server, &config);
        assert_eq!(report.offered, 300);
        assert_eq!(report.completed, 300);
        assert_eq!(report.shed, 0);
        assert!(report.makespan_s > 0.0);
        assert!(report.throughput_rps > 0.0);
        assert!(report.p50_us <= report.p95_us && report.p95_us <= report.p99_us);
    }

    #[test]
    fn serve_is_deterministic_per_policy() {
        let (g, f) = tiny_graph();
        for policy in [PolicyKind::StaticHot, PolicyKind::Fifo, PolicyKind::Replan] {
            let run = || {
                let server = ServerSpec::custom(2, 1 << 30, 1).build();
                serve(&g, &f, &server, &tiny_config(policy))
            };
            let a = run();
            let b = run();
            assert_eq!(a.metrics, b.metrics, "policy {}", policy.as_str());
            assert_eq!(a.p99_us, b.p99_us);
        }
    }

    #[test]
    fn conservation_completed_plus_shed_is_offered() {
        let (g, f) = tiny_graph();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        // Overload hard so shedding actually happens.
        let mut config = tiny_config(PolicyKind::Fifo);
        config.arrival = ArrivalProcess::Poisson { rate: 1.0e8 };
        config.queue_capacity = 16;
        let report = serve(&g, &f, &server, &config);
        assert!(report.shed > 0, "overload must shed");
        assert_eq!(report.completed + report.shed, report.offered);
        let reg_completed = report
            .metrics
            .counters
            .iter()
            .find(|c| c.name == "serve.completed")
            .unwrap()
            .value;
        assert_eq!(reg_completed, report.completed);
    }

    #[test]
    fn static_policy_hits_its_warm_cache() {
        let (g, f) = tiny_graph();
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let mut config = tiny_config(PolicyKind::StaticHot);
        config.cache_rows_per_gpu = 128;
        let report = serve(&g, &f, &server, &config);
        let hits = report
            .metrics
            .counters
            .iter()
            .filter(|c| c.name.ends_with("feature_hits"))
            .map(|c| c.value)
            .sum::<u64>();
        assert!(hits > 0, "half the graph is cached; hits expected");
    }

    #[test]
    fn bursty_arrivals_are_served_too() {
        let (g, f) = tiny_graph();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let mut config = tiny_config(PolicyKind::Fifo);
        config.arrival = ArrivalProcess::Bursty {
            base_rate: 100.0,
            burst_rate: 50_000.0,
            period: 0.05,
            burst_fraction: 0.2,
        };
        let report = serve(&g, &f, &server, &config);
        assert_eq!(report.completed + report.shed, report.offered);
        assert!(report.completed > 0);
    }

    /// Regression test for the duplicate-seed double count: on a
    /// single-vertex graph every request targets the one vertex, so a
    /// multi-request batch must expand its (uncached) topology exactly
    /// once and fetch its feature row exactly once. Before the fix each
    /// duplicate request re-expanded the vertex, charging one topology
    /// miss per *request* instead of per *batch*.
    #[test]
    fn duplicate_seeds_in_a_batch_meter_one_miss() {
        let g = GraphBuilder::new(1).build();
        let f = FeatureTable::zeros(1, 8);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let config = ServeConfig {
            arrival: ArrivalProcess::Poisson { rate: 1.0e6 },
            num_requests: 40,
            max_batch: 8,
            max_wait: 1e-3,
            queue_capacity: 64,
            cache_rows_per_gpu: 4,
            warmup_requests: 8,
            fanouts: vec![2],
            drift_period: 0,
            policy: PolicyKind::Fifo,
            ..ServeConfig::default()
        };
        let report = serve(&g, &f, &server, &config);
        let counter = |name: &str| {
            report
                .metrics
                .counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        let batches = counter("serve.gpu0.batches");
        assert!(
            batches < report.completed,
            "fixture must batch duplicates together ({batches} batches, {} requests)",
            report.completed
        );
        // One topology expansion per batch, not per request.
        assert_eq!(counter("cache.gpu0.topology_misses"), batches);
        assert_eq!(counter("cache.gpu0.topology_hits"), 0);
        // One feature fetch per batch: a cold miss, then FIFO hits.
        assert_eq!(counter("cache.gpu0.feature_misses"), 1);
        assert_eq!(counter("cache.gpu0.feature_hits"), batches - 1);
        assert_eq!(counter("extract.gpu0.rows"), batches);

        // The static policy caches the vertex up front: same dedupe,
        // all hits.
        let mut static_config = config.clone();
        static_config.policy = PolicyKind::StaticHot;
        static_config.cache_rows_per_gpu = 1;
        let report = serve(&g, &f, &server, &static_config);
        let counter = |name: &str| {
            report
                .metrics
                .counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        let batches = counter("serve.gpu0.batches");
        assert_eq!(counter("cache.gpu0.topology_misses"), batches);
        assert_eq!(counter("cache.gpu0.feature_hits"), batches);
        assert_eq!(counter("cache.gpu0.feature_misses"), 0);
    }

    /// The replan policy must actually re-plan under rotation drift and
    /// meter its swaps.
    #[test]
    fn replan_policy_swaps_under_drift() {
        let (g, f) = tiny_graph();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let mut config = tiny_config(PolicyKind::Replan);
        config.num_requests = 600;
        config.drift_period = 100;
        config.drift_stride = 64;
        config.replan = ReplanConfig {
            bucket_requests: 8,
            window_buckets: 2,
            detector: DriftDetector::HitRateEwma {
                alpha: 0.7,
                drop: 0.1,
            },
            cooldown_buckets: 0,
            ..ReplanConfig::default()
        };
        let report = serve(&g, &f, &server, &config);
        assert_eq!(report.completed + report.shed, report.offered);
        let counter = |name: &str| {
            report
                .metrics
                .counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        assert!(
            counter("serve.replan.count") > 0,
            "drift must trigger replans"
        );
        assert!(
            counter("serve.replan.swap_bytes") > 0,
            "swaps must move bytes"
        );
        assert_eq!(
            counter("serve.replan.count"),
            counter("serve.gpu0.replans") + counter("serve.gpu1.replans"),
        );
        // Swap refills are real PCIe traffic: they appear in the PCM.
        assert!(server.pcm().total() > 0);
        // The windowed hit-rate gauge was exported.
        assert!(report
            .metrics
            .gauges
            .iter()
            .any(|g| g.name == "serve.gpu0.window_hit_rate"));
    }

    /// Phase counters decompose the run's hit/miss totals exactly.
    #[test]
    fn phase_counters_partition_hits_and_misses() {
        let (g, f) = tiny_graph();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let mut config = tiny_config(PolicyKind::Fifo);
        config.drift_period = 100;
        config.drift_stride = 64;
        let report = serve(&g, &f, &server, &config);
        let sum = |prefix: &str, suffix: &str| {
            report
                .metrics
                .counters
                .iter()
                .filter(|c| c.name.starts_with(prefix) && c.name.ends_with(suffix))
                .map(|c| c.value)
                .sum::<u64>()
        };
        let phase_hits = sum("serve.phase", ".feature_hits");
        let phase_misses = sum("serve.phase", ".feature_misses");
        let total_hits = sum("cache.", "feature_hits");
        let total_misses = sum("cache.", "feature_misses");
        assert_eq!(phase_hits, total_hits);
        assert_eq!(phase_misses, total_misses);
        assert!(total_hits + total_misses > 0);
        // Tail counters cover the second half of each phase — a strict
        // subset of the phase totals.
        let tail_hits = sum("serve.phase", ".tail_feature_hits");
        let tail_misses = sum("serve.phase", ".tail_feature_misses");
        assert!(tail_hits <= phase_hits && tail_misses <= phase_misses);
        assert!(tail_hits + tail_misses > 0, "tail halves must be sampled");
    }

    /// Residency routing on a 2-clique server: every arrival gets a
    /// routing decision, per-clique counters are exported, and the
    /// locality gauge reflects real coverage.
    #[test]
    fn residency_router_routes_every_request_and_reports_locality() {
        let (g, f) = tiny_graph();
        let server = ServerSpec::custom(4, 1 << 30, 2).build();
        let mut config = tiny_config(PolicyKind::StaticHot);
        config.router = RouterConfig {
            policy: RouterPolicy::Residency,
            ..RouterConfig::default()
        };
        let report = serve(&g, &f, &server, &config);
        assert_eq!(report.routed + report.spilled, report.offered);
        assert!(report.route_locality > 0.0 && report.route_locality <= 1.0);
        assert_eq!(report.completed + report.shed, report.offered);
        let routed_by_counter: u64 = report
            .metrics
            .counters
            .iter()
            .filter(|c| c.name.starts_with("serve.route.clique") && c.name.ends_with(".routed"))
            .map(|c| c.value)
            .sum();
        assert_eq!(routed_by_counter, report.routed);
        assert!(report
            .metrics
            .gauges
            .iter()
            .any(|g| g.name == "serve.route.locality"));
        // Queue-depth histograms are live for every GPU.
        assert!(report
            .metrics
            .histograms
            .iter()
            .any(|h| h.name == "pipeline.gpu0.queue_depth" && h.counts.iter().sum::<u64>() > 0));
    }

    /// QoS under 2x-style overload: Batch is shed strictly before
    /// Interactive, and per-class trackers partition the completions.
    #[test]
    fn qos_overload_sheds_batch_before_interactive() {
        let (g, f) = tiny_graph();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let mut config = tiny_config(PolicyKind::Fifo);
        config.arrival = ArrivalProcess::Poisson { rate: 1.0e8 };
        config.queue_capacity = 32;
        config.num_requests = 600;
        config.classes = ClassConfig {
            mix: [0.25, 0.35, 0.4],
            qos: true,
            ..ClassConfig::default()
        };
        let report = serve(&g, &f, &server, &config);
        assert_eq!(report.completed + report.shed, report.offered);
        assert_eq!(report.class_shed.iter().sum::<u64>(), report.shed);
        let b = PriorityClass::Batch.index();
        let i = PriorityClass::Interactive.index();
        assert!(report.class_shed[b] > 0, "overload must shed Batch");
        assert!(
            report.class_shed[i] <= report.class_shed[b],
            "Interactive sheds ({}) must not exceed Batch sheds ({})",
            report.class_shed[i],
            report.class_shed[b]
        );
        assert_eq!(report.class_completed.iter().sum::<u64>(), report.completed);
        // Per-class telemetry was exported.
        assert!(report
            .metrics
            .counters
            .iter()
            .any(|c| c.name == "serve.class0.completed"));
        assert!(report
            .metrics
            .gauges
            .iter()
            .any(|g| g.name == "serve.class2.slo_attainment"));
    }

    /// Regression for the Batch-starvation defect: the strict priority
    /// drain never reaches the Batch deque while Interactive keeps the
    /// queue full, so under sustained Interactive-heavy overload Batch
    /// only completes from the end-of-stream drain. A 25% service floor
    /// must keep Batch flowing mid-stream — strictly more completions
    /// than the floorless run — without breaking conservation.
    #[test]
    fn qos_service_floor_prevents_batch_starvation_at_3x_overload() {
        let (g, f) = tiny_graph();
        let run = |floors: [f64; crate::CLASS_COUNT]| {
            let server = ServerSpec::custom(2, 1 << 30, 1).build();
            let mut config = tiny_config(PolicyKind::Fifo);
            // Anchor "3x overload" to the measured capacity of this
            // exact fixture rather than a magic arrival rate.
            let capacity = crate::sweep::estimate_capacity_rps(&g, &f, &server, &config);
            config.arrival = ArrivalProcess::Poisson {
                rate: 3.0 * capacity,
            };
            config.num_requests = 1200;
            config.queue_capacity = 32;
            config.classes = ClassConfig {
                mix: [0.9, 0.0, 0.1],
                qos: true,
                qos_floors: floors,
                ..ClassConfig::default()
            };
            serve(&g, &f, &server, &config)
        };
        let starved = run([0.0; crate::CLASS_COUNT]);
        let floored = run([0.0, 0.0, 0.25]);
        let b = PriorityClass::Batch.index();
        let i = PriorityClass::Interactive.index();
        assert!(
            floored.class_completed[b] > 0,
            "Batch must keep a floor of service under Interactive overload"
        );
        assert!(
            floored.class_completed[b] > starved.class_completed[b],
            "floors must strictly improve Batch completions ({} vs {})",
            floored.class_completed[b],
            starved.class_completed[b]
        );
        assert!(
            floored.class_completed[i] > 0,
            "the floor must not invert the priority order"
        );
        assert_eq!(floored.completed + floored.shed, floored.offered);
        assert_eq!(
            floored.class_completed.iter().sum::<u64>(),
            floored.completed
        );
    }

    /// An oversubscribed run (DRAM budget a fraction of the feature
    /// table) must actually exercise the SSD tier: store telemetry is
    /// live, the NVMe device moves whole blocks, and the prefetcher
    /// converts queued lookahead into staging hits.
    #[test]
    fn store_oversubscription_exercises_the_ssd_tier() {
        let (g, f) = tiny_graph();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let mut config = tiny_config(PolicyKind::StaticHot);
        // 256 rows of 64 B = 16 KiB of features; grant 2 KiB of DRAM.
        config.store.dram_budget_bytes = Some(2048);
        config.store.staging_rows = 64;
        config.store.prefetch_budget = 64;
        config.num_requests = 600;
        let report = serve(&g, &f, &server, &config);
        assert_eq!(report.completed + report.shed, report.offered);
        let counter = |name: &str| {
            report
                .metrics
                .counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        let touched = counter("serve.store.prefetch_hits")
            + counter("serve.store.late_stalls")
            + counter("serve.store.cold_reads");
        assert!(touched > 0, "SSD-tier rows must actually be read");
        assert!(
            counter("serve.store.prefetch_hits") > 0,
            "lookahead prefetch must land staging hits"
        );
        let bytes = counter("store.nvme.bytes");
        assert!(bytes > 0 && bytes % 4096 == 0, "device moves whole blocks");
        // Byte-identical reruns: same config, same snapshot.
        let again = serve(&g, &f, &server, &config);
        assert_eq!(report.metrics, again.metrics);
    }

    /// A DRAM budget that swallows the whole feature table must leave
    /// the engine byte-identical to a storeless run — no store state,
    /// no `store.*` metrics, identical snapshot.
    #[test]
    fn store_with_infinite_dram_budget_is_byte_identical() {
        let (g, f) = tiny_graph();
        for policy in [PolicyKind::StaticHot, PolicyKind::Fifo, PolicyKind::Replan] {
            let base = {
                let server = ServerSpec::custom(2, 1 << 30, 1).build();
                serve(&g, &f, &server, &tiny_config(policy))
            };
            let stored = {
                let server = ServerSpec::custom(2, 1 << 30, 1).build();
                let mut config = tiny_config(policy);
                config.store.dram_budget_bytes = Some(u64::MAX);
                serve(&g, &f, &server, &config)
            };
            assert_eq!(
                base.metrics,
                stored.metrics,
                "infinite DRAM budget must degenerate exactly (policy {})",
                policy.as_str()
            );
            assert!(
                !stored
                    .metrics
                    .counters
                    .iter()
                    .any(|c| c.name.starts_with("serve.store.")),
                "all-resident runs must register no store metrics"
            );
        }
    }

    /// `mutations: None` — the default — must leave the run exactly on
    /// the frozen-graph path: deterministic snapshots and none of the
    /// `graph.mut.*` / `serve.invalidate.*` names registered, for every
    /// policy and with the residency router on.
    #[test]
    fn mutations_off_registers_no_churn_metrics_for_any_policy() {
        let (g, f) = tiny_graph();
        for policy in [PolicyKind::StaticHot, PolicyKind::Fifo, PolicyKind::Replan] {
            for residency in [false, true] {
                let run = || {
                    let server = ServerSpec::custom(2, 1 << 30, 1).build();
                    let mut config = tiny_config(policy);
                    assert!(config.mutations.is_none(), "churn must default off");
                    if residency {
                        config.router = RouterConfig {
                            policy: RouterPolicy::Residency,
                            ..RouterConfig::default()
                        };
                    }
                    serve(&g, &f, &server, &config)
                };
                let (a, b) = (run(), run());
                assert_eq!(a.metrics, b.metrics, "frozen runs must be deterministic");
                assert!(
                    !a.metrics
                        .counters
                        .iter()
                        .any(|c| c.name.starts_with("graph.mut.")
                            || c.name.starts_with("serve.invalidate.")),
                    "frozen-graph runs must register no mutation metrics (policy {})",
                    policy.as_str()
                );
            }
        }
    }

    /// A churn-enabled run must apply mutations, invalidate cached rows
    /// and residency bits, compact at batch boundaries, stay
    /// deterministic, and replay byte-identically from the logged
    /// stream (`Generate(cfg)` == `Replay(log-of-cfg)`).
    #[test]
    fn churn_run_applies_invalidates_compacts_and_replays_byte_identically() {
        let (g, f) = tiny_graph();
        let churn = ChurnConfig {
            ops_per_sec: 200_000.0,
            compact_threshold: 32,
            ..ChurnConfig::default()
        };
        let mut config = tiny_config(PolicyKind::StaticHot);
        config.num_requests = 400;
        config.router = RouterConfig {
            policy: RouterPolicy::Residency,
            ..RouterConfig::default()
        };
        config.mutations = Some(MutationSource::Generate(churn.clone()));
        let run = |cfg: &ServeConfig| {
            let server = ServerSpec::custom(2, 1 << 30, 1).build();
            serve(&g, &f, &server, cfg)
        };
        let report = run(&config);
        assert_eq!(report.completed + report.shed, report.offered);
        let counter = |name: &str| {
            report
                .metrics
                .counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        assert!(counter("graph.mut.inserts") > 0, "churn must insert edges");
        assert!(counter("graph.mut.deletes") > 0, "churn must delete edges");
        assert!(counter("graph.mut.overlay_rows") > 0);
        assert!(
            counter("graph.mut.compactions") > 0,
            "a 32-edge threshold must trigger batch-boundary compaction"
        );
        // Static layouts cache features only (topology stays in CPU
        // UVA), so the topo-row counter is registered but never fires;
        // the Replan test below covers the firing path.
        assert!(
            report
                .metrics
                .counters
                .iter()
                .any(|c| c.name == "serve.invalidate.topo_rows"),
            "churn runs must register the invalidation family"
        );
        assert!(
            counter("serve.invalidate.residency_bits") > 0,
            "mutations must clear residency bits in the router index"
        );
        // Deterministic rerun.
        assert_eq!(report.metrics, run(&config).metrics);
        // Replaying the logged stream reproduces the generated run
        // byte-for-byte: rebuild the log exactly as the engine resolved
        // it (same seed, horizon = last arrival) and swap the source.
        let requests = {
            let mut target_sampler = TargetSampler::new(
                (0..g.num_vertices() as u32).collect(),
                config.zipf_exponent,
                config.drift_period,
                config.drift_stride,
            );
            let mut class_sampler = ClassSampler::new(config.classes.mix, config.seed);
            let mut rng = StdRng::seed_from_u64(config.seed);
            generate_workload_classed(
                &config.arrival,
                &mut target_sampler,
                &mut class_sampler,
                config.num_requests,
                &mut rng,
            )
        };
        let horizon = requests.last().map(|r| r.arrival).unwrap_or(0.0);
        let log = Arc::new(MutationLog::generate(&g, &churn, config.seed, horizon));
        assert!(!log.ops.is_empty(), "churn fixture must generate mutations");
        let mut replayed = config.clone();
        replayed.mutations = Some(MutationSource::Replay {
            log,
            compact_threshold: churn.compact_threshold,
        });
        assert_eq!(
            report.metrics,
            run(&replayed).metrics,
            "replaying the logged stream must be byte-identical"
        );
    }

    /// Under `Replan`, churn must keep flowing through the window
    /// estimators (the slow path) while the overlay serves the fast
    /// path; the run stays deterministic and conserves requests.
    #[test]
    fn churn_under_replan_policy_is_deterministic() {
        let (g, f) = tiny_graph();
        let mut config = tiny_config(PolicyKind::Replan);
        config.num_requests = 400;
        config.mutations = Some(MutationSource::Generate(ChurnConfig {
            ops_per_sec: 100_000.0,
            ..ChurnConfig::default()
        }));
        let run = || {
            let server = ServerSpec::custom(2, 1 << 30, 1).build();
            serve(&g, &f, &server, &config)
        };
        let report = run();
        assert_eq!(report.completed + report.shed, report.offered);
        let counter = |name: &str| {
            report
                .metrics
                .counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        let applied = counter("graph.mut.inserts") + counter("graph.mut.deletes");
        assert!(applied > 0, "churn must apply under Replan");
        // Replan plans cache topology rows, so mutating a planned
        // vertex must fire the topo-row invalidation counter.
        assert!(
            counter("serve.invalidate.topo_rows") > 0,
            "mutating a plan-cached topology row must count an invalidation"
        );
        assert_eq!(report.metrics, run().metrics);
    }

    /// Re-plan commits under an active store must migrate rows across
    /// the DRAM/SSD boundary and charge the device.
    #[test]
    fn replan_commits_migrate_rows_through_the_store() {
        let (g, f) = tiny_graph();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let mut config = tiny_config(PolicyKind::Replan);
        config.num_requests = 600;
        config.drift_period = 100;
        config.drift_stride = 64;
        config.store.dram_budget_bytes = Some(2048);
        config.store.staging_rows = 64;
        config.store.prefetch_budget = 64;
        config.replan = ReplanConfig {
            bucket_requests: 8,
            window_buckets: 2,
            detector: DriftDetector::HitRateEwma {
                alpha: 0.7,
                drop: 0.1,
            },
            cooldown_buckets: 0,
            ..ReplanConfig::default()
        };
        let report = serve(&g, &f, &server, &config);
        assert_eq!(report.completed + report.shed, report.offered);
        let counter = |name: &str| {
            report
                .metrics
                .counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        assert!(counter("serve.replan.count") > 0, "drift must replan");
        assert!(
            counter("serve.store.migrations") > 0,
            "commits must move rows across the DRAM/SSD boundary"
        );
        assert!(counter("serve.store.migrated_bytes") > 0);
    }

    /// A multi-class FIFO run (no QoS) still attributes sheds by class
    /// but exerts no priority: drain order is arrival order.
    #[test]
    fn multi_class_without_qos_is_class_blind() {
        let (g, f) = tiny_graph();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let mut config = tiny_config(PolicyKind::Fifo);
        config.arrival = ArrivalProcess::Poisson { rate: 1.0e8 };
        config.queue_capacity = 32;
        config.num_requests = 600;
        config.classes = ClassConfig {
            mix: [0.25, 0.35, 0.4],
            qos: false,
            ..ClassConfig::default()
        };
        let report = serve(&g, &f, &server, &config);
        assert_eq!(report.completed + report.shed, report.offered);
        assert_eq!(report.class_shed.iter().sum::<u64>(), report.shed);
        // FIFO sheds whatever arrives when full: with this mix every
        // class takes losses (no strict protection).
        assert!(report.class_shed.iter().all(|&s| s > 0));
    }
}
