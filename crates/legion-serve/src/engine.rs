//! The discrete-event serving loop.
//!
//! Each GPU runs an independent event loop over its round-robin share of
//! the request stream, interleaving two event kinds in simulated time:
//! request arrivals (admit or shed) and batch launches (close the
//! micro-batch, run the real sample→extract→infer operators against the
//! metered server, and record per-request latency). Batches on one GPU
//! are serial; within a batch, sampling and extraction overlap as in the
//! paper's §5 pipeline, so service time is
//! `max(sample, extract) + infer`.
//!
//! Everything is driven by seeded RNG streams and integer telemetry, so
//! the same `(config, dataset, server)` triple reproduces a run down to
//! byte-identical metric snapshots.

use rand::rngs::StdRng;
use rand::SeedableRng;

use legion_cache::FifoCache;
use legion_gnn::{GnnModel, ModelKind};
use legion_graph::{CsrGraph, FeatureTable};
use legion_hw::pcm::TrafficKind;
use legion_hw::traffic::Source;
use legion_hw::{GpuId, MultiGpuServer};
use legion_pipeline::TimeModel;
use legion_sampling::access::{AccessEngine, CacheLayout, TopologyPlacement};
use legion_sampling::extract::extract_features;
use legion_sampling::KHopSampler;
use legion_telemetry::{Counter, Snapshot};

use crate::batcher::BatchPolicy;
use crate::cache_policy::{build_static_layout, warmup_hot_vertices, PolicyKind};
use crate::queue::AdmissionQueue;
use crate::slo::SloTracker;
use crate::workload::{generate_workload, TargetSampler};
use crate::ServeConfig;

/// Summary of one serving run; `metrics` is the full registry snapshot
/// (PCM, traffic matrix, cache hits, latency histogram, gauges).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The cache policy the run used.
    pub policy: PolicyKind,
    /// Requests offered by the workload.
    pub offered: u64,
    /// Requests that completed inference.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Latency quantiles in microseconds.
    pub p50_us: u64,
    /// 95th percentile latency.
    pub p95_us: u64,
    /// 99th percentile latency.
    pub p99_us: u64,
    /// Fraction of completed requests within the SLO.
    pub slo_attainment: f64,
    /// Simulated time of the last completion, seconds.
    pub makespan_s: f64,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// Full telemetry snapshot of the run.
    pub metrics: Snapshot,
}

/// Pre-resolved handles for the FIFO policy's manual feature metering;
/// uses the same counter names as [`AccessEngine`], so snapshots are
/// comparable across policies.
struct FifoMeters {
    hits: Counter,
    misses: Counter,
    rows: Counter,
}

/// Runs the full serving simulation for `config` against `server`.
///
/// The server is reset first (memory and all counters); on return its
/// registry holds the run's complete metrics.
pub fn serve(
    graph: &CsrGraph,
    features: &FeatureTable,
    server: &MultiGpuServer,
    config: &ServeConfig,
) -> ServeReport {
    config.validate();
    server.reset();
    let num_gpus = server.num_gpus();
    let all_targets: Vec<u32> = (0..graph.num_vertices() as u32).collect();

    // Open-loop workload: arrivals and (drifting) targets.
    let mut target_sampler = TargetSampler::new(
        all_targets.clone(),
        config.zipf_exponent,
        config.drift_period,
        config.drift_stride,
    );
    let mut workload_rng = StdRng::seed_from_u64(config.seed);
    let requests = generate_workload(
        &config.arrival,
        &mut target_sampler,
        config.num_requests,
        &mut workload_rng,
    );

    // Cache layout per policy. The static planner profiles warmup traffic
    // drawn from the *initial* (pre-drift) skew — it cannot see the
    // future, which is exactly the handicap under drift.
    let layout = match config.policy {
        PolicyKind::StaticHot => {
            let mut warm = TargetSampler::new(all_targets, config.zipf_exponent, 0, 0);
            let hot = warmup_hot_vertices(
                graph,
                &mut warm,
                config.warmup_requests,
                &config.fanouts,
                config.seed,
            );
            build_static_layout(graph, features, server, &hot, config.cache_rows_per_gpu)
        }
        PolicyKind::Fifo => CacheLayout::none(num_gpus),
    };
    let engine = AccessEngine::new(graph, features, &layout, server, TopologyPlacement::CpuUva);
    let time_model = TimeModel::new(server.spec());
    let sampler = KHopSampler::new(config.fanouts.clone());
    let mut model_rng = StdRng::seed_from_u64(config.seed ^ 0x6d5f_3a21_9b4e_c087);
    let model = GnnModel::new(
        ModelKind::GraphSage,
        features.dim(),
        config.hidden_dim,
        config.num_classes,
        config.fanouts.len(),
        &mut model_rng,
    );

    let registry = server.telemetry();
    let slo = SloTracker::new(registry, config.slo_us);
    registry.counter("serve.offered").add(requests.len() as u64);
    let shed_total = registry.counter("serve.shed");
    let batch_policy = BatchPolicy::new(config.max_batch, config.max_wait);
    let mut makespan = 0.0f64;

    for gpu in 0..num_gpus {
        let mut rng = StdRng::seed_from_u64(config.seed ^ (gpu as u64).wrapping_mul(0x517c_c1b7));
        let mut queue = AdmissionQueue::new(config.queue_capacity);
        let mut fifo = FifoCache::new(config.cache_rows_per_gpu);
        let meters = FifoMeters {
            hits: registry.counter(&format!("cache.gpu{gpu}.feature_hits")),
            misses: registry.counter(&format!("cache.gpu{gpu}.feature_misses")),
            rows: registry.counter(&format!("extract.gpu{gpu}.rows")),
        };
        let batches = registry.counter(&format!("serve.gpu{gpu}.batches"));
        let busy = registry.counter(&format!("serve.gpu{gpu}.busy_ns"));
        let gpu_shed = registry.counter(&format!("serve.gpu{gpu}.shed"));

        // Round-robin routing: GPU g serves requests with id % num_gpus == g.
        let mut arrivals = requests
            .iter()
            .filter(|r| r.id % num_gpus as u64 == gpu as u64)
            .peekable();
        let mut free_at = 0.0f64;
        loop {
            let launch = batch_policy.launch_time(&queue, free_at);
            match (arrivals.peek(), launch) {
                // Arrivals strictly before the next launch are admitted
                // (or shed) first — the deterministic tie rule.
                (Some(r), at) if at.is_none_or(|t| r.arrival < t) => {
                    let r = **r;
                    arrivals.next();
                    if !queue.offer(r) {
                        shed_total.inc();
                        gpu_shed.inc();
                    }
                }
                (_, Some(at)) => {
                    let batch = queue.take(config.max_batch);
                    let service = batch_service_seconds(
                        &engine,
                        server,
                        &time_model,
                        &sampler,
                        &model,
                        config.policy,
                        &mut fifo,
                        &meters,
                        gpu,
                        &batch,
                        &mut rng,
                    );
                    batches.inc();
                    busy.add_secs(service);
                    let completion = at + service;
                    for r in &batch {
                        let latency_us = ((completion - r.arrival) * 1e6).round() as u64;
                        slo.record(latency_us);
                    }
                    free_at = completion;
                    makespan = makespan.max(completion);
                }
                // Only (None, None) reaches here: a pending arrival with
                // no launch deadline always takes the first arm.
                _ => break,
            }
        }
    }

    let completed = slo.completed();
    let throughput = if makespan > 0.0 {
        completed as f64 / makespan
    } else {
        0.0
    };
    registry
        .gauge("serve.p50_us")
        .set(slo.quantile_us(0.50) as f64);
    registry
        .gauge("serve.p95_us")
        .set(slo.quantile_us(0.95) as f64);
    registry
        .gauge("serve.p99_us")
        .set(slo.quantile_us(0.99) as f64);
    registry.gauge("serve.slo_attainment").set(slo.attainment());
    registry.gauge("serve.makespan_s").set(makespan);
    registry.gauge("serve.throughput_rps").set(throughput);

    ServeReport {
        policy: config.policy,
        offered: requests.len() as u64,
        completed,
        shed: shed_total.get(),
        p50_us: slo.quantile_us(0.50),
        p95_us: slo.quantile_us(0.95),
        p99_us: slo.quantile_us(0.99),
        slo_attainment: slo.attainment(),
        makespan_s: makespan,
        throughput_rps: throughput,
        metrics: registry.snapshot(),
    }
}

/// Runs one micro-batch through the real operators and returns its
/// service time: `max(sample, extract) + infer` (§5 intra-batch overlap;
/// batches on one GPU are serial).
#[allow(clippy::too_many_arguments)]
fn batch_service_seconds(
    engine: &AccessEngine<'_>,
    server: &MultiGpuServer,
    time_model: &TimeModel,
    sampler: &KHopSampler,
    model: &GnnModel,
    policy: PolicyKind,
    fifo: &mut FifoCache,
    meters: &FifoMeters,
    gpu: GpuId,
    batch: &[crate::workload::Request],
    rng: &mut StdRng,
) -> f64 {
    let seeds: Vec<u32> = batch.iter().map(|r| r.target).collect();

    let topo_before = server.pcm().gpu_kind(gpu, TrafficKind::Topology);
    let sample = sampler.sample_batch(engine, gpu, &seeds, rng, None);
    let topo_tx = server.pcm().gpu_kind(gpu, TrafficKind::Topology) - topo_before;
    let sample_t = time_model.sample_seconds(topo_tx, sample.total_edges() as u64);

    let (feat_tx, peer_bytes) = match policy {
        PolicyKind::StaticHot => {
            // The engine's layout holds the static caches; the normal
            // extraction path meters hits, misses and NVLink traffic.
            let tx_before = server.pcm().gpu_kind(gpu, TrafficKind::Feature);
            let peer_before: u64 = (0..server.num_gpus())
                .map(|s| server.traffic().gpu_to_gpu(s, gpu))
                .sum();
            let _ = extract_features(engine, gpu, &sample.all_vertices);
            let tx = server.pcm().gpu_kind(gpu, TrafficKind::Feature) - tx_before;
            let peer: u64 = (0..server.num_gpus())
                .map(|s| server.traffic().gpu_to_gpu(s, gpu))
                .sum::<u64>()
                - peer_before;
            (tx, peer)
        }
        PolicyKind::Fifo => {
            // Dynamic cache: the resident set mutates per access, so the
            // extraction is metered manually with the same counter names
            // and per-row transaction charge as the engine's path.
            // Replacement bookkeeping itself is not charged to time
            // (an intentional simplification; see DESIGN.md).
            let row_bytes = engine.features().row_bytes();
            let row_tx = server.pcie().transactions_for_payload(row_bytes);
            let mut tx = 0u64;
            let mut bytes = 0u64;
            for &v in &sample.all_vertices {
                meters.rows.inc();
                if fifo.access(v) {
                    meters.hits.inc();
                } else {
                    meters.misses.inc();
                    tx += row_tx;
                    bytes += row_bytes;
                }
            }
            server.pcm().add(gpu, TrafficKind::Feature, tx);
            server.traffic().add(gpu, Source::Cpu, bytes);
            (tx, 0)
        }
    };
    let extract_t = time_model.extract_seconds(feat_tx, peer_bytes);
    let infer_t = time_model.train_seconds(model.inference_flops(&sample));
    sample_t.max(extract_t) + infer_t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ArrivalProcess;
    use legion_graph::GraphBuilder;
    use legion_hw::ServerSpec;

    fn tiny_graph() -> (CsrGraph, FeatureTable) {
        let mut b = GraphBuilder::new(256);
        for v in 0..256u32 {
            for d in 1..6u32 {
                b.push_edge(v, (v + d * 7) % 256);
            }
        }
        let g = b.build();
        let f = FeatureTable::zeros(256, 16);
        (g, f)
    }

    fn tiny_config(policy: PolicyKind) -> ServeConfig {
        ServeConfig {
            arrival: ArrivalProcess::Poisson { rate: 20_000.0 },
            num_requests: 300,
            max_batch: 8,
            max_wait: 5e-4,
            queue_capacity: 64,
            cache_rows_per_gpu: 32,
            warmup_requests: 64,
            fanouts: vec![3, 2],
            policy,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serve_completes_all_requests_under_light_load() {
        let (g, f) = tiny_graph();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let mut config = tiny_config(PolicyKind::Fifo);
        config.arrival = ArrivalProcess::Poisson { rate: 50.0 };
        let report = serve(&g, &f, &server, &config);
        assert_eq!(report.offered, 300);
        assert_eq!(report.completed, 300);
        assert_eq!(report.shed, 0);
        assert!(report.makespan_s > 0.0);
        assert!(report.throughput_rps > 0.0);
        assert!(report.p50_us <= report.p95_us && report.p95_us <= report.p99_us);
    }

    #[test]
    fn serve_is_deterministic_per_policy() {
        let (g, f) = tiny_graph();
        for policy in [PolicyKind::StaticHot, PolicyKind::Fifo] {
            let run = || {
                let server = ServerSpec::custom(2, 1 << 30, 1).build();
                serve(&g, &f, &server, &tiny_config(policy))
            };
            let a = run();
            let b = run();
            assert_eq!(a.metrics, b.metrics, "policy {}", policy.as_str());
            assert_eq!(a.p99_us, b.p99_us);
        }
    }

    #[test]
    fn conservation_completed_plus_shed_is_offered() {
        let (g, f) = tiny_graph();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        // Overload hard so shedding actually happens.
        let mut config = tiny_config(PolicyKind::Fifo);
        config.arrival = ArrivalProcess::Poisson { rate: 1.0e8 };
        config.queue_capacity = 16;
        let report = serve(&g, &f, &server, &config);
        assert!(report.shed > 0, "overload must shed");
        assert_eq!(report.completed + report.shed, report.offered);
        let reg_completed = report
            .metrics
            .counters
            .iter()
            .find(|c| c.name == "serve.completed")
            .unwrap()
            .value;
        assert_eq!(reg_completed, report.completed);
    }

    #[test]
    fn static_policy_hits_its_warm_cache() {
        let (g, f) = tiny_graph();
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let mut config = tiny_config(PolicyKind::StaticHot);
        config.cache_rows_per_gpu = 128;
        let report = serve(&g, &f, &server, &config);
        let hits = report
            .metrics
            .counters
            .iter()
            .filter(|c| c.name.ends_with("feature_hits"))
            .map(|c| c.value)
            .sum::<u64>();
        assert!(hits > 0, "half the graph is cached; hits expected");
    }

    #[test]
    fn bursty_arrivals_are_served_too() {
        let (g, f) = tiny_graph();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let mut config = tiny_config(PolicyKind::Fifo);
        config.arrival = ArrivalProcess::Bursty {
            base_rate: 100.0,
            burst_rate: 50_000.0,
            period: 0.05,
            burst_fraction: 0.2,
        };
        let report = serve(&g, &f, &server, &config);
        assert_eq!(report.completed + report.shed, report.offered);
        assert!(report.completed > 0);
    }
}
