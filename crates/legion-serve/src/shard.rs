//! The sharded serving event loop: one OS thread per NVLink clique.
//!
//! [`crate::engine`]'s sequential loop interleaves every GPU's events
//! in one thread. At [`ServeConfig::shards`](crate::ServeConfig::shards)
//! `> 1` the loop re-shards: workers are partitioned clique-by-clique
//! across `min(shards, cliques)` threads, each owning its workers'
//! admission queues, batcher state, RNG streams and scratch outright.
//! Shared meters (counters, histograms, the server's PCM / traffic
//! matrices) accumulate through commuting integer adds, flushed
//! batch-wise by [`run_worker_batch`] — no per-request atomics on the
//! steady-state path.
//!
//! Two regimes:
//!
//! * **Round-robin routing** ([`run_roundrobin_sharded`]): a request's
//!   destination is `id % num_gpus` — independent of any queue state —
//!   so each shard free-runs its arrivals and launches to completion
//!   with no coordination at all. Because every worker's event sequence
//!   depends only on its own arrivals, queue, RNG and busy horizon, and
//!   every shared-meter mutation commutes, the run is **byte-identical**
//!   to the sequential loop.
//! * **Residency routing** ([`run_residency_sharded`]): the dispatcher
//!   reads *all* queue depths per decision, which would couple every
//!   arrival to every shard. Instead a coordinator steps simulated time
//!   in quanta ([`ServeConfig::shard_quantum`](crate::ServeConfig::shard_quantum)):
//!   it routes the quantum's arrivals against *projected* depths (last
//!   reported at the previous boundary, incremented per placement),
//!   parks spilled requests in a [`SpillPool`], and drains the pool to
//!   the least-loaded GPU at the next boundary — work stealing, metered
//!   as `serve.route.steals`. Shards report queue depths and committed
//!   plan versions at each boundary, so the residency index — like the
//!   plan double-buffer it mirrors — only ever changes between batches,
//!   never mid-batch. Runs are deterministic for a fixed seed and shard
//!   count, but *not* byte-identical to the sequential loop: projected
//!   depths lag true depths by up to one quantum. With
//!   [`ServeConfig::adaptive_quantum`](crate::ServeConfig::adaptive_quantum)
//!   the quantum is not fixed: shards report their batch-service totals
//!   at each boundary and the coordinator steps the next quantum to a
//!   few EWMA-smoothed mean batch service times, clamped between
//!   `shard_quantum / 64` and `shard_quantum` — tight quanta (fresh
//!   depth information) when batches are short, long quanta (less
//!   coordination) when batches are slow.
//!
//! Per-shard totals land in `serve.shard{s}.batches` /
//! `serve.shard{s}.completed`, registered only when sharding is active
//! so `shards == 1` snapshots stay byte-identical to the pre-sharding
//! engine.

use std::sync::mpsc;
use std::thread;

use legion_graph::VertexId;
use legion_hw::GpuId;
use legion_partition::detect_cliques;
use legion_router::SpillPool;
use legion_telemetry::Counter;

use crate::engine::{offer_request, run_worker_batch, RouterState, ServeContext, Worker};
use crate::workload::Request;

/// One arrival event queued for a shard: the request plus the simulated
/// time it is offered (its true arrival, or the quantum boundary for a
/// stolen spill) and the shard-local index of its destination worker.
pub(crate) struct ShardArrival {
    pub(crate) offer_at: f64,
    pub(crate) wi: usize,
    pub(crate) req: Request,
}

/// Coordinator → shard: one quantum of work, or the end of the stream.
enum Down {
    /// Process `work` (sorted by `offer_at`) and every launch inside
    /// `[start, end)`, then report back.
    Quantum {
        start: f64,
        end: f64,
        work: Vec<ShardArrival>,
    },
    /// No further arrivals anywhere: drain unboundedly and exit.
    Finish,
}

/// Shard → coordinator, once per quantum: the shard's true queue depths,
/// any plan commits since the last boundary (new residency sets for the
/// dispatcher), and the quantum's batch-service totals for the adaptive
/// quantum controller. Service time travels as integer nanoseconds so
/// the coordinator's cross-shard sum commutes — the nondeterministic
/// channel arrival order cannot perturb the EWMA.
struct Up {
    queue_lens: Vec<(GpuId, usize)>,
    plan_updates: Vec<(GpuId, u64, Vec<VertexId>)>,
    batches: u64,
    service_ns: u64,
}

/// How many shard threads a request for `shards` actually yields: one
/// per NVLink clique at most, and never zero.
pub(crate) fn effective_shards(server: &legion_hw::MultiGpuServer, shards: usize) -> usize {
    shards.min(detect_cliques(server.nvlink()).len()).max(1)
}

/// GPU → shard assignment: clique `c` lands on shard `c % eff`, so
/// clique members always share a thread (their pooled caches and NVLink
/// reads stay shard-local).
fn shard_map(server: &legion_hw::MultiGpuServer, eff: usize) -> Vec<usize> {
    let mut map = vec![0usize; server.num_gpus()];
    for (ci, clique) in detect_cliques(server.nvlink()).iter().enumerate() {
        for &g in clique {
            map[g] = ci % eff;
        }
    }
    map
}

/// One shard's event loop over its own workers: identical event rules
/// to the sequential loop (an arrival strictly earlier than the best
/// launch wins; launch ties go to the lowest local index), restricted
/// to launches strictly before `horizon` when one is set.
///
/// Launch times are clamped to `start`: a stolen spill is offered at a
/// quantum boundary, but its queued `arrival` and the worker's idle
/// `free_at` both predate that boundary — without the clamp the batch
/// would launch *in the past*, before the request had even been handed
/// to the shard. The clamp pins the pool's deferral into the timeline
/// (and into the request's measured latency). `start == 0.0` for the
/// free-running paths, where no event can predate its offer.
///
/// Returns `(batches, completed, service_ns)` — the batch / completion
/// totals for the shard meters plus the summed batch service time
/// (launch to the worker's new busy horizon) in integer nanoseconds,
/// feeding the coordinator's adaptive-quantum EWMA.
fn run_shard_loop(
    ctx: &ServeContext<'_>,
    workers: &mut [Worker],
    arrivals: &[ShardArrival],
    start: f64,
    horizon: Option<f64>,
    route_shed: Option<&[Counter]>,
) -> (u64, u64, u64) {
    let mut next = 0usize;
    let mut batches = 0u64;
    let mut completed = 0u64;
    let mut service_ns = 0u64;
    loop {
        let mut launch: Option<(f64, usize)> = None;
        for (wi, w) in workers.iter().enumerate() {
            if let Some(t) = ctx.batch_policy.launch_time(&w.queue, w.free_at) {
                let t = t.max(start);
                if horizon.is_none_or(|h| t < h) && launch.is_none_or(|(bt, _)| t < bt) {
                    launch = Some((t, wi));
                }
            }
        }
        match (arrivals.get(next), launch) {
            (Some(a), l) if l.is_none_or(|(t, _)| a.offer_at < t) => {
                next += 1;
                offer_request(ctx, &mut workers[a.wi], a.req, route_shed.map(|s| &s[a.wi]));
            }
            (_, Some((at, wi))) => {
                completed += run_worker_batch(ctx, &mut workers[wi], at) as u64;
                batches += 1;
                service_ns += ((workers[wi].free_at - at) * 1e9).round() as u64;
            }
            _ => break,
        }
    }
    (batches, completed, service_ns)
}

/// Splits `workers` into per-shard ownership lists, recording each
/// GPU's shard-local index in `local_index`.
fn partition_workers(
    workers: &mut Vec<Worker>,
    map: &[usize],
    eff: usize,
    local_index: &mut [usize],
) -> Vec<Vec<Worker>> {
    let mut per_shard: Vec<Vec<Worker>> = (0..eff).map(|_| Vec::new()).collect();
    for w in workers.drain(..) {
        let si = map[w.gpu];
        local_index[w.gpu] = per_shard[si].len();
        per_shard[si].push(w);
    }
    per_shard
}

/// Reassembles the shards' workers back into GPU order.
fn reassemble(workers: &mut Vec<Worker>, mut done: Vec<(usize, Vec<Worker>)>) {
    done.sort_by_key(|(si, _)| *si);
    let mut all: Vec<Worker> = done.into_iter().flat_map(|(_, ws)| ws).collect();
    all.sort_by_key(|w| w.gpu);
    *workers = all;
}

/// Per-shard `serve.shard{s}.{batches,completed}` counters — registered
/// only by sharded runs.
fn shard_meters(ctx: &ServeContext<'_>, eff: usize) -> Vec<(Counter, Counter)> {
    (0..eff)
        .map(|si| {
            (
                ctx.registry.counter(&format!("serve.shard{si}.batches")),
                ctx.registry.counter(&format!("serve.shard{si}.completed")),
            )
        })
        .collect()
}

/// The free-running sharded loop for round-robin routing: arrivals are
/// pre-partitioned by destination (`id % num_gpus`, a pure function of
/// the request), and every shard runs to completion with no
/// coordination. Byte-identical to the sequential loop.
pub(crate) fn run_roundrobin_sharded(
    ctx: &ServeContext<'_>,
    workers: &mut Vec<Worker>,
    requests: &[Request],
    eff: usize,
) {
    let num_gpus = workers.len();
    let map = shard_map(ctx.server, eff);
    let mut local_index = vec![0usize; num_gpus];
    let per_shard = partition_workers(workers, &map, eff, &mut local_index);
    let mut arrivals: Vec<Vec<ShardArrival>> = (0..eff).map(|_| Vec::new()).collect();
    for r in requests {
        let gpu = (r.id % num_gpus as u64) as usize;
        arrivals[map[gpu]].push(ShardArrival {
            offer_at: r.arrival,
            wi: local_index[gpu],
            req: *r,
        });
    }
    let meters = shard_meters(ctx, eff);
    let done: Vec<(usize, Vec<Worker>)> = thread::scope(|scope| {
        let handles: Vec<_> = per_shard
            .into_iter()
            .zip(arrivals)
            .enumerate()
            .map(|(si, (mut ws, arr))| {
                let (batches, completed) = meters[si].clone();
                scope.spawn(move || {
                    let (b, c, _) = run_shard_loop(ctx, &mut ws, &arr, 0.0, None, None);
                    batches.add(b);
                    completed.add(c);
                    (si, ws)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });
    reassemble(workers, done);
}

/// The quantum-stepped sharded loop for residency routing: the
/// coordinator owns the dispatcher and the spill pool, shards own their
/// workers, and the two meet only at quantum boundaries.
pub(crate) fn run_residency_sharded(
    ctx: &ServeContext<'_>,
    workers: &mut Vec<Worker>,
    rs: &mut RouterState,
    requests: &[Request],
    eff: usize,
) {
    let num_gpus = workers.len();
    let map = shard_map(ctx.server, eff);
    let mut local_index = vec![0usize; num_gpus];
    let per_shard = partition_workers(workers, &map, eff, &mut local_index);
    // Each shard sheds against its own clones of the per-clique shed
    // counters (one per local worker) — clones share the atomic, and
    // shed adds commute.
    let route_shed: Vec<Vec<Counter>> = per_shard
        .iter()
        .map(|ws| {
            ws.iter()
                .map(|w| rs.shed[rs.dispatcher.group_of(w.gpu)].clone())
                .collect()
        })
        .collect();
    let meters = shard_meters(ctx, eff);
    let steals = ctx.registry.counter("serve.route.steals");
    // With `adaptive_quantum` the configured `shard_quantum` is only the
    // seed and ceiling: the coordinator tracks an EWMA of the mean batch
    // service time across all shards and steps the quantum to roughly
    // `QUANTUM_BATCHES` batches of work, floored so a pathologically
    // fast batch cannot grind coordination to a halt. Disabled (the
    // default), the quantum is the fixed configured value and the run is
    // byte-identical to the pre-adaptive loop.
    const EWMA_ALPHA: f64 = 0.25;
    const QUANTUM_BATCHES: f64 = 4.0;
    let mut quantum = ctx.config.shard_quantum;
    let quantum_floor = ctx.config.shard_quantum / 64.0;
    let mut service_ewma: Option<f64> = None;

    let (up_tx, up_rx) = mpsc::channel::<Up>();
    let (down_txs, down_rxs): (Vec<_>, Vec<_>) = (0..eff).map(|_| mpsc::channel::<Down>()).unzip();

    let done: Vec<(usize, Vec<Worker>)> = thread::scope(|scope| {
        let mut handles = Vec::new();
        for (si, ((mut ws, rx), shed)) in per_shard
            .into_iter()
            .zip(down_rxs)
            .zip(route_shed)
            .enumerate()
        {
            let up_tx = up_tx.clone();
            let (batch_meter, completed_meter) = meters[si].clone();
            handles.push(scope.spawn(move || {
                let mut batches = 0u64;
                let mut completed = 0u64;
                let mut last_end = 0.0f64;
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Down::Quantum { start, end, work } => {
                            last_end = end;
                            let (b, c, sns) =
                                run_shard_loop(ctx, &mut ws, &work, start, Some(end), Some(&shed));
                            batches += b;
                            completed += c;
                            let queue_lens = ws.iter().map(|w| (w.gpu, w.queue.len())).collect();
                            let plan_updates = ws
                                .iter_mut()
                                .filter_map(|w| {
                                    let Worker {
                                        gpu,
                                        policy,
                                        last_plan_version,
                                        ..
                                    } = w;
                                    if let Some((version, feat)) = policy.plan_residency() {
                                        if version != *last_plan_version {
                                            *last_plan_version = version;
                                            return Some((*gpu, version, feat.to_vec()));
                                        }
                                    }
                                    None
                                })
                                .collect();
                            up_tx
                                .send(Up {
                                    queue_lens,
                                    plan_updates,
                                    batches: b,
                                    service_ns: sns,
                                })
                                .expect("coordinator alive");
                        }
                        Down::Finish => break,
                    }
                }
                // End-of-stream drain: whatever is still queued launches
                // with no horizon, but never before the last boundary.
                let (b, c, _) = run_shard_loop(ctx, &mut ws, &[], last_end, None, Some(&shed));
                batches += b;
                completed += c;
                batch_meter.add(batches);
                completed_meter.add(completed);
                (si, ws)
            }));
        }
        drop(up_tx);

        // The coordinator: per quantum, steal first (parked spills to
        // the least-loaded GPU under projected depths), then route the
        // quantum's arrivals, then hand each shard its work and collect
        // depth / plan reports at the boundary.
        let mut reported = vec![0usize; num_gpus];
        let mut pool: SpillPool<Request> = SpillPool::new();
        let mut next_req = 0usize;
        let mut qstart = 0.0f64;
        loop {
            let qend = qstart + quantum;
            let mut work: Vec<Vec<ShardArrival>> = (0..eff).map(|_| Vec::new()).collect();
            let mut proj = reported.clone();
            pool.drain_to(&mut proj, |r, gpu| {
                steals.inc();
                work[map[gpu]].push(ShardArrival {
                    offer_at: qstart,
                    wi: local_index[gpu],
                    req: r,
                });
            });
            while let Some(r) = requests.get(next_req) {
                if r.arrival >= qend {
                    break;
                }
                next_req += 1;
                let dec = rs.decide(ctx.graph, &proj, r);
                if dec.spilled {
                    rs.spilled[dec.group].inc();
                    pool.park(*r);
                } else {
                    rs.routed[dec.group].inc();
                    proj[dec.gpu] += 1;
                    work[map[dec.gpu]].push(ShardArrival {
                        offer_at: r.arrival,
                        wi: local_index[dec.gpu],
                        req: *r,
                    });
                }
            }
            let idle = next_req >= requests.len()
                && pool.is_empty()
                && reported.iter().all(|&l| l == 0)
                && work.iter().all(Vec::is_empty);
            if idle {
                for tx in &down_txs {
                    tx.send(Down::Finish).expect("shard alive");
                }
                break;
            }
            for (tx, w) in down_txs.iter().zip(work) {
                tx.send(Down::Quantum {
                    start: qstart,
                    end: qend,
                    work: w,
                })
                .expect("shard alive");
            }
            // Boundary: collect every shard's report. Updates are keyed
            // by GPU and applied in GPU order, so the nondeterministic
            // channel arrival order cannot leak into the run.
            let mut plan_updates: Vec<(GpuId, u64, Vec<VertexId>)> = Vec::new();
            let mut q_batches = 0u64;
            let mut q_service_ns = 0u64;
            for _ in 0..eff {
                let up = up_rx.recv().expect("shard reports");
                for (gpu, len) in up.queue_lens {
                    reported[gpu] = len;
                }
                plan_updates.extend(up.plan_updates);
                q_batches += up.batches;
                q_service_ns += up.service_ns;
            }
            if ctx.config.adaptive_quantum && q_batches > 0 {
                let mean_s = q_service_ns as f64 / q_batches as f64 / 1e9;
                let ewma = match service_ewma {
                    Some(prev) => EWMA_ALPHA * mean_s + (1.0 - EWMA_ALPHA) * prev,
                    None => mean_s,
                };
                service_ewma = Some(ewma);
                quantum = (QUANTUM_BATCHES * ewma).clamp(quantum_floor, ctx.config.shard_quantum);
            }
            plan_updates.sort_by_key(|&(gpu, _, _)| gpu);
            for (gpu, _version, feat) in plan_updates {
                let g = rs.dispatcher.group_of(gpu);
                rs.dispatcher.refresh_group(g, &feat);
            }
            qstart = qend;
        }

        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });
    reassemble(workers, done);
}
