//! Open-loop serving workload generation: stochastic arrival processes
//! and skewed, optionally drifting target-vertex distributions.
//!
//! Serving traffic differs from training epochs in two ways the rest of
//! the repo never exercises: requests arrive *when they arrive* (the
//! system cannot slow the clock down to keep up), and the popularity of
//! target vertices moves over time (trending entities), which is exactly
//! the regime where a statically planned hotness cache decays and a
//! dynamic cache earns its replacement overhead.
//!
//! Requests also carry a [`PriorityClass`]. Class assignment draws from
//! its *own* seeded RNG stream ([`ClassSampler`]), and a classed target
//! draw consumes exactly one uniform from the main stream either way —
//! so adding classes leaves the legacy arrival/target draw order intact
//! (pinned by `classed_default_mix_matches_legacy_workload`), and
//! `Interactive` traffic can be drawn from a hotter Zipf head without
//! disturbing the other classes' targets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use legion_graph::generate::Zipf;
use legion_graph::VertexId;
use legion_router::{PriorityClass, QueuedRequest, CLASS_COUNT};

/// One inference request: classify `target` using its sampled
/// multi-hop neighborhood.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Monotone request id (also the round-robin routing key).
    pub id: u64,
    /// Arrival time in simulated seconds from the start of the run.
    pub arrival: f64,
    /// The vertex whose label is being requested.
    pub target: VertexId,
    /// The request's QoS priority class.
    pub class: PriorityClass,
}

impl QueuedRequest for Request {
    fn seq(&self) -> u64 {
        self.id
    }
    fn arrival(&self) -> f64 {
        self.arrival
    }
    fn class(&self) -> PriorityClass {
        self.class
    }
}

/// Draws each request's [`PriorityClass`] from a configurable mix,
/// using a dedicated RNG stream so class assignment never perturbs the
/// main workload stream's draw order.
#[derive(Debug, Clone)]
pub struct ClassSampler {
    cdf: [f64; CLASS_COUNT],
    rng: StdRng,
}

impl ClassSampler {
    /// Salt XORed into the seed so the class stream is independent of
    /// every other stream derived from the same master seed.
    const STREAM_SALT: u64 = 0xc1a5_5e5a_11de_7e4a;

    /// A sampler over `mix` (relative class weights, normalized here)
    /// seeded from the run's master `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the mix has a negative entry or sums to zero.
    pub fn new(mix: [f64; CLASS_COUNT], seed: u64) -> Self {
        assert!(
            mix.iter().all(|&w| w >= 0.0),
            "class mix weights must be non-negative"
        );
        let total: f64 = mix.iter().sum();
        assert!(total > 0.0, "class mix must have positive total weight");
        let mut cdf = [0.0; CLASS_COUNT];
        let mut acc = 0.0;
        for (i, &w) in mix.iter().enumerate() {
            acc += w / total;
            cdf[i] = acc;
        }
        Self {
            cdf,
            rng: StdRng::seed_from_u64(seed ^ Self::STREAM_SALT),
        }
    }

    /// Draws the next request's class.
    pub fn sample(&mut self) -> PriorityClass {
        let u: f64 = self.rng.gen();
        for (i, &c) in self.cdf.iter().enumerate() {
            if u < c {
                return PriorityClass::from_index(i);
            }
        }
        PriorityClass::from_index(CLASS_COUNT - 1)
    }
}

/// The inter-arrival process of an open-loop client population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate` requests per simulated second.
    Poisson {
        /// Mean arrival rate, requests/s.
        rate: f64,
    },
    /// A square-wave modulated Poisson process: within each `period`, the
    /// first `burst_fraction` of the window arrives at `burst_rate`, the
    /// remainder at `base_rate` — the "heavy traffic from millions of
    /// users" pattern of synchronized client activity.
    Bursty {
        /// Off-burst arrival rate, requests/s.
        base_rate: f64,
        /// In-burst arrival rate, requests/s.
        burst_rate: f64,
        /// Length of one burst cycle, seconds.
        period: f64,
        /// Fraction of each period spent bursting, in `(0, 1)`.
        burst_fraction: f64,
    },
}

impl ArrivalProcess {
    /// The instantaneous arrival rate at simulated time `now`.
    pub fn rate_at(&self, now: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                period,
                burst_fraction,
            } => {
                let phase = (now / period).fract();
                if phase < burst_fraction {
                    burst_rate
                } else {
                    base_rate
                }
            }
        }
    }

    /// The long-run mean arrival rate (offered load).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                burst_fraction,
                ..
            } => burst_fraction * burst_rate + (1.0 - burst_fraction) * base_rate,
        }
    }

    /// Draws the gap to the next arrival after `now` (exponential at the
    /// rate in effect at `now`; a piecewise approximation for the bursty
    /// process, which is fine at simulation scale and fully
    /// deterministic for a seeded RNG).
    pub fn next_gap<R: Rng + ?Sized>(&self, now: f64, rng: &mut R) -> f64 {
        let rate = self.rate_at(now);
        assert!(rate > 0.0, "arrival rate must be positive");
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / rate
    }

    /// The same process with every rate scaled by `k` — how a load sweep
    /// turns one workload shape into a family of offered loads.
    pub fn scaled(&self, k: f64) -> Self {
        match *self {
            ArrivalProcess::Poisson { rate } => ArrivalProcess::Poisson { rate: rate * k },
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                period,
                burst_fraction,
            } => ArrivalProcess::Bursty {
                base_rate: base_rate * k,
                burst_rate: burst_rate * k,
                period,
                burst_fraction,
            },
        }
    }
}

/// Zipf-skewed target-vertex sampler whose hot set drifts: every
/// `drift_period` issued requests the rank→vertex mapping rotates by
/// `drift_stride` positions, so yesterday's head becomes tomorrow's tail.
#[derive(Debug, Clone)]
pub struct TargetSampler {
    zipf: Zipf,
    exponent: f64,
    /// Hotter Zipf for `Interactive` targets (class-correlated skew);
    /// `None` keeps every class on the base distribution.
    hot: Option<Zipf>,
    targets: Vec<VertexId>,
    drift_period: usize,
    drift_stride: usize,
    issued: usize,
}

impl TargetSampler {
    /// A sampler over `targets` with Zipf exponent `exponent`.
    /// `drift_period == 0` disables drift.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn new(
        targets: Vec<VertexId>,
        exponent: f64,
        drift_period: usize,
        drift_stride: usize,
    ) -> Self {
        assert!(!targets.is_empty(), "need at least one serving target");
        Self {
            zipf: Zipf::new(targets.len(), exponent),
            exponent,
            hot: None,
            targets,
            drift_period,
            drift_stride,
            issued: 0,
        }
    }

    /// Enables class-correlated skew: `Interactive` targets draw from a
    /// Zipf with exponent `boost`× the base exponent (a hotter head),
    /// while other classes keep the base distribution.
    ///
    /// # Panics
    ///
    /// Panics if `boost < 1.0` — interactive traffic is by definition
    /// at least as head-heavy as the aggregate.
    pub fn with_interactive_boost(mut self, boost: f64) -> Self {
        assert!(boost >= 1.0, "interactive_boost must be >= 1.0");
        self.hot = Some(Zipf::new(self.targets.len(), self.exponent * boost));
        self
    }

    /// The current rotation offset of the rank→vertex mapping.
    pub fn offset(&self) -> usize {
        self.issued
            .checked_div(self.drift_period)
            .map_or(0, |steps| steps * self.drift_stride % self.targets.len())
    }

    /// Draws the next target vertex and advances the drift clock
    /// (the base distribution — equivalent to
    /// [`next_for_class`](Self::next_for_class) with `Standard`).
    pub fn next<R: Rng + ?Sized>(&mut self, rng: &mut R) -> VertexId {
        self.next_for_class(PriorityClass::Standard, rng)
    }

    /// Draws the next target vertex for a request of `class` and
    /// advances the drift clock. Exactly one uniform is consumed from
    /// `rng` regardless of class, so class mixing never shifts the main
    /// stream's draw order; `Interactive` maps that uniform through the
    /// boosted Zipf when class skew is enabled.
    pub fn next_for_class<R: Rng + ?Sized>(
        &mut self,
        class: PriorityClass,
        rng: &mut R,
    ) -> VertexId {
        let rank = match (&self.hot, class) {
            (Some(hot), PriorityClass::Interactive) => hot.sample(rng),
            _ => self.zipf.sample(rng),
        };
        let v = self.targets[(rank + self.offset()) % self.targets.len()];
        self.issued += 1;
        v
    }
}

/// Generates `num_requests` open-loop requests starting at time 0, all
/// of the implicit `Standard` class (the legacy single-class stream).
pub fn generate_workload<R: Rng + ?Sized>(
    arrival: &ArrivalProcess,
    targets: &mut TargetSampler,
    num_requests: usize,
    rng: &mut R,
) -> Vec<Request> {
    let mut now = 0.0f64;
    let mut out = Vec::with_capacity(num_requests);
    for id in 0..num_requests as u64 {
        now += arrival.next_gap(now, rng);
        out.push(Request {
            id,
            arrival: now,
            target: targets.next(rng),
            class: PriorityClass::Standard,
        });
    }
    out
}

/// Generates `num_requests` open-loop requests with per-request classes
/// drawn from `classes`. The main `rng` stream sees the identical draw
/// sequence as [`generate_workload`] — one gap, one target per request
/// — so arrival times always match the legacy generator, and with the
/// default all-`Standard` mix the targets match byte-for-byte too.
pub fn generate_workload_classed<R: Rng + ?Sized>(
    arrival: &ArrivalProcess,
    targets: &mut TargetSampler,
    classes: &mut ClassSampler,
    num_requests: usize,
    rng: &mut R,
) -> Vec<Request> {
    let mut now = 0.0f64;
    let mut out = Vec::with_capacity(num_requests);
    for id in 0..num_requests as u64 {
        now += arrival.next_gap(now, rng);
        let class = classes.sample();
        out.push(Request {
            id,
            arrival: now,
            target: targets.next_for_class(class, rng),
            class,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let p = ArrivalProcess::Poisson { rate: 100.0 };
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut now = 0.0;
        for _ in 0..n {
            now += p.next_gap(now, &mut rng);
        }
        let mean_gap = now / n as f64;
        assert!((mean_gap - 0.01).abs() < 0.001, "mean gap {mean_gap}");
    }

    #[test]
    fn bursty_rate_switches_with_phase() {
        let b = ArrivalProcess::Bursty {
            base_rate: 10.0,
            burst_rate: 100.0,
            period: 1.0,
            burst_fraction: 0.25,
        };
        assert_eq!(b.rate_at(0.1), 100.0);
        assert_eq!(b.rate_at(0.5), 10.0);
        assert_eq!(b.rate_at(1.1), 100.0);
        assert!((b.mean_rate() - 32.5).abs() < 1e-12);
    }

    #[test]
    fn scaling_scales_mean_rate() {
        let p = ArrivalProcess::Poisson { rate: 50.0 };
        assert_eq!(p.scaled(2.0).mean_rate(), 100.0);
        let b = ArrivalProcess::Bursty {
            base_rate: 10.0,
            burst_rate: 40.0,
            period: 2.0,
            burst_fraction: 0.5,
        };
        assert!((b.scaled(3.0).mean_rate() - 3.0 * b.mean_rate()).abs() < 1e-12);
    }

    #[test]
    fn zipf_targets_concentrate_on_head() {
        let mut s = TargetSampler::new((100..200).collect(), 1.2, 0, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0usize;
        for _ in 0..5000 {
            if s.next(&mut rng) < 110 {
                head += 1;
            }
        }
        assert!(head > 1500, "head draws {head}");
    }

    #[test]
    fn drift_rotates_the_hot_set() {
        let mut s = TargetSampler::new((0..100).collect(), 1.5, 10, 25);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(s.offset(), 0);
        for _ in 0..10 {
            s.next(&mut rng);
        }
        assert_eq!(s.offset(), 25);
        for _ in 0..30 {
            s.next(&mut rng);
        }
        assert_eq!(s.offset(), 0, "stride wraps around the target list");
    }

    #[test]
    fn workload_is_deterministic_and_time_ordered() {
        let arrival = ArrivalProcess::Poisson { rate: 1000.0 };
        let gen = |seed| {
            let mut targets = TargetSampler::new((0..50).collect(), 1.1, 20, 5);
            let mut rng = StdRng::seed_from_u64(seed);
            generate_workload(&arrival, &mut targets, 200, &mut rng)
        };
        let a = gen(7);
        let b = gen(7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_ne!(gen(8), a);
    }

    /// Same-seed snapshot pin: the classed generator with the default
    /// all-`Standard` mix reproduces the legacy stream byte-for-byte
    /// (ids, arrivals, targets) — old configs keep their exact RNG draw
    /// order.
    #[test]
    fn classed_default_mix_matches_legacy_workload() {
        let arrival = ArrivalProcess::Poisson { rate: 800.0 };
        let legacy = {
            let mut targets = TargetSampler::new((0..64).collect(), 1.2, 15, 7);
            let mut rng = StdRng::seed_from_u64(21);
            generate_workload(&arrival, &mut targets, 300, &mut rng)
        };
        let classed = {
            let mut targets = TargetSampler::new((0..64).collect(), 1.2, 15, 7);
            let mut classes = ClassSampler::new([0.0, 1.0, 0.0], 21);
            let mut rng = StdRng::seed_from_u64(21);
            generate_workload_classed(&arrival, &mut targets, &mut classes, 300, &mut rng)
        };
        assert_eq!(legacy, classed);
    }

    /// A multi-class mix must not perturb the main stream: arrivals are
    /// identical to the legacy generator's, and every non-`Interactive`
    /// request keeps the exact target the legacy stream would have
    /// drawn (the class and boosted-head draws live on side streams).
    #[test]
    fn class_mix_preserves_main_stream_draw_order() {
        let arrival = ArrivalProcess::Poisson { rate: 800.0 };
        let legacy = {
            let mut targets = TargetSampler::new((0..64).collect(), 1.2, 0, 0);
            let mut rng = StdRng::seed_from_u64(33);
            generate_workload(&arrival, &mut targets, 400, &mut rng)
        };
        let mixed = {
            let mut targets =
                TargetSampler::new((0..64).collect(), 1.2, 0, 0).with_interactive_boost(1.5);
            let mut classes = ClassSampler::new([0.3, 0.4, 0.3], 33);
            let mut rng = StdRng::seed_from_u64(33);
            generate_workload_classed(&arrival, &mut targets, &mut classes, 400, &mut rng)
        };
        let mut saw_all = [false; CLASS_COUNT];
        for (l, m) in legacy.iter().zip(&mixed) {
            assert_eq!(l.id, m.id);
            assert_eq!(l.arrival, m.arrival, "arrival stream must be untouched");
            saw_all[m.class.index()] = true;
            if m.class != PriorityClass::Interactive {
                assert_eq!(l.target, m.target, "non-interactive targets unchanged");
            }
        }
        assert!(saw_all.iter().all(|&s| s), "mix must produce every class");
    }

    /// Interactive traffic with a boosted head is measurably more
    /// concentrated than the same seed's standard traffic.
    #[test]
    fn interactive_boost_concentrates_the_head() {
        let mut s = TargetSampler::new((0..1000).collect(), 1.1, 0, 0).with_interactive_boost(2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut head = [0usize; 2];
        for _ in 0..4000 {
            if s.next_for_class(PriorityClass::Interactive, &mut rng) < 10 {
                head[0] += 1;
            }
            if s.next_for_class(PriorityClass::Standard, &mut rng) < 10 {
                head[1] += 1;
            }
        }
        assert!(
            head[0] > head[1] + 300,
            "boosted head {} must beat base head {}",
            head[0],
            head[1]
        );
    }

    #[test]
    fn class_sampler_is_deterministic_and_respects_mix() {
        let draw = |seed| {
            let mut c = ClassSampler::new([0.25, 0.5, 0.25], seed);
            (0..200).map(|_| c.sample()).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
        let counts = draw(9).iter().fold([0usize; CLASS_COUNT], |mut acc, c| {
            acc[c.index()] += 1;
            acc
        });
        assert!(
            counts.iter().all(|&n| n > 20),
            "all classes drawn: {counts:?}"
        );
        // A degenerate mix draws only that class.
        let mut only_batch = ClassSampler::new([0.0, 0.0, 3.0], 1);
        assert!((0..50).all(|_| only_batch.sample() == PriorityClass::Batch));
    }
}
