//! Open-loop serving workload generation: stochastic arrival processes
//! and skewed, optionally drifting target-vertex distributions.
//!
//! Serving traffic differs from training epochs in two ways the rest of
//! the repo never exercises: requests arrive *when they arrive* (the
//! system cannot slow the clock down to keep up), and the popularity of
//! target vertices moves over time (trending entities), which is exactly
//! the regime where a statically planned hotness cache decays and a
//! dynamic cache earns its replacement overhead.

use rand::Rng;

use legion_graph::generate::Zipf;
use legion_graph::VertexId;

/// One inference request: classify `target` using its sampled
/// multi-hop neighborhood.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Monotone request id (also the round-robin routing key).
    pub id: u64,
    /// Arrival time in simulated seconds from the start of the run.
    pub arrival: f64,
    /// The vertex whose label is being requested.
    pub target: VertexId,
}

/// The inter-arrival process of an open-loop client population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate` requests per simulated second.
    Poisson {
        /// Mean arrival rate, requests/s.
        rate: f64,
    },
    /// A square-wave modulated Poisson process: within each `period`, the
    /// first `burst_fraction` of the window arrives at `burst_rate`, the
    /// remainder at `base_rate` — the "heavy traffic from millions of
    /// users" pattern of synchronized client activity.
    Bursty {
        /// Off-burst arrival rate, requests/s.
        base_rate: f64,
        /// In-burst arrival rate, requests/s.
        burst_rate: f64,
        /// Length of one burst cycle, seconds.
        period: f64,
        /// Fraction of each period spent bursting, in `(0, 1)`.
        burst_fraction: f64,
    },
}

impl ArrivalProcess {
    /// The instantaneous arrival rate at simulated time `now`.
    pub fn rate_at(&self, now: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                period,
                burst_fraction,
            } => {
                let phase = (now / period).fract();
                if phase < burst_fraction {
                    burst_rate
                } else {
                    base_rate
                }
            }
        }
    }

    /// The long-run mean arrival rate (offered load).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                burst_fraction,
                ..
            } => burst_fraction * burst_rate + (1.0 - burst_fraction) * base_rate,
        }
    }

    /// Draws the gap to the next arrival after `now` (exponential at the
    /// rate in effect at `now`; a piecewise approximation for the bursty
    /// process, which is fine at simulation scale and fully
    /// deterministic for a seeded RNG).
    pub fn next_gap<R: Rng + ?Sized>(&self, now: f64, rng: &mut R) -> f64 {
        let rate = self.rate_at(now);
        assert!(rate > 0.0, "arrival rate must be positive");
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / rate
    }

    /// The same process with every rate scaled by `k` — how a load sweep
    /// turns one workload shape into a family of offered loads.
    pub fn scaled(&self, k: f64) -> Self {
        match *self {
            ArrivalProcess::Poisson { rate } => ArrivalProcess::Poisson { rate: rate * k },
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                period,
                burst_fraction,
            } => ArrivalProcess::Bursty {
                base_rate: base_rate * k,
                burst_rate: burst_rate * k,
                period,
                burst_fraction,
            },
        }
    }
}

/// Zipf-skewed target-vertex sampler whose hot set drifts: every
/// `drift_period` issued requests the rank→vertex mapping rotates by
/// `drift_stride` positions, so yesterday's head becomes tomorrow's tail.
#[derive(Debug, Clone)]
pub struct TargetSampler {
    zipf: Zipf,
    targets: Vec<VertexId>,
    drift_period: usize,
    drift_stride: usize,
    issued: usize,
}

impl TargetSampler {
    /// A sampler over `targets` with Zipf exponent `exponent`.
    /// `drift_period == 0` disables drift.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn new(
        targets: Vec<VertexId>,
        exponent: f64,
        drift_period: usize,
        drift_stride: usize,
    ) -> Self {
        assert!(!targets.is_empty(), "need at least one serving target");
        Self {
            zipf: Zipf::new(targets.len(), exponent),
            targets,
            drift_period,
            drift_stride,
            issued: 0,
        }
    }

    /// The current rotation offset of the rank→vertex mapping.
    pub fn offset(&self) -> usize {
        self.issued
            .checked_div(self.drift_period)
            .map_or(0, |steps| steps * self.drift_stride % self.targets.len())
    }

    /// Draws the next target vertex and advances the drift clock.
    pub fn next<R: Rng + ?Sized>(&mut self, rng: &mut R) -> VertexId {
        let rank = self.zipf.sample(rng);
        let v = self.targets[(rank + self.offset()) % self.targets.len()];
        self.issued += 1;
        v
    }
}

/// Generates `num_requests` open-loop requests starting at time 0.
pub fn generate_workload<R: Rng + ?Sized>(
    arrival: &ArrivalProcess,
    targets: &mut TargetSampler,
    num_requests: usize,
    rng: &mut R,
) -> Vec<Request> {
    let mut now = 0.0f64;
    let mut out = Vec::with_capacity(num_requests);
    for id in 0..num_requests as u64 {
        now += arrival.next_gap(now, rng);
        out.push(Request {
            id,
            arrival: now,
            target: targets.next(rng),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let p = ArrivalProcess::Poisson { rate: 100.0 };
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut now = 0.0;
        for _ in 0..n {
            now += p.next_gap(now, &mut rng);
        }
        let mean_gap = now / n as f64;
        assert!((mean_gap - 0.01).abs() < 0.001, "mean gap {mean_gap}");
    }

    #[test]
    fn bursty_rate_switches_with_phase() {
        let b = ArrivalProcess::Bursty {
            base_rate: 10.0,
            burst_rate: 100.0,
            period: 1.0,
            burst_fraction: 0.25,
        };
        assert_eq!(b.rate_at(0.1), 100.0);
        assert_eq!(b.rate_at(0.5), 10.0);
        assert_eq!(b.rate_at(1.1), 100.0);
        assert!((b.mean_rate() - 32.5).abs() < 1e-12);
    }

    #[test]
    fn scaling_scales_mean_rate() {
        let p = ArrivalProcess::Poisson { rate: 50.0 };
        assert_eq!(p.scaled(2.0).mean_rate(), 100.0);
        let b = ArrivalProcess::Bursty {
            base_rate: 10.0,
            burst_rate: 40.0,
            period: 2.0,
            burst_fraction: 0.5,
        };
        assert!((b.scaled(3.0).mean_rate() - 3.0 * b.mean_rate()).abs() < 1e-12);
    }

    #[test]
    fn zipf_targets_concentrate_on_head() {
        let mut s = TargetSampler::new((100..200).collect(), 1.2, 0, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0usize;
        for _ in 0..5000 {
            if s.next(&mut rng) < 110 {
                head += 1;
            }
        }
        assert!(head > 1500, "head draws {head}");
    }

    #[test]
    fn drift_rotates_the_hot_set() {
        let mut s = TargetSampler::new((0..100).collect(), 1.5, 10, 25);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(s.offset(), 0);
        for _ in 0..10 {
            s.next(&mut rng);
        }
        assert_eq!(s.offset(), 25);
        for _ in 0..30 {
            s.next(&mut rng);
        }
        assert_eq!(s.offset(), 0, "stride wraps around the target list");
    }

    #[test]
    fn workload_is_deterministic_and_time_ordered() {
        let arrival = ArrivalProcess::Poisson { rate: 1000.0 };
        let gen = |seed| {
            let mut targets = TargetSampler::new((0..50).collect(), 1.1, 20, 5);
            let mut rng = StdRng::seed_from_u64(seed);
            generate_workload(&arrival, &mut targets, 200, &mut rng)
        };
        let a = gen(7);
        let b = gen(7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_ne!(gen(8), a);
    }
}
