//! Bounded admission queues with load shedding.
//!
//! An open-loop serving system needs somewhere for requests to wait when
//! the GPU is busy — and a limit on how long that somewhere can grow, or
//! overload turns into unbounded latency instead of explicit errors. The
//! queue therefore sheds (rejects) arrivals once it is full; shed counts
//! are first-class output of every serving run.

use std::collections::VecDeque;

use crate::workload::Request;

/// A FIFO admission queue holding at most `capacity` pending requests.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    pending: VecDeque<Request>,
    capacity: usize,
    admitted: u64,
    shed: u64,
}

impl AdmissionQueue {
    /// An empty queue that sheds beyond `capacity` pending requests.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            pending: VecDeque::new(),
            capacity,
            admitted: 0,
            shed: 0,
        }
    }

    /// Offers an arriving request: enqueued if there is room, shed
    /// otherwise. Returns whether the request was admitted.
    pub fn offer(&mut self, req: Request) -> bool {
        if self.pending.len() >= self.capacity {
            self.shed += 1;
            false
        } else {
            self.pending.push_back(req);
            self.admitted += 1;
            true
        }
    }

    /// Number of requests currently waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no requests are waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The arrival time of the `i`-th oldest pending request.
    pub fn arrival(&self, i: usize) -> Option<f64> {
        self.pending.get(i).map(|r| r.arrival)
    }

    /// Dequeues up to `k` requests in arrival order.
    pub fn take(&mut self, k: usize) -> Vec<Request> {
        let n = k.min(self.pending.len());
        self.pending.drain(..n).collect()
    }

    /// Requests admitted so far (including already dequeued ones).
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests shed so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival: f64) -> Request {
        Request {
            id,
            arrival,
            target: id as u32,
            class: legion_router::PriorityClass::Standard,
        }
    }

    #[test]
    fn admits_until_full_then_sheds() {
        let mut q = AdmissionQueue::new(2);
        assert!(q.offer(req(0, 0.0)));
        assert!(q.offer(req(1, 0.1)));
        assert!(!q.offer(req(2, 0.2)), "third arrival must be shed");
        assert_eq!(q.len(), 2);
        assert_eq!(q.admitted(), 2);
        assert_eq!(q.shed(), 1);
    }

    #[test]
    fn take_preserves_arrival_order_and_frees_room() {
        let mut q = AdmissionQueue::new(2);
        q.offer(req(0, 0.0));
        q.offer(req(1, 0.1));
        let batch = q.take(5);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
        assert!(q.is_empty());
        assert!(q.offer(req(2, 0.2)), "drained queue admits again");
    }

    #[test]
    fn arrival_indexes_oldest_first() {
        let mut q = AdmissionQueue::new(4);
        q.offer(req(0, 1.0));
        q.offer(req(1, 2.0));
        assert_eq!(q.arrival(0), Some(1.0));
        assert_eq!(q.arrival(1), Some(2.0));
        assert_eq!(q.arrival(2), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = AdmissionQueue::new(0);
    }
}
