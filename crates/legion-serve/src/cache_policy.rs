//! Feature-cache policies under serving traffic.
//!
//! Training-time Legion plans its cache *offline* from pre-sampled
//! hotness (§4.2). Serving breaks the planner's core assumption — that
//! the access distribution at fill time is the access distribution
//! forever — because request skew drifts. This module names the three
//! points on that trade-off:
//!
//! * [`PolicyKind::StaticHot`] — fill per-GPU feature caches once from a
//!   warmup sample of request neighborhoods, then never change them
//!   (Legion's planned cache, pointed at serving traffic);
//! * [`PolicyKind::Fifo`] — an admission-on-miss FIFO cache
//!   ([`legion_cache::FifoCache`]) that tracks the drifting hot set at
//!   the cost of replacement churn;
//! * [`PolicyKind::Replan`] — the planned cache kept honest: the
//!   [`replan`](crate::replan) controller re-runs CSLP + the cost-model
//!   sweep over a sliding window of observed traffic and swaps plans in
//!   at batch boundaries, paying for each swap's refill on the PCIe
//!   meters.

use rand::rngs::StdRng;
use rand::SeedableRng;

use legion_cache::CliqueCache;
use legion_graph::{CsrGraph, FeatureTable, VertexId};
use legion_hw::{GpuId, MultiGpuServer};
use legion_partition::{detect_cliques, LdgPartitioner, Partitioner};
use legion_sampling::access::{sample_from, CacheLayout};

use crate::workload::TargetSampler;

/// Which feature-cache policy a serving run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Static per-GPU hot set, planned once from warmup traffic.
    StaticHot,
    /// Dynamic per-GPU FIFO cache, admitted on miss.
    Fifo,
    /// Planned cache with online re-planning under drift
    /// ([`crate::replan`]).
    Replan,
}

impl PolicyKind {
    /// Stable lowercase name used in metrics and JSON rows.
    pub fn as_str(&self) -> &'static str {
        match self {
            PolicyKind::StaticHot => "static",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Replan => "replan",
        }
    }
}

/// Ranks vertices by how often `warmup_requests` simulated request
/// neighborhoods touch them, hottest first (ties broken by vertex id so
/// the ranking is deterministic).
///
/// The expansion mirrors the serving sampler — `fanouts[h]` uniform
/// neighbors per frontier vertex at hop `h` — but runs directly on the
/// CPU-resident graph: warmup profiling is an offline planning step and
/// must not charge the simulated server's traffic counters.
pub fn warmup_hot_vertices(
    graph: &CsrGraph,
    targets: &mut TargetSampler,
    warmup_requests: usize,
    fanouts: &[usize],
    seed: u64,
) -> Vec<VertexId> {
    warmup_hot_vertices_weighted(graph, targets, warmup_requests, fanouts, seed).0
}

/// Like [`warmup_hot_vertices`] but also returns the raw per-vertex
/// touch counts the ranking was derived from — the hotness weights the
/// adaptive replication rule compares replicas against displaced
/// partitioned rows with.
pub fn warmup_hot_vertices_weighted(
    graph: &CsrGraph,
    targets: &mut TargetSampler,
    warmup_requests: usize,
    fanouts: &[usize],
    seed: u64,
) -> (Vec<VertexId>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut touches = vec![0u64; graph.num_vertices()];
    for _ in 0..warmup_requests {
        let target = targets.next(&mut rng);
        touches[target as usize] += 1;
        let mut frontier = vec![target];
        for &fanout in fanouts {
            let mut next = Vec::new();
            for &v in &frontier {
                for s in sample_from(graph.neighbors(v), fanout, &mut rng) {
                    touches[s as usize] += 1;
                    next.push(s);
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
    }
    let mut ranked: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
    ranked.sort_by(|&a, &b| {
        touches[b as usize]
            .cmp(&touches[a as usize])
            .then(a.cmp(&b))
    });
    (ranked, touches)
}

/// Builds the static-hotness layout: every GPU gets its own single-GPU
/// [`CliqueCache`] holding the feature rows of the `rows_per_gpu`
/// hottest vertices, with the cache footprint charged to the GPU's
/// memory budget.
///
/// Requests are routed round-robin, so every GPU sees the same skew and
/// caches the same (global) hot set; single-GPU cliques keep the two
/// policies on identical topology and NVLink paths.
///
/// # Panics
///
/// Panics if a GPU cannot fit `rows_per_gpu` feature rows.
pub fn build_static_layout(
    graph: &CsrGraph,
    features: &FeatureTable,
    server: &MultiGpuServer,
    hot: &[VertexId],
    rows_per_gpu: usize,
) -> CacheLayout {
    let rows = rows_per_gpu.min(hot.len());
    let num_gpus = server.num_gpus();
    let mut cliques = Vec::with_capacity(num_gpus);
    for gpu in 0..num_gpus {
        let mut cc = CliqueCache::new(vec![gpu], graph.num_vertices(), features.dim());
        for &v in &hot[..rows] {
            cc.insert_feature(0, v, features.row(v));
        }
        server
            .alloc(gpu, rows as u64 * features.row_bytes())
            .expect("static feature cache exceeds GPU memory");
        cliques.push(cc);
    }
    CacheLayout::from_cliques(num_gpus, cliques)
}

/// Builds the clique-partitioned hybrid layout the residency router
/// dispatches over: each NVLink clique pools its members' cache budgets
/// (`rows_per_gpu` rows per member GPU), spends `replicate_frac` of the
/// pool replicating the globally hottest vertices into *every* clique
/// (so the ultra-hot head is always a local hit regardless of routing),
/// and fills the remainder with the hottest vertices the LDG
/// partitioner (§4.1) assigned to that clique — backfilled from the
/// global hotness ranking when the clique's partition runs short. Rows
/// are striped round-robin across the clique's member slots, so each
/// GPU stores an equal share and a within-clique remote row costs one
/// NVLink read instead of a PCIe fetch.
///
/// Returns the layout plus the clique membership (`groups[g]` is the
/// list of GPU ids in route group `g`) for the dispatcher.
///
/// # Panics
///
/// Panics if a GPU cannot fit its share of the pooled rows.
pub fn build_partitioned_layout(
    graph: &CsrGraph,
    features: &FeatureTable,
    server: &MultiGpuServer,
    hot: &[VertexId],
    rows_per_gpu: usize,
    replicate_frac: f64,
) -> (CacheLayout, Vec<Vec<GpuId>>) {
    fill_partitioned(graph, features, server, hot, rows_per_gpu, &mut |budget| {
        (budget as f64 * replicate_frac).floor() as usize
    })
}

/// Builds the clique-partitioned hybrid layout with the replicated head
/// sized *adaptively* instead of by a fixed fraction: the head grows one
/// vertex at a time while the marginal routed-coverage gain of another
/// replica exceeds the partitioned row it displaces.
///
/// Replicating the `k`-th globally hottest vertex buys local hits for
/// its touches in the `G - 1` cliques that do not own it — a gain of
/// `w(hot[k]) * (G - 1) / G` per clique slot, since the replica costs a
/// slot in every clique. The slot it takes would otherwise hold the
/// coolest still-resident row, which under residency routing serves
/// essentially all of its own touches — a loss of `w(hot[budget-1-k])`.
/// The head stops growing at the first `k` where the gain no longer
/// covers the loss:
///
/// ```text
/// (G - 1) * w(hot[k])  <  G * w(hot[budget - 1 - k])
/// ```
///
/// With one clique there is nothing to replicate for (`G - 1 = 0`), so
/// the rule degenerates to a fully partitioned cache. `weight` is the
/// per-vertex touch count from [`warmup_hot_vertices_weighted`], indexed
/// by vertex id.
///
/// Returns the layout, the clique membership, and the replicated head
/// size chosen for each clique (for telemetry).
///
/// # Panics
///
/// Panics if a GPU cannot fit its share of the pooled rows.
pub fn build_partitioned_layout_adaptive(
    graph: &CsrGraph,
    features: &FeatureTable,
    server: &MultiGpuServer,
    hot: &[VertexId],
    weight: &[u64],
    rows_per_gpu: usize,
) -> (CacheLayout, Vec<Vec<GpuId>>, Vec<usize>) {
    let num_cliques = detect_cliques(server.nvlink()).len();
    let mut replicated_per_clique = Vec::new();
    let (layout, groups) =
        fill_partitioned(graph, features, server, hot, rows_per_gpu, &mut |budget| {
            let r = adaptive_replicated_rows(hot, weight, budget, num_cliques);
            replicated_per_clique.push(r);
            r
        });
    (layout, groups, replicated_per_clique)
}

/// The greedy head-sizing rule behind
/// [`build_partitioned_layout_adaptive`], exposed for direct testing:
/// returns how many of the hottest vertices to replicate into every
/// clique given a per-clique row `budget` and `num_cliques` cliques.
pub fn adaptive_replicated_rows(
    hot: &[VertexId],
    weight: &[u64],
    budget: usize,
    num_cliques: usize,
) -> usize {
    if num_cliques <= 1 {
        return 0;
    }
    let b = budget.min(hot.len());
    let (g, mut r) = (num_cliques as u64, 0usize);
    while r < b {
        let gain = (g - 1) * weight[hot[r] as usize];
        let loss = g * weight[hot[b - 1 - r] as usize];
        if gain < loss || gain == 0 {
            break;
        }
        r += 1;
    }
    r
}

/// Shared fill behind the fixed-fraction and adaptive partitioned
/// layouts: `replicated_for(budget)` decides the replicated head size
/// for a clique with `budget` pooled rows.
fn fill_partitioned(
    graph: &CsrGraph,
    features: &FeatureTable,
    server: &MultiGpuServer,
    hot: &[VertexId],
    rows_per_gpu: usize,
    replicated_for: &mut dyn FnMut(usize) -> usize,
) -> (CacheLayout, Vec<Vec<GpuId>>) {
    let groups = detect_cliques(server.nvlink());
    let part = LdgPartitioner::default().partition(graph, groups.len());
    let num_gpus = server.num_gpus();
    let mut cliques = Vec::with_capacity(groups.len());
    for (gi, members) in groups.iter().enumerate() {
        let budget = (rows_per_gpu * members.len()).min(hot.len());
        let replicated = replicated_for(budget).min(budget);
        let mut taken = vec![false; graph.num_vertices()];
        let mut chosen: Vec<VertexId> = Vec::with_capacity(budget);
        for &v in &hot[..replicated] {
            if !taken[v as usize] {
                taken[v as usize] = true;
                chosen.push(v);
            }
        }
        // Clique-owned remainder: hottest vertices the partitioner
        // assigned to this clique, then globally hottest leftovers as
        // backfill when the partition runs short of the budget.
        for &v in hot {
            if chosen.len() >= budget {
                break;
            }
            if part[v as usize] as usize == gi && !taken[v as usize] {
                taken[v as usize] = true;
                chosen.push(v);
            }
        }
        for &v in hot {
            if chosen.len() >= budget {
                break;
            }
            if !taken[v as usize] {
                taken[v as usize] = true;
                chosen.push(v);
            }
        }
        let mut cc = CliqueCache::new(members.clone(), graph.num_vertices(), features.dim());
        let mut slot_rows = vec![0u64; members.len()];
        for (idx, &v) in chosen.iter().enumerate() {
            let slot = idx % members.len();
            cc.insert_feature(slot, v, features.row(v));
            slot_rows[slot] += 1;
        }
        for (slot, &gpu) in members.iter().enumerate() {
            server
                .alloc(gpu, slot_rows[slot] * features.row_bytes())
                .expect("partitioned feature cache exceeds GPU memory");
        }
        cliques.push(cc);
    }
    (CacheLayout::from_cliques(num_gpus, cliques), groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_graph::GraphBuilder;
    use legion_hw::ServerSpec;

    fn chain_with_hub() -> CsrGraph {
        // Vertex 0 is a hub every other vertex points at.
        let mut b = GraphBuilder::new(32);
        for v in 1..32 {
            b.push_edge(v, 0);
            b.push_edge(v, (v + 1) % 32);
        }
        b.build()
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(PolicyKind::StaticHot.as_str(), "static");
        assert_eq!(PolicyKind::Fifo.as_str(), "fifo");
        assert_eq!(PolicyKind::Replan.as_str(), "replan");
    }

    #[test]
    fn warmup_ranks_the_hub_first() {
        let g = chain_with_hub();
        // Skewed targets over the non-hub vertices: all of them sample
        // the hub as a neighbor.
        let mut targets = TargetSampler::new((1..32).collect(), 1.0, 0, 0);
        let ranked = warmup_hot_vertices(&g, &mut targets, 200, &[2], 7);
        assert_eq!(ranked.len(), 32);
        assert_eq!(ranked[0], 0, "hub must be hottest");
    }

    #[test]
    fn warmup_is_deterministic() {
        let g = chain_with_hub();
        let run = || {
            let mut t = TargetSampler::new((1..32).collect(), 1.1, 16, 3);
            warmup_hot_vertices(&g, &mut t, 100, &[2, 2], 11)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn static_layout_caches_hot_rows_on_every_gpu() {
        let g = chain_with_hub();
        let f = FeatureTable::zeros(32, 8);
        let server = ServerSpec::custom(2, 1 << 20, 1).build();
        let mut targets = TargetSampler::new((1..32).collect(), 1.0, 0, 0);
        let hot = warmup_hot_vertices(&g, &mut targets, 100, &[2], 3);
        let layout = build_static_layout(&g, &f, &server, &hot, 4);
        for gpu in 0..2 {
            let (cache, slot) = layout.for_gpu(gpu).expect("gpu has a cache");
            assert_eq!(slot, 0);
            assert!(cache.lookup_feature(0, hot[0]).is_some());
            assert!(cache.lookup_feature(0, hot[20]).is_none());
            assert_eq!(server.allocated_bytes(gpu), 4 * f.row_bytes());
        }
    }

    #[test]
    #[should_panic(expected = "exceeds GPU memory")]
    fn oversized_static_cache_panics() {
        let g = chain_with_hub();
        let f = FeatureTable::zeros(32, 8);
        let server = ServerSpec::custom(1, 64, 1).build();
        let hot: Vec<VertexId> = (0..32).collect();
        let _ = build_static_layout(&g, &f, &server, &hot, 32);
    }

    fn two_communities() -> CsrGraph {
        // Vertices 0..32 form one dense ring-with-chords community,
        // 32..64 another; a single bridge edge joins them so LDG has a
        // clean two-way cut.
        let mut b = GraphBuilder::new(64);
        for base in [0u32, 32] {
            for v in 0..32 {
                b.push_edge(base + v, base + (v + 1) % 32);
                b.push_edge(base + v, base + (v + 7) % 32);
            }
        }
        b.push_edge(0, 32);
        b.build()
    }

    #[test]
    fn partitioned_layout_replicates_the_head_and_stripes_the_rest() {
        let g = two_communities();
        let f = FeatureTable::zeros(64, 8);
        let server = ServerSpec::custom(4, 1 << 20, 2).build();
        let hot: Vec<VertexId> = (0..64).collect();
        let (layout, groups) = build_partitioned_layout(&g, &f, &server, &hot, 8, 0.5);
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3]]);
        // Budget per clique: 8 rows/GPU x 2 GPUs = 16, half replicated.
        let caches: Vec<_> = [0, 2]
            .iter()
            .map(|&gpu| layout.for_gpu(gpu).expect("gpu has a cache").0)
            .collect();
        for cache in &caches {
            let resident = cache.feature_vertices();
            assert_eq!(resident.len(), 16);
            for v in 0..8u32 {
                assert!(resident.contains(&v), "head vertex {v} must replicate");
            }
        }
        // Beyond the replicated head the cliques diverge: they own
        // different partitions of the warm tail.
        assert_ne!(caches[0].feature_vertices(), caches[1].feature_vertices());
        // Rows are striped evenly, and each GPU is charged its share.
        for gpu in 0..4 {
            assert_eq!(server.allocated_bytes(gpu), 8 * f.row_bytes());
        }
    }

    #[test]
    fn adaptive_head_grows_with_skew_and_shrinks_without() {
        let hot: Vec<VertexId> = (0..16).collect();
        // Uniform hotness: no head vertex can cover its displacement
        // cost in G-1 cliques, so nothing replicates.
        let flat = vec![10u64; 16];
        assert_eq!(adaptive_replicated_rows(&hot, &flat, 8, 2), 0);
        // One clique: replication is meaningless regardless of skew.
        let skewed: Vec<u64> = (0..16).map(|i| 1u64 << (15 - i)).collect();
        assert_eq!(adaptive_replicated_rows(&hot, &skewed, 8, 1), 0);
        // Steep skew: the head earns replicas until the gain rule turns
        // over, and a steeper budget never replicates past half the
        // cache (the displaced row would be hotter than the replica).
        let r = adaptive_replicated_rows(&hot, &skewed, 8, 2);
        assert!(r > 0, "steep skew must replicate a head");
        assert!(r <= 4, "the head never displaces hotter rows: r = {r}");
        // More cliques lower the per-slot gain, so the head never grows
        // when the clique count rises.
        let r4 = adaptive_replicated_rows(&hot, &skewed, 8, 4);
        assert!(r4 <= r, "more cliques cannot justify a bigger head");
    }

    #[test]
    fn adaptive_layout_replicates_only_the_earning_head() {
        let g = two_communities();
        let f = FeatureTable::zeros(64, 8);
        let server = ServerSpec::custom(4, 1 << 20, 2).build();
        let hot: Vec<VertexId> = (0..64).collect();
        // Vertex 0 is overwhelmingly hot, the rest tepid: exactly one
        // vertex should earn cross-clique replicas.
        let mut weight = vec![1u64; 64];
        weight[0] = 1_000;
        let (layout, groups, replicated) =
            build_partitioned_layout_adaptive(&g, &f, &server, &hot, &weight, 8);
        assert_eq!(groups.len(), 2);
        assert_eq!(replicated, vec![1, 1]);
        for &gpu in &[0usize, 2] {
            let cache = layout.for_gpu(gpu).expect("gpu has a cache").0;
            assert!(
                cache.feature_vertices().contains(&0),
                "the earning head must be resident in every clique"
            );
        }
        // Beyond the one-vertex head the cliques hold disjoint
        // partitions, like the fixed-fraction layout's tail.
        let a = layout.for_gpu(0).unwrap().0.feature_vertices();
        let b = layout.for_gpu(2).unwrap().0.feature_vertices();
        assert_ne!(a, b, "tails must stay partitioned");
    }

    #[test]
    fn full_replication_makes_cliques_identical() {
        let g = two_communities();
        let f = FeatureTable::zeros(64, 8);
        let server = ServerSpec::custom(4, 1 << 20, 2).build();
        let hot: Vec<VertexId> = (0..64).collect();
        let (layout, _) = build_partitioned_layout(&g, &f, &server, &hot, 8, 1.0);
        let a = layout.for_gpu(0).unwrap().0.feature_vertices();
        let b = layout.for_gpu(2).unwrap().0.feature_vertices();
        assert_eq!(a, b, "replicate_frac 1.0 means one shared hot set");
    }
}
