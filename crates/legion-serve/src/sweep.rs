//! Offered-load sweeps: capacity estimation and throughput–latency
//! curves.
//!
//! Absolute request rates mean nothing across dataset scales and server
//! shapes, so the sweep is anchored to a measured capacity: a closed-loop
//! probe times a representative uncached batch, capacity is
//! `num_gpus * max_batch / service`, and offered loads are expressed as
//! multipliers of it. A multiplier past 1.0 is guaranteed overload, so
//! every sweep exhibits its saturation knee regardless of scale knobs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use legion_gnn::{GnnModel, ModelKind};
use legion_graph::{CsrGraph, FeatureTable};
use legion_hw::pcm::TrafficKind;
use legion_hw::MultiGpuServer;
use legion_pipeline::TimeModel;
use legion_sampling::access::{AccessEngine, CacheLayout, TopologyPlacement};
use legion_sampling::KHopSampler;

use legion_graph::VertexId;
use legion_partition::{detect_cliques, LdgPartitioner, Partitioner};
use legion_router::{Dispatcher, RouterPolicy, CLASS_COUNT};

use crate::engine::serve;
use crate::workload::{ClassSampler, TargetSampler};
use crate::ServeConfig;

/// Default load multipliers for the full sweep; the knee sits between
/// 0.9 and 1.05, and the 4.0 point is deep saturation (queue-bound tail,
/// possibly shedding).
pub const SWEEP_MULTIPLIERS: [f64; 8] = [0.25, 0.5, 0.75, 0.9, 1.05, 1.3, 2.0, 4.0];

/// Abbreviated multipliers for smoke runs.
pub const SMOKE_MULTIPLIERS: [f64; 3] = [0.3, 0.9, 4.0];

/// One row of the throughput–latency curve.
#[derive(Debug, Clone, Serialize)]
pub struct LoadPoint {
    /// Cache policy name (`static` / `fifo` / `replan`).
    pub policy: &'static str,
    /// Offered load as a multiple of estimated capacity.
    pub load_multiplier: f64,
    /// Offered load in requests per simulated second.
    pub offered_rps: f64,
    /// Requests offered.
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Achieved throughput, requests per simulated second.
    pub throughput_rps: f64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Fraction of completed requests within the SLO.
    pub slo_attainment: f64,
    /// Per-class p99 latency (`[Interactive, Standard, Batch]`), zeros
    /// for single-class runs.
    pub class_p99_us: [u64; CLASS_COUNT],
    /// Per-class SLO attainment against the per-class targets; `1.0`
    /// for single-class runs.
    pub class_slo_attainment: [f64; CLASS_COUNT],
    /// Per-class shed counts.
    pub class_shed: [u64; CLASS_COUNT],
    /// Requests placed by clique coverage (residency-router runs).
    pub routed: u64,
    /// Requests spilled out of their best clique under saturation.
    pub spilled: u64,
    /// Mean probe coverage of the chosen clique; `1.0` with the router
    /// off.
    pub route_locality: f64,
}

/// The capacity probes' stand-in for the out-of-core store: a
/// DRAM-capacity FIFO window behind the probe's HBM FIFO. A feature
/// miss that also falls outside the window must stage from the
/// simulated NVMe before extraction can start, and the probe charges
/// that batch [`legion_store::NvmeModel::read_seconds`] exactly like
/// the engine charges cold reads. Inactive (`None`) when the store is
/// off *or* the DRAM budget holds the whole table — a DRAM-resident
/// probe stays byte-identical to the storeless one.
struct ProbeStore {
    dram: legion_cache::FifoCache,
    nvme: legion_store::NvmeModel,
    row_bytes: u64,
    cold: u64,
}

impl ProbeStore {
    fn new(config: &ServeConfig, num_vertices: usize, row_bytes: u64) -> Option<Self> {
        let budget = config.store.dram_budget_bytes?;
        let rows = (budget / row_bytes.max(1)).min(num_vertices as u64) as usize;
        if rows >= num_vertices {
            return None;
        }
        Some(Self {
            dram: legion_cache::FifoCache::new(rows.max(1) + config.store.staging_rows),
            nvme: legion_store::NvmeModel::new(config.store.nvme),
            row_bytes,
            cold: 0,
        })
    }

    /// Records one HBM feature miss; returns after noting whether the
    /// row was DRAM-resident or must stage from NVMe.
    fn miss(&mut self, v: VertexId) {
        if !self.dram.access(v) {
            self.cold += 1;
        }
    }

    /// Drains the batch's accumulated cold reads into a staging charge.
    fn stage_seconds(&mut self) -> f64 {
        let t = self.nvme.read_seconds(self.cold, self.row_bytes);
        self.cold = 0;
        t
    }
}

/// Estimates serving capacity (requests per simulated second) with a
/// closed-loop probe: warm a FIFO feature cache of the configured size
/// with a few `max_batch`-sized batches, time the next few against it,
/// then scale by GPU count. Warming matters — an uncached probe would
/// undershoot the steady-state ceiling so badly that "1.3x capacity"
/// could still be under real capacity and never saturate. Resets the
/// server before and after, so the probe leaves no trace in later runs.
///
/// The probe is class-aware: its seed stream draws each probe target
/// for a class sampled from [`ClassConfig::mix`](crate::ClassConfig),
/// with `Interactive` targets from the boosted head when class skew is
/// enabled — so the estimate anchors to the *aggregate mix*, not to any
/// single class's distribution. With the default single-class mix the
/// probe is byte-identical to the original single-class estimator
/// (pinned by `legacy_probe_is_byte_identical_for_single_class`).
///
/// When the residency router is enabled
/// ([`RouterPolicy::Residency`]), the probe routes its seeds through
/// the same [`Dispatcher`] scoring the engine uses instead of timing
/// round-robin single-GPU batches — routed runs concentrate each
/// clique's partition on its own caches, so their steady-state service
/// rate (and therefore the knee a sweep should anchor to) is higher
/// than the round-robin probe reports. The router-off path is
/// byte-identical to the original probe.
///
/// With an active out-of-core store whose DRAM budget cannot hold the
/// feature table, each probe batch additionally pays the NVMe staging
/// time of its DRAM-cold misses (`ProbeStore`) — an oversubscribed
/// system's knee sits below its DRAM-resident twin's, and a sweep
/// anchored to the resident estimate would never cross it. A store
/// whose budget holds the whole table is inert and the probe stays
/// byte-identical to the storeless one.
pub fn estimate_capacity_rps(
    graph: &CsrGraph,
    features: &FeatureTable,
    server: &MultiGpuServer,
    config: &ServeConfig,
) -> f64 {
    config.validate();
    if config.router.policy == RouterPolicy::Residency {
        return routed_capacity_rps(graph, features, server, config);
    }
    server.reset();
    let layout = CacheLayout::none(server.num_gpus());
    let engine = AccessEngine::new(graph, features, &layout, server, TopologyPlacement::CpuUva);
    let time_model = TimeModel::new(server.spec());
    let sampler = KHopSampler::new(config.fanouts.clone());
    let mut model_rng = StdRng::seed_from_u64(config.seed ^ 0x51ee_7d00_c0de_cafe);
    let model = GnnModel::new(
        ModelKind::GraphSage,
        features.dim(),
        config.hidden_dim,
        config.num_classes,
        config.fanouts.len(),
        &mut model_rng,
    );
    let mut targets = TargetSampler::new(
        (0..graph.num_vertices() as u32).collect(),
        config.zipf_exponent,
        0,
        0,
    );
    if config.classes.mix[0] > 0.0 {
        targets = targets.with_interactive_boost(config.classes.interactive_boost);
    }
    let mut classes = ClassSampler::new(config.classes.mix, config.seed ^ 0x0bad_cafe_f00d_beef);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0bad_cafe_f00d_beef);
    let mut fifo = legion_cache::FifoCache::new(config.cache_rows_per_gpu);
    let row_bytes = features.row_bytes();
    let row_tx = server.pcie().transactions_for_payload(row_bytes);
    let mut store = ProbeStore::new(config, graph.num_vertices(), row_bytes);

    const WARMUP_BATCHES: usize = 8;
    const PROBES: usize = 4;
    let mut total = 0.0f64;
    for i in 0..WARMUP_BATCHES + PROBES {
        let mut seeds: Vec<u32> = (0..config.max_batch)
            .map(|_| targets.next_for_class(classes.sample(), &mut rng))
            .collect();
        // Same dedupe as the engine: duplicate targets expand once.
        seeds.sort_unstable();
        seeds.dedup();
        let topo_before = server.pcm().gpu_kind(0, TrafficKind::Topology);
        let sample = sampler.sample_batch(&engine, 0, &seeds, &mut rng, None);
        let topo_tx = server.pcm().gpu_kind(0, TrafficKind::Topology) - topo_before;
        let mut feat_miss = 0u64;
        for &v in &sample.all_vertices {
            if !fifo.access(v) {
                feat_miss += 1;
                if let Some(s) = store.as_mut() {
                    s.miss(v);
                }
            }
        }
        let feat_tx = feat_miss * row_tx;
        let stage_t = store.as_mut().map_or(0.0, ProbeStore::stage_seconds);
        if i < WARMUP_BATCHES {
            continue;
        }
        let sample_t = time_model.sample_seconds(topo_tx, sample.total_edges() as u64);
        let extract_t = time_model.extract_seconds(feat_tx, 0) + stage_t;
        total += sample_t.max(extract_t) + time_model.train_seconds(model.inference_flops(&sample));
    }
    server.reset();
    let mean_service = total / PROBES as f64;
    assert!(mean_service > 0.0, "probe batches took no simulated time");
    server.num_gpus() as f64 * config.max_batch as f64 / mean_service
}

/// Dispatcher-routed capacity probe for residency-router runs.
///
/// Builds the same routing state the engine does — clique groups from
/// the NVLink topology with each clique's residency approximated by its
/// LDG partition (a uniform stand-in for all three cache policies, whose
/// steady-state clique content tracks ownership) — then, per round,
/// draws `num_gpus * max_batch` seeds, routes each through
/// [`Dispatcher::route`] against *projected* depths (incremented per
/// placement within the round, the same projection the sharded
/// coordinator uses), and times every GPU's routed sub-batch against a
/// per-GPU warmed FIFO cache. The probe's spill threshold is one batch
/// per GPU: a capacity probe models the system *at* saturation, where a
/// clique past its fair share spills to the globally least-loaded GPU —
/// without it, coverage skew would serialize whole rounds onto the hot
/// clique and undershoot aggregate capacity. GPUs run concurrently, so
/// the round's service time is the *max* over GPUs and capacity is
/// `num_gpus * max_batch / mean_round`. Resets the server before and
/// after, like the round-robin probe.
fn routed_capacity_rps(
    graph: &CsrGraph,
    features: &FeatureTable,
    server: &MultiGpuServer,
    config: &ServeConfig,
) -> f64 {
    server.reset();
    let num_gpus = server.num_gpus();
    let layout = CacheLayout::none(num_gpus);
    let engine = AccessEngine::new(graph, features, &layout, server, TopologyPlacement::CpuUva);
    let time_model = TimeModel::new(server.spec());
    let sampler = KHopSampler::new(config.fanouts.clone());
    let mut model_rng = StdRng::seed_from_u64(config.seed ^ 0x51ee_7d00_c0de_cafe);
    let model = GnnModel::new(
        ModelKind::GraphSage,
        features.dim(),
        config.hidden_dim,
        config.num_classes,
        config.fanouts.len(),
        &mut model_rng,
    );
    let mut targets = TargetSampler::new(
        (0..graph.num_vertices() as u32).collect(),
        config.zipf_exponent,
        0,
        0,
    );
    if config.classes.mix[0] > 0.0 {
        targets = targets.with_interactive_boost(config.classes.interactive_boost);
    }
    let mut classes = ClassSampler::new(config.classes.mix, config.seed ^ 0x0bad_cafe_f00d_beef);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0bad_cafe_f00d_beef);

    let groups = detect_cliques(server.nvlink());
    let part = LdgPartitioner::default().partition(graph, groups.len());
    // One batch of backlog per GPU is the probe's saturation point: a
    // clique whose projected depths all reach it spills, exactly like a
    // saturated admission queue in the engine.
    let spill_len = config.max_batch.max(1);
    let mut dispatcher = Dispatcher::new(groups, graph.num_vertices(), spill_len);
    for g in 0..dispatcher.num_groups() {
        let owned: Vec<VertexId> = (0..graph.num_vertices() as VertexId)
            .filter(|&v| part[v as usize] as usize == g)
            .collect();
        dispatcher.refresh_group(g, &owned);
    }

    let mut fifos: Vec<legion_cache::FifoCache> = (0..num_gpus)
        .map(|_| legion_cache::FifoCache::new(config.cache_rows_per_gpu))
        .collect();
    let row_bytes = features.row_bytes();
    let row_tx = server.pcie().transactions_for_payload(row_bytes);
    // One probe store per GPU, like the engine's per-worker stores.
    let mut stores: Vec<Option<ProbeStore>> = (0..num_gpus)
        .map(|_| ProbeStore::new(config, graph.num_vertices(), row_bytes))
        .collect();
    let mut lens = vec![0usize; num_gpus];
    let mut probe: Vec<VertexId> = Vec::new();
    let mut per_gpu: Vec<Vec<u32>> = vec![Vec::new(); num_gpus];

    const WARMUP_BATCHES: usize = 8;
    const PROBES: usize = 4;
    let mut total = 0.0f64;
    for i in 0..WARMUP_BATCHES + PROBES {
        for sub in &mut per_gpu {
            sub.clear();
        }
        lens.fill(0);
        for _ in 0..num_gpus * config.max_batch {
            let t = targets.next_for_class(classes.sample(), &mut rng);
            probe.clear();
            probe.push(t);
            probe.extend(
                graph
                    .neighbors(t)
                    .iter()
                    .take(config.router.probe_neighbors)
                    .copied(),
            );
            // Projected depths, exactly like the sharded coordinator:
            // each placement deepens its GPU, spreading a clique's
            // round across its members and spilling past one batch.
            let dec = dispatcher.route(&probe, &lens);
            lens[dec.gpu] += 1;
            per_gpu[dec.gpu].push(t);
        }
        let mut round = 0.0f64;
        for (gpu, seeds) in per_gpu.iter_mut().enumerate() {
            if seeds.is_empty() {
                continue;
            }
            // Same dedupe as the engine: duplicate targets expand once.
            seeds.sort_unstable();
            seeds.dedup();
            let topo_before = server.pcm().gpu_kind(gpu, TrafficKind::Topology);
            let sample = sampler.sample_batch(&engine, gpu, seeds, &mut rng, None);
            let topo_tx = server.pcm().gpu_kind(gpu, TrafficKind::Topology) - topo_before;
            let mut feat_miss = 0u64;
            for &v in &sample.all_vertices {
                if !fifos[gpu].access(v) {
                    feat_miss += 1;
                    if let Some(s) = stores[gpu].as_mut() {
                        s.miss(v);
                    }
                }
            }
            let feat_tx = feat_miss * row_tx;
            let stage_t = stores[gpu].as_mut().map_or(0.0, ProbeStore::stage_seconds);
            let sample_t = time_model.sample_seconds(topo_tx, sample.total_edges() as u64);
            let extract_t = time_model.extract_seconds(feat_tx, 0) + stage_t;
            let service =
                sample_t.max(extract_t) + time_model.train_seconds(model.inference_flops(&sample));
            round = round.max(service);
        }
        if i >= WARMUP_BATCHES {
            total += round;
        }
    }
    server.reset();
    let mean_round = total / PROBES as f64;
    assert!(
        mean_round > 0.0,
        "routed probe rounds took no simulated time"
    );
    num_gpus as f64 * config.max_batch as f64 / mean_round
}

/// Runs `base` at each multiplier of `capacity_rps`, preserving the
/// arrival-process shape (Poisson stays Poisson, bursty stays bursty)
/// while scaling its mean rate.
pub fn run_sweep(
    graph: &CsrGraph,
    features: &FeatureTable,
    server: &MultiGpuServer,
    base: &ServeConfig,
    capacity_rps: f64,
    multipliers: &[f64],
) -> Vec<LoadPoint> {
    assert!(capacity_rps > 0.0, "capacity must be positive");
    multipliers
        .iter()
        .map(|&m| {
            let offered_rps = m * capacity_rps;
            let mut config = base.clone();
            config.arrival = base.arrival.scaled(offered_rps / base.arrival.mean_rate());
            let report = serve(graph, features, server, &config);
            LoadPoint {
                policy: config.policy.as_str(),
                load_multiplier: m,
                offered_rps,
                offered: report.offered,
                completed: report.completed,
                shed: report.shed,
                throughput_rps: report.throughput_rps,
                p50_us: report.p50_us,
                p95_us: report.p95_us,
                p99_us: report.p99_us,
                slo_attainment: report.slo_attainment,
                class_p99_us: report.class_p99_us,
                class_slo_attainment: report.class_slo_attainment,
                class_shed: report.class_shed,
                routed: report.routed,
                spilled: report.spilled,
                route_locality: report.route_locality,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_policy::PolicyKind;
    use crate::workload::ArrivalProcess;
    use legion_graph::GraphBuilder;
    use legion_hw::ServerSpec;

    fn fixture() -> (CsrGraph, FeatureTable, ServeConfig) {
        let mut b = GraphBuilder::new(128);
        for v in 0..128u32 {
            for d in 1..5u32 {
                b.push_edge(v, (v + d * 11) % 128);
            }
        }
        let config = ServeConfig {
            num_requests: 150,
            max_batch: 8,
            max_wait: 5e-4,
            queue_capacity: 64,
            cache_rows_per_gpu: 16,
            warmup_requests: 32,
            fanouts: vec![3, 2],
            policy: PolicyKind::Fifo,
            ..ServeConfig::default()
        };
        (b.build(), FeatureTable::zeros(128, 16), config)
    }

    #[test]
    fn capacity_probe_is_positive_deterministic_and_traceless() {
        let (g, f, config) = fixture();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let a = estimate_capacity_rps(&g, &f, &server, &config);
        let b = estimate_capacity_rps(&g, &f, &server, &config);
        assert!(a > 0.0);
        assert_eq!(a, b);
        assert_eq!(server.pcm().total(), 0, "probe must reset the server");
    }

    #[test]
    fn sweep_scales_offered_load_and_saturates() {
        let (g, f, config) = fixture();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let capacity = estimate_capacity_rps(&g, &f, &server, &config);
        let points = run_sweep(&g, &f, &server, &config, capacity, &[0.3, 2.0]);
        assert_eq!(points.len(), 2);
        assert!(points[0].offered_rps < points[1].offered_rps);
        assert!(points.iter().all(|p| p.policy == "fifo"));
        assert!(points.iter().all(|p| p.completed + p.shed == p.offered));
        assert!(
            points[1].p99_us >= points[0].p99_us,
            "overload tail {} must not beat light load {}",
            points[1].p99_us,
            points[0].p99_us
        );
    }

    /// Reference reimplementation of the original single-class probe
    /// loop (before class-aware seeding). The class-aware probe with
    /// the default `[0, 1, 0]` mix must reproduce it bit-for-bit: the
    /// class stream lives on its own RNG and a `Standard` draw consumes
    /// exactly one uniform from the main stream, same as before.
    fn legacy_probe(
        graph: &CsrGraph,
        features: &FeatureTable,
        server: &MultiGpuServer,
        config: &ServeConfig,
    ) -> f64 {
        use legion_gnn::{GnnModel, ModelKind};
        use legion_hw::pcm::TrafficKind;
        use legion_pipeline::TimeModel;
        use legion_sampling::access::{AccessEngine, CacheLayout, TopologyPlacement};
        use legion_sampling::KHopSampler;

        server.reset();
        let layout = CacheLayout::none(server.num_gpus());
        let engine = AccessEngine::new(graph, features, &layout, server, TopologyPlacement::CpuUva);
        let time_model = TimeModel::new(server.spec());
        let sampler = KHopSampler::new(config.fanouts.clone());
        let mut model_rng = StdRng::seed_from_u64(config.seed ^ 0x51ee_7d00_c0de_cafe);
        let model = GnnModel::new(
            ModelKind::GraphSage,
            features.dim(),
            config.hidden_dim,
            config.num_classes,
            config.fanouts.len(),
            &mut model_rng,
        );
        let mut targets = TargetSampler::new(
            (0..graph.num_vertices() as u32).collect(),
            config.zipf_exponent,
            0,
            0,
        );
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0bad_cafe_f00d_beef);
        let mut fifo = legion_cache::FifoCache::new(config.cache_rows_per_gpu);
        let row_tx = server.pcie().transactions_for_payload(features.row_bytes());
        let mut total = 0.0f64;
        for i in 0..12 {
            let mut seeds: Vec<u32> = (0..config.max_batch)
                .map(|_| targets.next(&mut rng))
                .collect();
            seeds.sort_unstable();
            seeds.dedup();
            let topo_before = server.pcm().gpu_kind(0, TrafficKind::Topology);
            let sample = sampler.sample_batch(&engine, 0, &seeds, &mut rng, None);
            let topo_tx = server.pcm().gpu_kind(0, TrafficKind::Topology) - topo_before;
            let feat_tx: u64 = sample
                .all_vertices
                .iter()
                .filter(|&&v| !fifo.access(v))
                .count() as u64
                * row_tx;
            if i < 8 {
                continue;
            }
            let sample_t = time_model.sample_seconds(topo_tx, sample.total_edges() as u64);
            let extract_t = time_model.extract_seconds(feat_tx, 0);
            total +=
                sample_t.max(extract_t) + time_model.train_seconds(model.inference_flops(&sample));
        }
        server.reset();
        server.num_gpus() as f64 * config.max_batch as f64 / (total / 4.0)
    }

    #[test]
    fn legacy_probe_is_byte_identical_for_single_class() {
        let (g, f, config) = fixture();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let new = estimate_capacity_rps(&g, &f, &server, &config);
        let old = legacy_probe(&g, &f, &server, &config);
        assert_eq!(new.to_bits(), old.to_bits(), "new {new} vs legacy {old}");
    }

    /// Regression for the mis-anchored router sweeps: with the
    /// residency router on, the probe must route through the
    /// `Dispatcher` (clique-local caches, concurrent GPUs) instead of
    /// timing round-robin single-GPU batches — the two anchors must
    /// differ, and the routed one stays deterministic and traceless.
    #[test]
    fn routed_probe_uses_the_dispatcher_anchor() {
        let (g, f, mut config) = fixture();
        let server = ServerSpec::custom(4, 1 << 30, 2).build();
        let unrouted = estimate_capacity_rps(&g, &f, &server, &config);
        config.router.policy = crate::RouterPolicy::Residency;
        let routed = estimate_capacity_rps(&g, &f, &server, &config);
        let routed_again = estimate_capacity_rps(&g, &f, &server, &config);
        assert!(routed > 0.0);
        assert_eq!(routed.to_bits(), routed_again.to_bits());
        assert_eq!(server.pcm().total(), 0, "probe must reset the server");
        assert_ne!(
            routed.to_bits(),
            unrouted.to_bits(),
            "routed runs must not anchor to the round-robin probe"
        );
    }

    /// The oversubscription anchor: a DRAM-resident store (or one whose
    /// budget holds the whole table) must leave the probe bit-for-bit
    /// unchanged, while a genuinely oversubscribed budget must lower
    /// the estimate — the staging charge is real service time.
    #[test]
    fn probe_accounts_for_nvme_staging_when_oversubscribed() {
        let (g, f, mut config) = fixture();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let resident = estimate_capacity_rps(&g, &f, &server, &config);
        config.store.dram_budget_bytes = Some(u64::MAX);
        let infinite = estimate_capacity_rps(&g, &f, &server, &config);
        assert_eq!(
            resident.to_bits(),
            infinite.to_bits(),
            "a DRAM-resident store must not move the probe"
        );
        // 8 DRAM rows against a 128-vertex table: most misses stage.
        config.store.dram_budget_bytes = Some(8 * f.row_bytes());
        let oversubscribed = estimate_capacity_rps(&g, &f, &server, &config);
        assert!(oversubscribed > 0.0);
        assert!(
            oversubscribed < resident,
            "staging time must lower capacity: {oversubscribed} vs {resident}"
        );
        // The routed probe pays the same charge.
        config.router.policy = crate::RouterPolicy::Residency;
        let routed_over = estimate_capacity_rps(&g, &f, &server, &config);
        config.store.dram_budget_bytes = None;
        let routed_resident = estimate_capacity_rps(&g, &f, &server, &config);
        assert!(
            routed_over < routed_resident,
            "routed probe must charge staging: {routed_over} vs {routed_resident}"
        );
    }

    #[test]
    fn multi_class_probe_differs_and_sweep_exports_class_columns() {
        let (g, f, mut config) = fixture();
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let single = estimate_capacity_rps(&g, &f, &server, &config);
        config.classes.mix = [0.3, 0.4, 0.3];
        config.classes.qos = true;
        let mixed = estimate_capacity_rps(&g, &f, &server, &config);
        assert!(mixed > 0.0);
        assert_ne!(
            single.to_bits(),
            mixed.to_bits(),
            "a multi-class mix reshapes the probe's seed stream"
        );
        let points = run_sweep(&g, &f, &server, &config, mixed, &[2.0]);
        assert_eq!(points[0].class_p99_us.iter().filter(|&&p| p > 0).count(), 3);
        assert!(points[0]
            .class_slo_attainment
            .iter()
            .all(|&a| (0.0..=1.0).contains(&a)));
        assert_eq!(
            points[0].class_shed.iter().sum::<u64>(),
            points[0].shed,
            "class sheds decompose the total"
        );
    }

    #[test]
    fn sweep_preserves_bursty_shape() {
        let (g, f, mut config) = fixture();
        config.arrival = ArrivalProcess::Bursty {
            base_rate: 100.0,
            burst_rate: 400.0,
            period: 0.1,
            burst_fraction: 0.25,
        };
        config.num_requests = 60;
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let points = run_sweep(&g, &f, &server, &config, 1000.0, &[0.5]);
        assert_eq!(points.len(), 1);
        assert!((points[0].offered_rps - 500.0).abs() < 1e-9);
    }
}
