//! Per-request latency accounting and SLO attainment.
//!
//! Every completed request's end-to-end latency (completion minus
//! arrival, in integer microseconds) lands in one shared log-bucketed
//! histogram, from which the run reports p50/p95/p99 and the fraction of
//! requests that met the latency SLO. Integer counters and histogram
//! buckets commute, so the numbers are independent of the order GPUs are
//! simulated in.
//!
//! The steady-state path records through [`SloBatch`], a batch-local
//! tally flushed once per micro-batch — three shared-atomic adds per
//! *batch* instead of three per *request*, which is what lets shard
//! threads complete requests without contending on the shared
//! histogram. Commutativity makes the flushed totals bit-identical to
//! per-request [`SloTracker::record`] calls.

use std::sync::Arc;

use legion_telemetry::{Counter, Histogram, Registry};

/// Log-spaced latency bucket bounds in microseconds, ~1.3x apart from
/// 50 us to ~60 s. Strictly increasing by construction.
pub fn latency_buckets() -> Vec<u64> {
    let mut bounds = Vec::new();
    let mut b = 50u64;
    while b < 60_000_000 {
        bounds.push(b);
        b = ((b as f64) * 1.3).ceil() as u64;
    }
    bounds.push(60_000_000);
    bounds
}

/// Records completed-request latencies against a target SLO.
#[derive(Debug, Clone)]
pub struct SloTracker {
    latency: Histogram,
    completed: Counter,
    slo_ok: Counter,
    slo_us: u64,
}

impl SloTracker {
    /// Registers `serve.latency_us`, `serve.completed` and `serve.slo_ok`
    /// on `registry`, targeting a latency SLO of `slo_us` microseconds.
    pub fn new(registry: &Arc<Registry>, slo_us: u64) -> Self {
        Self::named(registry, "serve", slo_us)
    }

    /// Registers `{prefix}.latency_us`, `{prefix}.completed` and
    /// `{prefix}.slo_ok` — the per-class trackers use prefixes like
    /// `serve.class0` next to the aggregate `serve` tracker.
    pub fn named(registry: &Arc<Registry>, prefix: &str, slo_us: u64) -> Self {
        Self {
            latency: registry.histogram(&format!("{prefix}.latency_us"), &latency_buckets()),
            completed: registry.counter(&format!("{prefix}.completed")),
            slo_ok: registry.counter(&format!("{prefix}.slo_ok")),
            slo_us,
        }
    }

    /// The SLO target in microseconds.
    pub fn slo_us(&self) -> u64 {
        self.slo_us
    }

    /// Records one completed request.
    pub fn record(&self, latency_us: u64) {
        self.latency.observe(latency_us);
        self.completed.inc();
        if latency_us <= self.slo_us {
            self.slo_ok.inc();
        }
    }

    /// A fresh batch-local accumulator sized for this tracker's
    /// histogram.
    pub fn batch(&self) -> SloBatch {
        SloBatch {
            counts: vec![0; self.latency.num_buckets()],
            sum: 0,
            completed: 0,
            slo_ok: 0,
        }
    }

    /// Tallies one completed request into `batch` without touching the
    /// shared atomics. Flush with [`flush`](Self::flush).
    #[inline]
    pub fn record_batched(&self, batch: &mut SloBatch, latency_us: u64) {
        batch.counts[self.latency.bucket_index(latency_us)] += 1;
        batch.sum += latency_us;
        batch.completed += 1;
        if latency_us <= self.slo_us {
            batch.slo_ok += 1;
        }
    }

    /// Merges a batch tally into the shared counters (one atomic add
    /// per non-zero bucket plus three scalars) and clears it for reuse.
    /// The result is bit-identical to the equivalent sequence of
    /// [`record`](Self::record) calls.
    pub fn flush(&self, batch: &mut SloBatch) {
        if batch.completed == 0 {
            return;
        }
        self.latency.merge_counts(&batch.counts, batch.sum);
        self.completed.add(batch.completed);
        self.slo_ok.add(batch.slo_ok);
        batch.counts.fill(0);
        batch.sum = 0;
        batch.completed = 0;
        batch.slo_ok = 0;
    }

    /// Completed requests so far.
    pub fn completed(&self) -> u64 {
        self.completed.get()
    }

    /// The `q`-quantile of recorded latencies, in microseconds.
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.latency.quantile(q)
    }

    /// Fraction of completed requests within the SLO (1.0 when nothing
    /// completed — an idle system violates no SLO).
    pub fn attainment(&self) -> f64 {
        let done = self.completed.get();
        if done == 0 {
            1.0
        } else {
            self.slo_ok.get() as f64 / done as f64
        }
    }
}

/// Batch-local latency tally for one [`SloTracker`]: per-bucket counts
/// plus the completed / SLO-ok scalars, owned by a single worker or
/// shard and flushed at batch boundaries.
#[derive(Debug, Clone)]
pub struct SloBatch {
    counts: Vec<u64>,
    sum: u64,
    completed: u64,
    slo_ok: u64,
}

impl SloBatch {
    /// Requests tallied since the last flush.
    pub fn pending(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_strictly_increasing() {
        let b = latency_buckets();
        assert!(b.len() > 20, "need real resolution, got {}", b.len());
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*b.first().unwrap(), 50);
        assert_eq!(*b.last().unwrap(), 60_000_000);
    }

    #[test]
    fn attainment_counts_only_within_slo() {
        let registry = Arc::new(Registry::new());
        let t = SloTracker::new(&registry, 1000);
        assert_eq!(t.attainment(), 1.0);
        t.record(100);
        t.record(1000);
        t.record(5000);
        t.record(50_000);
        assert_eq!(t.completed(), 4);
        assert!((t.attainment() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn named_trackers_use_their_own_counters() {
        let registry = Arc::new(Registry::new());
        let agg = SloTracker::new(&registry, 1000);
        let class0 = SloTracker::named(&registry, "serve.class0", 500);
        agg.record(100);
        class0.record(100);
        class0.record(900);
        assert_eq!(agg.completed(), 1);
        assert_eq!(class0.completed(), 2);
        assert!((class0.attainment() - 0.5).abs() < 1e-12);
        let snap = registry.snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|c| c.name == "serve.class0.slo_ok"));
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "serve.class0.latency_us"));
    }

    #[test]
    fn batched_recording_is_bit_identical_to_per_request() {
        let registry = Arc::new(Registry::new());
        let scalar = SloTracker::named(&registry, "serve.scalar", 1000);
        let batched = SloTracker::named(&registry, "serve.batched", 1000);
        let latencies = [100u64, 999, 1000, 1001, 40_000, 70_000_000, 3, 250];
        for &l in &latencies {
            scalar.record(l);
        }
        let mut batch = batched.batch();
        for chunk in latencies.chunks(3) {
            for &l in chunk {
                batched.record_batched(&mut batch, l);
            }
            batched.flush(&mut batch);
        }
        assert_eq!(batch.pending(), 0, "flush must clear the tally");
        assert_eq!(scalar.completed(), batched.completed());
        assert_eq!(
            scalar.attainment().to_bits(),
            batched.attainment().to_bits()
        );
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(scalar.quantile_us(q), batched.quantile_us(q));
        }
        let snap = registry.snapshot();
        let hist = |name: &str| {
            snap.histograms
                .iter()
                .find(|h| h.name == name)
                .expect("registered")
                .clone()
        };
        assert_eq!(
            hist("serve.scalar.latency_us").counts,
            hist("serve.batched.latency_us").counts
        );
    }

    #[test]
    fn quantiles_track_the_recorded_distribution() {
        let registry = Arc::new(Registry::new());
        let t = SloTracker::new(&registry, 1000);
        for _ in 0..99 {
            t.record(200);
        }
        t.record(2_000_000);
        assert!(t.quantile_us(0.5) < 400);
        assert!(t.quantile_us(0.999) > 100_000);
    }
}
