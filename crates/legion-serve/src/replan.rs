//! Online cache re-planning: the §4.2/§4.3 planner closed into a loop.
//!
//! Legion plans its unified cache once, offline, from pre-sampled
//! hotness. Under serving drift that plan decays (PR 2's experiment), so
//! this module re-runs the same planning machinery — CSLP ordering plus
//! the `(B, α)` cost-model sweep — over a *sliding window* of observed
//! accesses, and swaps the produced plan in without ever exposing a
//! half-updated cache:
//!
//! * [`WindowEstimator`] — a ring of epoch-style buckets; each bucket
//!   holds its own sparse per-vertex deltas so retiring it subtracts
//!   exactly what it added from the aggregate [`HotnessMatrix`] pair
//!   (the window's `H_T` / `H_F`) and the windowed `N_TSUM`;
//! * [`DriftDetector`] — either a hit-rate EWMA dropping below the best
//!   level seen since the last swap, or the overlap between the window's
//!   top-k feature vertices and the active plan's cached set falling
//!   under a threshold;
//! * [`plan_layout`] — CSLP + [`CostModel::best_plan`] over the window,
//!   materialized as a single-GPU [`CliqueCache`] holding both topology
//!   and feature entries (the serving analogue of Algorithm 1's output);
//! * [`PlanBuffer`] — a versioned double buffer: a staged plan becomes
//!   visible only at a batch boundary via [`PlanBuffer::commit`], so
//!   every request is served entirely against one plan version;
//! * [`ReplanState`] — the per-GPU controller gluing the above together
//!   for the engine loop.
//!
//! The swap is not free: the engine charges the refill (rows and
//! adjacency lists absent from the previous plan) to the PCIe meters as
//! real CPU→GPU traffic and adds the transfer time to the committing
//! batch's service time.

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::SeedableRng;

use legion_cache::{cslp, CliqueCache, CostModel, HotnessMatrix, PlanEvaluation};
use legion_graph::{CsrGraph, FeatureTable, VertexId};
use legion_hw::GpuId;
use legion_sampling::access::{sample_from, CacheLayout};

use crate::workload::TargetSampler;

/// How a serving GPU decides its cache plan has gone stale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftDetector {
    /// Trigger when the EWMA of per-bucket feature hit rates falls more
    /// than `drop` below the best EWMA seen since the last swap.
    HitRateEwma {
        /// EWMA smoothing factor in `(0, 1]` (1 = last bucket only).
        alpha: f64,
        /// Tolerated hit-rate drop before re-planning, in absolute
        /// hit-rate points (0.15 = 15 points).
        drop: f64,
    },
    /// Trigger when fewer than `min_overlap` of the window's `top_k`
    /// hottest feature vertices are present in the active plan's feature
    /// cache — a rank-overlap proxy for the window-vs-plan correlation.
    RankOverlap {
        /// How many of the window's hottest feature vertices to check.
        top_k: usize,
        /// Minimum tolerated overlap fraction in `[0, 1]`.
        min_overlap: f64,
    },
}

/// Knobs of the re-planning loop; see module docs for the moving parts.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanConfig {
    /// Requests per window bucket (the window's time resolution).
    pub bucket_requests: usize,
    /// Buckets the sliding window retains; older buckets retire.
    pub window_buckets: usize,
    /// The drift-detection rule.
    pub detector: DriftDetector,
    /// Sealed buckets that must pass after a swap before the detector
    /// may stage another plan (limits churn while a swap takes effect).
    pub cooldown_buckets: usize,
    /// `Δα` of the re-planning cost-model sweep (coarser than the
    /// offline default 0.01 — re-planning runs on the serving path).
    pub delta_alpha: f64,
    /// How far below the all-time-high hit-rate watermark the rate may
    /// sit and still count as recovered (0.05 = within 5 points). The
    /// watermark — unlike the drop-detection reference — never resets,
    /// so the recovery bar cannot erode across successive episodes.
    pub recover_margin: f64,
    /// Re-plans allowed per drift episode (the detection-time plan plus
    /// refinements from fresher windows). When the cap is hit without
    /// the hit rate reaching the recovery target, the episode closes and
    /// the detector re-baselines on the plan it has — the target may
    /// simply be unreachable under the new skew.
    pub max_episode_replans: usize,
}

impl Default for ReplanConfig {
    fn default() -> Self {
        Self {
            bucket_requests: 16,
            window_buckets: 4,
            detector: DriftDetector::HitRateEwma {
                alpha: 0.5,
                drop: 0.08,
            },
            cooldown_buckets: 1,
            delta_alpha: 0.05,
            recover_margin: 0.05,
            max_episode_replans: 4,
        }
    }
}

impl ReplanConfig {
    /// Checks the invariants [`ReplanState`] relies on.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on the first violated invariant.
    pub fn validate(&self) {
        assert!(self.bucket_requests > 0, "bucket_requests must be positive");
        assert!(self.window_buckets > 0, "window_buckets must be positive");
        assert!(
            self.delta_alpha > 0.0 && self.delta_alpha <= 1.0,
            "delta_alpha must be in (0, 1]"
        );
        assert!(self.recover_margin >= 0.0, "recover_margin must be >= 0");
        assert!(
            self.max_episode_replans > 0,
            "max_episode_replans must be positive"
        );
        match self.detector {
            DriftDetector::HitRateEwma { alpha, drop } => {
                assert!(alpha > 0.0 && alpha <= 1.0, "ewma alpha must be in (0, 1]");
                assert!(drop > 0.0, "ewma drop must be positive");
            }
            DriftDetector::RankOverlap { top_k, min_overlap } => {
                assert!(top_k > 0, "rank-overlap top_k must be positive");
                assert!(
                    (0.0..=1.0).contains(&min_overlap),
                    "min_overlap must be in [0, 1]"
                );
            }
        }
    }
}

/// One bucket of the sliding window: sparse per-vertex deltas plus the
/// bucket's own traffic/hit tallies, kept so retirement can subtract
/// exactly this bucket's contribution from the window aggregates.
#[derive(Debug, Default)]
struct Bucket {
    topo: HashMap<VertexId, u64>,
    feat: HashMap<VertexId, u64>,
    topo_tx: u64,
    hits: u64,
    misses: u64,
    requests: usize,
}

/// Per-bucket hit statistics returned when a bucket seals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketStats {
    /// Feature hit rate of the sealed bucket alone.
    pub hit_rate: f64,
}

/// Sliding-window access-frequency estimator: the serving-time stand-in
/// for pre-sampling's `H_T` / `H_F` / `N_TSUM` triple (§4.2.2), windowed
/// so old skew ages out instead of diluting the estimate forever.
#[derive(Debug)]
pub struct WindowEstimator {
    bucket_requests: usize,
    window_buckets: usize,
    /// Aggregate windowed `H_T` (1 row: this GPU).
    topo: HotnessMatrix,
    /// Aggregate windowed `H_F`.
    feat: HotnessMatrix,
    /// Windowed `N_TSUM`: topology PCIe transactions in the window.
    n_tsum: u64,
    hits: u64,
    misses: u64,
    ring: VecDeque<Bucket>,
    current: Bucket,
}

impl WindowEstimator {
    /// An empty window over a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize, bucket_requests: usize, window_buckets: usize) -> Self {
        assert!(bucket_requests > 0, "bucket_requests must be positive");
        assert!(window_buckets > 0, "window_buckets must be positive");
        Self {
            bucket_requests,
            window_buckets,
            topo: HotnessMatrix::new(1, num_vertices),
            feat: HotnessMatrix::new(1, num_vertices),
            n_tsum: 0,
            hits: 0,
            misses: 0,
            ring: VecDeque::new(),
            current: Bucket::default(),
        }
    }

    /// Records one traversed edge whose source is `v` (the `H_T` rule:
    /// "whenever an edge is traversed ... the hotness of its source
    /// vertex is incremented by 1").
    pub fn note_edge(&mut self, v: VertexId) {
        self.topo.add(0, v, 1);
        *self.current.topo.entry(v).or_insert(0) += 1;
    }

    /// Records one vertex appearing in a batch's sample results (the
    /// `H_F` rule).
    pub fn note_feature(&mut self, v: VertexId) {
        self.feat.add(0, v, 1);
        *self.current.feat.entry(v).or_insert(0) += 1;
    }

    /// Records a completed batch's request count, feature hit/miss deltas
    /// and topology PCIe transactions.
    pub fn note_batch(&mut self, requests: usize, hits: u64, misses: u64, topo_tx: u64) {
        self.current.requests += requests;
        self.current.hits += hits;
        self.current.misses += misses;
        self.current.topo_tx += topo_tx;
        self.n_tsum += topo_tx;
        self.hits += hits;
        self.misses += misses;
    }

    /// Seals the current bucket if it has accumulated `bucket_requests`
    /// requests, retiring the oldest bucket when the ring is full.
    pub fn seal_if_due(&mut self) -> Option<BucketStats> {
        if self.current.requests < self.bucket_requests {
            return None;
        }
        let sealed = std::mem::take(&mut self.current);
        let served = sealed.hits + sealed.misses;
        let hit_rate = if served == 0 {
            0.0
        } else {
            sealed.hits as f64 / served as f64
        };
        self.ring.push_back(sealed);
        if self.ring.len() > self.window_buckets {
            let old = self.ring.pop_front().expect("ring non-empty");
            for (&v, &c) in &old.topo {
                self.topo.sub(0, v, c);
            }
            for (&v, &c) in &old.feat {
                self.feat.sub(0, v, c);
            }
            self.n_tsum -= old.topo_tx;
            self.hits -= old.hits;
            self.misses -= old.misses;
        }
        Some(BucketStats { hit_rate })
    }

    /// The windowed topology hotness matrix (1 GPU row).
    pub fn topo(&self) -> &HotnessMatrix {
        &self.topo
    }

    /// The windowed feature hotness matrix (1 GPU row).
    pub fn feat(&self) -> &HotnessMatrix {
        &self.feat
    }

    /// The windowed `N_TSUM` (topology transactions over live buckets
    /// plus the still-open bucket).
    pub fn n_tsum(&self) -> u64 {
        self.n_tsum
    }

    /// Feature hit rate over the whole window (live buckets plus the
    /// still-open one); 0 when nothing was served yet.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.misses;
        if served == 0 {
            0.0
        } else {
            self.hits as f64 / served as f64
        }
    }

    /// The window's `top_k` hottest feature vertices (ties break toward
    /// the smaller vertex id), used by [`DriftDetector::RankOverlap`].
    pub fn top_feature_vertices(&self, top_k: usize) -> Vec<VertexId> {
        let row = self.feat.row(0);
        let mut hot: Vec<VertexId> = row
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h > 0)
            .map(|(v, _)| v as VertexId)
            .collect();
        hot.sort_by(|&a, &b| row[b as usize].cmp(&row[a as usize]).then(a.cmp(&b)));
        hot.truncate(top_k);
        hot
    }
}

/// What one re-planned cache holds, recorded so a later swap can compute
/// its refill delta and memory footprint without walking the cache maps.
#[derive(Debug, Clone)]
pub struct PlanContents {
    /// Vertices with cached topology, ascending.
    pub topo: Vec<VertexId>,
    /// Vertices with cached feature rows, ascending.
    pub feat: Vec<VertexId>,
    /// Equation 3 bytes of the cached topology.
    pub topo_bytes: u64,
    /// Equation 6 bytes of the cached feature rows.
    pub feat_bytes: u64,
}

impl PlanContents {
    /// Total cache footprint in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.topo_bytes + self.feat_bytes
    }
}

/// One materialized cache plan: the layout the access engine serves
/// from, its contents summary, and the cost model's prediction for it.
#[derive(Debug)]
pub struct Plan {
    /// Cache layout (a single-GPU clique at the owning GPU's slot).
    pub layout: CacheLayout,
    /// What the plan caches.
    pub contents: PlanContents,
    /// The `(B, α)` evaluation that chose this plan.
    pub evaluation: PlanEvaluation,
}

/// The refill work a committed swap implies: entries the new plan holds
/// that the old one did not, plus the footprint change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapDelta {
    /// Topology vertices to fetch fresh from CPU memory, ascending.
    pub new_topo: Vec<VertexId>,
    /// Feature vertices to fetch fresh from CPU memory, ascending.
    pub new_feat: Vec<VertexId>,
    /// Footprint of the retired plan.
    pub old_bytes: u64,
    /// Footprint of the now-active plan.
    pub new_bytes: u64,
}

/// Versioned double-buffered plan holder. [`stage`](Self::stage) parks a
/// new plan without touching the active one; [`commit`](Self::commit)
/// swaps atomically and bumps the version. The engine commits only at
/// batch boundaries, so no request ever observes a mixed old/new view.
#[derive(Debug)]
pub struct PlanBuffer {
    version: u64,
    active: Plan,
    staged: Option<Plan>,
}

impl PlanBuffer {
    /// A buffer whose active plan is `initial` (version 0, nothing
    /// staged).
    pub fn new(initial: Plan) -> Self {
        Self {
            version: 0,
            active: initial,
            staged: None,
        }
    }

    /// Monotone plan version; bumped by every [`commit`](Self::commit).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The plan requests are currently served against.
    pub fn active(&self) -> &Plan {
        &self.active
    }

    /// The active plan's cache layout.
    pub fn active_layout(&self) -> &CacheLayout {
        &self.active.layout
    }

    /// Whether a staged plan awaits the next batch boundary.
    pub fn has_staged(&self) -> bool {
        self.staged.is_some()
    }

    /// Parks `plan` for the next commit; replaces any prior staged plan.
    pub fn stage(&mut self, plan: Plan) {
        self.staged = Some(plan);
    }

    /// Promotes the staged plan (if any) to active, returning the refill
    /// delta the caller must charge to the interconnect meters.
    pub fn commit(&mut self) -> Option<SwapDelta> {
        let staged = self.staged.take()?;
        let delta = SwapDelta {
            new_topo: sorted_difference(&staged.contents.topo, &self.active.contents.topo),
            new_feat: sorted_difference(&staged.contents.feat, &self.active.contents.feat),
            old_bytes: self.active.contents.total_bytes(),
            new_bytes: staged.contents.total_bytes(),
        };
        self.active = staged;
        self.version += 1;
        Some(delta)
    }
}

/// Elements of sorted `a` absent from sorted `b` (two-pointer merge).
fn sorted_difference(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::new();
    let mut j = 0usize;
    for &v in a {
        while j < b.len() && b[j] < v {
            j += 1;
        }
        if j >= b.len() || b[j] != v {
            out.push(v);
        }
    }
    out
}

/// Runs the planning pass over one GPU's windowed hotness: CSLP orders
/// the candidates (Algorithm 1 with a one-GPU "clique"), the cost model
/// sweeps `α` (§4.3.3), and the winning `(B, α)` prefix of each order is
/// materialized into a fresh [`CliqueCache`] holding topology *and*
/// feature entries. Zero-hotness vertices are never cached even when the
/// budget would admit them.
#[allow(clippy::too_many_arguments)]
pub fn plan_layout(
    gpu: GpuId,
    num_gpus: usize,
    graph: &CsrGraph,
    features: &FeatureTable,
    topo: &HotnessMatrix,
    feat: &HotnessMatrix,
    n_tsum: u64,
    budget: u64,
    delta_alpha: f64,
    cls: u64,
) -> Plan {
    let t = cslp(topo);
    let f = cslp(feat);
    let model = CostModel::new(
        graph,
        &t.clique_order,
        &t.accumulated,
        &f.clique_order,
        &f.accumulated,
        n_tsum,
        features.dim(),
        cls,
    );
    let evaluation = model.best_plan(budget, delta_alpha);
    let mut cc = CliqueCache::new(vec![gpu], graph.num_vertices(), features.dim());
    let mut topo_set = Vec::new();
    for &v in t.clique_order.iter().take(evaluation.topo_cached_vertices) {
        if t.accumulated[v as usize] == 0 {
            break;
        }
        cc.insert_topology(0, v, graph.neighbors(v));
        topo_set.push(v);
    }
    let mut feat_set = Vec::new();
    for &v in f.clique_order.iter().take(evaluation.feat_cached_vertices) {
        if f.accumulated[v as usize] == 0 {
            break;
        }
        cc.insert_feature(0, v, features.row(v));
        feat_set.push(v);
    }
    topo_set.sort_unstable();
    feat_set.sort_unstable();
    let contents = PlanContents {
        topo_bytes: cc.cache(0).topology_bytes(),
        feat_bytes: cc.cache(0).feature_bytes(),
        topo: topo_set,
        feat: feat_set,
    };
    Plan {
        layout: CacheLayout::from_cliques(num_gpus, vec![cc]),
        contents,
        evaluation,
    }
}

/// CPU-side warmup profile standing in for pre-sampling (§4.2.2 S1)
/// before any live traffic exists: windowed `H_T` / `H_F` hotness plus
/// an analytic `N_TSUM` (one offset transaction plus one per sampled
/// edge, the UVA charge of `legion-sampling`'s CPU fallback path).
#[derive(Debug, Clone)]
pub struct WarmupProfile {
    /// Profiled topology hotness (1 row).
    pub topo: HotnessMatrix,
    /// Profiled feature hotness (1 row).
    pub feat: HotnessMatrix,
    /// Analytic topology transaction total of the profile.
    pub n_tsum: u64,
}

/// Profiles `warmup_requests` request neighborhoods on the CPU-resident
/// graph (no simulated traffic is charged — this is an offline planning
/// step, like [`warmup_hot_vertices`](crate::cache_policy::warmup_hot_vertices)).
pub fn profile_warmup(
    graph: &CsrGraph,
    targets: &mut TargetSampler,
    warmup_requests: usize,
    fanouts: &[usize],
    seed: u64,
) -> WarmupProfile {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7e57_ab1e_5eed_0001);
    let n = graph.num_vertices();
    let mut topo = HotnessMatrix::new(1, n);
    let mut feat = HotnessMatrix::new(1, n);
    let mut n_tsum = 0u64;
    for _ in 0..warmup_requests {
        let target = targets.next(&mut rng);
        let mut touched = vec![target];
        let mut frontier = vec![target];
        for &fanout in fanouts {
            let mut next = Vec::new();
            for &v in &frontier {
                let edges_read = (graph.degree(v) as usize).min(fanout) as u64;
                topo.add(0, v, edges_read);
                n_tsum += 1 + edges_read;
                next.extend(sample_from(graph.neighbors(v), fanout, &mut rng));
            }
            next.sort_unstable();
            next.dedup();
            touched.extend_from_slice(&next);
            frontier = next;
        }
        touched.sort_unstable();
        touched.dedup();
        for &v in &touched {
            feat.add(0, v, 1);
        }
    }
    WarmupProfile { topo, feat, n_tsum }
}

/// What a sealed bucket told the controller, for the engine to export as
/// telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketOutcome {
    /// The sealed bucket's own feature hit rate.
    pub bucket_hit_rate: f64,
    /// Feature hit rate over the full window after sealing.
    pub window_hit_rate: f64,
    /// Simulated seconds from drift detection to recovery, when this
    /// bucket's hit rate first climbed back above the recovery target.
    pub recovered_after: Option<f64>,
    /// Whether this seal staged a new plan.
    pub staged: bool,
}

/// Per-GPU re-planning controller: owns the window, the plan buffer and
/// the detector state. The engine calls [`commit`](Self::commit) at the
/// top of every batch and [`roll`](Self::roll) after metering it.
#[derive(Debug)]
pub struct ReplanState {
    /// The sliding-window hotness estimator.
    pub window: WindowEstimator,
    /// The double-buffered plan.
    pub plan: PlanBuffer,
    config: ReplanConfig,
    gpu: GpuId,
    num_gpus: usize,
    budget: u64,
    cls: u64,
    ewma: Option<f64>,
    reference: f64,
    watermark: f64,
    buckets_since_swap: usize,
    drift_at: Option<f64>,
    recover_target: f64,
    episode_replans: usize,
}

impl ReplanState {
    /// A controller for `gpu` starting from `initial` (normally a
    /// [`profile_warmup`]-derived plan), re-planning against `budget`
    /// bytes at PCIe cache-line size `cls`.
    pub fn new(
        config: ReplanConfig,
        initial: Plan,
        num_vertices: usize,
        gpu: GpuId,
        num_gpus: usize,
        budget: u64,
        cls: u64,
    ) -> Self {
        config.validate();
        let window =
            WindowEstimator::new(num_vertices, config.bucket_requests, config.window_buckets);
        Self {
            window,
            plan: PlanBuffer::new(initial),
            config,
            gpu,
            num_gpus,
            budget,
            cls,
            ewma: None,
            reference: 0.0,
            watermark: 0.0,
            buckets_since_swap: 0,
            drift_at: None,
            recover_target: 0.0,
            episode_replans: 0,
        }
    }

    /// Promotes any staged plan (batch-boundary swap), resetting the
    /// detector's cooldown and its hit-rate baseline: the EWMA and the
    /// reference restart from the new plan's own behavior, so a lucky
    /// early bucket under the old plan cannot keep the detector
    /// permanently tripped. Returns the refill delta to charge.
    pub fn commit(&mut self) -> Option<SwapDelta> {
        let delta = self.plan.commit();
        if delta.is_some() {
            self.buckets_since_swap = 0;
            self.ewma = None;
            self.reference = 0.0;
        }
        delta
    }

    /// Advances the controller after a metered batch at simulated time
    /// `now`: seals a due bucket, updates the EWMA and recovery state,
    /// and stages a re-planned cache when the detector fires.
    pub fn roll(
        &mut self,
        now: f64,
        graph: &CsrGraph,
        features: &FeatureTable,
    ) -> Option<BucketOutcome> {
        let stats = self.window.seal_if_due()?;
        let rate = stats.hit_rate;
        let smoothing = match self.config.detector {
            DriftDetector::HitRateEwma { alpha, .. } => alpha,
            DriftDetector::RankOverlap { .. } => 0.5,
        };
        let ewma = match self.ewma {
            None => rate,
            Some(prev) => smoothing * rate + (1.0 - smoothing) * prev,
        };
        self.ewma = Some(ewma);
        let recovered_after = match self.drift_at {
            Some(t0) if rate >= self.recover_target => {
                self.drift_at = None;
                self.episode_replans = 0;
                Some(now - t0)
            }
            _ => None,
        };
        self.reference = self.reference.max(ewma);
        self.watermark = self.watermark.max(ewma);
        self.buckets_since_swap += 1;
        let drifted = match self.config.detector {
            DriftDetector::HitRateEwma { drop, .. } => ewma < self.reference - drop,
            DriftDetector::RankOverlap { top_k, min_overlap } => {
                let top = self.window.top_feature_vertices(top_k);
                if top.is_empty() {
                    false
                } else {
                    let cached = &self.plan.active().contents.feat;
                    let overlap = top
                        .iter()
                        .filter(|v| cached.binary_search(v).is_ok())
                        .count();
                    (overlap as f64 / top.len() as f64) < min_overlap
                }
            }
        };
        // An episode that exhausted its re-plan budget without reaching
        // the recovery target closes here: the target is unreachable
        // under the new skew, so the detector re-baselines on the plan
        // it has instead of churning forever.
        if self.drift_at.is_some() && self.episode_replans >= self.config.max_episode_replans {
            self.drift_at = None;
            self.episode_replans = 0;
        }
        // Stage on a fresh detector trip, and also *refine* while an
        // episode is open (drifted but not yet recovered): the plan
        // staged at detection time was built from a window still partly
        // covering pre-drift traffic, so later re-plans from an
        // ever-fresher window keep improving until the hit rate climbs
        // back to the recovery target.
        let mut staged = false;
        if (drifted || self.drift_at.is_some())
            && !self.plan.has_staged()
            && self.buckets_since_swap > self.config.cooldown_buckets
        {
            let plan = plan_layout(
                self.gpu,
                self.num_gpus,
                graph,
                features,
                self.window.topo(),
                self.window.feat(),
                self.window.n_tsum(),
                self.budget,
                self.config.delta_alpha,
                self.cls,
            );
            if std::env::var("LEGION_REPLAN_DEBUG").is_ok() {
                eprintln!(
                    "[replan gpu{} t={now:.4}] rate {rate:.3} ewma {ewma:.3} ref {:.3} | alpha {:.2} topo {} feat {} (active feat {})",
                    self.gpu,
                    self.reference,
                    plan.evaluation.alpha,
                    plan.contents.topo.len(),
                    plan.contents.feat.len(),
                    self.plan.active().contents.feat.len(),
                );
            }
            self.plan.stage(plan);
            if self.drift_at.is_none() {
                self.drift_at = Some(now);
                // Recovery is judged against the all-time watermark, not
                // the (commit-reset) drop reference: a reference that
                // rebuilt from a degraded plan would lower the bar every
                // episode, letting refinement stop earlier at a worse
                // plan each phase.
                self.recover_target = self.watermark - self.config.recover_margin;
                self.episode_replans = 0;
            }
            self.episode_replans += 1;
            staged = true;
        }
        Some(BucketOutcome {
            bucket_hit_rate: rate,
            window_hit_rate: self.window.hit_rate(),
            recovered_after,
            staged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_graph::GraphBuilder;

    fn ring_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u32 {
            b.push_edge(v, (v + 1) % n as u32);
            b.push_edge(v, (v + 2) % n as u32);
        }
        b.build()
    }

    fn hot_matrices(n: usize, hot: &[(VertexId, u64)]) -> (HotnessMatrix, HotnessMatrix) {
        let mut t = HotnessMatrix::new(1, n);
        let mut f = HotnessMatrix::new(1, n);
        for &(v, h) in hot {
            t.add(0, v, h);
            f.add(0, v, h);
        }
        (t, f)
    }

    fn plan_for(hot: &[(VertexId, u64)], budget: u64) -> Plan {
        let g = ring_graph(16);
        let feats = FeatureTable::zeros(16, 4);
        let (t, f) = hot_matrices(16, hot);
        plan_layout(0, 1, &g, &feats, &t, &f, 100, budget, 0.25, 64)
    }

    #[test]
    fn window_retires_buckets_exactly() {
        let mut w = WindowEstimator::new(8, 2, 2);
        // Bucket 1: vertex 3 twice.
        w.note_edge(3);
        w.note_edge(3);
        w.note_feature(3);
        w.note_batch(2, 1, 1, 10);
        assert!(w.seal_if_due().is_some());
        // Buckets 2 and 3: vertex 5.
        for _ in 0..2 {
            w.note_edge(5);
            w.note_feature(5);
            w.note_batch(2, 2, 0, 4);
            assert!(w.seal_if_due().is_some());
        }
        // Bucket 1 retired: vertex 3's contribution is fully gone.
        assert_eq!(w.topo().get(0, 3), 0);
        assert_eq!(w.feat().get(0, 3), 0);
        assert_eq!(w.topo().get(0, 5), 2);
        assert_eq!(w.n_tsum(), 8);
        assert_eq!(w.hit_rate(), 1.0);
    }

    #[test]
    fn window_seals_only_when_due() {
        let mut w = WindowEstimator::new(4, 10, 2);
        w.note_batch(4, 1, 3, 0);
        assert!(w.seal_if_due().is_none());
        w.note_batch(6, 0, 6, 0);
        let stats = w.seal_if_due().expect("bucket due");
        assert!((stats.hit_rate - 0.1).abs() < 1e-12);
        assert!(w.seal_if_due().is_none(), "fresh bucket is empty");
    }

    #[test]
    fn plan_layout_caches_hottest_and_respects_budget() {
        // Feature rows are 4 floats = 16 bytes; budget of 64 bytes fits
        // at most 4 rows across both halves of the split.
        let plan = plan_for(&[(1, 50), (2, 30), (3, 10)], 64);
        assert!(plan.contents.total_bytes() <= 64);
        assert!(!plan.contents.feat.is_empty() || !plan.contents.topo.is_empty());
        // Zero-hotness vertices are never cached.
        for &v in plan.contents.feat.iter().chain(&plan.contents.topo) {
            assert!([1, 2, 3].contains(&v), "cold vertex {v} cached");
        }
        let (cache, slot) = plan.layout.for_gpu(0).expect("gpu 0 has a cache");
        assert_eq!(slot, 0);
        for &v in &plan.contents.feat {
            assert!(cache.lookup_feature(0, v).is_some());
        }
        for &v in &plan.contents.topo {
            assert!(cache.lookup_topology(0, v).is_some());
        }
    }

    #[test]
    fn plan_buffer_commit_is_atomic_and_versioned() {
        // The mid-batch invariant: staging never changes what in-flight
        // requests see; only an explicit batch-boundary commit does, and
        // then the view is entirely the new plan.
        let mut buf = PlanBuffer::new(plan_for(&[(1, 10), (2, 5)], 64));
        let old_feat = buf.active().contents.feat.clone();
        assert_eq!(buf.version(), 0);

        // Mid-batch: a replan is staged while "requests are in flight".
        buf.stage(plan_for(&[(7, 20), (2, 5)], 64));
        assert!(buf.has_staged());
        assert_eq!(buf.version(), 0, "staging must not bump the version");
        assert_eq!(
            buf.active().contents.feat,
            old_feat,
            "staging must not leak into the active view"
        );
        let (cache, _) = buf.active_layout().for_gpu(0).expect("cache");
        assert!(
            cache.lookup_feature(0, 7).is_none(),
            "staged entries must be invisible before commit"
        );

        // Batch boundary: the swap is total, not partial.
        let delta = buf.commit().expect("staged plan");
        assert_eq!(buf.version(), 1);
        assert!(!buf.has_staged());
        let (cache, _) = buf.active_layout().for_gpu(0).expect("cache");
        for &v in &buf.active().contents.feat {
            assert!(cache.lookup_feature(0, v).is_some());
        }
        assert!(delta.new_feat.contains(&7), "7 is new to the plan");
        assert!(!delta.new_feat.contains(&2), "2 was already cached");
        assert!(buf.commit().is_none(), "nothing left to commit");
    }

    #[test]
    fn sorted_difference_is_setwise() {
        assert_eq!(sorted_difference(&[1, 2, 4, 6], &[2, 3, 6]), vec![1, 4]);
        assert_eq!(sorted_difference(&[], &[1]), Vec::<VertexId>::new());
        assert_eq!(sorted_difference(&[5], &[]), vec![5]);
    }

    #[test]
    fn ewma_detector_stages_on_hit_rate_drop() {
        let g = ring_graph(16);
        let f = FeatureTable::zeros(16, 4);
        let config = ReplanConfig {
            bucket_requests: 4,
            window_buckets: 2,
            detector: DriftDetector::HitRateEwma {
                alpha: 1.0,
                drop: 0.3,
            },
            cooldown_buckets: 0,
            ..ReplanConfig::default()
        };
        let mut state = ReplanState::new(config, plan_for(&[(1, 10)], 64), 16, 0, 1, 64, 64);
        // Two healthy buckets establish the reference.
        for _ in 0..2 {
            state.window.note_feature(1);
            state.window.note_batch(4, 9, 1, 5);
            let out = state.roll(1.0, &g, &f).expect("sealed");
            assert!(!out.staged);
        }
        // A collapsed bucket crosses the drop threshold.
        state.window.note_feature(9);
        state.window.note_batch(4, 1, 9, 5);
        let out = state.roll(2.0, &g, &f).expect("sealed");
        assert!(out.staged, "EWMA drop must stage a replan");
        assert!(state.plan.has_staged());
        // Committing applies it and resets the cooldown.
        assert!(state.commit().is_some());
        assert_eq!(state.plan.version(), 1);
    }

    #[test]
    fn rank_overlap_detector_stages_on_disjoint_hot_set() {
        let g = ring_graph(16);
        let f = FeatureTable::zeros(16, 4);
        let config = ReplanConfig {
            bucket_requests: 2,
            window_buckets: 2,
            detector: DriftDetector::RankOverlap {
                top_k: 2,
                min_overlap: 0.5,
            },
            cooldown_buckets: 0,
            ..ReplanConfig::default()
        };
        // Active plan caches vertex 1; the window is all about 8 and 9.
        let mut state = ReplanState::new(config, plan_for(&[(1, 10)], 64), 16, 0, 1, 64, 64);
        state.window.note_feature(8);
        state.window.note_feature(9);
        state.window.note_batch(2, 0, 2, 3);
        let out = state.roll(0.5, &g, &f).expect("sealed");
        assert!(out.staged, "disjoint top-k must stage a replan");
    }

    #[test]
    fn recovery_is_reported_once() {
        let g = ring_graph(16);
        let f = FeatureTable::zeros(16, 4);
        let config = ReplanConfig {
            bucket_requests: 2,
            window_buckets: 2,
            detector: DriftDetector::HitRateEwma {
                alpha: 1.0,
                drop: 0.2,
            },
            cooldown_buckets: 0,
            recover_margin: 0.05,
            ..ReplanConfig::default()
        };
        let mut state = ReplanState::new(config, plan_for(&[(1, 10)], 64), 16, 0, 1, 64, 64);
        // Establish a high reference, then collapse.
        state.window.note_batch(2, 10, 0, 1);
        state.roll(1.0, &g, &f);
        state.window.note_batch(2, 0, 10, 1);
        let out = state.roll(2.0, &g, &f).expect("sealed");
        assert!(out.staged);
        assert!(out.recovered_after.is_none());
        state.commit();
        // Hit rate climbs back above reference - margin.
        state.window.note_batch(2, 10, 0, 1);
        let out = state.roll(5.0, &g, &f).expect("sealed");
        let dt = out.recovered_after.expect("recovered");
        assert!((dt - 3.0).abs() < 1e-9, "recovery measured from trigger");
        // Subsequent healthy buckets do not re-report recovery.
        state.window.note_batch(2, 10, 0, 1);
        let out = state.roll(6.0, &g, &f).expect("sealed");
        assert!(out.recovered_after.is_none());
    }

    #[test]
    fn profile_warmup_is_deterministic_and_counts_edges() {
        let g = ring_graph(32);
        let run = || {
            let mut t = TargetSampler::new((0..32).collect(), 1.2, 0, 0);
            profile_warmup(&g, &mut t, 50, &[2, 2], 9)
        };
        let a = run();
        let b = run();
        assert_eq!(a.topo, b.topo);
        assert_eq!(a.feat, b.feat);
        assert_eq!(a.n_tsum, b.n_tsum);
        // Every expansion charges 1 offset + edges transactions, so
        // n_tsum must exceed the total edge hotness.
        let edge_hot: u64 = a.topo.row(0).iter().sum();
        assert!(a.n_tsum > edge_hot);
        assert!(edge_hot > 0);
    }

    #[test]
    #[should_panic(expected = "bucket_requests must be positive")]
    fn config_rejects_zero_bucket() {
        ReplanConfig {
            bucket_requests: 0,
            ..ReplanConfig::default()
        }
        .validate();
    }
}
