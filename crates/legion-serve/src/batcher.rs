//! Dynamic micro-batching policy.
//!
//! GNN inference amortizes beautifully — one batch shares the sampling
//! and extraction PCIe time across all its seeds — but waiting for a big
//! batch costs tail latency. The classic compromise is a two-knob
//! policy: close the batch as soon as `max_batch` requests are pending,
//! or when the oldest pending request has waited `max_wait` simulated
//! seconds, whichever comes first (and never before the GPU is free).

use legion_router::ClassedQueue;

use crate::queue::AdmissionQueue;
use crate::workload::Request;

/// What the batcher needs to see of a pending-request queue: how many
/// requests wait, when a size-`k` batch became available, and the true
/// age of the oldest request. Implemented by the legacy FIFO
/// [`AdmissionQueue`] and by the router's [`ClassedQueue`] (whose drain
/// order may differ from arrival order under QoS).
pub trait PendingWindow {
    /// Requests currently pending.
    fn pending(&self) -> usize;
    /// Latest arrival among the first `k` requests in drain order, or
    /// `None` when fewer than `k` are pending.
    fn filled_at(&self, k: usize) -> Option<f64>;
    /// Earliest arrival among all pending requests.
    fn oldest_arrival(&self) -> Option<f64>;
}

impl PendingWindow for AdmissionQueue {
    fn pending(&self) -> usize {
        self.len()
    }
    fn filled_at(&self, k: usize) -> Option<f64> {
        // FIFO order: the k-th oldest is the latest of the first k.
        k.checked_sub(1).and_then(|i| self.arrival(i))
    }
    fn oldest_arrival(&self) -> Option<f64> {
        self.arrival(0)
    }
}

impl PendingWindow for ClassedQueue<Request> {
    fn pending(&self) -> usize {
        self.len()
    }
    fn filled_at(&self, k: usize) -> Option<f64> {
        ClassedQueue::filled_at(self, k)
    }
    fn oldest_arrival(&self) -> Option<f64> {
        ClassedQueue::oldest_arrival(self)
    }
}

/// The close-batch policy: size trigger plus age trigger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Close as soon as this many requests are pending (and the GPU is
    /// free).
    pub max_batch: usize,
    /// Close once the oldest pending request is this old, in simulated
    /// seconds.
    pub max_wait: f64,
}

impl BatchPolicy {
    /// A policy with the given knobs.
    pub fn new(max_batch: usize, max_wait: f64) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        assert!(max_wait >= 0.0, "max_wait must be non-negative");
        Self {
            max_batch,
            max_wait,
        }
    }

    /// The earliest simulated time at which the next batch launches given
    /// the queue state and the time the GPU becomes free, or `None` when
    /// nothing is pending.
    ///
    /// * full batch — launch when the GPU is free and the `max_batch`-th
    ///   request has arrived (which, for a queue of already-arrived
    ///   requests, is simply its recorded arrival time);
    /// * partial batch — launch when the oldest request's wait expires,
    ///   clamped to the GPU-free time.
    pub fn launch_time<Q: PendingWindow>(&self, queue: &Q, free_at: f64) -> Option<f64> {
        if queue.pending() >= self.max_batch {
            let filled_at = queue
                .filled_at(self.max_batch)
                .expect("queue holds at least max_batch requests");
            Some(free_at.max(filled_at))
        } else {
            queue
                .oldest_arrival()
                .map(|oldest| free_at.max(oldest + self.max_wait))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_router::PriorityClass;

    fn queue_with(arrivals: &[f64]) -> AdmissionQueue {
        let mut q = AdmissionQueue::new(64);
        for (i, &a) in arrivals.iter().enumerate() {
            q.offer(Request {
                id: i as u64,
                arrival: a,
                target: 0,
                class: PriorityClass::Standard,
            });
        }
        q
    }

    #[test]
    fn empty_queue_never_launches() {
        let p = BatchPolicy::new(4, 0.5);
        assert_eq!(p.launch_time(&queue_with(&[]), 0.0), None);
    }

    #[test]
    fn partial_batch_waits_for_age_trigger() {
        let p = BatchPolicy::new(4, 0.5);
        let q = queue_with(&[1.0, 1.2]);
        // Oldest arrival 1.0 + max_wait 0.5 = 1.5; GPU free earlier.
        assert_eq!(p.launch_time(&q, 0.0), Some(1.5));
    }

    #[test]
    fn busy_gpu_clamps_the_age_trigger() {
        let p = BatchPolicy::new(4, 0.5);
        let q = queue_with(&[1.0]);
        assert_eq!(p.launch_time(&q, 9.0), Some(9.0));
    }

    #[test]
    fn full_batch_launches_when_filled_and_free() {
        let p = BatchPolicy::new(2, 10.0);
        let q = queue_with(&[1.0, 1.3, 1.4]);
        // The 2nd-oldest request arrived at 1.3: no need to wait out
        // max_wait once the size trigger fires.
        assert_eq!(p.launch_time(&q, 0.0), Some(1.3));
        assert_eq!(p.launch_time(&q, 2.0), Some(2.0));
    }

    #[test]
    fn zero_wait_launches_immediately() {
        let p = BatchPolicy::new(8, 0.0);
        let q = queue_with(&[3.0]);
        assert_eq!(p.launch_time(&q, 1.0), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "max_batch must be positive")]
    fn zero_batch_rejected() {
        let _ = BatchPolicy::new(0, 0.1);
    }

    /// Under a QoS queue the age trigger follows the truly-oldest
    /// request (even a low-priority one that drains last), and the size
    /// trigger follows the drain-order prefix.
    #[test]
    fn qos_queue_launch_uses_true_age_and_drain_prefix() {
        let mut q: ClassedQueue<Request> = ClassedQueue::new_qos(16, [0.5, 0.3, 0.2]);
        q.offer(Request {
            id: 0,
            arrival: 1.0,
            target: 0,
            class: PriorityClass::Batch,
        });
        q.offer(Request {
            id: 1,
            arrival: 1.4,
            target: 0,
            class: PriorityClass::Interactive,
        });
        let p = BatchPolicy::new(4, 0.5);
        // Age trigger: oldest is the Batch request at 1.0.
        assert_eq!(p.launch_time(&q, 0.0), Some(1.5));
        // Size trigger: a 2-batch became available at the Interactive
        // arrival (1.4), which drains first but arrived last.
        let p2 = BatchPolicy::new(2, 10.0);
        assert_eq!(p2.launch_time(&q, 0.0), Some(1.4));
    }
}
