//! Criterion micro-benches for the neighbor sampler and the metered
//! access engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use legion_graph::generate::ChungLuConfig;
use legion_graph::FeatureTable;
use legion_hw::ServerSpec;
use legion_sampling::access::{AccessEngine, CacheLayout, TopologyPlacement};
use legion_sampling::KHopSampler;

fn bench_sampling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let graph = ChungLuConfig {
        num_vertices: 100_000,
        num_edges: 1_600_000,
        exponent: 0.85,
        shuffle_ids: true,
        ..Default::default()
    }
    .generate(&mut rng);
    let features = FeatureTable::zeros(graph.num_vertices(), 8);
    let layout = CacheLayout::none(1);
    let server = ServerSpec::custom(1, 1 << 40, 1).build();
    let engine = AccessEngine::new(
        &graph,
        &features,
        &layout,
        &server,
        TopologyPlacement::CpuUva,
    );
    let seeds: Vec<u32> = (0..1000).map(|i| i * 97 % 100_000).collect();

    let mut group = c.benchmark_group("sampling");
    for fanouts in [vec![10], vec![25, 10]] {
        let sampler = KHopSampler::new(fanouts.clone());
        group.bench_with_input(
            BenchmarkId::new("k_hop_batch1000", format!("{fanouts:?}")),
            &sampler,
            |b, s| {
                let mut rng = StdRng::seed_from_u64(2);
                b.iter(|| s.sample_batch(&engine, 0, &seeds, &mut rng, None));
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_sampling
);
criterion_main!(benches);
