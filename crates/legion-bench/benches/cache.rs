//! Criterion benches for CSLP and cache lookups, including the
//! CSLP-vs-round-robin ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use legion_cache::{cslp, CliqueCache, HotnessMatrix};

fn make_hotness(gpus: usize, n: usize) -> HotnessMatrix {
    let mut rng = StdRng::seed_from_u64(4);
    let mut h = HotnessMatrix::new(gpus, n);
    for g in 0..gpus {
        for v in 0..n as u32 {
            h.add(g, v, rng.gen_range(0..1000));
        }
    }
    h
}

fn bench_cslp(c: &mut Criterion) {
    let h = make_hotness(4, 200_000);
    c.bench_function("cslp_4gpu_200k", |b| b.iter(|| cslp(&h)));

    // Ablation: the naive round-robin assignment CSLP replaces.
    c.bench_function("round_robin_4gpu_200k", |b| {
        b.iter(|| {
            let acc = h.column_wise_sum();
            let mut order: Vec<u32> = (0..acc.len() as u32).collect();
            order.sort_by(|&a, &b| acc[b as usize].cmp(&acc[a as usize]));
            let mut per_gpu: Vec<Vec<u32>> = vec![Vec::new(); 4];
            for (i, v) in order.into_iter().enumerate() {
                per_gpu[i % 4].push(v);
            }
            per_gpu
        })
    });
}

fn bench_lookup(c: &mut Criterion) {
    let n = 100_000;
    let mut cache = CliqueCache::new(vec![0, 1], n, 16);
    let row = vec![0f32; 16];
    for v in 0..(n as u32) / 2 {
        cache.insert_feature((v % 2) as usize, v, &row);
    }
    let mut rng = StdRng::seed_from_u64(5);
    let queries: Vec<u32> = (0..10_000).map(|_| rng.gen_range(0..n as u32)).collect();
    c.bench_function("clique_feature_lookup_10k", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &v in &queries {
                if cache.lookup_feature(0, v).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn bench_fifo_vs_static(c: &mut Criterion) {
    // The BGL-ablation from DESIGN.md: replay a Zipf trace through the
    // FIFO dynamic cache vs. the static hotness-ranked cache.
    use legion_cache::dynamic::{compare_fifo_vs_static, FifoCache};
    let zipf = legion_graph::generate::Zipf::new(100_000, 1.0);
    let mut rng = StdRng::seed_from_u64(6);
    let trace: Vec<u32> = (0..200_000).map(|_| zipf.sample(&mut rng) as u32).collect();
    let mut counts = vec![0u64; 100_000];
    for &v in &trace {
        counts[v as usize] += 1;
    }
    let mut order: Vec<u32> = (0..100_000).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(counts[v as usize]));

    c.bench_function("fifo_replay_200k", |b| {
        b.iter(|| {
            let mut cache = FifoCache::new(5000);
            for &v in &trace {
                cache.access(v);
            }
            cache.hit_rate()
        })
    });
    c.bench_function("fifo_vs_static_compare_200k", |b| {
        b.iter(|| compare_fifo_vs_static(&trace, 5000, &order))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_cslp, bench_lookup, bench_fifo_vs_static
);
criterion_main!(benches);
