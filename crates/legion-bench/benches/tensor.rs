//! Criterion benches for the tensor kernels driving training cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use legion_tensor::{Matrix, Tape};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("matmul");
    for n in [64usize, 256] {
        let a = Matrix::xavier(n, n, &mut rng);
        let b = Matrix::xavier(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b))
        });
    }
    group.finish();
}

fn bench_forward_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let x = Matrix::xavier(512, 128, &mut rng);
    let w1 = Matrix::xavier(128, 64, &mut rng);
    let w2 = Matrix::xavier(64, 16, &mut rng);
    let labels: Vec<u32> = (0..512).map(|i| (i % 16) as u32).collect();
    c.bench_function("mlp_fwd_bwd_512x128", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let w1v = tape.param(w1.clone());
            let w2v = tape.param(w2.clone());
            let h = tape.matmul(xv, w1v);
            let h = tape.relu(h);
            let logits = tape.matmul(h, w2v);
            let loss = tape.cross_entropy_mean(logits, &labels);
            tape.backward(loss);
            tape.grad(w1v)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_matmul, bench_forward_backward
);
criterion_main!(benches);
