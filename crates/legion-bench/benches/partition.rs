//! Criterion benches for the partitioners (ablation: multilevel vs. LDG
//! vs. hash, the DESIGN.md design-choice sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use legion_graph::generate::ChungLuConfig;
use legion_partition::{HashPartitioner, LdgPartitioner, MultilevelPartitioner, Partitioner};

fn bench_partitioners(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let graph = ChungLuConfig {
        num_vertices: 50_000,
        num_edges: 800_000,
        exponent: 0.85,
        shuffle_ids: true,
        ..Default::default()
    }
    .generate(&mut rng);

    let mut group = c.benchmark_group("partition_4way_50k");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("hash", 4), |b| {
        b.iter(|| HashPartitioner.partition(&graph, 4))
    });
    group.bench_function(BenchmarkId::new("ldg", 4), |b| {
        b.iter(|| LdgPartitioner::default().partition(&graph, 4))
    });
    group.bench_function(BenchmarkId::new("multilevel", 4), |b| {
        b.iter(|| MultilevelPartitioner::default().partition(&graph, 4))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_partitioners
);
criterion_main!(benches);
