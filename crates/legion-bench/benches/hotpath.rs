//! Hot-path microbenchmarks: the allocation-free batched
//! sample→extract→cache-read path this perf trajectory is judged by.
//!
//! Unlike the other benches this one has a hand-written `main` so it can
//! drain the vendored criterion's collected measurements and emit
//! machine-readable `BENCH_hotpath.json` (ns/op and ops/sec per bench,
//! grouped). All seeds are fixed, so the JSON is deterministic modulo
//! the timing fields.
//!
//! * `LEGION_BENCH_SMOKE=1` shrinks sample counts for CI smoke runs.
//! * `LEGION_BENCH_OUT=<path>` overrides the output path (default:
//!   `BENCH_hotpath.json` at the repository root).

use criterion::{take_results, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use legion_cache::CliqueCache;
use legion_graph::generate::ChungLuConfig;
use legion_graph::{CsrGraph, FeatureTable};
use legion_hw::{NetGeneration, NetModel, ServerSpec, UplinkConfig};
use legion_router::{ClassedQueue, Dispatcher, PriorityClass, QueuedRequest};
use legion_sampling::access::{AccessEngine, CacheLayout, TopologyPlacement};
use legion_sampling::extract::extract_features;
use legion_sampling::{BatchTotals, KHopSampler, SampleScratch};
use legion_serve::{serve, ChurnConfig, DeltaOverlay, MutationLog, PolicyKind, ServeConfig};
use legion_store::{NvmeGeneration, NvmeModel, Tier, VertexStore};

fn bench_graph(num_vertices: usize, num_edges: usize) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(1);
    ChungLuConfig {
        num_vertices,
        num_edges,
        exponent: 0.85,
        shuffle_ids: true,
        ..Default::default()
    }
    .generate(&mut rng)
}

/// Dense-slot cache lookups: the two-array-load fast path that replaced
/// the per-lookup `HashMap` probe.
fn bench_cache_lookup(c: &mut Criterion, smoke: bool) {
    let n = if smoke { 10_000 } else { 100_000 };
    let queries = if smoke { 1_000 } else { 10_000 };
    let mut cache = CliqueCache::new(vec![0, 1], n, 16);
    let row = vec![0f32; 16];
    let topo = vec![7u32; 12];
    for v in 0..(n as u32) / 2 {
        cache.insert_feature((v % 2) as usize, v, &row);
    }
    for v in 0..(n as u32) / 4 {
        cache.insert_topology((v % 2) as usize, v, &topo);
    }
    let mut rng = StdRng::seed_from_u64(5);
    let q: Vec<u32> = (0..queries).map(|_| rng.gen_range(0..n as u32)).collect();

    let mut group = c.benchmark_group("cache_lookup");
    group.bench_function(BenchmarkId::new("feature", queries), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &v in &q {
                if cache.lookup_feature(0, v).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.bench_function(BenchmarkId::new("topology", queries), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &v in &q {
                if cache.lookup_topology(0, v).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

/// The scratch-arena k-hop sampler over a 100k-vertex power-law graph
/// (same workload shape as the pre-existing `sampling` bench, so before
/// and after numbers are directly comparable).
fn bench_k_hop(c: &mut Criterion, smoke: bool) {
    let n = if smoke { 20_000 } else { 100_000 };
    let graph = bench_graph(n, n * 16);
    let features = FeatureTable::zeros(n, 8);
    let layout = CacheLayout::none(1);
    let server = ServerSpec::custom(1, 1 << 40, 1).build();
    let engine = AccessEngine::new(
        &graph,
        &features,
        &layout,
        &server,
        TopologyPlacement::CpuUva,
    );
    let seeds: Vec<u32> = (0..1000u32).map(|i| i * 97 % n as u32).collect();

    let mut group = c.benchmark_group("k_hop_sampling");
    for fanouts in [vec![10], vec![25, 10]] {
        let sampler = KHopSampler::new(fanouts.clone());
        group.bench_with_input(
            BenchmarkId::new("batch1000", format!("{fanouts:?}")),
            &sampler,
            |b, s| {
                let mut rng = StdRng::seed_from_u64(2);
                let mut scratch = SampleScratch::new();
                b.iter(|| s.sample_batch_with(&engine, 0, &seeds, &mut rng, None, &mut scratch));
            },
        );
    }
    group.finish();
}

/// Feature gather, scalar vs batched, against a half-cached clique so the
/// loop exercises hit, peer-hit, and CPU-miss rows.
fn bench_feature_extraction(c: &mut Criterion, smoke: bool) {
    let n = if smoke { 10_000 } else { 100_000 };
    let rows = if smoke { 1_000 } else { 10_000 };
    let dim = 16;
    let graph = CsrGraph::empty(n);
    let features = FeatureTable::zeros(n, dim);
    let mut cc = CliqueCache::new(vec![0, 1], n, dim);
    for v in 0..(n as u32) / 2 {
        cc.insert_feature((v % 2) as usize, v, features.row(v));
    }
    let layout = CacheLayout::from_cliques(2, vec![cc]);
    let server = ServerSpec::custom(2, 1 << 40, 1).build();
    let engine = AccessEngine::new(
        &graph,
        &features,
        &layout,
        &server,
        TopologyPlacement::CpuUva,
    );
    let mut rng = StdRng::seed_from_u64(11);
    let vertices: Vec<u32> = (0..rows).map(|_| rng.gen_range(0..n as u32)).collect();

    let mut group = c.benchmark_group("feature_extraction");
    group.bench_function(BenchmarkId::new("scalar", rows), |b| {
        b.iter(|| extract_features(&engine, 0, &vertices))
    });
    group.bench_function(BenchmarkId::new("batched", rows), |b| {
        let mut out: Vec<f32> = Vec::new();
        let mut totals = BatchTotals::new(2);
        b.iter(|| {
            engine.read_features_batch(0, &vertices, &mut out, &mut totals);
            out.len()
        })
    });
    group.finish();
}

/// A steady-state serving run: admission, micro-batching, the batched
/// sample→extract→infer operators, and SLO accounting end to end.
fn bench_serve_tick(c: &mut Criterion, smoke: bool) {
    let n = if smoke { 2_000 } else { 20_000 };
    let graph = bench_graph(n, n * 8);
    let features = FeatureTable::zeros(n, 16);
    let config = ServeConfig {
        num_requests: if smoke { 200 } else { 2_000 },
        max_batch: 16,
        cache_rows_per_gpu: n / 8,
        warmup_requests: 128,
        fanouts: vec![5, 5],
        policy: PolicyKind::StaticHot,
        ..ServeConfig::default()
    };

    let mut group = c.benchmark_group("serve_tick");
    group.bench_function(BenchmarkId::new("static_hot", config.num_requests), |b| {
        let server = ServerSpec::custom(2, 1 << 40, 1).build();
        b.iter(|| serve(&graph, &features, &server, &config).completed)
    });
    group.finish();
}

/// Sharded vs. sequential serving on a 2x2-clique server: the same
/// round-robin workload driven by the single global event loop
/// (`--sequential`) and by one shard thread per clique (`--shards 2`).
/// The emitted ops/sec are whole serve runs per wall-clock second, so
/// the `sequential/sharded2` ratio IS the tick-throughput speedup; a
/// summary line prints it after the run. On a single-core host the
/// shards time-slice one CPU and the ratio collapses toward (or below)
/// 1.0 — the bench reports what it measures either way.
fn bench_shard(c: &mut Criterion, smoke: bool) {
    let n = if smoke { 2_000 } else { 20_000 };
    let graph = bench_graph(n, n * 8);
    let features = FeatureTable::zeros(n, 16);
    let mut config = ServeConfig {
        num_requests: if smoke { 400 } else { 4_000 },
        max_batch: 16,
        cache_rows_per_gpu: n / 8,
        warmup_requests: 128,
        fanouts: vec![5, 5],
        policy: PolicyKind::StaticHot,
        ..ServeConfig::default()
    };

    let mut group = c.benchmark_group("bench_shard");
    group.bench_function(BenchmarkId::new("sequential", config.num_requests), |b| {
        let server = ServerSpec::custom(4, 1 << 40, 2).build();
        config.shards = 1;
        let cfg = config.clone();
        b.iter(|| serve(&graph, &features, &server, &cfg).completed)
    });
    group.bench_function(BenchmarkId::new("sharded2", config.num_requests), |b| {
        let server = ServerSpec::custom(4, 1 << 40, 2).build();
        config.shards = 2;
        let cfg = config.clone();
        b.iter(|| serve(&graph, &features, &server, &cfg).completed)
    });
    group.finish();
}

/// The out-of-core store's per-batch host cost, resolving one batch of
/// HBM misses in three regimes: `staged` (every row pre-staged by the
/// prefetcher — the hit fast path), `cold` (a tiny staging window, so
/// every batch issues inline device reads), and `dram_resident` (no
/// SSD rows at all — the `all_resident` early-out legacy configs pay).
/// Simulated device time is virtual; this measures the bookkeeping the
/// extraction loop actually executes per batch.
fn bench_store(c: &mut Criterion, smoke: bool) {
    let n = if smoke { 10_000 } else { 100_000 };
    let rows = if smoke { 256 } else { 2_048 };
    let row_bytes = 400u64;
    let nvme = NvmeModel::new(NvmeGeneration::Gen4x4);
    let queries: Vec<u32> = (0..rows as u32).map(|i| i * 7 % n as u32).collect();

    let mut group = c.benchmark_group("bench_store");

    let mut staged = VertexStore::new(nvme, n, row_bytes, n);
    for v in 0..n as u32 {
        staged.assign(v, Tier::Ssd);
    }
    staged.warm(queries.iter().copied());
    group.bench_function(BenchmarkId::new("staged", rows), |b| {
        b.iter(|| staged.read(0.0, &queries).prefetch_hits)
    });

    // A 64-row window against chunks cycling the whole id range: by the
    // time a chunk comes around again its rows have long been evicted,
    // so every batch is a cold wave.
    let mut cold = VertexStore::new(nvme, n, row_bytes, 64);
    for v in 0..n as u32 {
        cold.assign(v, Tier::Ssd);
    }
    let ids: Vec<u32> = (0..n as u32).collect();
    let chunks: Vec<&[u32]> = ids.chunks(rows).collect();
    group.bench_function(BenchmarkId::new("cold", rows), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let out = cold.read(0.0, chunks[i % chunks.len()]);
            i += 1;
            out.cold_reads
        })
    });

    let mut resident = VertexStore::new(nvme, n, row_bytes, 64);
    group.bench_function(BenchmarkId::new("dram_resident", rows), |b| {
        b.iter(|| resident.read(0.0, &queries).cold_reads)
    });
    group.finish();
}

/// The routing tier's per-request costs: a residency-scored dispatch
/// decision over a 9-vertex probe, and a QoS admission offer/drain
/// cycle on a saturated classed queue.
fn bench_router(c: &mut Criterion, smoke: bool) {
    let n = if smoke { 10_000 } else { 100_000 };
    let decisions = if smoke { 1_000 } else { 10_000 };

    // Two cliques of two with half the vertex range resident per clique,
    // split even/odd so probes always straddle both residency sets.
    let mut dispatcher = Dispatcher::new(vec![vec![0, 1], vec![2, 3]], n, 64);
    let evens: Vec<u32> = (0..n as u32).step_by(2).collect();
    let odds: Vec<u32> = (1..n as u32).step_by(2).collect();
    dispatcher.refresh_group(0, &evens);
    dispatcher.refresh_group(1, &odds);
    let mut rng = StdRng::seed_from_u64(17);
    let probes: Vec<[u32; 9]> = (0..decisions)
        .map(|_| std::array::from_fn(|_| rng.gen_range(0..n as u32)))
        .collect();
    let queue_lens = [12usize, 3, 7, 9];

    let mut group = c.benchmark_group("router");
    group.bench_function(BenchmarkId::new("route", decisions), |b| {
        b.iter(|| {
            let mut local = 0usize;
            for p in &probes {
                let d = dispatcher.route(p, &queue_lens);
                if !d.spilled {
                    local += 1;
                }
            }
            local
        })
    });

    #[derive(Clone, Copy)]
    struct Req {
        seq: u64,
        class: PriorityClass,
    }
    impl QueuedRequest for Req {
        fn seq(&self) -> u64 {
            self.seq
        }
        fn arrival(&self) -> f64 {
            self.seq as f64
        }
        fn class(&self) -> PriorityClass {
            self.class
        }
    }
    let offers: Vec<Req> = (0..decisions as u64)
        .map(|seq| Req {
            seq,
            class: PriorityClass::from_index((seq % 3) as usize),
        })
        .collect();
    group.bench_function(BenchmarkId::new("qos_offer_take", decisions), |b| {
        b.iter(|| {
            // Capacity 64 against a uniform class mix: the queue saturates
            // almost immediately, so most offers exercise the eviction
            // scan and every 16th step drains a priority-ordered batch.
            let mut q: ClassedQueue<Req> = ClassedQueue::new_qos(64, [0.5, 0.3, 0.2]);
            let mut drained = 0usize;
            for (i, r) in offers.iter().enumerate() {
                q.offer(*r);
                if i % 16 == 15 {
                    drained += q.take(16).len();
                }
            }
            drained
        })
    });
    group.finish();
}

/// The delta-CSR overlay's hot path: streaming a pre-generated mutation
/// log into a fresh overlay (`apply`), merging every dirtied row at
/// sample time against the base CSR (`merge_dirty` — the per-vertex
/// cost a sampler pays on a mutated row), folding the pending deltas
/// into compacted rows (`apply_compact`, so the delta over `apply` is
/// the compaction cost), and materialising the whole mutated graph from
/// scratch (`rebuild_csr` — the correctness oracle, not a serving-path
/// cost).
fn bench_mutate(c: &mut Criterion, smoke: bool) {
    let n = if smoke { 10_000 } else { 100_000 };
    let ops = if smoke { 2_000 } else { 20_000 };
    let graph = bench_graph(n, n * 8);
    let churn = ChurnConfig {
        ops_per_sec: 1e6,
        ..ChurnConfig::default()
    };
    let log = MutationLog::generate(&graph, &churn, 42, ops as f64 / 1e6);
    let applied = DeltaOverlay::new(n);
    for m in &log.ops {
        applied.apply(&graph, &m.op);
    }
    let dirty: Vec<u32> = (0..n as u32).filter(|&v| applied.is_dirty(v)).collect();

    let mut group = c.benchmark_group("bench_mutate");
    group.bench_function(BenchmarkId::new("apply", log.ops.len()), |b| {
        b.iter(|| {
            let overlay = DeltaOverlay::new(n);
            for m in &log.ops {
                overlay.apply(&graph, &m.op);
            }
            overlay.dirty_rows()
        })
    });
    group.bench_function(BenchmarkId::new("merge_dirty", dirty.len()), |b| {
        let mut buf: Vec<u32> = Vec::new();
        b.iter(|| {
            let mut edges = 0usize;
            for &v in &dirty {
                applied.merge_into(&graph, v, &mut buf);
                edges += buf.len();
            }
            edges
        })
    });
    group.bench_function(BenchmarkId::new("apply_compact", log.ops.len()), |b| {
        b.iter(|| {
            let overlay = DeltaOverlay::new(n);
            for m in &log.ops {
                overlay.apply(&graph, &m.op);
            }
            overlay.compact(&graph)
        })
    });
    group.bench_function(BenchmarkId::new("rebuild_csr", n), |b| {
        b.iter(|| applied.rebuild_csr(&graph).num_edges())
    });
    group.finish();
}

/// The cluster-fabric charging path the fleet's remote tier runs per
/// batch: per-row wave charging vs one coalesced per-owner message set,
/// uncontended vs on a shared oversubscribed uplink. Pure integer-ns
/// arithmetic — this pins the cost of pricing a remote batch, not the
/// simulated wire time itself.
fn bench_net(c: &mut Criterion, smoke: bool) {
    let batches = if smoke { 1_000 } else { 10_000 };
    let row_bytes = 400u64;
    let flat = NetModel::rdma(NetGeneration::Eth400G);
    let contended = flat.with_contention(UplinkConfig::default());
    // 16 owner buckets with a skewed row spread, like a routed fleet's
    // per-batch miss profile.
    let payloads: Vec<u64> = (0..16u64).map(|i| (i * i % 23) * row_bytes).collect();

    let mut group = c.benchmark_group("bench_net");
    group.bench_function(BenchmarkId::new("per_row", batches), |b| {
        b.iter(|| {
            let mut t = 0.0f64;
            for i in 0..batches {
                t += flat.read_seconds_at(64 + (i % 32) as u64, row_bytes, 8);
            }
            t
        })
    });
    group.bench_function(BenchmarkId::new("per_row_contended", batches), |b| {
        b.iter(|| {
            let mut t = 0.0f64;
            for i in 0..batches {
                t += contended.read_seconds_at(64 + (i % 32) as u64, row_bytes, 8);
            }
            t
        })
    });
    group.bench_function(BenchmarkId::new("coalesced_contended", batches), |b| {
        b.iter(|| {
            let mut t = 0.0f64;
            for _ in 0..batches {
                t += contended.coalesced_read_seconds_at(&payloads, 8);
            }
            t
        })
    });
    group.finish();
}

#[derive(serde::Serialize)]
struct BenchEntry {
    name: String,
    ns_per_op: f64,
    ops_per_sec: f64,
}

#[derive(serde::Serialize)]
struct BenchGroup {
    group: String,
    benches: Vec<BenchEntry>,
}

#[derive(serde::Serialize)]
struct BenchOutput {
    schema: String,
    smoke: bool,
    groups: Vec<BenchGroup>,
}

fn main() {
    let smoke = std::env::var("LEGION_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let mut c = Criterion::default().sample_size(if smoke { 3 } else { 10 });
    bench_cache_lookup(&mut c, smoke);
    bench_k_hop(&mut c, smoke);
    bench_feature_extraction(&mut c, smoke);
    bench_serve_tick(&mut c, smoke);
    bench_shard(&mut c, smoke);
    bench_store(&mut c, smoke);
    bench_router(&mut c, smoke);
    bench_mutate(&mut c, smoke);
    bench_net(&mut c, smoke);

    let mut groups: Vec<BenchGroup> = Vec::new();
    for r in take_results() {
        let (group, name) = r
            .label
            .split_once('/')
            .unwrap_or(("ungrouped", r.label.as_str()));
        let entry = BenchEntry {
            name: name.to_string(),
            ns_per_op: r.ns_per_iter,
            ops_per_sec: if r.ns_per_iter > 0.0 {
                1e9 / r.ns_per_iter
            } else {
                0.0
            },
        };
        match groups.iter_mut().find(|g| g.group == group) {
            Some(g) => g.benches.push(entry),
            None => groups.push(BenchGroup {
                group: group.to_string(),
                benches: vec![entry],
            }),
        }
    }
    if let Some(shard) = groups.iter().find(|g| g.group == "bench_shard") {
        let ops = |prefix: &str| {
            shard
                .benches
                .iter()
                .find(|b| b.name.starts_with(prefix))
                .map(|b| b.ops_per_sec)
        };
        if let (Some(seq), Some(sharded)) = (ops("sequential"), ops("sharded2")) {
            println!(
                "bench_shard: sequential {seq:.2} runs/s, --shards 2 {sharded:.2} runs/s, \
                 speedup {:.2}x over {} cpu(s)",
                sharded / seq,
                std::thread::available_parallelism().map_or(1, |p| p.get())
            );
        }
    }
    let output = BenchOutput {
        schema: "legion-bench-hotpath/v1".to_string(),
        smoke,
        groups,
    };
    let out = std::env::var("LEGION_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_hotpath.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, serde_json::to_string_pretty(&output).unwrap() + "\n")
        .expect("write BENCH_hotpath.json");
    println!("wrote {out}");
}
