//! Criterion benches for the cost model: single-plan evaluation and the
//! full parallel α sweep (§4.3.3).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use legion_cache::{cslp, CostModel, HotnessMatrix};
use legion_graph::generate::ChungLuConfig;

fn build_model(n: usize) -> CostModel {
    let mut rng = StdRng::seed_from_u64(6);
    let graph = ChungLuConfig {
        num_vertices: n,
        num_edges: n * 16,
        exponent: 0.85,
        shuffle_ids: false,
        ..Default::default()
    }
    .generate(&mut rng);
    let mut h_t = HotnessMatrix::new(2, n);
    let mut h_f = HotnessMatrix::new(2, n);
    for v in 0..n as u32 {
        h_t.add(0, v, graph.degree(v) + 1);
        h_f.add(1, v, graph.degree(v) * 2 + 1);
    }
    let t = cslp(&h_t);
    let f = cslp(&h_f);
    CostModel::new(
        &graph,
        &t.clique_order,
        &t.accumulated,
        &f.clique_order,
        &f.accumulated,
        1_000_000,
        128,
        64,
    )
}

fn bench_cost_model(c: &mut Criterion) {
    let model = build_model(200_000);
    let budget = 64 << 20;
    c.bench_function("evaluate_one_plan_200k", |b| {
        b.iter(|| model.evaluate(budget, 0.37))
    });
    c.bench_function("sweep_alpha_001_200k", |b| {
        b.iter(|| model.best_plan(budget, 0.01))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_cost_model
);
criterion_main!(benches);
