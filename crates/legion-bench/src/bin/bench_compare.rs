//! Diff two `BENCH_hotpath.json` snapshots and flag regressions.
//!
//! Usage: `bench_compare BASELINE.json CANDIDATE.json [--warn-only] [--threshold PCT]`
//!
//! Matches benches by `group/name`, prints a per-bench delta table, and
//! flags any bench whose `ns_per_op` grew by more than the threshold
//! (default 20%). Exits nonzero when regressions are found, unless
//! `--warn-only` is passed. A smoke snapshot compared against a full one
//! is noisy by construction, so mode mismatch is called out up front.

use serde::Deserialize;

#[derive(Deserialize)]
struct BenchEntry {
    name: String,
    ns_per_op: f64,
}

#[derive(Deserialize)]
struct BenchGroup {
    group: String,
    benches: Vec<BenchEntry>,
}

#[derive(Deserialize)]
struct BenchOutput {
    schema: String,
    smoke: bool,
    groups: Vec<BenchGroup>,
}

const SCHEMA: &str = "legion-bench-hotpath/v1";

fn load(path: &str) -> BenchOutput {
    let raw = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_compare: cannot read {path}: {e}"));
    let out: BenchOutput = serde_json::from_str(&raw)
        .unwrap_or_else(|e| panic!("bench_compare: {path} is not a bench snapshot: {e}"));
    assert_eq!(
        out.schema, SCHEMA,
        "bench_compare: {path} has schema {:?}, want {SCHEMA:?}",
        out.schema
    );
    out
}

fn flatten(out: &BenchOutput) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for g in &out.groups {
        for b in &g.benches {
            rows.push((format!("{}/{}", g.group, b.name), b.ns_per_op));
        }
    }
    rows
}

fn main() {
    let mut warn_only = false;
    let mut threshold = 20.0f64;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--warn-only" => warn_only = true,
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("bench_compare: --threshold needs a percentage");
            }
            _ => paths.push(a),
        }
    }
    if paths.len() != 2 {
        eprintln!(
            "usage: bench_compare BASELINE.json CANDIDATE.json [--warn-only] [--threshold PCT]"
        );
        std::process::exit(2);
    }
    let base = load(&paths[0]);
    let cand = load(&paths[1]);
    if base.smoke != cand.smoke {
        println!(
            "bench_compare: WARNING mode mismatch — baseline is {}, candidate is {}; \
             deltas are noisy across modes",
            if base.smoke { "SMOKE" } else { "FULL" },
            if cand.smoke { "SMOKE" } else { "FULL" },
        );
    }

    let base_rows = flatten(&base);
    let cand_rows = flatten(&cand);
    let mut regressions = 0usize;
    let mut matched = 0usize;
    println!(
        "{:<44} {:>14} {:>14} {:>9}",
        "bench", "base ns/op", "cand ns/op", "delta"
    );
    for (key, base_ns) in &base_rows {
        let Some((_, cand_ns)) = cand_rows.iter().find(|(k, _)| k == key) else {
            println!("{key:<44} {base_ns:>14.1} {:>14} {:>9}", "-", "gone");
            continue;
        };
        matched += 1;
        let pct = if *base_ns > 0.0 {
            (cand_ns - base_ns) / base_ns * 100.0
        } else {
            0.0
        };
        let flag = if pct > threshold {
            "  << REGRESSION"
        } else {
            ""
        };
        if pct > threshold {
            regressions += 1;
        }
        println!("{key:<44} {base_ns:>14.1} {cand_ns:>14.1} {pct:>+8.1}%{flag}");
    }
    for (key, cand_ns) in &cand_rows {
        if !base_rows.iter().any(|(k, _)| k == key) {
            println!("{key:<44} {:>14} {cand_ns:>14.1} {:>9}", "-", "new");
        }
    }

    println!(
        "bench_compare: {matched} matched, {regressions} regression(s) over {threshold:.0}% ns/op"
    );
    if regressions > 0 && !warn_only {
        std::process::exit(1);
    }
}
