//! Runs every figure/table regeneration in sequence — the one-shot
//! reproduction of the paper's whole evaluation section.
//!
//! Respects `LEGION_SMALL_DIVISOR` / `LEGION_LARGE_DIVISOR` /
//! `LEGION_RESULTS_DIR` like the individual binaries.

use std::process::Command;

fn main() {
    let bins = [
        "fig02", "fig03", "fig04", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "table03",
        "ablation",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("exe dir");
    let mut failures = Vec::new();
    for bin in bins {
        let path = dir.join(bin);
        eprintln!("\n##### running {bin} #####");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!("failed to launch {bin}: {e}");
                failures.push(bin);
            }
        }
    }
    if !failures.is_empty() {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
    eprintln!("\nAll figures and tables regenerated.");
}
