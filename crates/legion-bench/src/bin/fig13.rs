//! Regenerates Figure 13: cost-model predictions vs. measured
//! sampling+extraction time across the α sweep.

use legion_bench::{banner, dataset_divisor, divisors, save_json, save_snapshot};
use legion_core::experiments::fig13;
use legion_core::LegionConfig;

fn main() {
    let (small, _) = divisors();
    let config = LegionConfig::default();
    banner(&format!(
        "Figure 13: cost model evaluation (PA 10GB / UKS 8GB cache, scaled /{small})"
    ));
    let (rows, snapshots) = fig13::run_with_metrics(&dataset_divisor, &config);
    for ds in ["PA", "UKS"] {
        println!("\n[{ds}]");
        println!(
            "{:>6} {:>14} {:>14} {:>14} {:>12} {:>12}",
            "alpha", "pred N_T", "pred N_F", "pred total", "sample (s)", "extract (s)"
        );
        for r in rows.iter().filter(|r| r.dataset == ds) {
            println!(
                "{:>6.2} {:>14.0} {:>14.0} {:>14.0} {:>12.4} {:>12.4}",
                r.alpha,
                r.predicted_n_t,
                r.predicted_n_f,
                r.predicted_total,
                r.measured_sample_seconds,
                r.measured_extract_seconds
            );
        }
    }
    save_json("fig13", &rows);
    for (label, snap) in &snapshots {
        save_snapshot(&format!("fig13_{label}"), snap);
    }
}
