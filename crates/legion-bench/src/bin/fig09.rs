//! Regenerates Figure 9: cache hit rate vs. cache ratio for the four
//! partition/NVLink strategies across NV2 / NV4 / NV8.

use legion_bench::{banner, dataset_divisor, divisors, save_json};
use legion_core::experiments::fig09;
use legion_core::LegionConfig;

fn main() {
    let (small, large) = divisors();
    let config = LegionConfig::default();
    banner(&format!(
        "Figure 9: partition strategies vs. cache hit rate (scaled /{small} and /{large})"
    ));
    let rows = fig09::run(&dataset_divisor, &config);
    let mut datasets: Vec<&str> = Vec::new();
    for r in &rows {
        if !datasets.contains(&r.dataset.as_str()) {
            datasets.push(&r.dataset);
        }
    }
    for d in &datasets {
        for clique in [2usize, 4, 8] {
            let subset: Vec<_> = rows
                .iter()
                .filter(|r| r.dataset == *d && r.clique_size == clique)
                .collect();
            if subset.is_empty() {
                continue;
            }
            println!("\n[{d} / NV{clique}]  hit rate per cache ratio");
            let mut strategies: Vec<&str> = Vec::new();
            for r in &subset {
                if !strategies.contains(&r.strategy.as_str()) {
                    strategies.push(&r.strategy);
                }
            }
            print!("{:<20}", "strategy");
            let mut ratios: Vec<f64> = subset.iter().map(|r| r.cache_ratio).collect();
            ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
            ratios.dedup();
            for r in &ratios {
                print!(" {:>7.2}%", r * 100.0);
            }
            println!();
            for s in strategies {
                print!("{s:<20}");
                for ratio in &ratios {
                    let hit = subset
                        .iter()
                        .find(|r| r.strategy == s && (r.cache_ratio - ratio).abs() < 1e-9)
                        .map(|r| r.hit_rate);
                    match hit {
                        Some(h) => print!(" {:>7.1}%", h * 100.0),
                        None => print!(" {:>8}", "-"),
                    }
                }
                println!();
            }
        }
    }
    save_json("fig09", &rows);
}
