//! Regenerates Table 3: partitioning cost vs. epoch cost.

use legion_bench::{banner, divisors, save_json};
use legion_core::experiments::table03;
use legion_core::LegionConfig;

fn main() {
    let (small, large) = divisors();
    let config = LegionConfig::default();
    banner(&format!(
        "Table 3: partitioning cost (PA/{small}x on DGX-V100, UKL/{large}x on Siton)"
    ));
    let cols = table03::run(small, large, &config);
    println!("{:<28} {:>14} {:>14}", "", cols[0].dataset, cols[1].dataset);
    let row = |label: &str, f: &dyn Fn(&table03::Table3Column) -> String| {
        println!("{label:<28} {:>14} {:>14}", f(&cols[0]), f(&cols[1]));
    };
    row("Graph partition (s)", &|c| {
        format!("{:.2}", c.partition_seconds)
    });
    row("Data loading (s)", &|c| format!("{:.2}", c.loading_seconds));
    row("NC epoch (s)", &|c| format!("{:.4}", c.nc_epoch_seconds));
    row("LP epoch (s)", &|c| format!("{:.2}", c.lp_epoch_seconds));
    row("Partition edge fraction", &|c| {
        format!("{:.0}%", c.partition_edge_fraction * 100.0)
    });
    save_json("table03", &cols);
}
