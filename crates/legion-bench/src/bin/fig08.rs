//! Regenerates Figure 8: end-to-end epoch time and normalized PCIe
//! counters for DGL / PaGraph / GNNLab / Legion on DGX-V100 and DGX-A100.

use legion_bench::{banner, cell, dataset_divisor, divisors, save_json};
use legion_core::experiments::fig08;
use legion_core::LegionConfig;

fn main() {
    let (small, large) = divisors();
    let config = LegionConfig::default();
    banner(&format!(
        "Figure 8: end-to-end performance (datasets scaled /{small} and /{large})"
    ));
    let cells = fig08::run(&dataset_divisor, &config);
    for server in ["DGX-V100", "DGX-A100"] {
        for model in ["GraphSAGE", "GCN"] {
            println!("\n[{server} / {model}]  (epoch seconds; x = OOM)");
            print!("{:<10}", "system");
            let datasets: Vec<&str> = {
                let mut seen = Vec::new();
                for c in cells
                    .iter()
                    .filter(|c| c.server == server && c.model == model)
                {
                    if !seen.contains(&c.dataset.as_str()) {
                        seen.push(c.dataset.as_str());
                    }
                }
                seen
            };
            for d in &datasets {
                print!(" {d:>10}");
            }
            println!();
            for system in ["DGL", "PaGraph", "GNNLab", "Legion"] {
                print!("{system:<10}");
                for d in &datasets {
                    let c = cells
                        .iter()
                        .find(|c| {
                            c.server == server
                                && c.model == model
                                && c.system == system
                                && c.dataset == *d
                        })
                        .expect("cell exists");
                    print!(" {:>10}", cell(c.epoch_seconds, 4));
                }
                println!();
            }
            println!("-- normalized max per-GPU PCIe transactions (DGL = 1.0) --");
            for system in ["DGL", "PaGraph", "GNNLab", "Legion"] {
                print!("{system:<10}");
                for d in &datasets {
                    let c = cells
                        .iter()
                        .find(|c| {
                            c.server == server
                                && c.model == model
                                && c.system == system
                                && c.dataset == *d
                        })
                        .expect("cell exists");
                    print!(" {:>10}", cell(c.pcie_normalized, 3));
                }
                println!();
            }
        }
    }
    save_json("fig08", &cells);
}
