//! `simctl` — run ad-hoc Legion-vs-baseline comparisons from a JSON
//! config, the way an operator would size a deployment.
//!
//! ```bash
//! cargo run --release -p legion-bench --bin simctl -- '{"dataset":"PA","divisor":2000,"server":"dgx-v100","systems":["DGL","Legion"],"batch_size":256}'
//! # Or from a file:
//! cargo run --release -p legion-bench --bin simctl -- @config.json
//! ```
//!
//! Omitted fields fall back to defaults; run with no arguments for a demo
//! configuration.

use serde::Deserialize;

use legion_baselines::{dgl, gnnlab, pagraph, quiver};
use legion_core::{legion_setup_with_plans, run_epoch, scaled_server, LegionConfig};
use legion_hw::ServerSpec;

#[derive(Debug, Deserialize)]
#[serde(default, deny_unknown_fields)]
struct Config {
    dataset: String,
    divisor: u64,
    server: String,
    systems: Vec<String>,
    batch_size: usize,
    fanouts: Vec<usize>,
    seed: u64,
    /// When true, print each system's full metric snapshot as JSON and
    /// save it under `$LEGION_RESULTS_DIR` (if set).
    dump_metrics: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            dataset: "PA".to_string(),
            divisor: 2000,
            server: "dgx-v100".to_string(),
            systems: vec![
                "DGL".into(),
                "PaGraph".into(),
                "GNNLab".into(),
                "Quiver".into(),
                "Legion".into(),
            ],
            batch_size: 256,
            fanouts: vec![25, 10],
            seed: 42,
            dump_metrics: false,
        }
    }
}

fn server_spec(name: &str) -> Option<ServerSpec> {
    match name.to_ascii_lowercase().as_str() {
        "dgx-v100" | "v100" => Some(ServerSpec::dgx_v100()),
        "siton" => Some(ServerSpec::siton()),
        "dgx-a100" | "a100" => Some(ServerSpec::dgx_a100()),
        _ => None,
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let config: Config = match arg.as_deref() {
        None => Config::default(),
        Some(path) if path.starts_with('@') => {
            let body = std::fs::read_to_string(&path[1..])
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", &path[1..]));
            serde_json::from_str(&body).expect("invalid JSON config")
        }
        Some(json) => serde_json::from_str(json).expect("invalid JSON config"),
    };
    let Some(base) = server_spec(&config.server) else {
        eprintln!(
            "unknown server '{}': use dgx-v100 | siton | dgx-a100",
            config.server
        );
        std::process::exit(2);
    };
    let Some(spec) = legion_graph::dataset::spec_by_name(&config.dataset) else {
        eprintln!(
            "unknown dataset '{}': use PR|PA|CO|UKS|UKL|CL",
            config.dataset
        );
        std::process::exit(2);
    };
    println!(
        "simctl: {} /{}x on {} (systems: {:?})",
        config.dataset, config.divisor, base.name, config.systems
    );
    let dataset = spec.instantiate(config.divisor, config.seed);
    let scaled = scaled_server(&base, config.divisor);
    let legion_config = LegionConfig {
        fanouts: config.fanouts.clone(),
        batch_size: config.batch_size,
        seed: config.seed,
        ..Default::default()
    };
    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>10}",
        "system", "epoch (s)", "PCIe txns", "max/GPU txns", "hit rate"
    );
    for system in &config.systems {
        let server = scaled.build();
        let ctx = legion_config.build_context(&dataset, &server);
        let setup = match system.as_str() {
            "DGL" => dgl::setup(&ctx),
            "PaGraph" => pagraph::setup(&ctx),
            "PaGraph-plus" => pagraph::setup_plus(&ctx),
            "GNNLab" => gnnlab::setup(&ctx, (scaled.num_gpus / 4).max(1)),
            "Quiver" => quiver::setup(&ctx, quiver::QuiverHotness::Presampling),
            "Legion" => legion_setup_with_plans(&ctx, &legion_config).map(|(s, plans)| {
                println!(
                    "  [legion] auto cache plan: alpha = {:.2}, clique budget {} MiB",
                    plans[0].alpha,
                    plans[0].budget >> 20
                );
                s
            }),
            other => {
                eprintln!("unknown system '{other}', skipping");
                continue;
            }
        };
        match setup {
            Ok(s) => {
                let r = run_epoch(&s, &ctx, &legion_config);
                println!(
                    "{:<10} {:>12.5} {:>14} {:>14} {:>9.1}%",
                    system,
                    r.epoch_seconds,
                    r.pcie_total,
                    r.pcie_max_gpu,
                    r.feature_hit_rate() * 100.0
                );
                if config.dump_metrics {
                    let body =
                        serde_json::to_string_pretty(&r.metrics).expect("snapshot is serializable");
                    // Sanity: the dump must round-trip through serde.
                    let parsed: legion_telemetry::Snapshot =
                        serde_json::from_str(&body).expect("snapshot JSON round-trips");
                    assert_eq!(parsed, r.metrics, "snapshot round-trip mismatch");
                    println!("--- metrics for {system} ---");
                    println!("{body}");
                    legion_bench::save_snapshot(&format!("simctl_{system}"), &r.metrics);
                }
            }
            Err(e) => println!("{system:<10} {:>12}  ({e})", "x"),
        }
    }
}
