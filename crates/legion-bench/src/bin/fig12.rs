//! Regenerates Figure 12: unified cache vs. TopoCPU vs. TopoGPU epoch
//! times (x = OOM).

use legion_bench::{banner, cell, dataset_divisor, divisors, save_json};
use legion_core::experiments::fig12;
use legion_core::LegionConfig;

fn main() {
    let (small, large) = divisors();
    let config = LegionConfig::default();
    banner(&format!(
        "Figure 12: impact of the topology cache (scaled /{small} and /{large})"
    ));
    let rows = fig12::run(&dataset_divisor, &config);
    println!(
        "{:<10} {:<8} {:<9} {:>14} {:>8}",
        "server", "dataset", "placement", "epoch (s)", "alpha"
    );
    for r in &rows {
        println!(
            "{:<10} {:<8} {:<9} {:>14} {:>8}",
            r.server,
            r.dataset,
            r.placement,
            cell(r.epoch_seconds, 4),
            cell(r.alpha, 2),
        );
    }
    save_json("fig12", &rows);
}
