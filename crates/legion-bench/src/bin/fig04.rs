//! Regenerates Figure 4: (a) PCIe throughput vs. payload size and
//! (b) PCIe traffic reduction vs. cache capacity on Paper100M.

use legion_bench::{banner, dataset_divisor, save_json};
use legion_core::experiments::fig04;
use legion_core::LegionConfig;

fn main() {
    let pa = dataset_divisor("PA");
    let config = LegionConfig::default();
    banner("Figure 4a: PCIe 3.0 throughput under different payload sizes");
    let a = fig04::run_4a();
    println!("{:>14} {:>14} {:>12}", "payload (B)", "GB/s", "utilization");
    for r in &a {
        println!(
            "{:>14} {:>14.2} {:>11.1}%",
            r.payload_bytes,
            r.throughput_gbps,
            r.utilization * 100.0
        );
    }
    save_json("fig04a", &a);

    banner(&format!(
        "Figure 4b: PCIe traffic reduction vs. cache capacity (PA/{pa}x, single GPU)"
    ));
    let b = fig04::run_4b(pa, &config);
    println!(
        "{:>10} {:>18} {:>18}",
        "capacity", "topo reduction", "feature reduction"
    );
    for r in &b {
        println!(
            "{:>9.0}% {:>17.1}% {:>17.1}%",
            r.capacity_fraction * 100.0,
            r.topology_reduction * 100.0,
            r.feature_reduction * 100.0
        );
    }
    save_json("fig04b", &b);
}
