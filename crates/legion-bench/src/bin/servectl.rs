//! `servectl` — sweep offered load over the online serving subsystem and
//! emit throughput–latency curves comparing the static-hotness cache,
//! the FIFO dynamic cache, and the online re-planned cache under
//! request-skew drift.
//!
//! ```bash
//! cargo run --release -p legion-bench --bin servectl           # full sweep
//! cargo run --release -p legion-bench --bin servectl -- --smoke # fast path
//! cargo run --release -p legion-bench --bin servectl -- --drift-only # skip the sweep
//! cargo run --release -p legion-bench --bin servectl -- --router --shards 2 # sharded loop
//! cargo run --release -p legion-bench --bin servectl -- --oversubscribe # out-of-core sweep
//! cargo run --release -p legion-bench --bin servectl -- --fleet 16 # scale-out fleet
//! cargo run --release -p legion-bench --bin servectl -- --churn # streaming mutations
//! ```
//!
//! `--fleet N` runs the scale-out head-to-head: the same open-loop
//! stream over `N` simulated servers, routed by shard residency +
//! projected load versus a uniform random-server baseline, with
//! cross-server feature reads charged through the analytic cluster
//! network model. Asserts residency capacity at matched p99 strictly
//! beats random, byte-identical same-seed reruns, and (non-smoke,
//! N >= 16) a fleet knee at least 10x the single-machine capacity.
//!
//! `--oversubscribe` runs the legion-store envelope: the same skewed
//! workload DRAM-resident versus a DRAM budget 10x smaller than the
//! feature table (cold tail on the simulated NVMe tier), asserting the
//! lookahead prefetcher hides the SSD below the knee and that an
//! infinite DRAM budget is byte-identical to the store-off run.
//!
//! `--churn` runs the legion-dyn envelope: the same workload over a
//! frozen graph versus production-rate streaming mutations through the
//! delta-CSR overlay, asserting the hit rate stays within 15 points and
//! the p99 within 3x of the frozen baseline, that merged and engine-
//! sampled neighborhoods agree exactly with a from-scratch rebuilt CSR,
//! and that replaying the logged stream (after a JSON round trip) is
//! byte-identical to generating it.
//!
//! `--shards N` runs the serving loop with one shard thread per NVLink
//! clique (clamped to the clique count) and appends a sequential-vs-
//! sharded head-to-head on the 2x2-clique server; `--sequential` forces
//! the single global event loop regardless of `--shards`.
//!
//! Offered loads are multiples of a measured capacity estimate, so the
//! curve always crosses its saturation knee. With `LEGION_RESULTS_DIR`
//! set, the run saves `servectl_curves.json` (all load points, all
//! policies) and `servectl_{static,fifo,replan}.metrics.json` (full
//! telemetry snapshots of the drift-comparison runs at 0.9x capacity).
//!
//! The drift comparison prints a per-phase table of *tail* hit rates —
//! the second half of each drift phase, after a policy has had time to
//! react to the rotation — and asserts (non-smoke) that re-planning
//! ends strictly above both baselines and recovers to within five
//! points of its own fresh-plan (phase 0) hit rate in every phase.

use std::collections::{BTreeMap, BTreeSet};

use legion_fleet::{serve_fleet, FleetConfig, FleetPolicy, FleetReport};
use legion_graph::dataset::{spec_by_name, Dataset};
use legion_hw::{MultiGpuServer, ServerSpec, UplinkConfig};
use legion_serve::{
    estimate_capacity_rps, generate_workload_classed, run_sweep, serve, ArrivalProcess,
    ChurnConfig, ClassConfig, ClassSampler, DeltaOverlay, LoadPoint, MutationLog, MutationSource,
    PolicyKind, PriorityClass, ReplanConfig, RouterPolicy, ServeConfig, ServeReport, StoreConfig,
    TargetSampler, SMOKE_MULTIPLIERS, SWEEP_MULTIPLIERS,
};
use legion_telemetry::Snapshot;

const POLICIES: [PolicyKind; 3] = [PolicyKind::StaticHot, PolicyKind::Fifo, PolicyKind::Replan];

/// Reads one counter from a snapshot (0 when absent).
fn counter(metrics: &Snapshot, name: &str) -> u64 {
    metrics
        .counters
        .iter()
        .find(|c| c.name == name)
        .map_or(0, |c| c.value)
}

/// Feature-cache hit rate across all GPUs, from a run's snapshot.
fn feature_hit_rate(metrics: &Snapshot) -> f64 {
    let sum = |suffix: &str| {
        metrics
            .counters
            .iter()
            .filter(|c| c.name.starts_with("cache.") && c.name.ends_with(suffix))
            .map(|c| c.value)
            .sum::<u64>()
    };
    let hits = sum("feature_hits");
    let total = hits + sum("feature_misses");
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Per-drift-phase tail feature hit rates (`serve.phase{k}.tail_*`),
/// keyed by phase index. The tail covers the second half of each phase,
/// i.e. the settled hit rate after a policy reacted to the rotation.
fn tail_hit_rates(metrics: &Snapshot) -> BTreeMap<u64, f64> {
    let mut hits: BTreeMap<u64, u64> = BTreeMap::new();
    let mut misses: BTreeMap<u64, u64> = BTreeMap::new();
    for c in &metrics.counters {
        let Some(rest) = c.name.strip_prefix("serve.phase") else {
            continue;
        };
        let Some((idx, metric)) = rest.split_once('.') else {
            continue;
        };
        let Ok(k) = idx.parse::<u64>() else { continue };
        match metric {
            "tail_feature_hits" => *hits.entry(k).or_default() += c.value,
            "tail_feature_misses" => *misses.entry(k).or_default() += c.value,
            _ => {}
        }
    }
    let phases: BTreeSet<u64> = hits.keys().chain(misses.keys()).copied().collect();
    phases
        .into_iter()
        .filter_map(|k| {
            let h = *hits.get(&k).unwrap_or(&0);
            let total = h + *misses.get(&k).unwrap_or(&0);
            // Zeroed counters registered by an earlier run on the same
            // server linger in the snapshot; a phase with no samples is
            // not a phase of *this* run.
            (total > 0).then(|| (k, h as f64 / total as f64))
        })
        .collect()
}

/// One row of the router head-to-head: a (router policy, QoS, load) cell
/// with the routing and per-class QoS outcomes that matter for the
/// comparison.
#[derive(serde::Serialize)]
struct RouterRow {
    label: &'static str,
    router: &'static str,
    qos: bool,
    load_multiplier: f64,
    offered: u64,
    completed: u64,
    shed: u64,
    hit_rate: f64,
    route_locality: f64,
    spilled: u64,
    interactive_p99_us: u64,
    interactive_slo_attainment: f64,
    class_shed: [u64; legion_serve::CLASS_COUNT],
}

/// Head-to-head for the routing tier on a two-clique server: residency
/// dispatch vs blind round-robin at the saturation knee, then QoS vs
/// class-blind FIFO admission under overload. Asserts the wins the
/// router exists for.
fn router_head_to_head(dataset: &Dataset, base: &ServeConfig) -> Vec<RouterRow> {
    // Two NVLink cliques of two — the smallest topology where clique
    // residency is distinguishable from per-GPU or global state.
    let clique_server = || ServerSpec::custom(4, 1 << 30, 2).build();
    let cfg_for = |router: RouterPolicy, qos: bool| {
        let mut cfg = base.clone();
        cfg.policy = PolicyKind::StaticHot;
        // The head-to-head pins the routing/QoS tier's contract, which
        // is defined on the sequential loop: a spilled request is
        // offered to the least-loaded GPU *immediately* and sheds if
        // that queue is full. The sharded coordinator deliberately
        // relaxes this (spills park in the pool until the next quantum
        // boundary), so its overload numbers live in the shard
        // head-to-head instead.
        cfg.shards = 1;
        cfg.router.policy = router;
        cfg.classes = ClassConfig {
            mix: [0.2, 0.5, 0.3],
            qos,
            slo_us: [base.classes.slo_us[0], 1000, 8000],
            ..ClassConfig::default()
        };
        cfg
    };
    let server = clique_server();
    let capacity = estimate_capacity_rps(
        &dataset.graph,
        &dataset.features,
        &server,
        &cfg_for(RouterPolicy::Residency, true),
    );
    println!(
        "\nrouter head-to-head on 2x2-clique server (capacity {capacity:.0}/s, mix 20/50/30, interactive SLO {} us):",
        base.classes.slo_us[0]
    );
    println!(
        "  {:<22} {:>6} {:>8} {:>7} {:>9} {:>7} {:>9} {:>9} {:>16}",
        "config", "load", "hits", "local", "spilled", "shed", "i_p99", "i_SLO", "shed I/S/B"
    );
    let mut rows = Vec::new();
    let mut run =
        |label: &'static str, router: RouterPolicy, qos: bool, mult: f64, queue: usize| {
            let server = clique_server();
            let mut cfg = cfg_for(router, qos);
            cfg.arrival = base
                .arrival
                .scaled(mult * capacity / base.arrival.mean_rate());
            cfg.queue_capacity = queue;
            let r = serve(&dataset.graph, &dataset.features, &server, &cfg);
            let i = PriorityClass::Interactive.index();
            let row = RouterRow {
                label,
                router: router.as_str(),
                qos,
                load_multiplier: mult,
                offered: r.offered,
                completed: r.completed,
                shed: r.shed,
                hit_rate: feature_hit_rate(&r.metrics),
                route_locality: r.route_locality,
                spilled: r.spilled,
                interactive_p99_us: r.class_p99_us[i],
                interactive_slo_attainment: r.class_slo_attainment[i],
                class_shed: r.class_shed,
            };
            println!(
                "  {:<22} {:>5.1}x {:>7.1}% {:>6.1}% {:>9} {:>7} {:>7}us {:>8.1}% {:>7}/{}/{}",
                label,
                mult,
                row.hit_rate * 100.0,
                row.route_locality * 100.0,
                row.spilled,
                row.shed,
                row.interactive_p99_us,
                row.interactive_slo_attainment * 100.0,
                row.class_shed[0],
                row.class_shed[1],
                row.class_shed[2]
            );
            if router == RouterPolicy::Residency {
                assert_eq!(
                    r.routed + r.spilled,
                    r.offered,
                    "router must see every request"
                );
            }
            rows.push(row);
        };

    // Below saturation routing quality shows up purely as hit rate: the
    // age trigger, not queueing, sets the tail here.
    run(
        "round_robin @knee",
        RouterPolicy::RoundRobin,
        true,
        0.9,
        base.queue_capacity,
    );
    run(
        "residency @knee",
        RouterPolicy::Residency,
        true,
        0.9,
        base.queue_capacity,
    );
    // Past the knee with a shallow queue the service-rate gap compounds:
    // slower batches mean deeper backlogs, more sheds, and a worse tail.
    // The FIFO pair isolates routing (class-blind admission on both
    // sides); the QoS pair isolates admission order (same routing).
    run("rr+qos @3x", RouterPolicy::RoundRobin, true, 3.0, 128);
    run("rr+fifo @3x", RouterPolicy::RoundRobin, false, 3.0, 128);
    run(
        "residency+fifo @3x",
        RouterPolicy::Residency,
        false,
        3.0,
        128,
    );
    run("residency+qos @3x", RouterPolicy::Residency, true, 3.0, 128);

    let (rr_knee, res_knee) = (&rows[0], &rows[1]);
    let (rr_fifo, res_fifo, res_qos) = (&rows[3], &rows[4], &rows[5]);
    // Routing wins: strictly higher hit rate everywhere, and at
    // saturation a strictly lower class-blind Interactive tail plus
    // fewer sheds (faster batches drain deeper backlogs).
    assert!(
        res_knee.hit_rate > rr_knee.hit_rate,
        "residency routing hit rate {:.4} must beat round-robin {:.4} at the knee",
        res_knee.hit_rate,
        rr_knee.hit_rate
    );
    // No p99 assert at the knee: below saturation the tail is set by the
    // batch age trigger, not by service rate, so routing can't move it.
    assert!(
        res_fifo.hit_rate > rr_fifo.hit_rate,
        "residency routing hit rate {:.4} must beat round-robin {:.4} at saturation",
        res_fifo.hit_rate,
        rr_fifo.hit_rate
    );
    assert!(
        res_fifo.interactive_p99_us < rr_fifo.interactive_p99_us,
        "residency interactive p99 {} must strictly beat round-robin {} at saturation",
        res_fifo.interactive_p99_us,
        rr_fifo.interactive_p99_us
    );
    assert!(
        res_fifo.shed < rr_fifo.shed,
        "residency routing must shed less at saturation: {} vs {}",
        res_fifo.shed,
        rr_fifo.shed
    );
    // QoS wins at the same routing: Batch shed first, Interactive kept
    // whole with its SLO intact and a tail no worse than class-blind.
    let b = PriorityClass::Batch.index();
    assert!(res_qos.shed > 0, "overload point must shed");
    assert!(
        res_qos.class_shed[b] > 0 && res_qos.class_shed[0] == 0,
        "QoS must shed Batch first and keep Interactive whole: {:?}",
        res_qos.class_shed
    );
    assert!(
        res_qos.interactive_slo_attainment >= 0.95,
        "QoS interactive SLO attainment {:.3} must stay above 95% under overload",
        res_qos.interactive_slo_attainment
    );
    assert!(
        res_qos.interactive_slo_attainment >= res_fifo.interactive_slo_attainment,
        "QoS interactive attainment {:.3} must not trail class-blind FIFO {:.3}",
        res_qos.interactive_slo_attainment,
        res_fifo.interactive_slo_attainment
    );
    assert!(
        res_qos.interactive_p99_us <= res_fifo.interactive_p99_us,
        "QoS interactive p99 {} must not trail class-blind FIFO {}",
        res_qos.interactive_p99_us,
        res_fifo.interactive_p99_us
    );
    println!(
        "  [router] hit rate +{:.1} pts at the knee; saturation interactive p99 {} -> {} us, \
         sheds {} -> {}; QoS interactive attainment {:.1}% (class-blind {:.1}%)",
        (res_knee.hit_rate - rr_knee.hit_rate) * 100.0,
        rr_fifo.interactive_p99_us,
        res_fifo.interactive_p99_us,
        rr_fifo.shed,
        res_fifo.shed,
        res_qos.interactive_slo_attainment * 100.0,
        res_fifo.interactive_slo_attainment * 100.0
    );
    rows
}

/// Sequential vs sharded head-to-head on the 2x2-clique server: the
/// same round-robin workload driven by the single global event loop and
/// by one shard thread per clique. Asserts the sharded run reproduces
/// the sequential telemetry snapshot byte-for-byte (minus the
/// shard-local tallies that only exist when sharding is active), then
/// reports measured wall-clock tick throughput for both. On hosts with
/// fewer cores than shards the threads time-slice and the speedup
/// collapses toward 1.0 — the numbers report what was measured.
fn shard_head_to_head(dataset: &Dataset, base: &ServeConfig, shards: usize) {
    let run = |n_shards: usize| {
        let server = ServerSpec::custom(4, 1 << 30, 2).build();
        let mut cfg = base.clone();
        cfg.policy = PolicyKind::StaticHot;
        cfg.router.policy = RouterPolicy::RoundRobin;
        cfg.shards = n_shards;
        let t0 = std::time::Instant::now();
        let mut report = serve(&dataset.graph, &dataset.features, &server, &cfg);
        let wall = t0.elapsed().as_secs_f64();
        report
            .metrics
            .counters
            .retain(|c| !c.name.starts_with("serve.shard"));
        (report, wall)
    };
    let (seq, seq_wall) = run(1);
    let (shr, shr_wall) = run(shards);
    let snap = |r: &ServeReport| serde_json::to_string(&r.metrics).expect("serializable snapshot");
    assert_eq!(
        snap(&seq),
        snap(&shr),
        "sharded round-robin run must be byte-identical to the sequential loop"
    );
    assert_eq!(seq.completed, shr.completed);
    let rate = |completed: u64, wall: f64| completed as f64 / wall.max(1e-9);
    println!(
        "\nshard head-to-head on 2x2-clique server ({} requests, round-robin, byte-identical snapshots):",
        seq.offered
    );
    println!(
        "  sequential: {:>10.0} ticks/s wall   --shards {}: {:>10.0} ticks/s wall   speedup {:.2}x over {} cpu(s)",
        rate(seq.completed, seq_wall),
        shards,
        rate(shr.completed, shr_wall),
        if shr_wall > 0.0 { seq_wall / shr_wall } else { 0.0 },
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );

    // Residency routing under sharding: the quantum-stepped coordinator
    // routes against projected depths and steals parked spills at
    // boundaries, so it is deterministic but not byte-identical to the
    // sequential loop — report both, assert only conservation.
    let run_res = |n_shards: usize| {
        let server = ServerSpec::custom(4, 1 << 30, 2).build();
        let mut cfg = base.clone();
        cfg.policy = PolicyKind::StaticHot;
        cfg.router.policy = RouterPolicy::Residency;
        cfg.shards = n_shards;
        serve(&dataset.graph, &dataset.features, &server, &cfg)
    };
    let res_seq = run_res(1);
    let res_shr = run_res(shards);
    for r in [&res_seq, &res_shr] {
        assert_eq!(
            r.routed + r.spilled,
            r.offered,
            "router must see every request"
        );
        assert_eq!(r.completed + r.shed, r.offered, "request conservation");
    }
    println!(
        "  residency:  sequential hits {:>5.1}% p99 {:>6} us spilled {:>5}   --shards {}: hits {:>5.1}% p99 {:>6} us spilled {:>5} steals {}",
        feature_hit_rate(&res_seq.metrics) * 100.0,
        res_seq.p99_us,
        res_seq.spilled,
        shards,
        feature_hit_rate(&res_shr.metrics) * 100.0,
        res_shr.p99_us,
        res_shr.spilled,
        counter(&res_shr.metrics, "serve.route.steals"),
    );
}

/// One row of the oversubscription sweep: a (config, load) cell with
/// the latency tail and the SSD-tier traffic that explains it.
#[derive(serde::Serialize)]
struct OversubRow {
    config: &'static str,
    load_multiplier: f64,
    offered: u64,
    completed: u64,
    shed: u64,
    p50_us: u64,
    p99_us: u64,
    prefetch_hits: u64,
    late_stalls: u64,
    cold_reads: u64,
    prefetch_hit_ratio: f64,
    nvme_bytes: u64,
    migrations: u64,
}

/// Prefetch hit ratio over all SSD-tier touches: of the rows a batch
/// needed that the plan placed on NVMe, the fraction already staged in
/// DRAM when the extractor asked for them.
fn prefetch_hit_ratio(metrics: &Snapshot) -> f64 {
    let hits = counter(metrics, "serve.store.prefetch_hits");
    let total = hits
        + counter(metrics, "serve.store.late_stalls")
        + counter(metrics, "serve.store.cold_reads");
    if total == 0 {
        1.0
    } else {
        hits as f64 / total as f64
    }
}

/// Out-of-core sweep: the same skewed serving workload with the whole
/// feature table DRAM-resident versus a DRAM budget ten times smaller
/// than the table, forcing the planner to spill the cold tail to the
/// simulated NVMe tier. Asserts the envelope the store exists for:
/// below the knee the lookahead prefetcher hides the SSD (hit ratio of
/// at least 80%), the p99 at half the resident knee stays within 3x of
/// the resident baseline, and an infinite DRAM budget reproduces the
/// store-off run byte-for-byte.
fn oversubscribe_sweep(dataset: &Dataset, base: &ServeConfig, smoke: bool) -> Vec<OversubRow> {
    // A stable head-heavy skew (the drift-comparison exponent, drift
    // off): out-of-core placement is only meaningful when hotness is a
    // property of the vertex, not of the phase. Single-hop fanout — the
    // low-latency regime online serving runs in, and the one where the
    // lookahead prefetcher has exact coverage: every feature row a
    // queued request can touch lies in its target's adjacency list, so
    // staging target + neighbors ahead of extraction hides the SSD.
    let cfg_for = |store: StoreConfig| {
        let mut cfg = base.clone();
        cfg.policy = PolicyKind::StaticHot;
        cfg.shards = 1;
        cfg.zipf_exponent = 1.8;
        cfg.drift_period = 0;
        cfg.fanouts = vec![8];
        // The micro-batcher's accumulation window is sized to cover the
        // flash read wave (80 us base latency plus the block-granular
        // transfer of a whole adjacency list): a row staged at
        // admission is ready by the time its batch launches. Both
        // configs run the same window, so the resident baseline pays
        // the same batching delay and the comparison isolates the tier.
        cfg.max_wait = 4e-4;
        // Scarce HBM: with the sweep's generous per-GPU cache most of
        // the table is HBM-resident and the DRAM/SSD split never sees
        // traffic. 64 rows/GPU keeps the HBM tier an order of magnitude
        // below the DRAM budget.
        cfg.cache_rows_per_gpu = 64;
        cfg.store = store;
        cfg
    };
    // Feature table ~10x the DRAM budget; staging window and prefetch
    // depth sized so the lookahead prefetcher can keep the working set
    // of SSD rows staged at sub-knee load.
    let dram_budget = dataset.feature_bytes() / 10;
    let store_on = || StoreConfig {
        dram_budget_bytes: Some(dram_budget),
        staging_rows: 3072,
        nvme: legion_serve::NvmeGeneration::Gen3x4,
        lookahead_requests: 64,
        prefetch_neighbors: 64,
        prefetch_budget: 512,
    };
    let store_off = || StoreConfig::default();
    let server = || ServerSpec::dgx_v100().truncated(4).build();
    // Load points anchor to the *store-aware* capacity probe — the one
    // that charges NVMe staging time when the plan spills rows to SSD —
    // so "1.0x" sits at the oversubscribed config's own knee and the
    // sub-knee points genuinely are below it.
    let resident_cap = estimate_capacity_rps(
        &dataset.graph,
        &dataset.features,
        &server(),
        &cfg_for(store_off()),
    );
    let capacity = estimate_capacity_rps(
        &dataset.graph,
        &dataset.features,
        &server(),
        &cfg_for(store_on()),
    );
    println!(
        "\noversubscription sweep: feature table {:.2} MiB, DRAM budget {:.2} MiB (10x oversubscribed), \
         HBM {} rows/GPU, staging {} rows",
        dataset.feature_bytes() as f64 / (1 << 20) as f64,
        dram_budget as f64 / (1 << 20) as f64,
        cfg_for(store_off()).cache_rows_per_gpu,
        store_on().staging_rows,
    );
    println!(
        "  capacity probe: resident {resident_cap:.0}/s, oversubscribed {capacity:.0}/s \
         ({:.2}x slowdown); loads are multiples of the oversubscribed knee",
        resident_cap / capacity,
    );
    println!(
        "  {:<10} {:>6} {:>9} {:>7} {:>9} {:>9} {:>10} {:>8} {:>8} {:>9} {:>11}",
        "config",
        "load",
        "done",
        "shed",
        "p50_us",
        "p99_us",
        "prefetch",
        "stall",
        "cold",
        "hit%",
        "nvme_MiB"
    );
    let mut rows = Vec::new();
    let multipliers: &[f64] = if smoke {
        &[0.25, 0.5, 1.0]
    } else {
        &[0.25, 0.5, 0.75, 1.0, 1.5]
    };
    let mut run = |label: &'static str, store: StoreConfig, mult: f64| {
        let server = server();
        let mut cfg = cfg_for(store);
        cfg.arrival = base
            .arrival
            .scaled(mult * capacity / base.arrival.mean_rate());
        let r = serve(&dataset.graph, &dataset.features, &server, &cfg);
        assert_eq!(r.completed + r.shed, r.offered, "request conservation");
        let row = OversubRow {
            config: label,
            load_multiplier: mult,
            offered: r.offered,
            completed: r.completed,
            shed: r.shed,
            p50_us: r.p50_us,
            p99_us: r.p99_us,
            prefetch_hits: counter(&r.metrics, "serve.store.prefetch_hits"),
            late_stalls: counter(&r.metrics, "serve.store.late_stalls"),
            cold_reads: counter(&r.metrics, "serve.store.cold_reads"),
            prefetch_hit_ratio: prefetch_hit_ratio(&r.metrics),
            nvme_bytes: counter(&r.metrics, "store.nvme.bytes"),
            migrations: counter(&r.metrics, "serve.store.migrations"),
        };
        println!(
            "  {:<10} {:>5.2}x {:>9} {:>7} {:>9} {:>9} {:>10} {:>8} {:>8} {:>8.1}% {:>11.2}",
            label,
            mult,
            row.completed,
            row.shed,
            row.p50_us,
            row.p99_us,
            row.prefetch_hits,
            row.late_stalls,
            row.cold_reads,
            row.prefetch_hit_ratio * 100.0,
            row.nvme_bytes as f64 / (1 << 20) as f64,
        );
        rows.push(row);
    };
    for &mult in multipliers {
        run("resident", store_off(), mult);
        run("oversub", store_on(), mult);
    }

    // The envelope the store is built for, point by point.
    let point = |label: &str, mult: f64| {
        rows.iter()
            .find(|r| r.config == label && r.load_multiplier == mult)
            .expect("sweep ran this point")
    };
    for r in rows.iter().filter(|r| r.config == "oversub") {
        assert!(
            r.nvme_bytes > 0,
            "oversubscribed run at {:.2}x must touch the NVMe tier",
            r.load_multiplier
        );
        if r.load_multiplier <= 0.5 {
            assert!(
                r.prefetch_hit_ratio >= 0.80,
                "prefetch hit ratio {:.3} at sub-knee load {:.2}x must stay >= 80%",
                r.prefetch_hit_ratio,
                r.load_multiplier
            );
        }
    }
    let (res_half, over_half) = (point("resident", 0.5), point("oversub", 0.5));
    assert!(
        over_half.p99_us <= 3 * res_half.p99_us.max(1),
        "oversubscribed p99 {} us at 0.5x knee must stay within 3x of the resident baseline {} us",
        over_half.p99_us,
        res_half.p99_us
    );
    println!(
        "  [store] 0.5x knee p99 {} -> {} us ({:.2}x); sub-knee prefetch hit ratio {:.1}%",
        res_half.p99_us,
        over_half.p99_us,
        over_half.p99_us as f64 / res_half.p99_us.max(1) as f64,
        over_half.prefetch_hit_ratio * 100.0,
    );

    // Degeneration: an infinite DRAM budget admits every row, the
    // placement collapses to the two-tier plan, and the run must be
    // byte-identical to the store-off snapshot — the store adds nothing
    // until the table outgrows DRAM.
    let snap_for = |store: StoreConfig| {
        let server = server();
        let mut cfg = cfg_for(store);
        cfg.arrival = base
            .arrival
            .scaled(0.5 * capacity / base.arrival.mean_rate());
        let r = serve(&dataset.graph, &dataset.features, &server, &cfg);
        serde_json::to_string(&r.metrics).expect("serializable snapshot")
    };
    let infinite = StoreConfig {
        dram_budget_bytes: Some(u64::MAX),
        ..store_on()
    };
    assert_eq!(
        snap_for(infinite),
        snap_for(store_off()),
        "infinite DRAM budget must reproduce the store-off run byte-for-byte"
    );
    println!("  [store] infinite-DRAM-budget run byte-identical to store-off snapshot");
    rows
}

/// One row of the fleet head-to-head: a (routing policy, load) cell
/// with the cluster-wide tail, locality, and cross-server traffic.
#[derive(serde::Serialize)]
struct FleetRow {
    policy: &'static str,
    num_servers: usize,
    load_multiplier: f64,
    offered_rps: f64,
    offered: u64,
    completed: u64,
    shed: u64,
    p50_us: u64,
    p99_us: u64,
    throughput_rps: f64,
    locality: f64,
    remote_reads: u64,
    remote_bytes: u64,
    remote_msgs: u64,
    dedup_hits: u64,
    replicated_rows: usize,
}

/// Scale-out head-to-head: the same open-loop stream over `n` simulated
/// servers, front-tier routed by shard residency + projected load vs a
/// uniform random-server baseline, at multiples of the aggregate
/// (`n` x single-machine) capacity. Cross-server reads cost wire time
/// through the cluster network model, so mis-routing shows up as a
/// lower knee. Asserts same-seed determinism, request conservation,
/// the residency locality and remote-traffic wins, residency knee
/// capacity strictly above random at a matched p99 ceiling, and — in
/// full mode with `n >= 16` — a fleet knee at least 10x the
/// single-machine capacity.
fn fleet_head_to_head(
    dataset: &Dataset,
    base: &ServeConfig,
    n: usize,
    smoke: bool,
) -> Vec<FleetRow> {
    let spec = ServerSpec::dgx_v100().truncated(4);
    // The fleet comparison pins the per-server engine to the static
    // planned cache on the sequential loop: plan quality is fixed, so
    // the only degrees of freedom are *which server* a request lands on
    // and what its misses cost on the wire.
    let cfg = {
        let mut cfg = base.clone();
        cfg.policy = PolicyKind::StaticHot;
        cfg.shards = 1;
        cfg
    };
    let capacity = estimate_capacity_rps(&dataset.graph, &dataset.features, &spec.build(), &cfg);
    let run_on = |policy: FleetPolicy,
                  servers: usize,
                  frac: f64,
                  uplink: Option<UplinkConfig>,
                  coalesce: bool|
     -> FleetReport {
        let fleet = FleetConfig {
            num_servers: servers,
            policy,
            // Both policies project against the same measured drain rate.
            drain_rps: Some(capacity),
            uplink,
            coalesce,
            ..FleetConfig::default()
        };
        let mut cfg = cfg.clone();
        cfg.arrival = base
            .arrival
            .scaled(frac * servers as f64 * capacity / base.arrival.mean_rate());
        // Scale the stream with the fleet so every server drains a
        // stream comparable to the single-machine baseline; with a
        // fixed stream the constant per-server pipeline-drain tail
        // would dominate the 16x-shorter arrival span and the measured
        // "scale-out" would be a finite-stream artifact, not routing.
        cfg.num_requests = cfg.num_requests.saturating_mul(servers);
        serve_fleet(&dataset.graph, &dataset.features, &spec, &cfg, &fleet)
    };
    let run = |policy: FleetPolicy, servers: usize, frac: f64| -> FleetReport {
        run_on(policy, servers, frac, None, false)
    };

    // Same seed, same config: the fleet snapshot must be reproducible
    // byte for byte (workload, partitioner, hotness, routing, and every
    // per-server engine are all deterministic).
    let fractions: &[f64] = if smoke {
        &[0.3, 0.6, 0.9]
    } else {
        &[0.2, 0.4, 0.6, 0.8, 1.1]
    };
    let probe = run(FleetPolicy::Residency, n, fractions[0]);
    let again = run(FleetPolicy::Residency, n, fractions[0]);
    let snap = |r: &FleetReport| serde_json::to_string(&r.metrics).expect("serializable snapshot");
    assert_eq!(
        snap(&probe),
        snap(&again),
        "same-seed fleet runs must produce byte-identical snapshots"
    );
    println!(
        "\nfleet head-to-head: {} servers ({} x4), single-machine capacity probe {capacity:.0}/s, \
         {} hot rows replicated per server; fleet loads are multiples of {}x that probe, and the \
         scale-out yardstick is the measured single-machine (N=1) open-loop knee",
        n, spec.name, probe.replicated_rows, n
    );
    println!(
        "  {:<10} {:>6} {:>12} {:>9} {:>7} {:>9} {:>9} {:>14} {:>9} {:>12} {:>12}",
        "policy",
        "load",
        "offered/s",
        "done",
        "shed",
        "p50_us",
        "p99_us",
        "throughput/s",
        "local",
        "remote_rd",
        "remote_MiB"
    );
    let mut rows = Vec::new();
    // Series: the measured single-machine baseline (an N=1 fleet, which
    // is byte-identical to the plain engine), then the residency fleet,
    // then the random-server baseline. `--fleet 1` degenerates to the
    // single-machine series alone: with one server residency and random
    // route identically and nothing crosses the wire.
    let mut series: Vec<(&'static str, FleetPolicy, usize)> =
        vec![("single", FleetPolicy::Residency, 1)];
    if n > 1 {
        series.push(("residency", FleetPolicy::Residency, n));
        series.push(("random", FleetPolicy::Random, n));
    }
    let make_row = |label: &'static str, servers: usize, frac: f64, r: &FleetReport| -> FleetRow {
        assert_eq!(r.completed + r.shed, r.offered, "request conservation");
        let row = FleetRow {
            policy: label,
            num_servers: servers,
            load_multiplier: frac,
            offered_rps: frac * servers as f64 * capacity,
            offered: r.offered,
            completed: r.completed,
            shed: r.shed,
            p50_us: r.p50_us,
            p99_us: r.p99_us,
            throughput_rps: r.throughput_rps,
            locality: r.locality,
            remote_reads: r.remote_reads,
            remote_bytes: r.remote_bytes,
            remote_msgs: r.remote_msgs,
            dedup_hits: r.dedup_hits,
            replicated_rows: r.replicated_rows,
        };
        println!(
            "  {:<10} {:>5.2}x {:>12.0} {:>9} {:>7} {:>9} {:>9} {:>14.0} {:>8.1}% {:>12} {:>12.2}",
            row.policy,
            frac,
            row.offered_rps,
            row.completed,
            row.shed,
            row.p50_us,
            row.p99_us,
            row.throughput_rps,
            row.locality * 100.0,
            row.remote_reads,
            row.remote_bytes as f64 / (1 << 20) as f64,
        );
        row
    };
    for &(label, policy, servers) in &series {
        for &frac in fractions {
            let r = run(policy, servers, frac);
            let row = make_row(label, servers, frac, &r);
            if label == "residency" && frac == fractions[fractions.len() - 2] {
                legion_bench::save_snapshot("servectl_fleet_residency", &r.metrics);
            }
            rows.push(row);
        }
    }

    // Knee capacity at a matched p99: the shared ceiling is 5x the
    // lowest-load single-machine tail; a series' knee is the best
    // throughput it sustained at a load point that sheds nothing and
    // stays under the ceiling.
    fn points<'a>(rows: &'a [FleetRow], label: &str) -> Vec<&'a FleetRow> {
        rows.iter().filter(|r| r.policy == label).collect()
    }
    let single = points(&rows, "single");
    let p99_cap = 5 * single[0].p99_us.max(1);
    let knee = |pts: &[&FleetRow]| -> f64 {
        pts.iter()
            .filter(|r| r.shed == 0 && r.p99_us <= p99_cap)
            .map(|r| r.throughput_rps)
            .fold(0.0, f64::max)
    };
    let single_knee = knee(&single);
    assert!(
        single_knee > 0.0,
        "single-machine baseline must have a point under the p99 ceiling"
    );
    if n == 1 {
        println!(
            "  [fleet] single-machine open-loop knee {single_knee:.0}/s at p99 <= {p99_cap} us \
             (run --fleet N with N > 1 for the scale-out head-to-head)"
        );
        return rows;
    }
    let res = points(&rows, "residency");
    let rnd = points(&rows, "random");
    let (res_knee, rnd_knee) = (knee(&res), knee(&rnd));
    let res_locality = res.iter().map(|r| r.locality).fold(f64::INFINITY, f64::min);
    let rnd_locality = rnd.iter().map(|r| r.locality).fold(0.0, f64::max);
    let res_remote: u64 = res.iter().map(|r| r.remote_reads).sum();
    let rnd_remote: u64 = rnd.iter().map(|r| r.remote_reads).sum();
    println!(
        "  [fleet] knee capacity at p99 <= {p99_cap} us: residency {res_knee:.0}/s vs random {rnd_knee:.0}/s, \
         single machine {single_knee:.0}/s ({:.1}x scale-out at N={n}); \
         locality {:.1}% vs {:.1}%; remote reads {res_remote} vs {rnd_remote}",
        res_knee / single_knee,
        res_locality * 100.0,
        rnd_locality * 100.0,
    );
    assert!(
        res_locality > rnd_locality,
        "residency locality {res_locality:.3} must beat random {rnd_locality:.3}"
    );
    assert!(
        res_remote < rnd_remote,
        "residency must move fewer rows over the wire: {res_remote} vs {rnd_remote}"
    );
    assert!(
        res_knee > rnd_knee,
        "residency knee capacity {res_knee:.0}/s must strictly beat random {rnd_knee:.0}/s at matched p99"
    );
    if !smoke && n >= 16 {
        assert!(
            res_knee >= 10.0 * single_knee,
            "a {n}-server fleet must sustain >= 10x the single-machine knee with a flat p99: \
             {res_knee:.0}/s vs 10x {single_knee:.0}/s"
        );
    }

    // Contended fabric: the same head-to-head with a heavily shared
    // uplink (8:1 ToR oversubscription, 25% per-peer NIC tax — a busy
    // cluster, not the 4:1 default), with and without per-owner
    // remote-read coalescing. Under contention every wire byte costs
    // more, so (a) coalescing must strictly cut both messages and
    // bytes, and (b) residency's knee advantage over random must
    // *widen* relative to the uncontended ratio measured above — the
    // contention multiplier amplifies exactly the per-row traffic
    // residency routes around.
    let uplink = UplinkConfig {
        oversubscription: 8.0,
        nic_serialization: 0.25,
    };
    println!(
        "\n  contended fabric: {}:1 ToR oversubscription, {:.0}% NIC serialization per peer \
         (stretch {:.2}x at {n} servers)",
        uplink.oversubscription,
        uplink.nic_serialization * 100.0,
        uplink.stretch(n)
    );
    let contended: Vec<(&'static str, FleetPolicy, bool)> = vec![
        ("res+up", FleetPolicy::Residency, false),
        ("res+up+co", FleetPolicy::Residency, true),
        ("rand+up", FleetPolicy::Random, false),
        ("rand+up+co", FleetPolicy::Random, true),
    ];
    for &(label, policy, coalesce) in &contended {
        for &frac in fractions {
            let r = run_on(policy, n, frac, Some(uplink), coalesce);
            rows.push(make_row(label, n, frac, &r));
        }
    }
    let sum = |label: &str, f: fn(&FleetRow) -> u64| -> u64 {
        rows.iter().filter(|r| r.policy == label).map(f).sum()
    };
    let (raw_bytes, raw_msgs) = (
        sum("res+up", |r| r.remote_bytes),
        sum("res+up", |r| r.remote_msgs),
    );
    let (co_bytes, co_msgs) = (
        sum("res+up+co", |r| r.remote_bytes),
        sum("res+up+co", |r| r.remote_msgs),
    );
    let co_dedup = sum("res+up+co", |r| r.dedup_hits);
    println!(
        "  [fleet] coalescing: {raw_msgs} -> {co_msgs} wire messages, \
         {:.2} -> {:.2} MiB, {co_dedup} window dedup hits",
        raw_bytes as f64 / (1 << 20) as f64,
        co_bytes as f64 / (1 << 20) as f64,
    );
    assert!(
        co_msgs < raw_msgs,
        "per-owner coalescing must strictly cut wire messages: {co_msgs} vs {raw_msgs}"
    );
    assert!(
        co_bytes < raw_bytes,
        "per-owner coalescing must strictly cut wire bytes: {co_bytes} vs {raw_bytes}"
    );
    let res_up = points(&rows, "res+up");
    let rnd_up = points(&rows, "rand+up");
    let (res_up_knee, rnd_up_knee) = (knee(&res_up), knee(&rnd_up));
    println!(
        "  [fleet] contended knees at p99 <= {p99_cap} us: residency \
         {res_up_knee:.0}/s vs random {rnd_up_knee:.0}/s (uncontended {res_knee:.0}/s vs {rnd_knee:.0}/s)"
    );
    assert!(
        res_up_knee > 0.0,
        "residency must keep a point under the p99 ceiling on the contended fabric"
    );
    // Product form of res_up/rnd_up > res/rnd, robust to a random
    // baseline with no point under the ceiling.
    assert!(
        res_up_knee * rnd_knee > res_knee * rnd_up_knee,
        "residency's knee advantage must widen under contention: \
         {res_up_knee:.0}/{rnd_up_knee:.0} vs uncontended {res_knee:.0}/{rnd_knee:.0}"
    );
    rows
}

/// One scenario row of the drift-resize comparison.
#[derive(serde::Serialize)]
struct DriftFleetRow {
    scenario: &'static str,
    locality: f64,
    resizes: u64,
    refill_rows: u64,
    replicated_rows: usize,
    head_rows: u64,
    completed: u64,
    shed: u64,
    p99_us: u64,
}

/// Drift scenario for the fleet tier: the workload's hot set rotates
/// hard halfway through the stream (the existing drifting generator,
/// stride = half the vertex space), and the statically planned
/// replicated head goes cold. Three fleets serve it on the contended
/// fabric with coalescing on:
///
/// * `fresh` — no drift: the plan-time head matches the live hot set
///   all run (the fresh-plan yardstick),
/// * `frozen` — drifting stream, head pinned at plan time,
/// * `resized` — drifting stream, [`FleetConfig::resize_on_drift`]:
///   the front tier re-sizes the head from the windowed hotness curve
///   at bucket boundaries, refilling replicas over the charged fabric.
///
/// Asserts the rotation triggers at least one resize and that the
/// resized fleet's locality lands within five points of the fresh-plan
/// fleet's.
fn fleet_drift_resize(dataset: &Dataset, base: &ServeConfig, n: usize) -> Vec<DriftFleetRow> {
    let spec = ServerSpec::dgx_v100().truncated(4);
    let cfg = {
        let mut cfg = base.clone();
        cfg.policy = PolicyKind::StaticHot;
        cfg.shards = 1;
        cfg
    };
    let capacity = estimate_capacity_rps(&dataset.graph, &dataset.features, &spec.build(), &cfg);
    let mut drifting = cfg.clone();
    // Moderate load well under the knee: the comparison is about
    // residency, not queueing.
    drifting.arrival = base
        .arrival
        .scaled(0.5 * n as f64 * capacity / base.arrival.mean_rate());
    drifting.num_requests = cfg.num_requests.saturating_mul(n);
    // One hard rotation at mid-stream, displacing the hot head to the
    // far half of the vertex space.
    drifting.drift_period = drifting.num_requests / 2;
    drifting.drift_stride = dataset.graph.num_vertices() / 2;
    let fresh_cfg = ServeConfig {
        drift_period: 0,
        ..drifting.clone()
    };
    let run = |cfg: &ServeConfig, resize: bool| -> FleetReport {
        let fleet = FleetConfig {
            num_servers: n,
            policy: FleetPolicy::Residency,
            drain_rps: Some(capacity),
            uplink: Some(UplinkConfig::default()),
            coalesce: true,
            resize_on_drift: resize,
            ..FleetConfig::default()
        };
        serve_fleet(&dataset.graph, &dataset.features, &spec, cfg, &fleet)
    };
    let fresh = run(&fresh_cfg, false);
    let frozen = run(&drifting, false);
    let resized = run(&drifting, true);
    println!(
        "\nfleet drift resize: {} servers, {} requests, hot set rotates {} positions at request {}",
        n, drifting.num_requests, drifting.drift_stride, drifting.drift_period
    );
    println!(
        "  {:<8} {:>9} {:>8} {:>12} {:>10} {:>10} {:>9}",
        "scenario", "locality", "resizes", "refill_rows", "head_rows", "completed", "p99_us"
    );
    let mut rows = Vec::new();
    for (label, r) in [
        ("fresh", &fresh),
        ("frozen", &frozen),
        ("resized", &resized),
    ] {
        let row = DriftFleetRow {
            scenario: label,
            locality: r.locality,
            resizes: r.resizes,
            refill_rows: r.metrics.counter("fleet.resize.refill_rows"),
            replicated_rows: r.replicated_rows,
            head_rows: r.metrics.gauge("fleet.resize.head_rows") as u64,
            completed: r.completed,
            shed: r.shed,
            p99_us: r.p99_us,
        };
        println!(
            "  {:<8} {:>8.1}% {:>8} {:>12} {:>10} {:>10} {:>9}",
            row.scenario,
            row.locality * 100.0,
            row.resizes,
            row.refill_rows,
            if label == "resized" {
                row.head_rows
            } else {
                row.replicated_rows as u64
            },
            row.completed,
            row.p99_us,
        );
        rows.push(row);
    }
    assert!(
        resized.resizes >= 1,
        "the mid-stream rotation must trigger at least one head resize"
    );
    assert!(
        resized.locality >= fresh.locality - 0.05,
        "drift-resized locality {:.3} must land within 5 points of the fresh-plan fleet {:.3} \
         (frozen head: {:.3})",
        resized.locality,
        fresh.locality,
        frozen.locality
    );
    rows
}

fn print_points(points: &[LoadPoint]) {
    for p in points {
        println!(
            "{:<8} {:>6.2} {:>12.0} {:>9} {:>7} {:>14.0} {:>9} {:>9} {:>9} {:>8.1}%",
            p.policy,
            p.load_multiplier,
            p.offered_rps,
            p.completed,
            p.shed,
            p.throughput_rps,
            p.p50_us,
            p.p95_us,
            p.p99_us,
            p.slo_attainment * 100.0
        );
    }
}

/// One row of the churn head-to-head: a (policy, config) cell with the
/// latency tail, the cache hit rate, and the mutation/invalidation
/// telemetry that explains it.
#[derive(serde::Serialize)]
struct ChurnRow {
    policy: &'static str,
    config: &'static str,
    offered: u64,
    completed: u64,
    shed: u64,
    p50_us: u64,
    p99_us: u64,
    hit_rate: f64,
    mut_inserts: u64,
    mut_deletes: u64,
    compactions: u64,
    overlay_rows: u64,
    invalidate_topo_rows: u64,
    invalidate_residency_bits: u64,
}

/// Streaming-mutation head-to-head: the same skewed serving workload at
/// 0.9x capacity over a frozen graph versus production-rate churn
/// (edge inserts/deletes/vertex churn at a quarter of the request
/// rate) streamed through the delta-CSR overlay. Asserts, per policy,
/// that churn keeps the hit rate within 15 points and the p99 within
/// 3x of the frozen baseline; that the overlay's merged neighborhoods
/// — including the engine's actual sampled ids — agree exactly with a
/// from-scratch rebuilt CSR (no deleted edge survives, no applied
/// insert goes missing); and that replaying the logged stream after a
/// JSON round trip reproduces the generated run byte-for-byte.
fn churn_head_to_head(dataset: &Dataset, base: &ServeConfig, smoke: bool) -> Vec<ChurnRow> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let spec = ServerSpec::dgx_v100().truncated(4);
    let server = spec.build();
    let capacity = estimate_capacity_rps(&dataset.graph, &dataset.features, &server, base);
    let rate = 0.9 * capacity;
    let churn_cfg = ChurnConfig {
        ops_per_sec: (0.25 * rate).max(2_000.0),
        // Low enough that batch-boundary compaction actually fires
        // within a smoke-length stream.
        compact_threshold: 512,
        ..ChurnConfig::default()
    };
    println!(
        "\nchurn head-to-head at 0.9x capacity ({rate:.0} req/s): {:.0} mutations/s \
         ({}% inserts, {}% vertex churn), compaction threshold {} delta edges",
        churn_cfg.ops_per_sec,
        (churn_cfg.insert_frac * 100.0) as u32,
        (churn_cfg.churn_frac * 100.0) as u32,
        churn_cfg.compact_threshold,
    );
    println!(
        "{:<8} {:<8} {:>9} {:>7} {:>8} {:>9} {:>9} {:>9} {:>8} {:>7} {:>9}",
        "policy",
        "graph",
        "done",
        "shed",
        "hit%",
        "p99_us",
        "inserts",
        "deletes",
        "compact",
        "rows",
        "invalid"
    );
    let run = |policy: PolicyKind, mutations: Option<MutationSource>| {
        let server = spec.build();
        let mut cfg = base.clone();
        cfg.policy = policy;
        cfg.arrival = ArrivalProcess::Poisson { rate };
        cfg.mutations = mutations;
        serve(&dataset.graph, &dataset.features, &server, &cfg)
    };
    let mut rows = Vec::new();
    let mut record = |policy: PolicyKind, config: &'static str, r: &ServeReport| {
        let row = ChurnRow {
            policy: policy.as_str(),
            config,
            offered: r.offered,
            completed: r.completed,
            shed: r.shed,
            p50_us: r.p50_us,
            p99_us: r.p99_us,
            hit_rate: feature_hit_rate(&r.metrics),
            mut_inserts: counter(&r.metrics, "graph.mut.inserts"),
            mut_deletes: counter(&r.metrics, "graph.mut.deletes"),
            compactions: counter(&r.metrics, "graph.mut.compactions"),
            overlay_rows: counter(&r.metrics, "graph.mut.overlay_rows"),
            invalidate_topo_rows: counter(&r.metrics, "serve.invalidate.topo_rows"),
            invalidate_residency_bits: counter(&r.metrics, "serve.invalidate.residency_bits"),
        };
        println!(
            "{:<8} {:<8} {:>9} {:>7} {:>8.1} {:>9} {:>9} {:>9} {:>8} {:>7} {:>9}",
            row.policy,
            row.config,
            row.completed,
            row.shed,
            row.hit_rate * 100.0,
            row.p99_us,
            row.mut_inserts,
            row.mut_deletes,
            row.compactions,
            row.overlay_rows,
            row.invalidate_topo_rows + row.invalidate_residency_bits,
        );
        rows.push(row);
    };
    let mut churn_static: Option<ServeReport> = None;
    for &policy in &POLICIES {
        let frozen = run(policy, None);
        let churned = run(policy, Some(MutationSource::Generate(churn_cfg.clone())));
        assert_eq!(churned.completed + churned.shed, churned.offered);
        let (fh, ch) = (
            feature_hit_rate(&frozen.metrics),
            feature_hit_rate(&churned.metrics),
        );
        assert!(
            ch >= fh - 0.15,
            "{}: churn hit rate {:.3} fell more than 15 points below frozen {:.3}",
            policy.as_str(),
            ch,
            fh
        );
        assert!(
            churned.p99_us <= 3 * frozen.p99_us.max(100),
            "{}: churn p99 {} us must stay within 3x of frozen {} us",
            policy.as_str(),
            churned.p99_us,
            frozen.p99_us
        );
        assert!(
            counter(&churned.metrics, "graph.mut.inserts")
                + counter(&churned.metrics, "graph.mut.deletes")
                > 0,
            "churn run must apply mutations"
        );
        record(policy, "frozen", &frozen);
        record(policy, "churn", &churned);
        if policy == PolicyKind::StaticHot {
            churn_static = Some(churned);
        }
    }

    // Replay byte-identity: rebuild the exact log the engine resolved
    // (same seed, horizon = last arrival), round-trip it through JSON,
    // and replay it — the snapshot must match the generated run
    // byte-for-byte.
    let requests = {
        let mut target_sampler = TargetSampler::new(
            (0..dataset.graph.num_vertices() as u32).collect(),
            base.zipf_exponent,
            base.drift_period,
            base.drift_stride,
        );
        let mut class_sampler = ClassSampler::new(base.classes.mix, base.seed);
        let mut rng = StdRng::seed_from_u64(base.seed);
        // The head-to-head overrides the arrival process, so the
        // horizon must come from the stream the runs actually saw.
        generate_workload_classed(
            &ArrivalProcess::Poisson { rate },
            &mut target_sampler,
            &mut class_sampler,
            base.num_requests,
            &mut rng,
        )
    };
    let horizon = requests.last().map(|r| r.arrival).unwrap_or(0.0);
    let log = MutationLog::generate(&dataset.graph, &churn_cfg, base.seed, horizon);
    let json = serde_json::to_string(&log).expect("serializable mutation log");
    let replayed_log: MutationLog = serde_json::from_str(&json).expect("round-trippable log");
    assert_eq!(log, replayed_log, "JSON round trip must preserve the log");
    let replayed = run(
        PolicyKind::StaticHot,
        Some(MutationSource::Replay {
            log: std::sync::Arc::new(replayed_log),
            compact_threshold: churn_cfg.compact_threshold,
        }),
    );
    let snap = |r: &ServeReport| serde_json::to_string(&r.metrics).expect("serializable snapshot");
    let generated = churn_static.expect("StaticHot churn run recorded");
    assert_eq!(
        snap(&generated),
        snap(&replayed),
        "replaying the logged stream must be byte-identical to generating it"
    );

    // Sampled-neighborhood correctness: replay the full log into a
    // fresh overlay and compare every merged row against a from-scratch
    // rebuilt CSR — then drive the engine's real sampling path over the
    // dirty rows with a saturating fanout and check the sampled ids.
    let overlay = DeltaOverlay::new(dataset.graph.num_vertices());
    for m in &log.ops {
        overlay.apply(&dataset.graph, &m.op);
    }
    let rebuilt = overlay.rebuild_csr(&dataset.graph);
    let mut merged = Vec::new();
    let mut dirty: Vec<u32> = Vec::new();
    for v in 0..dataset.graph.num_vertices() as u32 {
        overlay.merge_into(&dataset.graph, v, &mut merged);
        let mut got = merged.clone();
        got.sort_unstable();
        assert_eq!(
            got,
            rebuilt.neighbors(v),
            "merged row {v} must equal the rebuilt CSR row"
        );
        if overlay.is_dirty(v) {
            dirty.push(v);
        }
    }
    use legion_sampling::access::{AccessEngine, CacheLayout, TopologyPlacement};
    let layout = CacheLayout::none(server.num_gpus());
    let engine = AccessEngine::new(
        &dataset.graph,
        &dataset.features,
        &layout,
        &server,
        TopologyPlacement::CpuUva,
    )
    .with_overlay(Some(&overlay));
    let mut rng = StdRng::seed_from_u64(base.seed ^ 0x5a5a_5a5a);
    let spot = if smoke { 64 } else { 512 };
    for &v in dirty.iter().take(spot) {
        let want = rebuilt.neighbors(v);
        let mut got = engine.sample_neighbors(0, v, want.len().max(1), &mut rng);
        got.sort_unstable();
        assert_eq!(
            got, want,
            "sampling vertex {v} at saturating fanout must return exactly the live \
             neighborhood: no deleted edges, no missing inserts"
        );
    }
    println!(
        "  [churn] replay byte-identical after JSON round trip ({} ops); {} merged rows == rebuilt CSR; \
         {} dirty rows spot-checked through the sampler",
        log.ops.len(),
        dataset.graph.num_vertices(),
        dirty.len().min(spot),
    );
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let drift_only = args.iter().any(|a| a == "--drift-only");
    let router_only = args.iter().any(|a| a == "--router");
    let oversubscribe = args.iter().any(|a| a == "--oversubscribe");
    let churn = args.iter().any(|a| a == "--churn");
    let sequential = args.iter().any(|a| a == "--sequential");
    let fleet = args
        .iter()
        .position(|a| a == "--fleet")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            let n = v
                .parse::<usize>()
                .expect("--fleet takes a positive integer");
            assert!(n > 0, "--fleet takes a positive integer");
            n
        });
    let shards = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse::<usize>()
                .expect("--shards takes a positive integer")
        })
        .unwrap_or(1);
    let shards = if sequential { 1 } else { shards.max(1) };
    let dataset_name = "PR";
    let divisor = if smoke {
        legion_bench::dataset_divisor(dataset_name).max(500)
    } else {
        legion_bench::dataset_divisor(dataset_name)
    };
    let base = if smoke {
        // Scaled with the 500x dataset: a smaller per-batch neighborhood
        // (so the FIFO cache holds several batches of history instead of
        // thrashing), a shorter age trigger, and a shallower queue so the
        // 4x point still reaches its queue-bound tail within the stream.
        // The drift stride equals the cache width, so each rotation
        // displaces the entire cached head — the regime re-planning is
        // built for.
        ServeConfig {
            num_requests: 3000,
            max_batch: 16,
            max_wait: 1e-4,
            queue_capacity: 512,
            fanouts: vec![5, 3],
            warmup_requests: 256,
            cache_rows_per_gpu: 1024,
            drift_period: 300,
            drift_stride: 1024,
            ..ServeConfig::default()
        }
    } else {
        ServeConfig::default()
    };
    let base = ServeConfig { shards, ..base };
    let multipliers: &[f64] = if smoke {
        &SMOKE_MULTIPLIERS
    } else {
        &SWEEP_MULTIPLIERS
    };

    legion_bench::banner(&format!(
        "servectl: online serving sweep on {dataset_name}/{divisor}x ({} requests/point{})",
        base.num_requests,
        if smoke { ", smoke" } else { "" }
    ));
    let dataset: Dataset = spec_by_name(dataset_name)
        .expect("PR is registered")
        .instantiate(divisor, base.seed);
    if let Some(n) = fleet {
        let rows = fleet_head_to_head(&dataset, &base, n, smoke);
        legion_bench::save_json("servectl_fleet", &rows);
        if n > 1 {
            let drift_rows = fleet_drift_resize(&dataset, &base, n);
            legion_bench::save_json("servectl_fleet_drift", &drift_rows);
        }
        println!("\nservectl: OK");
        return;
    }
    if router_only {
        let rows = router_head_to_head(&dataset, &base);
        legion_bench::save_json("servectl_router", &rows);
        if shards > 1 {
            shard_head_to_head(&dataset, &base, shards);
        }
        println!("\nservectl: OK");
        return;
    }
    if oversubscribe {
        let rows = oversubscribe_sweep(&dataset, &base, smoke);
        legion_bench::save_json("servectl_oversubscribe", &rows);
        println!("\nservectl: OK");
        return;
    }
    if churn {
        let rows = churn_head_to_head(&dataset, &base, smoke);
        legion_bench::save_json("servectl_churn", &rows);
        println!("\nservectl: OK");
        return;
    }
    let spec = ServerSpec::dgx_v100().truncated(4);
    let server: MultiGpuServer = spec.build();
    println!(
        "dataset: {} ({} vertices), server: {} x4, policy knobs: max_batch {} max_wait {:.1} ms queue {} cache {} rows/GPU",
        dataset.name,
        dataset.graph.num_vertices(),
        spec.name,
        base.max_batch,
        base.max_wait * 1e3,
        base.queue_capacity,
        base.cache_rows_per_gpu,
    );
    println!(
        "replan knobs: bucket {} requests, window {} buckets, detector {:?}, cooldown {} buckets",
        base.replan.bucket_requests,
        base.replan.window_buckets,
        base.replan.detector,
        base.replan.cooldown_buckets,
    );

    let capacity = estimate_capacity_rps(&dataset.graph, &dataset.features, &server, &base);
    println!("estimated capacity: {capacity:.0} requests/s (warmed closed-loop probe)\n");
    println!(
        "{:<8} {:>6} {:>12} {:>9} {:>7} {:>14} {:>9} {:>9} {:>9} {:>8}",
        "policy",
        "load",
        "offered/s",
        "done",
        "shed",
        "throughput/s",
        "p50_us",
        "p95_us",
        "p99_us",
        "SLO"
    );

    let mut rows: Vec<LoadPoint> = Vec::new();
    let sweep_policies: &[PolicyKind] = if drift_only { &[] } else { &POLICIES };
    for &policy in sweep_policies {
        let mut config = base.clone();
        config.policy = policy;
        let points = run_sweep(
            &dataset.graph,
            &dataset.features,
            &server,
            &config,
            capacity,
            multipliers,
        );
        print_points(&points);
        for p in &points {
            assert_eq!(p.completed + p.shed, p.offered, "request conservation");
        }
        let (first, last) = (points.first().unwrap(), points.last().unwrap());
        let knee = last.p99_us >= 5 * first.p99_us;
        println!(
            "  [{}] p99 knee: {} us -> {} us ({:.1}x){}",
            policy.as_str(),
            first.p99_us,
            last.p99_us,
            last.p99_us as f64 / first.p99_us.max(1) as f64,
            if knee {
                ""
            } else if smoke {
                "  (knee not asserted in smoke)"
            } else {
                "  (no knee!)"
            }
        );
        if !smoke {
            assert!(
                knee,
                "{} curve has no saturation knee: p99 {} -> {}",
                policy.as_str(),
                first.p99_us,
                last.p99_us
            );
        }
        rows.extend(points);
    }

    // Head-to-head under drift at a fixed 0.9x load: the static planner
    // filled its cache from pre-drift warmup traffic and never changes
    // it; the FIFO cache follows the drifting hot set access by access;
    // the re-planned cache detects the hit-rate drop and re-runs the
    // planner over its observed window, paying for each swap's refill.
    //
    // The drift runs reshape the workload into the regime re-planning
    // exists for:
    //
    // * a head-heavy Zipf skew — under the sweep's mild exponent most
    //   feature traffic lands on structural hubs every policy caches
    //   regardless, and rotating seed ranks barely moves the hit rate;
    // * a rotation stride equal to the cache width, so each rotation
    //   displaces the entire cached seed head;
    // * a rotation period long enough that the sliding window can fill
    //   with post-rotation traffic before the next rotation — each GPU
    //   only observes its quarter of the stream, so the per-GPU window
    //   needs a horizon comparable to the (global) warmup profile the
    //   initial plans are built from.
    // * a scarcer cache than the sweep's — when the cache comfortably
    //   holds the hubs plus most of the head, even a fully stale plan
    //   keeps hitting; scarcity is what makes plan *quality* matter.
    const DRIFT_ZIPF: f64 = 1.8;
    let drift_period = if smoke { 1000 } else { 2000 };
    let drift_requests = if smoke {
        base.num_requests
    } else {
        6 * drift_period
    };
    let drift_cache_rows = base.cache_rows_per_gpu / 2;
    let drift_stride = base.cache_rows_per_gpu;
    let drift_replan = ReplanConfig {
        bucket_requests: 16,
        window_buckets: 24,
        // Spread the episode's refinement re-plans across the phase: the
        // first re-plan fires while the window still holds pre-rotation
        // traffic, so the later, cleaner-window refinements are the ones
        // that close the gap to a fresh plan.
        cooldown_buckets: 4,
        max_episode_replans: 6,
        ..ReplanConfig::default()
    };
    println!(
        "\ndrift comparison at 0.9x capacity (drift period {drift_period} requests, stride {drift_stride}, cache {drift_cache_rows} rows/GPU, zipf {DRIFT_ZIPF}):"
    );
    let mut drift_reports: Vec<(PolicyKind, ServeReport)> = Vec::new();
    for policy in POLICIES {
        let mut config = base.clone();
        config.policy = policy;
        config.zipf_exponent = DRIFT_ZIPF;
        config.num_requests = drift_requests;
        config.drift_period = drift_period;
        config.drift_stride = drift_stride;
        config.cache_rows_per_gpu = drift_cache_rows;
        config.replan = drift_replan.clone();
        config.arrival = base
            .arrival
            .scaled(0.9 * capacity / base.arrival.mean_rate());
        let report = serve(&dataset.graph, &dataset.features, &server, &config);
        print!(
            "  {:<8} feature hit rate {:>5.1}%  p99 {:>7} us  SLO {:>5.1}%  throughput {:>8.0}/s",
            policy.as_str(),
            feature_hit_rate(&report.metrics) * 100.0,
            report.p99_us,
            report.slo_attainment * 100.0,
            report.throughput_rps
        );
        if policy == PolicyKind::Replan {
            print!(
                "  ({} replans, {:.1} MiB swapped)",
                counter(&report.metrics, "serve.replan.count"),
                counter(&report.metrics, "serve.replan.swap_bytes") as f64 / (1 << 20) as f64,
            );
        }
        println!();
        legion_bench::save_snapshot(&format!("servectl_{}", policy.as_str()), &report.metrics);
        drift_reports.push((policy, report));
    }

    // Per-phase tail hit rates: phase 0 is pre-drift (every policy's
    // plan is fresh), each later phase starts right after a rotation.
    let tails: Vec<BTreeMap<u64, f64>> = drift_reports
        .iter()
        .map(|(_, r)| tail_hit_rates(&r.metrics))
        .collect();
    let phases: BTreeSet<u64> = tails.iter().flat_map(|t| t.keys().copied()).collect();
    println!("\n  per-phase tail feature hit rate (settled second half of each phase):");
    println!(
        "  {:>5} {:>8} {:>8} {:>8}",
        "phase", "static", "fifo", "replan"
    );
    for &k in &phases {
        let cell = |t: &BTreeMap<u64, f64>| {
            t.get(&k)
                .map_or("   -".to_string(), |r| format!("{:>6.1}%", r * 100.0))
        };
        println!(
            "  {:>5} {:>8} {:>8} {:>8}",
            k,
            cell(&tails[0]),
            cell(&tails[1]),
            cell(&tails[2])
        );
    }

    let replan_metrics = &drift_reports[2].1.metrics;
    let replans = counter(replan_metrics, "serve.replan.count");
    let swap_bytes = counter(replan_metrics, "serve.replan.swap_bytes");
    let last_phase = *phases.iter().next_back().expect("drift runs have phases");
    let end_rate = |i: usize| *tails[i].get(&last_phase).unwrap_or(&0.0);
    let fresh = *tails[2].get(&0).unwrap_or(&0.0);
    let worst_recovery = tails[2].values().copied().fold(f64::INFINITY, f64::min);
    println!(
        "\n  replan end-state: {:.1}% vs static {:.1}% / fifo {:.1}%; fresh-plan (phase 0) {:.1}%, worst phase {:.1}%",
        end_rate(2) * 100.0,
        end_rate(0) * 100.0,
        end_rate(1) * 100.0,
        fresh * 100.0,
        worst_recovery * 100.0,
    );
    assert!(replans > 0, "drift must trigger at least one re-plan");
    assert!(swap_bytes > 0, "re-plans must move refill bytes");
    if !smoke {
        assert!(
            end_rate(2) > end_rate(0) && end_rate(2) > end_rate(1),
            "replan end-state hit rate {:.3} must beat static {:.3} and fifo {:.3}",
            end_rate(2),
            end_rate(0),
            end_rate(1)
        );
        assert!(
            worst_recovery >= fresh - 0.05,
            "replan must recover to within 5 points of its fresh-plan rate: worst {:.3} vs fresh {:.3}",
            worst_recovery,
            fresh
        );
    }
    if !drift_only {
        legion_bench::save_json("servectl_curves", &rows);
        let router_rows = router_head_to_head(&dataset, &base);
        legion_bench::save_json("servectl_router", &router_rows);
    }
    if shards > 1 {
        shard_head_to_head(&dataset, &base, shards);
    }
    println!("\nservectl: OK");
}
