//! `servectl` — sweep offered load over the online serving subsystem and
//! emit throughput–latency curves comparing the static-hotness cache
//! against the FIFO dynamic cache under request-skew drift.
//!
//! ```bash
//! cargo run --release -p legion-bench --bin servectl           # full sweep
//! cargo run --release -p legion-bench --bin servectl -- --smoke # fast path
//! ```
//!
//! Offered loads are multiples of a measured capacity estimate, so the
//! curve always crosses its saturation knee. With `LEGION_RESULTS_DIR`
//! set, the run saves `servectl_curves.json` (all load points, both
//! policies) and `servectl_{static,fifo}.metrics.json` (full telemetry
//! snapshots of the drift-comparison runs at 0.9x capacity).

use legion_graph::dataset::{spec_by_name, Dataset};
use legion_hw::{MultiGpuServer, ServerSpec};
use legion_serve::{
    estimate_capacity_rps, run_sweep, serve, LoadPoint, PolicyKind, ServeConfig, SMOKE_MULTIPLIERS,
    SWEEP_MULTIPLIERS,
};
use legion_telemetry::Snapshot;

/// Feature-cache hit rate across all GPUs, from a run's snapshot.
fn feature_hit_rate(metrics: &Snapshot) -> f64 {
    let sum = |suffix: &str| {
        metrics
            .counters
            .iter()
            .filter(|c| c.name.starts_with("cache.") && c.name.ends_with(suffix))
            .map(|c| c.value)
            .sum::<u64>()
    };
    let hits = sum("feature_hits");
    let total = hits + sum("feature_misses");
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

fn print_points(points: &[LoadPoint]) {
    for p in points {
        println!(
            "{:<8} {:>6.2} {:>12.0} {:>9} {:>7} {:>14.0} {:>9} {:>9} {:>9} {:>8.1}%",
            p.policy,
            p.load_multiplier,
            p.offered_rps,
            p.completed,
            p.shed,
            p.throughput_rps,
            p.p50_us,
            p.p95_us,
            p.p99_us,
            p.slo_attainment * 100.0
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dataset_name = "PR";
    let divisor = if smoke {
        legion_bench::dataset_divisor(dataset_name).max(500)
    } else {
        legion_bench::dataset_divisor(dataset_name)
    };
    let base = if smoke {
        // Scaled with the 500x dataset: a smaller per-batch neighborhood
        // (so the FIFO cache holds several batches of history instead of
        // thrashing), a shorter age trigger, and a shallower queue so the
        // 4x point still reaches its queue-bound tail within the stream.
        ServeConfig {
            num_requests: 3000,
            max_batch: 16,
            max_wait: 1e-4,
            queue_capacity: 512,
            fanouts: vec![5, 3],
            warmup_requests: 256,
            cache_rows_per_gpu: 1024,
            drift_period: 300,
            drift_stride: 256,
            ..ServeConfig::default()
        }
    } else {
        ServeConfig::default()
    };
    let multipliers: &[f64] = if smoke {
        &SMOKE_MULTIPLIERS
    } else {
        &SWEEP_MULTIPLIERS
    };

    legion_bench::banner(&format!(
        "servectl: online serving sweep on {dataset_name}/{divisor}x ({} requests/point{})",
        base.num_requests,
        if smoke { ", smoke" } else { "" }
    ));
    let dataset: Dataset = spec_by_name(dataset_name)
        .expect("PR is registered")
        .instantiate(divisor, base.seed);
    let spec = ServerSpec::dgx_v100().truncated(4);
    let server: MultiGpuServer = spec.build();
    println!(
        "dataset: {} ({} vertices), server: {} x4, policy knobs: max_batch {} max_wait {:.1} ms queue {} cache {} rows/GPU",
        dataset.name,
        dataset.graph.num_vertices(),
        spec.name,
        base.max_batch,
        base.max_wait * 1e3,
        base.queue_capacity,
        base.cache_rows_per_gpu,
    );

    let capacity = estimate_capacity_rps(&dataset.graph, &dataset.features, &server, &base);
    println!("estimated capacity: {capacity:.0} requests/s (warmed closed-loop probe)\n");
    println!(
        "{:<8} {:>6} {:>12} {:>9} {:>7} {:>14} {:>9} {:>9} {:>9} {:>8}",
        "policy",
        "load",
        "offered/s",
        "done",
        "shed",
        "throughput/s",
        "p50_us",
        "p95_us",
        "p99_us",
        "SLO"
    );

    let mut rows: Vec<LoadPoint> = Vec::new();
    for policy in [PolicyKind::StaticHot, PolicyKind::Fifo] {
        let mut config = base.clone();
        config.policy = policy;
        let points = run_sweep(
            &dataset.graph,
            &dataset.features,
            &server,
            &config,
            capacity,
            multipliers,
        );
        print_points(&points);
        for p in &points {
            assert_eq!(p.completed + p.shed, p.offered, "request conservation");
        }
        let (first, last) = (points.first().unwrap(), points.last().unwrap());
        let knee = last.p99_us >= 5 * first.p99_us;
        println!(
            "  [{}] p99 knee: {} us -> {} us ({:.1}x){}",
            policy.as_str(),
            first.p99_us,
            last.p99_us,
            last.p99_us as f64 / first.p99_us.max(1) as f64,
            if knee {
                ""
            } else if smoke {
                "  (knee not asserted in smoke)"
            } else {
                "  (no knee!)"
            }
        );
        if !smoke {
            assert!(
                knee,
                "{} curve has no saturation knee: p99 {} -> {}",
                policy.as_str(),
                first.p99_us,
                last.p99_us
            );
        }
        rows.extend(points);
    }

    // Head-to-head under drift at a fixed 0.9x load: the static planner
    // filled its cache from pre-drift warmup traffic, the FIFO cache
    // follows the drifting hot set.
    println!(
        "\ndrift comparison at 0.9x capacity (drift period {} requests):",
        base.drift_period
    );
    for policy in [PolicyKind::StaticHot, PolicyKind::Fifo] {
        let mut config = base.clone();
        config.policy = policy;
        config.arrival = base
            .arrival
            .scaled(0.9 * capacity / base.arrival.mean_rate());
        let report = serve(&dataset.graph, &dataset.features, &server, &config);
        println!(
            "  {:<8} feature hit rate {:>5.1}%  p99 {:>7} us  SLO {:>5.1}%  throughput {:>8.0}/s",
            policy.as_str(),
            feature_hit_rate(&report.metrics) * 100.0,
            report.p99_us,
            report.slo_attainment * 100.0,
            report.throughput_rps
        );
        legion_bench::save_snapshot(&format!("servectl_{}", policy.as_str()), &report.metrics);
    }
    legion_bench::save_json("servectl_curves", &rows);
    println!("\nservectl: OK");
}
