//! Design-choice ablations (DESIGN.md §5): inter-clique partitioner
//! choice and static-vs-dynamic cache policies.

use legion_bench::{banner, dataset_divisor, save_json};
use legion_core::experiments::ablation;
use legion_core::LegionConfig;

fn main() {
    let divisor = dataset_divisor("PR");
    let config = LegionConfig::default();

    banner(&format!(
        "Ablation A: inter-clique partitioner (PR/{divisor}x, NV2, 5% cache)"
    ));
    let rows = ablation::partitioner_ablation(divisor, &config);
    println!(
        "{:<12} {:>10} {:>10} {:>16}",
        "partitioner", "edge cut", "hit rate", "PCIe feat tx"
    );
    for r in &rows {
        println!(
            "{:<12} {:>9.1}% {:>9.1}% {:>16}",
            r.partitioner,
            r.edge_cut_ratio * 100.0,
            r.hit_rate * 100.0,
            r.pcie_feature
        );
    }
    save_json("ablation_partitioner", &rows);

    for ratio in [0.05f64, 0.25] {
        banner(&format!(
            "Ablation B: static vs dynamic cache policy (PR/{divisor}x, {:.0}% capacity)",
            ratio * 100.0
        ));
        let rows = ablation::cache_policy_ablation(divisor, &config, ratio);
        println!("{:<8} {:>10} {:>12}", "policy", "hit rate", "evictions");
        for r in &rows {
            println!(
                "{:<8} {:>9.1}% {:>12}",
                r.policy,
                r.hit_rate * 100.0,
                r.evictions
            );
        }
        save_json(
            &format!("ablation_cache_policy_{:.0}pct", ratio * 100.0),
            &rows,
        );
    }
}
