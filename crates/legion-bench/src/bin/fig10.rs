//! Regenerates Figure 10: feature-extraction traffic matrices on PA /
//! DGX-V100 (NV4), 2.5% cache; normalized to GNNLab's CPU→GPU volume.

use legion_bench::{banner, dataset_divisor, save_json, save_snapshot};
use legion_core::experiments::fig10;
use legion_core::LegionConfig;

fn main() {
    let divisor = dataset_divisor("PA");
    let config = LegionConfig::default();
    banner(&format!(
        "Figure 10: feature-extraction traffic matrices (PA/{divisor}x, DGX-V100 NV4, 2.5% cache)"
    ));
    let (mats, snapshots) = fig10::run_with_metrics(divisor, &config);
    for m in &mats {
        println!(
            "\n[{}]  total CPU->GPU {:.3}, max per-GPU CPU column {:.3}",
            m.system, m.total_cpu, m.max_cpu_column
        );
        print!("{:<6}", "dst");
        for s in 0..m.rows.len() {
            print!(" {:>6}", format!("g{s}"));
        }
        println!(" {:>6}", "CPU");
        for (dst, row) in m.rows.iter().enumerate() {
            print!("g{dst:<5}");
            for v in row {
                print!(" {v:>6.3}");
            }
            println!();
        }
    }
    save_json("fig10", &mats);
    for (system, snap) in &snapshots {
        save_snapshot(&format!("fig10_{system}"), snap);
    }
}
