//! Regenerates Figure 11: local vs. global shuffling convergence
//! (GraphSAGE & GCN, PR, Siton NV2) with real model training.

use legion_bench::{banner, divisor_from_env, save_json};
use legion_core::experiments::fig11;
use legion_core::LegionConfig;

fn main() {
    let small = divisor_from_env("LEGION_FIG11_DIVISOR", 1000);
    // Convergence runs real training; keep the model modest.
    let config = LegionConfig {
        hidden_dim: 64,
        batch_size: 256,
        fanouts: vec![10, 5],
        ..Default::default()
    };
    let epochs = 10;
    banner(&format!(
        "Figure 11: local vs. global shuffling convergence (PR/{small}x, {epochs} epochs)"
    ));
    let curves = fig11::run(small, &config, epochs);
    for c in &curves {
        println!("\n[{} / {} shuffling]", c.model, c.shuffle);
        println!(
            "{:>6} {:>12} {:>14}",
            "epoch", "train loss", "test accuracy"
        );
        for p in &c.points {
            println!(
                "{:>6} {:>12.4} {:>13.1}%",
                p.epoch,
                p.train_loss,
                p.test_accuracy * 100.0
            );
        }
    }
    save_json("fig11", &curves);
}
