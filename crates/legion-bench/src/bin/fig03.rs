//! Regenerates Figure 3: per-GPU cache hit rates (balance) for 8 GPUs
//! under NV2 / NV4 / NV8 NVLink arrangements.

use legion_bench::{banner, dataset_divisor, save_json};
use legion_core::experiments::fig03;
use legion_core::LegionConfig;

fn main() {
    let divisor = dataset_divisor("PR");
    let config = LegionConfig::default();
    banner(&format!(
        "Figure 3: per-GPU cache hit rates (PR/{divisor}x, 5% |V| cache per GPU, 8 GPUs)"
    ));
    let rows = fig03::run(divisor, &config);
    for clique in [2usize, 4, 8] {
        println!("\n[NV{clique}]");
        println!("{:<14} {:>8}  per-GPU hit rates", "system", "spread");
        for r in rows.iter().filter(|r| r.clique_size == clique) {
            let rates: Vec<String> = r
                .per_gpu_hit_rate
                .iter()
                .map(|h| format!("{:.2}", h))
                .collect();
            println!("{:<14} {:>8.3}  [{}]", r.system, r.spread, rates.join(" "));
        }
    }
    save_json("fig03", &rows);
}
