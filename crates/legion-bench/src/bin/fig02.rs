//! Regenerates Figure 2: multi-GPU cache scalability (normalized CPU-GPU
//! PCIe transactions vs. GPU count) on Siton and DGX-V100.

use legion_bench::{banner, dataset_divisor, save_json};
use legion_core::experiments::fig02;
use legion_core::LegionConfig;

fn main() {
    let divisor = dataset_divisor("PR");
    let config = LegionConfig::default();
    banner(&format!(
        "Figure 2: cache scalability (PR/{divisor}x, 2-hop GraphSAGE, 5% |V| cache per GPU)"
    ));
    let rows = fig02::run(divisor, &config);
    for server in ["Siton", "DGX-V100"] {
        println!("\n[{server}]");
        println!(
            "{:<14} {:>5} {:>16} {:>12}",
            "system", "gpus", "PCIe feat tx", "normalized"
        );
        for r in rows.iter().filter(|r| r.server == server) {
            println!(
                "{:<14} {:>5} {:>16} {:>12.3}",
                r.system, r.gpus, r.pcie_feature_transactions, r.normalized
            );
        }
    }
    save_json("fig02", &rows);
}
