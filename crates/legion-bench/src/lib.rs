//! Shared output helpers for the figure/table regeneration binaries.
//!
//! Every `fig*` / `table*` binary prints a human-readable table in the
//! paper's layout and, when `LEGION_RESULTS_DIR` is set, also writes the
//! raw rows as JSON for post-processing.

use std::io::Write;
use std::path::PathBuf;

use serde::Serialize;

/// Default dataset scale divisor for the mid-size datasets (PA/CO/UKS).
/// Override with `LEGION_SMALL_DIVISOR`.
pub const DEFAULT_SMALL_DIVISOR: u64 = 500;

/// Default divisor for the billion-scale datasets (UKL/CL). Override
/// with `LEGION_LARGE_DIVISOR`.
pub const DEFAULT_LARGE_DIVISOR: u64 = 4000;

/// Default divisor for Products (PR). PR is the smallest Table 2 graph,
/// so it gets the gentlest divisor — keeping the per-batch sampling
/// footprint well below |V| preserves the access skew that cache
/// policies exploit. Override with `LEGION_PR_DIVISOR`.
pub const DEFAULT_PR_DIVISOR: u64 = 50;

/// Reads a divisor from the environment with a default.
pub fn divisor_from_env(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&d| d > 0)
        .unwrap_or(default)
}

/// The `(small, large)` divisors for this run.
pub fn divisors() -> (u64, u64) {
    (
        divisor_from_env("LEGION_SMALL_DIVISOR", DEFAULT_SMALL_DIVISOR),
        divisor_from_env("LEGION_LARGE_DIVISOR", DEFAULT_LARGE_DIVISOR),
    )
}

/// The scale divisor for a given dataset short name, honoring the
/// `LEGION_PR_DIVISOR` / `LEGION_SMALL_DIVISOR` / `LEGION_LARGE_DIVISOR`
/// environment overrides.
pub fn dataset_divisor(name: &str) -> u64 {
    let (small, large) = divisors();
    match name.to_ascii_uppercase().as_str() {
        "PR" => divisor_from_env("LEGION_PR_DIVISOR", DEFAULT_PR_DIVISOR),
        "UKL" | "CL" => large,
        _ => small,
    }
}

/// Writes `rows` as JSON under `$LEGION_RESULTS_DIR/<name>.json` when the
/// environment variable is set; silently skips otherwise.
pub fn save_json<T: Serialize>(name: &str, rows: &T) {
    let Ok(dir) = std::env::var("LEGION_RESULTS_DIR") else {
        return;
    };
    let mut path = PathBuf::from(dir);
    if std::fs::create_dir_all(&path).is_err() {
        eprintln!("warning: cannot create results dir {}", path.display());
        return;
    }
    path.push(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let body = serde_json::to_string_pretty(rows).expect("serializable rows");
            if f.write_all(body.as_bytes()).is_err() {
                eprintln!("warning: failed writing {}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot create {}: {e}", path.display()),
    }
}

/// Writes a metric snapshot as `$LEGION_RESULTS_DIR/<name>.metrics.json`
/// when the environment variable is set; silently skips otherwise.
pub fn save_snapshot(name: &str, snapshot: &legion_telemetry::Snapshot) {
    save_json(&format!("{name}.metrics"), snapshot);
}

/// Formats an `Option<f64>` cell, using "x" for OOM like the paper.
pub fn cell(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(x) => format!("{x:.digits$}"),
        None => "x".to_string(),
    }
}

/// Prints a banner line for a figure.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_formats_oom() {
        assert_eq!(cell(None, 2), "x");
        assert_eq!(cell(Some(1.234), 2), "1.23");
    }

    #[test]
    fn divisor_env_parsing() {
        assert_eq!(divisor_from_env("LEGION_NO_SUCH_VAR", 7), 7);
    }
}
