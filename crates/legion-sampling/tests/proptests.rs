//! Property-based tests for the sampler and the traffic accounting.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use legion_graph::builder::from_edges;
use legion_graph::{FeatureTable, VertexId};
use legion_hw::ServerSpec;
use legion_sampling::access::{sample_from, AccessEngine, CacheLayout, TopologyPlacement};
use legion_sampling::KHopSampler;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sample_from_is_a_distinct_subset(
        pool in proptest::collection::vec(0u32..1000, 0..60),
        fanout in 0usize..20,
        seed in 0u64..1000,
    ) {
        // De-duplicate the pool so distinctness is well-defined.
        let mut pool = pool;
        pool.sort_unstable();
        pool.dedup();
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sample_from(&pool, fanout, &mut rng);
        prop_assert_eq!(s.len(), pool.len().min(fanout));
        // Subset.
        for v in &s {
            prop_assert!(pool.contains(v));
        }
        // Distinct.
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        prop_assert_eq!(d.len(), s.len());
    }

    #[test]
    fn sampled_blocks_reference_real_edges(
        n in 4usize..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 1..200),
        seed in 0u64..1000,
        fanout in 1usize..6,
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(s, d)| (s % n as u32, d % n as u32))
            .collect();
        let g = from_edges(n, &edges);
        let f = FeatureTable::zeros(n, 4);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 40, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::new(vec![fanout, fanout]);
        let mut rng = StdRng::seed_from_u64(seed);
        let seeds: Vec<VertexId> = vec![0, (n / 2) as u32];
        let sample = sampler.sample_batch(&engine, 0, &seeds, &mut rng, None);
        // Every sampled edge exists in the graph.
        for block in &sample.blocks {
            for (&di, &si) in block.edge_dst.iter().zip(&block.edge_src) {
                let dst = block.src_vertices[di as usize];
                let src = block.src_vertices[si as usize];
                prop_assert!(
                    g.neighbors(dst).contains(&src),
                    "sampled non-edge {dst}->{src}"
                );
            }
        }
        // all_vertices is sorted, unique, includes the seeds.
        prop_assert!(sample.all_vertices.windows(2).all(|w| w[0] < w[1]));
        for s in &seeds {
            prop_assert!(sample.all_vertices.binary_search(s).is_ok());
        }
    }

    #[test]
    fn pcm_transactions_match_sampled_edges_exactly(
        n in 4usize..30,
        edges in proptest::collection::vec((0u32..30, 0u32..30), 1..150),
        seed in 0u64..1000,
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(s, d)| (s % n as u32, d % n as u32))
            .collect();
        let g = from_edges(n, &edges);
        let f = FeatureTable::zeros(n, 4);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 40, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::new(vec![3]);
        let mut rng = StdRng::seed_from_u64(seed);
        let seeds: Vec<VertexId> = (0..n as u32).step_by(3).collect();
        let sample = sampler.sample_batch(&engine, 0, &seeds, &mut rng, None);
        // Uncached UVA sampling: 1 offset transaction per seed + 1 per
        // sampled edge.
        let expected = seeds.len() as u64 + sample.total_edges() as u64;
        prop_assert_eq!(server.pcm().total(), expected);
    }
}
