//! Mini-batch seed generation with local or global shuffling.
//!
//! Legion "assigns training vertices of each tablet to a corresponding GPU
//! as the batch seeds, which will then be shuffled locally to generate
//! mini-batches" (§4.1 S4). The global-shuffling alternative (GNNLab,
//! Quiver) draws every batch from the entire training set; Figure 11
//! compares the two on model convergence.

use rand::Rng;

use legion_graph::VertexId;
use legion_hw::GpuId;
use legion_telemetry::{Counter, Registry};

/// Shuffle scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleMode {
    /// Shuffle only within the GPU's own tablet (Legion).
    Local,
    /// Shuffle across the full training set (GNNLab/Quiver-style).
    Global,
}

/// Per-epoch mini-batch generator over one GPU's seed list.
#[derive(Debug, Clone)]
pub struct BatchGenerator {
    seeds: Vec<VertexId>,
    batch_size: usize,
    /// `batch.gpu{g}.batches` / `batch.gpu{g}.seeds` counters, when bound
    /// to a registry via [`Self::with_telemetry`].
    meters: Option<(Counter, Counter)>,
}

impl BatchGenerator {
    /// A generator over `seeds` with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(seeds: Vec<VertexId>, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            seeds,
            batch_size,
            meters: None,
        }
    }

    /// Binds `batch.gpu{gpu}.batches` and `batch.gpu{gpu}.seeds` counters
    /// in `registry`; every emitted batch is then metered.
    #[must_use]
    pub fn with_telemetry(mut self, registry: &Registry, gpu: GpuId) -> Self {
        self.meters = Some((
            registry.counter(&format!("batch.gpu{gpu}.batches")),
            registry.counter(&format!("batch.gpu{gpu}.seeds")),
        ));
        self
    }

    /// Number of batches per epoch (last batch may be smaller).
    pub fn batches_per_epoch(&self) -> usize {
        self.seeds.len().div_ceil(self.batch_size)
    }

    /// Number of seeds.
    pub fn num_seeds(&self) -> usize {
        self.seeds.len()
    }

    /// Shuffles the seeds and returns the epoch's batches.
    pub fn epoch<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<Vec<VertexId>> {
        let n = self.seeds.len();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            self.seeds.swap(i, j);
        }
        if let Some((batches, seeds)) = &self.meters {
            batches.add(self.batches_per_epoch() as u64);
            seeds.add(n as u64);
        }
        self.seeds
            .chunks(self.batch_size)
            .map(|c| c.to_vec())
            .collect()
    }
}

/// Builds per-GPU generators for one epoch.
///
/// * `Local` — each tablet becomes one generator (tablet order preserved).
/// * `Global` — all tablets are pooled, shuffled once, and re-dealt evenly
///   round-robin across GPUs, modelling the global shuffle of
///   GNNLab/Quiver.
pub fn make_generators<R: Rng + ?Sized>(
    tablets: &[Vec<VertexId>],
    batch_size: usize,
    mode: ShuffleMode,
    rng: &mut R,
) -> Vec<BatchGenerator> {
    match mode {
        ShuffleMode::Local => tablets
            .iter()
            .map(|t| BatchGenerator::new(t.clone(), batch_size))
            .collect(),
        ShuffleMode::Global => {
            let mut pool: Vec<VertexId> = tablets.iter().flatten().copied().collect();
            let n = pool.len();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                pool.swap(i, j);
            }
            let k = tablets.len();
            let mut dealt: Vec<Vec<VertexId>> = vec![Vec::new(); k];
            for (i, v) in pool.into_iter().enumerate() {
                dealt[i % k].push(v);
            }
            dealt
                .into_iter()
                .map(|t| BatchGenerator::new(t, batch_size))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn epoch_covers_all_seeds_once() {
        let mut gen = BatchGenerator::new((0..103).collect(), 10);
        let mut rng = StdRng::seed_from_u64(0);
        let batches = gen.epoch(&mut rng);
        assert_eq!(batches.len(), 11);
        assert_eq!(batches.last().unwrap().len(), 3);
        let mut all: Vec<VertexId> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn epochs_differ_in_order() {
        let mut gen = BatchGenerator::new((0..50).collect(), 50);
        let mut rng = StdRng::seed_from_u64(1);
        let e1 = gen.epoch(&mut rng);
        let e2 = gen.epoch(&mut rng);
        assert_ne!(e1, e2, "shuffling should change batch order");
    }

    #[test]
    fn local_mode_preserves_tablet_ownership() {
        let tablets = vec![vec![0, 1, 2], vec![10, 11]];
        let mut rng = StdRng::seed_from_u64(2);
        let mut gens = make_generators(&tablets, 2, ShuffleMode::Local, &mut rng);
        let b0: Vec<VertexId> = gens[0].epoch(&mut rng).into_iter().flatten().collect();
        assert_eq!(b0.len(), 3);
        assert!(b0.iter().all(|v| tablets[0].contains(v)));
    }

    #[test]
    fn global_mode_mixes_tablets() {
        let tablets = vec![(0..100).collect::<Vec<_>>(), (100..200).collect()];
        let mut rng = StdRng::seed_from_u64(3);
        let gens = make_generators(&tablets, 10, ShuffleMode::Global, &mut rng);
        // Even re-deal.
        assert_eq!(gens[0].num_seeds(), 100);
        assert_eq!(gens[1].num_seeds(), 100);
        // With global shuffling, GPU 0's seeds are (almost surely) not all
        // from tablet 0.
        let mut g0 = gens[0].clone();
        let seeds: Vec<VertexId> = g0.epoch(&mut rng).into_iter().flatten().collect();
        assert!(seeds.iter().any(|&v| v >= 100));
    }

    #[test]
    fn empty_tablet_yields_zero_batches() {
        let gen = BatchGenerator::new(vec![], 8);
        assert_eq!(gen.batches_per_epoch(), 0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let _ = BatchGenerator::new(vec![1], 0);
    }
}
