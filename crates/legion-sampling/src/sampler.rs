//! L-hop fixed-fanout neighbor sampling (Figure 1's workflow, step 2) and
//! message-flow-graph construction (the §5 "graph constructor" operator).
//!
//! Sampling is the simulator's hottest loop (the paper's "random and
//! fine-grained" reads, §3.2), so the per-hop source-index is a dense
//! epoch-stamped marker array in a reusable [`SampleScratch`] rather than
//! a per-hop `HashMap`, neighbor draws land in a reused buffer instead of
//! a fresh `Vec` per vertex, and all meters accumulate locally and flush
//! once per batch ([`crate::access::BatchTotals`]).

use rand::Rng;

use legion_graph::VertexId;
use legion_hw::GpuId;

use crate::access::{AccessEngine, BatchTotals, FloydSet};

/// One hop's bipartite message block: edges from source vertices (the next
/// hop's frontier) into destination vertices (this hop's frontier).
///
/// Layout convention (as in DGL's MFGs): the source vertex list of block
/// `l` *starts with* the destination vertices, so destination `i` is also
/// source `i` — self features are always available to the aggregator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Number of destination vertices (a prefix of `src_vertices`).
    pub num_dst: usize,
    /// Source vertex ids; `src_vertices[..num_dst]` are the destinations.
    pub src_vertices: Vec<VertexId>,
    /// Edge destinations as indices into `src_vertices[..num_dst]`.
    pub edge_dst: Vec<u32>,
    /// Edge sources as indices into `src_vertices`.
    pub edge_src: Vec<u32>,
}

impl Block {
    /// Number of edges in the block.
    pub fn num_edges(&self) -> usize {
        self.edge_dst.len()
    }
}

/// A fully sampled mini-batch: the seeds, one block per hop (outermost
/// hop last), and the union of all touched vertices for feature
/// extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiniBatchSample {
    /// The batch seeds (block 0's destinations).
    pub seeds: Vec<VertexId>,
    /// `blocks[l]` connects hop `l+1` sources into hop `l` destinations.
    pub blocks: Vec<Block>,
    /// Sorted, de-duplicated union of every vertex in the sample —
    /// the set whose features the extractor fetches.
    pub all_vertices: Vec<VertexId>,
}

impl MiniBatchSample {
    /// Total sampled edges across all hops.
    pub fn total_edges(&self) -> usize {
        self.blocks.iter().map(|b| b.num_edges()).sum()
    }

    /// The input frontier of the deepest hop (the vertices whose raw
    /// features feed layer 1 of the GNN).
    pub fn input_vertices(&self) -> &[VertexId] {
        &self.blocks.last().expect("at least one block").src_vertices
    }
}

/// Reusable working memory for [`KHopSampler::sample_batch_with`].
///
/// Holds the dense epoch-stamped vertex→source-index marker (replacing
/// the per-hop `HashMap<VertexId, u32>`), the per-vertex neighbor draw
/// buffer, the Floyd's-sampler membership scratch, and the batch meter
/// accumulator. One scratch per worker keeps the steady-state sampling
/// path free of per-vertex heap allocation and per-vertex atomic RMWs.
#[derive(Debug, Clone, Default)]
pub struct SampleScratch {
    /// `stamp[v] == epoch` ⇔ `v` is a source of the current hop.
    stamp: Vec<u32>,
    /// `index[v]` = `v`'s index in the current hop's `src_vertices`
    /// (valid only when the stamp matches).
    index: Vec<u32>,
    /// The current hop's stamp; bumped per hop, never reused.
    epoch: u32,
    /// Neighbor ids drawn for the vertex being expanded.
    neighbors: Vec<VertexId>,
    /// Membership scratch for Floyd's distinct-index sampling.
    seen: FloydSet,
    /// Locally accumulated meter deltas, flushed once per batch.
    totals: BatchTotals,
    /// Merge buffer for delta-CSR overlay rows (empty on frozen graphs).
    merge: Vec<VertexId>,
}

impl SampleScratch {
    /// An empty scratch; buffers are sized lazily from the engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the marker arrays for the engine's graph and the totals for
    /// its server. No-op once sized.
    fn ensure(&mut self, engine: &AccessEngine<'_>) {
        let n = engine.graph().num_vertices();
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.index.resize(n, 0);
        }
        self.totals.ensure_gpus(engine.num_gpus());
    }

    /// Starts a new hop: returns a stamp no marker currently holds.
    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

/// L-hop uniform neighbor sampler.
#[derive(Debug, Clone)]
pub struct KHopSampler {
    /// Fan-out per hop, outermost first (the paper's `[25, 10]`).
    pub fanouts: Vec<usize>,
}

impl KHopSampler {
    /// A sampler with the given per-hop fan-outs.
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty or contains a zero.
    pub fn new(fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty(), "need at least one hop");
        assert!(fanouts.iter().all(|&f| f > 0), "fanouts must be positive");
        Self { fanouts }
    }

    /// The paper's 2-hop `[25, 10]` sampler.
    pub fn paper_default() -> Self {
        Self::new(crate::PAPER_FANOUTS.to_vec())
    }

    /// Samples the multi-hop neighborhood of `seeds` on behalf of `gpu`,
    /// charging all topology traffic through `engine`. Optionally records
    /// per-edge-traversal hotness through `on_edge(source_vertex)`.
    ///
    /// Convenience wrapper allocating a fresh [`SampleScratch`] per call;
    /// steady-state callers should hold a scratch and use
    /// [`Self::sample_batch_with`].
    pub fn sample_batch<R: Rng + ?Sized>(
        &self,
        engine: &AccessEngine<'_>,
        gpu: GpuId,
        seeds: &[VertexId],
        rng: &mut R,
        on_edge: Option<&mut dyn FnMut(VertexId)>,
    ) -> MiniBatchSample {
        let mut scratch = SampleScratch::new();
        self.sample_batch_with(engine, gpu, seeds, rng, on_edge, &mut scratch)
    }

    /// [`Self::sample_batch`] with caller-owned working memory: no heap
    /// allocation per vertex, no per-vertex atomic RMW (meters accumulate
    /// in the scratch's [`BatchTotals`] and flush once at the end), and
    /// an identical RNG draw sequence and result to the scalar path.
    pub fn sample_batch_with<R: Rng + ?Sized>(
        &self,
        engine: &AccessEngine<'_>,
        gpu: GpuId,
        seeds: &[VertexId],
        rng: &mut R,
        mut on_edge: Option<&mut dyn FnMut(VertexId)>,
        scratch: &mut SampleScratch,
    ) -> MiniBatchSample {
        scratch.ensure(engine);
        let mut blocks: Vec<Block> = Vec::with_capacity(self.fanouts.len());
        let mut all: Vec<VertexId> = seeds.to_vec();
        for (hop, &fanout) in self.fanouts.iter().enumerate() {
            let epoch = scratch.next_epoch();
            let SampleScratch {
                stamp,
                index,
                neighbors,
                seen,
                totals,
                merge,
                ..
            } = scratch;
            // This hop's destinations are the previous hop's sources; its
            // source list starts with a copy of them (the MFG layout
            // convention), extended by newly discovered vertices.
            let frontier: &[VertexId] = match hop {
                0 => seeds,
                _ => &blocks[hop - 1].src_vertices,
            };
            let num_dst = frontier.len();
            let mut src_vertices: Vec<VertexId> =
                Vec::with_capacity(num_dst + num_dst * fanout / 2);
            src_vertices.extend_from_slice(frontier);
            for (i, &v) in src_vertices.iter().enumerate() {
                stamp[v as usize] = epoch;
                index[v as usize] = i as u32;
            }
            let mut edge_dst: Vec<u32> = Vec::with_capacity(num_dst * fanout / 2);
            let mut edge_src: Vec<u32> = Vec::with_capacity(num_dst * fanout / 2);
            for di in 0..num_dst {
                let dst = src_vertices[di];
                engine.sample_neighbors_into(gpu, dst, fanout, rng, seen, neighbors, totals, merge);
                for &s in neighbors.iter() {
                    if let Some(f) = on_edge.as_deref_mut() {
                        f(dst);
                    }
                    let si = if stamp[s as usize] == epoch {
                        index[s as usize]
                    } else {
                        let i = src_vertices.len() as u32;
                        src_vertices.push(s);
                        stamp[s as usize] = epoch;
                        index[s as usize] = i;
                        i
                    };
                    edge_dst.push(di as u32);
                    edge_src.push(si);
                }
            }
            all.extend_from_slice(&src_vertices[num_dst..]);
            engine.note_block(gpu, edge_dst.len() as u64);
            blocks.push(Block {
                num_dst,
                src_vertices,
                edge_dst,
                edge_src,
            });
        }
        engine.flush_totals(gpu, &mut scratch.totals);
        all.sort_unstable();
        all.dedup();
        MiniBatchSample {
            seeds: seeds.to_vec(),
            blocks,
            all_vertices: all,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{CacheLayout, TopologyPlacement};
    use legion_graph::{FeatureTable, GraphBuilder};
    use legion_hw::ServerSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine_fixture() -> (
        legion_graph::CsrGraph,
        FeatureTable,
        CacheLayout,
        legion_hw::MultiGpuServer,
    ) {
        // A two-level tree: 0 -> {1, 2}, 1 -> {3, 4}, 2 -> {5, 6}.
        let g = GraphBuilder::new(7)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(1, 4)
            .edge(2, 5)
            .edge(2, 6)
            .build();
        let f = FeatureTable::zeros(7, 4);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        (g, f, layout, server)
    }

    #[test]
    fn two_hop_tree_sample_is_complete() {
        let (g, f, layout, server) = engine_fixture();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::new(vec![2, 2]);
        let mut rng = StdRng::seed_from_u64(0);
        let s = sampler.sample_batch(&engine, 0, &[0], &mut rng, None);
        assert_eq!(s.blocks.len(), 2);
        // Hop 1: seed 0 pulls both children.
        assert_eq!(s.blocks[0].num_dst, 1);
        assert_eq!(s.blocks[0].num_edges(), 2);
        // Hop 2: frontier {0, 1, 2} pulls 2 + 2 (+0 from leaf-less 0's
        // children already counted) -> vertices 3..6 appear.
        assert_eq!(s.all_vertices, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(s.total_edges(), 2 + 6);
    }

    #[test]
    fn block_destinations_prefix_sources() {
        let (g, f, layout, server) = engine_fixture();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::new(vec![2]);
        let mut rng = StdRng::seed_from_u64(1);
        let s = sampler.sample_batch(&engine, 0, &[0, 1], &mut rng, None);
        let b = &s.blocks[0];
        assert_eq!(&b.src_vertices[..b.num_dst], &[0, 1]);
        // All edge indices are in range.
        for (&d, &sr) in b.edge_dst.iter().zip(&b.edge_src) {
            assert!((d as usize) < b.num_dst);
            assert!((sr as usize) < b.src_vertices.len());
        }
    }

    #[test]
    fn edge_callback_counts_source_traversals() {
        let (g, f, layout, server) = engine_fixture();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::new(vec![2, 2]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 7];
        let mut cb = |v: VertexId| counts[v as usize] += 1;
        let _ = sampler.sample_batch(&engine, 0, &[0], &mut rng, Some(&mut cb));
        // Vertex 0 is sampled at hop 1 (2 edges) and again at hop 2
        // (2 edges, since 0 is in the hop-2 frontier).
        assert_eq!(counts[0], 4);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[3], 0);
    }

    #[test]
    fn fanout_caps_sampled_edges() {
        let mut b = GraphBuilder::new(101);
        for v in 1..101 {
            b.push_edge(0, v);
        }
        let g = b.build();
        let f = FeatureTable::zeros(101, 4);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::new(vec![7]);
        let mut rng = StdRng::seed_from_u64(3);
        let s = sampler.sample_batch(&engine, 0, &[0], &mut rng, None);
        assert_eq!(s.total_edges(), 7);
        assert_eq!(s.input_vertices().len(), 8);
    }

    #[test]
    fn isolated_seed_produces_empty_blocks() {
        let g = GraphBuilder::new(3).build();
        let f = FeatureTable::zeros(3, 4);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::paper_default();
        let mut rng = StdRng::seed_from_u64(4);
        let s = sampler.sample_batch(&engine, 0, &[1], &mut rng, None);
        assert_eq!(s.total_edges(), 0);
        assert_eq!(s.all_vertices, vec![1]);
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_fanouts_rejected() {
        let _ = KHopSampler::new(vec![]);
    }

    #[test]
    fn duplicate_neighbors_get_single_src_slot() {
        // Both seeds point at vertex 2; it should appear once as a source.
        let g = GraphBuilder::new(3).edge(0, 2).edge(1, 2).build();
        let f = FeatureTable::zeros(3, 4);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::new(vec![4]);
        let mut rng = StdRng::seed_from_u64(5);
        let s = sampler.sample_batch(&engine, 0, &[0, 1], &mut rng, None);
        let b = &s.blocks[0];
        assert_eq!(b.src_vertices, vec![0, 1, 2]);
        assert_eq!(b.num_edges(), 2);
    }
}
