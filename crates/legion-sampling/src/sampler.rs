//! L-hop fixed-fanout neighbor sampling (Figure 1's workflow, step 2) and
//! message-flow-graph construction (the §5 "graph constructor" operator).

use rand::Rng;

use legion_graph::VertexId;
use legion_hw::GpuId;

use crate::access::AccessEngine;

/// One hop's bipartite message block: edges from source vertices (the next
/// hop's frontier) into destination vertices (this hop's frontier).
///
/// Layout convention (as in DGL's MFGs): the source vertex list of block
/// `l` *starts with* the destination vertices, so destination `i` is also
/// source `i` — self features are always available to the aggregator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Number of destination vertices (a prefix of `src_vertices`).
    pub num_dst: usize,
    /// Source vertex ids; `src_vertices[..num_dst]` are the destinations.
    pub src_vertices: Vec<VertexId>,
    /// Edge destinations as indices into `src_vertices[..num_dst]`.
    pub edge_dst: Vec<u32>,
    /// Edge sources as indices into `src_vertices`.
    pub edge_src: Vec<u32>,
}

impl Block {
    /// Number of edges in the block.
    pub fn num_edges(&self) -> usize {
        self.edge_dst.len()
    }
}

/// A fully sampled mini-batch: the seeds, one block per hop (outermost
/// hop last), and the union of all touched vertices for feature
/// extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiniBatchSample {
    /// The batch seeds (block 0's destinations).
    pub seeds: Vec<VertexId>,
    /// `blocks[l]` connects hop `l+1` sources into hop `l` destinations.
    pub blocks: Vec<Block>,
    /// Sorted, de-duplicated union of every vertex in the sample —
    /// the set whose features the extractor fetches.
    pub all_vertices: Vec<VertexId>,
}

impl MiniBatchSample {
    /// Total sampled edges across all hops.
    pub fn total_edges(&self) -> usize {
        self.blocks.iter().map(|b| b.num_edges()).sum()
    }

    /// The input frontier of the deepest hop (the vertices whose raw
    /// features feed layer 1 of the GNN).
    pub fn input_vertices(&self) -> &[VertexId] {
        &self.blocks.last().expect("at least one block").src_vertices
    }
}

/// L-hop uniform neighbor sampler.
#[derive(Debug, Clone)]
pub struct KHopSampler {
    /// Fan-out per hop, outermost first (the paper's `[25, 10]`).
    pub fanouts: Vec<usize>,
}

impl KHopSampler {
    /// A sampler with the given per-hop fan-outs.
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty or contains a zero.
    pub fn new(fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty(), "need at least one hop");
        assert!(fanouts.iter().all(|&f| f > 0), "fanouts must be positive");
        Self { fanouts }
    }

    /// The paper's 2-hop `[25, 10]` sampler.
    pub fn paper_default() -> Self {
        Self::new(crate::PAPER_FANOUTS.to_vec())
    }

    /// Samples the multi-hop neighborhood of `seeds` on behalf of `gpu`,
    /// charging all topology traffic through `engine`. Optionally records
    /// per-edge-traversal hotness through `on_edge(source_vertex)`.
    pub fn sample_batch<R: Rng + ?Sized>(
        &self,
        engine: &AccessEngine<'_>,
        gpu: GpuId,
        seeds: &[VertexId],
        rng: &mut R,
        mut on_edge: Option<&mut dyn FnMut(VertexId)>,
    ) -> MiniBatchSample {
        let mut blocks = Vec::with_capacity(self.fanouts.len());
        let mut frontier: Vec<VertexId> = seeds.to_vec();
        let mut all: Vec<VertexId> = seeds.to_vec();
        for &fanout in &self.fanouts {
            // Sample each destination's neighbors.
            let mut src_vertices: Vec<VertexId> = frontier.clone();
            let mut src_index: std::collections::HashMap<VertexId, u32> = src_vertices
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i as u32))
                .collect();
            let mut edge_dst = Vec::new();
            let mut edge_src = Vec::new();
            for (di, &dst) in frontier.iter().enumerate() {
                let sampled = engine.sample_neighbors(gpu, dst, fanout, rng);
                for s in sampled {
                    if let Some(f) = on_edge.as_deref_mut() {
                        f(dst);
                    }
                    let si = *src_index.entry(s).or_insert_with(|| {
                        src_vertices.push(s);
                        (src_vertices.len() - 1) as u32
                    });
                    edge_dst.push(di as u32);
                    edge_src.push(si);
                }
            }
            all.extend_from_slice(&src_vertices[frontier.len()..]);
            let next_frontier = src_vertices.clone();
            engine.note_block(gpu, edge_dst.len() as u64);
            blocks.push(Block {
                num_dst: frontier.len(),
                src_vertices,
                edge_dst,
                edge_src,
            });
            frontier = next_frontier;
        }
        all.sort_unstable();
        all.dedup();
        MiniBatchSample {
            seeds: seeds.to_vec(),
            blocks,
            all_vertices: all,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{CacheLayout, TopologyPlacement};
    use legion_graph::{FeatureTable, GraphBuilder};
    use legion_hw::ServerSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine_fixture() -> (
        legion_graph::CsrGraph,
        FeatureTable,
        CacheLayout,
        legion_hw::MultiGpuServer,
    ) {
        // A two-level tree: 0 -> {1, 2}, 1 -> {3, 4}, 2 -> {5, 6}.
        let g = GraphBuilder::new(7)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(1, 4)
            .edge(2, 5)
            .edge(2, 6)
            .build();
        let f = FeatureTable::zeros(7, 4);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        (g, f, layout, server)
    }

    #[test]
    fn two_hop_tree_sample_is_complete() {
        let (g, f, layout, server) = engine_fixture();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::new(vec![2, 2]);
        let mut rng = StdRng::seed_from_u64(0);
        let s = sampler.sample_batch(&engine, 0, &[0], &mut rng, None);
        assert_eq!(s.blocks.len(), 2);
        // Hop 1: seed 0 pulls both children.
        assert_eq!(s.blocks[0].num_dst, 1);
        assert_eq!(s.blocks[0].num_edges(), 2);
        // Hop 2: frontier {0, 1, 2} pulls 2 + 2 (+0 from leaf-less 0's
        // children already counted) -> vertices 3..6 appear.
        assert_eq!(s.all_vertices, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(s.total_edges(), 2 + 6);
    }

    #[test]
    fn block_destinations_prefix_sources() {
        let (g, f, layout, server) = engine_fixture();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::new(vec![2]);
        let mut rng = StdRng::seed_from_u64(1);
        let s = sampler.sample_batch(&engine, 0, &[0, 1], &mut rng, None);
        let b = &s.blocks[0];
        assert_eq!(&b.src_vertices[..b.num_dst], &[0, 1]);
        // All edge indices are in range.
        for (&d, &sr) in b.edge_dst.iter().zip(&b.edge_src) {
            assert!((d as usize) < b.num_dst);
            assert!((sr as usize) < b.src_vertices.len());
        }
    }

    #[test]
    fn edge_callback_counts_source_traversals() {
        let (g, f, layout, server) = engine_fixture();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::new(vec![2, 2]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 7];
        let mut cb = |v: VertexId| counts[v as usize] += 1;
        let _ = sampler.sample_batch(&engine, 0, &[0], &mut rng, Some(&mut cb));
        // Vertex 0 is sampled at hop 1 (2 edges) and again at hop 2
        // (2 edges, since 0 is in the hop-2 frontier).
        assert_eq!(counts[0], 4);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[3], 0);
    }

    #[test]
    fn fanout_caps_sampled_edges() {
        let mut b = GraphBuilder::new(101);
        for v in 1..101 {
            b.push_edge(0, v);
        }
        let g = b.build();
        let f = FeatureTable::zeros(101, 4);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::new(vec![7]);
        let mut rng = StdRng::seed_from_u64(3);
        let s = sampler.sample_batch(&engine, 0, &[0], &mut rng, None);
        assert_eq!(s.total_edges(), 7);
        assert_eq!(s.input_vertices().len(), 8);
    }

    #[test]
    fn isolated_seed_produces_empty_blocks() {
        let g = GraphBuilder::new(3).build();
        let f = FeatureTable::zeros(3, 4);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::paper_default();
        let mut rng = StdRng::seed_from_u64(4);
        let s = sampler.sample_batch(&engine, 0, &[1], &mut rng, None);
        assert_eq!(s.total_edges(), 0);
        assert_eq!(s.all_vertices, vec![1]);
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_fanouts_rejected() {
        let _ = KHopSampler::new(vec![]);
    }

    #[test]
    fn duplicate_neighbors_get_single_src_slot() {
        // Both seeds point at vertex 2; it should appear once as a source.
        let g = GraphBuilder::new(3).edge(0, 2).edge(1, 2).build();
        let f = FeatureTable::zeros(3, 4);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::new(vec![4]);
        let mut rng = StdRng::seed_from_u64(5);
        let s = sampler.sample_batch(&engine, 0, &[0, 1], &mut rng, None);
        let b = &s.blocks[0];
        assert_eq!(b.src_vertices, vec![0, 1, 2]);
        assert_eq!(b.num_edges(), 2);
    }
}
