//! The pre-sampling phase (§4.2.2 S1, Figure 6).
//!
//! "Each GPU conducts a local shuffle on its own training vertex tablet to
//! generate seeds for mini-batches, performs graph sampling for each
//! mini-batch, and updates the corresponding row in `H_T` and `H_F`. For
//! `H_T`, whenever an edge is traversed during sampling, the hotness of
//! its source vertex is incremented by 1. For `H_F`, the hotness for each
//! vertex that appears in the sample results of the mini-batch is
//! incremented by 1."
//!
//! During pre-sampling "graph topology is stored in the CPU memory"
//! (footnote 2), so every topology read crosses PCIe; the resulting PCM
//! tally is the paper's `N_TSUM`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use legion_cache::HotnessMatrix;
use legion_graph::{CsrGraph, FeatureTable, VertexId};
use legion_hw::pcm::TrafficKind;
use legion_hw::{GpuId, MultiGpuServer};

use crate::access::{AccessEngine, CacheLayout, TopologyPlacement};
use crate::batch::BatchGenerator;
use crate::sampler::{KHopSampler, SampleScratch};

/// Pre-sampling output for one NVLink clique.
#[derive(Debug, Clone)]
pub struct PresampleOutput {
    /// Topology hotness matrix `H_T` (rows = clique slots).
    pub h_t: HotnessMatrix,
    /// Feature hotness matrix `H_F`.
    pub h_f: HotnessMatrix,
    /// `N_TSUM`: summed sampling PCIe transactions of the clique's GPUs
    /// during pre-sampling.
    pub n_tsum: u64,
}

/// Runs pre-sampling for one clique.
///
/// * `clique_gpus` — the clique's GPU ids (slot order),
/// * `tablets` — one training tablet per slot,
/// * `epochs` — pre-sampling epochs (GNNLab and Legion use one).
///
/// The server's PCM counters are reset before the run so `n_tsum` is
/// exactly this phase's traffic; Legion resets the counters again after
/// collection so the training-phase measurements start clean.
#[allow(clippy::too_many_arguments)]
pub fn presample(
    graph: &CsrGraph,
    features: &FeatureTable,
    server: &MultiGpuServer,
    clique_gpus: &[GpuId],
    tablets: &[Vec<VertexId>],
    sampler: &KHopSampler,
    batch_size: usize,
    epochs: usize,
    seed: u64,
) -> PresampleOutput {
    assert_eq!(
        clique_gpus.len(),
        tablets.len(),
        "one tablet per clique GPU"
    );
    let kg = clique_gpus.len();
    let n = graph.num_vertices();
    let mut h_t = HotnessMatrix::new(kg, n);
    let mut h_f = HotnessMatrix::new(kg, n);
    let layout = CacheLayout::none(server.num_gpus());
    let engine = AccessEngine::new(graph, features, &layout, server, TopologyPlacement::CpuUva);

    server.pcm().reset();
    let mut scratch = SampleScratch::new();
    for (slot, (&gpu, tablet)) in clique_gpus.iter().zip(tablets).enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (gpu as u64).wrapping_mul(0x9E37_79B9));
        let mut generator = BatchGenerator::new(tablet.clone(), batch_size);
        for _ in 0..epochs {
            for batch in generator.epoch(&mut rng) {
                let mut on_edge = |src: VertexId| h_t.add(slot, src, 1);
                let sample = sampler.sample_batch_with(
                    &engine,
                    gpu,
                    &batch,
                    &mut rng,
                    Some(&mut on_edge),
                    &mut scratch,
                );
                for &v in &sample.all_vertices {
                    h_f.add(slot, v, 1);
                }
            }
        }
    }
    let n_tsum = server
        .pcm()
        .clique_total(clique_gpus, TrafficKind::Topology);
    server.pcm().reset();
    PresampleOutput { h_t, h_f, n_tsum }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_graph::generate::ChungLuConfig;
    use legion_hw::ServerSpec;
    use rand::Rng;

    fn fixture() -> (CsrGraph, FeatureTable, Vec<Vec<VertexId>>) {
        let mut rng = StdRng::seed_from_u64(31);
        let g = ChungLuConfig {
            num_vertices: 400,
            num_edges: 4000,
            exponent: 0.9,
            shuffle_ids: false,
            ..Default::default()
        }
        .generate(&mut rng);
        let f = FeatureTable::zeros(400, 8);
        let train: Vec<VertexId> = (0..400).filter(|_| rng.gen::<f64>() < 0.2).collect();
        let tablets = vec![
            train.iter().copied().filter(|v| v % 2 == 0).collect(),
            train.iter().copied().filter(|v| v % 2 == 1).collect(),
        ];
        (g, f, tablets)
    }

    #[test]
    fn hotness_rows_match_tablets() {
        let (g, f, tablets) = fixture();
        let server = ServerSpec::custom(2, 1 << 30, 2).build();
        let out = presample(
            &g,
            &f,
            &server,
            &[0, 1],
            &tablets,
            &KHopSampler::new(vec![5, 5]),
            32,
            1,
            9,
        );
        // Every seed appears in its own GPU's H_F row.
        for (slot, tablet) in tablets.iter().enumerate() {
            for &v in tablet {
                assert!(out.h_f.get(slot, v) >= 1, "seed {v} missing on slot {slot}");
            }
        }
        assert!(out.n_tsum > 0);
    }

    #[test]
    fn topology_hotness_tracks_sampled_sources() {
        let (g, f, tablets) = fixture();
        let server = ServerSpec::custom(2, 1 << 30, 2).build();
        let out = presample(
            &g,
            &f,
            &server,
            &[0, 1],
            &tablets,
            &KHopSampler::new(vec![5, 5]),
            32,
            1,
            9,
        );
        // Total H_T increments == total traversed edges; each traversed
        // edge also contributed exactly one 4-byte PCIe transaction, plus
        // one offset transaction per topology read. So N_TSUM must be
        // strictly larger than the H_T total but by less than 2x.
        let ht_total: u64 = out.h_t.column_wise_sum().iter().sum();
        assert!(ht_total > 0);
        assert!(out.n_tsum > ht_total);
        assert!(out.n_tsum < 2 * ht_total + 1);
    }

    #[test]
    fn counters_reset_after_presampling() {
        let (g, f, tablets) = fixture();
        let server = ServerSpec::custom(2, 1 << 30, 2).build();
        let _ = presample(
            &g,
            &f,
            &server,
            &[0, 1],
            &tablets,
            &KHopSampler::new(vec![3]),
            16,
            1,
            1,
        );
        assert_eq!(server.pcm().total(), 0, "PCM must be clean for training");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (g, f, tablets) = fixture();
        let server = ServerSpec::custom(2, 1 << 30, 2).build();
        let a = presample(
            &g,
            &f,
            &server,
            &[0, 1],
            &tablets,
            &KHopSampler::new(vec![4]),
            16,
            1,
            5,
        );
        server.reset();
        let b = presample(
            &g,
            &f,
            &server,
            &[0, 1],
            &tablets,
            &KHopSampler::new(vec![4]),
            16,
            1,
            5,
        );
        assert_eq!(a.h_t, b.h_t);
        assert_eq!(a.h_f, b.h_f);
        assert_eq!(a.n_tsum, b.n_tsum);
    }

    #[test]
    fn more_epochs_more_hotness() {
        let (g, f, tablets) = fixture();
        let server = ServerSpec::custom(2, 1 << 30, 2).build();
        let one = presample(
            &g,
            &f,
            &server,
            &[0, 1],
            &tablets,
            &KHopSampler::new(vec![4]),
            16,
            1,
            5,
        );
        server.reset();
        let three = presample(
            &g,
            &f,
            &server,
            &[0, 1],
            &tablets,
            &KHopSampler::new(vec![4]),
            16,
            3,
            5,
        );
        let h1: u64 = one.h_f.column_wise_sum().iter().sum();
        let h3: u64 = three.h_f.column_wise_sum().iter().sum();
        assert!(h3 > 2 * h1);
    }

    #[test]
    fn empty_tablets_produce_zero_hotness() {
        let (g, f, _) = fixture();
        let server = ServerSpec::custom(2, 1 << 30, 2).build();
        let out = presample(
            &g,
            &f,
            &server,
            &[0, 1],
            &[vec![], vec![]],
            &KHopSampler::new(vec![4]),
            16,
            1,
            5,
        );
        assert_eq!(out.n_tsum, 0);
        assert!(out.h_t.column_wise_sum().iter().all(|&h| h == 0));
    }
}
