//! Cache-aware, traffic-metered memory accesses.
//!
//! [`AccessEngine`] is the seam between algorithms (sampling, extraction)
//! and the simulated hardware: it resolves every read against the cache
//! layout and books the resulting traffic on the server's PCM counters and
//! traffic matrix. This is where the paper's access-pattern observations
//! are encoded:
//!
//! * sampling reads are "random and fine-grained" (§3.2): a CPU (UVA)
//!   neighbor sample books one transaction for the row offset plus one
//!   4-byte transaction per sampled edge;
//! * feature reads move whole rows: a CPU read books
//!   `ceil(D * 4 / CLS)` transactions (Equation 8).
//!
//! # Scalar vs. batched reads
//!
//! The scalar entry points ([`AccessEngine::sample_neighbors`],
//! [`AccessEngine::read_feature`]) update every meter with one atomic RMW
//! per vertex read. The batched entry points
//! ([`AccessEngine::sample_neighbors_into`],
//! [`AccessEngine::read_features_batch`]) accumulate the same quantities
//! in a caller-owned [`BatchTotals`] of plain `u64`s and flush each
//! counter with **one** atomic add per batch — observationally identical
//! totals (the counters are commutative sums), but the per-vertex hot
//! loop touches no shared cache lines and allocates nothing.

use rand::Rng;

use legion_cache::unified::CacheHit;
use legion_cache::CliqueCache;
use legion_dyn::DeltaOverlay;
use legion_graph::{CsrGraph, FeatureTable, VertexId};
use legion_hw::pcm::TrafficKind;
use legion_hw::traffic::Source;
use legion_hw::{GpuId, MultiGpuServer};
use legion_telemetry::{Counter, Histogram};

/// Bucket bounds (edge counts) of the `subgraph.block_edges` histogram.
pub const BLOCK_EDGE_BUCKETS: [u64; 8] = [1, 4, 16, 64, 256, 1024, 4096, 16384];

/// Where the full graph topology lives (§3.2's "coarse-grained" options
/// plus Legion's unified cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyPlacement {
    /// Entire topology in CPU memory, accessed over UVA (DGL, Quiver-CPU,
    /// Legion's fallback path for uncached vertices).
    CpuUva,
    /// Entire topology replicated in every GPU (GNNLab-style TopoGPU).
    /// Sampling is then PCIe-free, but the replica consumes GPU memory.
    ReplicatedGpu,
}

/// Maps each GPU to its clique cache (if any).
#[derive(Debug, Clone, Default)]
pub struct CacheLayout {
    /// One cache per clique.
    pub cliques: Vec<CliqueCache>,
    /// `gpu_slot[gpu] = Some((clique_index, slot))`.
    pub gpu_slot: Vec<Option<(usize, usize)>>,
}

impl CacheLayout {
    /// A layout with no caches for `num_gpus` GPUs.
    pub fn none(num_gpus: usize) -> Self {
        Self {
            cliques: Vec::new(),
            gpu_slot: vec![None; num_gpus],
        }
    }

    /// Builds the layout from clique caches, inferring GPU→slot mapping.
    pub fn from_cliques(num_gpus: usize, cliques: Vec<CliqueCache>) -> Self {
        let mut gpu_slot = vec![None; num_gpus];
        for (ci, cc) in cliques.iter().enumerate() {
            for (slot, &g) in cc.gpus().iter().enumerate() {
                assert!(gpu_slot[g].is_none(), "GPU {g} in two cliques");
                gpu_slot[g] = Some((ci, slot));
            }
        }
        Self { cliques, gpu_slot }
    }

    /// The cache and slot serving `gpu`, if any.
    pub fn for_gpu(&self, gpu: GpuId) -> Option<(&CliqueCache, usize)> {
        self.gpu_slot
            .get(gpu)
            .copied()
            .flatten()
            .map(|(ci, slot)| (&self.cliques[ci], slot))
    }
}

/// Per-GPU pipeline meters, bound once at engine construction so the hot
/// read paths touch only pre-resolved atomic handles.
struct GpuMeters {
    topology_hits: Counter,
    topology_misses: Counter,
    feature_hits: Counter,
    feature_misses: Counter,
    sampled_edges: Counter,
    extracted_rows: Counter,
    blocks: Counter,
}

/// Locally accumulated meter deltas for one batch of reads.
///
/// Every field mirrors a counter the scalar read path updates per vertex;
/// [`AccessEngine::flush_totals`] empties the struct into the shared
/// atomics with one `fetch_add` per non-zero field. Reusing one
/// `BatchTotals` across batches keeps the hot path allocation-free
/// (`peer_bytes` is sized to the server's GPU count once).
#[derive(Debug, Default, Clone)]
pub struct BatchTotals {
    topology_hits: u64,
    topology_misses: u64,
    feature_hits: u64,
    feature_misses: u64,
    sampled_edges: u64,
    extracted_rows: u64,
    topology_tx: u64,
    feature_tx: u64,
    cpu_bytes: u64,
    /// NVLink bytes read from each peer GPU (indexed by source GPU id).
    peer_bytes: Vec<u64>,
}

impl BatchTotals {
    /// Empty totals for a server with `num_gpus` GPUs.
    pub fn new(num_gpus: usize) -> Self {
        Self {
            peer_bytes: vec![0; num_gpus],
            ..Self::default()
        }
    }

    /// Grows the peer-byte table if the engine spans more GPUs.
    pub(crate) fn ensure_gpus(&mut self, num_gpus: usize) {
        if self.peer_bytes.len() < num_gpus {
            self.peer_bytes.resize(num_gpus, 0);
        }
    }

    /// Whether nothing has been accumulated since the last flush.
    pub fn is_empty(&self) -> bool {
        self.topology_hits == 0
            && self.topology_misses == 0
            && self.feature_hits == 0
            && self.feature_misses == 0
            && self.sampled_edges == 0
            && self.extracted_rows == 0
            && self.topology_tx == 0
            && self.feature_tx == 0
            && self.cpu_bytes == 0
            && self.peer_bytes.iter().all(|&b| b == 0)
    }
}

/// The metered read path used by samplers and extractors.
///
/// Besides charging the server's PCM counters and traffic matrix, every
/// read updates per-GPU telemetry on [`MultiGpuServer::telemetry`]:
/// `cache.gpu{g}.{topology,feature}_{hits,misses}`, `sample.gpu{g}.edges`,
/// `extract.gpu{g}.rows`, `subgraph.gpu{g}.blocks`, and the shared
/// `subgraph.block_edges` histogram.
pub struct AccessEngine<'a> {
    graph: &'a CsrGraph,
    features: &'a FeatureTable,
    layout: &'a CacheLayout,
    server: &'a MultiGpuServer,
    topology_placement: TopologyPlacement,
    /// Delta-CSR overlay for streaming mutations. Rows the overlay marks
    /// dirty are merged at sample time and always served over CPU UVA —
    /// cached topology copies (local, peer, or replicated) are stale the
    /// moment the row mutates.
    overlay: Option<&'a DeltaOverlay>,
    meters: Vec<GpuMeters>,
    block_edges: Histogram,
}

impl<'a> AccessEngine<'a> {
    /// Creates an engine over the CPU-resident graph/features, the cache
    /// layout, and the server whose counters will be charged.
    pub fn new(
        graph: &'a CsrGraph,
        features: &'a FeatureTable,
        layout: &'a CacheLayout,
        server: &'a MultiGpuServer,
        topology_placement: TopologyPlacement,
    ) -> Self {
        let registry = server.telemetry();
        let meters = (0..server.num_gpus())
            .map(|g| GpuMeters {
                topology_hits: registry.counter(&format!("cache.gpu{g}.topology_hits")),
                topology_misses: registry.counter(&format!("cache.gpu{g}.topology_misses")),
                feature_hits: registry.counter(&format!("cache.gpu{g}.feature_hits")),
                feature_misses: registry.counter(&format!("cache.gpu{g}.feature_misses")),
                sampled_edges: registry.counter(&format!("sample.gpu{g}.edges")),
                extracted_rows: registry.counter(&format!("extract.gpu{g}.rows")),
                blocks: registry.counter(&format!("subgraph.gpu{g}.blocks")),
            })
            .collect();
        let block_edges = registry.histogram("subgraph.block_edges", &BLOCK_EDGE_BUCKETS);
        Self {
            graph,
            features,
            layout,
            server,
            topology_placement,
            overlay: None,
            meters,
            block_edges,
        }
    }

    /// Attaches a delta-CSR overlay: subsequent topology reads of dirty
    /// rows merge the overlay at sample time instead of trusting cached
    /// copies. `None` (the default) is byte-identical to the pre-overlay
    /// engine.
    pub fn with_overlay(mut self, overlay: Option<&'a DeltaOverlay>) -> Self {
        self.overlay = overlay;
        self
    }

    /// The attached overlay, if any.
    pub fn overlay(&self) -> Option<&'a DeltaOverlay> {
        self.overlay
    }

    /// Whether `v` has a mutated adjacency row (overlay dirty bit).
    #[inline]
    pub fn topology_dirty(&self, v: VertexId) -> bool {
        self.overlay.is_some_and(|ov| ov.is_dirty(v))
    }

    /// Whether any clique in the layout holds a (possibly stale) cached
    /// copy of `v`'s topology row. Used by the invalidation fast path to
    /// meter how many cached rows a mutation actually invalidated.
    pub fn topology_cached_anywhere(&self, v: VertexId) -> bool {
        if self.topology_placement == TopologyPlacement::ReplicatedGpu {
            return true;
        }
        self.layout.cliques.iter().any(|c| c.has_topology(v))
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        self.graph
    }

    /// The underlying feature table.
    pub fn features(&self) -> &FeatureTable {
        self.features
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.dim()
    }

    /// Number of GPUs on the metered server.
    pub fn num_gpus(&self) -> usize {
        self.meters.len()
    }

    /// Samples up to `fanout` distinct neighbors of `v` on behalf of
    /// `gpu`, booking the traffic of the topology read. Returns the
    /// sampled neighbor ids (all neighbors when `degree <= fanout`).
    pub fn sample_neighbors<R: Rng + ?Sized>(
        &self,
        gpu: GpuId,
        v: VertexId,
        fanout: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        if self.topology_dirty(v) {
            let mut merged = Vec::new();
            self.overlay
                .expect("dirty implies overlay")
                .merge_into(self.graph, v, &mut merged);
            let edges_read = merged.len().min(fanout) as u64;
            let meters = &self.meters[gpu];
            meters.sampled_edges.add(edges_read);
            meters.topology_misses.inc();
            self.server
                .pcm()
                .add(gpu, TrafficKind::Topology, 1 + edges_read);
            self.server
                .traffic()
                .add(gpu, Source::Cpu, edges_read * 4 + 8);
            return sample_from(&merged, fanout, rng);
        }
        let neighbors = self.read_topology(gpu, v, fanout);
        sample_from(neighbors, fanout, rng)
    }

    /// Resolves a topology read for `v` from `gpu`, charging traffic for
    /// `sampled` edge reads, and returns the adjacency slice.
    fn read_topology(&self, gpu: GpuId, v: VertexId, fanout: usize) -> &[VertexId] {
        let degree = self.graph.degree(v) as usize;
        let edges_read = degree.min(fanout) as u64;
        let meters = &self.meters[gpu];
        meters.sampled_edges.add(edges_read);
        if self.topology_placement == TopologyPlacement::ReplicatedGpu {
            // Local replica: no interconnect traffic at all.
            meters.topology_hits.inc();
            return self.graph.neighbors(v);
        }
        if let Some((cache, slot)) = self.layout.for_gpu(gpu) {
            if let Some((hit, data)) = cache.lookup_topology(slot, v) {
                if let CacheHit::Peer(owner) = hit {
                    // NVLink bytes: sampled edge ids + the offset pair.
                    self.server
                        .traffic()
                        .add(gpu, Source::Gpu(owner), edges_read * 4 + 8);
                }
                meters.topology_hits.inc();
                return data;
            }
        }
        // CPU fallback over UVA: fine-grained reads. One transaction for
        // the row offsets, one 4-byte transaction per sampled edge.
        meters.topology_misses.inc();
        self.server
            .pcm()
            .add(gpu, TrafficKind::Topology, 1 + edges_read);
        self.server
            .traffic()
            .add(gpu, Source::Cpu, edges_read * 4 + 8);
        self.graph.neighbors(v)
    }

    /// Reads `v`'s feature row on behalf of `gpu`, booking traffic.
    pub fn read_feature(&self, gpu: GpuId, v: VertexId) -> &[f32] {
        let row_bytes = self.features.row_bytes();
        let meters = &self.meters[gpu];
        meters.extracted_rows.inc();
        if let Some((cache, slot)) = self.layout.for_gpu(gpu) {
            if let Some((hit, data)) = cache.lookup_feature(slot, v) {
                if let CacheHit::Peer(owner) = hit {
                    self.server
                        .traffic()
                        .add(gpu, Source::Gpu(owner), row_bytes);
                }
                meters.feature_hits.inc();
                return data;
            }
        }
        meters.feature_misses.inc();
        let tx = self.server.pcie().transactions_for_payload(row_bytes);
        self.server.pcm().add(gpu, TrafficKind::Feature, tx);
        self.server.traffic().add(gpu, Source::Cpu, row_bytes);
        self.features.row(v)
    }

    /// Batched variant of [`Self::sample_neighbors`]: appends the sampled
    /// neighbors of `v` to `out` (after clearing it) and accumulates all
    /// meter deltas into `totals` instead of touching the shared atomics.
    ///
    /// Draws the exact same RNG sequence and produces the exact same
    /// neighbor list as the scalar path; the caller must eventually
    /// [`AccessEngine::flush_totals`] so the registry converges to
    /// identical values.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn sample_neighbors_into<R: Rng + ?Sized>(
        &self,
        gpu: GpuId,
        v: VertexId,
        fanout: usize,
        rng: &mut R,
        seen: &mut FloydSet,
        out: &mut Vec<VertexId>,
        totals: &mut BatchTotals,
        merge: &mut Vec<VertexId>,
    ) {
        let neighbors = self.read_topology_batched(gpu, v, fanout, totals, merge);
        out.clear();
        sample_from_into(neighbors, fanout, rng, seen, out);
    }

    /// Topology read metered into `totals` (no atomics touched). Dirty
    /// rows merge the overlay into `merge` and are served from there;
    /// clean rows stay zero-copy on the base CSR or cache.
    #[inline]
    fn read_topology_batched<'m>(
        &'m self,
        gpu: GpuId,
        v: VertexId,
        fanout: usize,
        totals: &mut BatchTotals,
        merge: &'m mut Vec<VertexId>,
    ) -> &'m [VertexId] {
        if self.topology_dirty(v) {
            // A mutated row is never trusted from any cached copy
            // (local, peer, or GPU replica): merge the delta-CSR and
            // charge the fine-grained CPU UVA read of the merged row.
            self.overlay
                .expect("dirty implies overlay")
                .merge_into(self.graph, v, merge);
            let edges_read = merge.len().min(fanout) as u64;
            totals.sampled_edges += edges_read;
            totals.topology_misses += 1;
            totals.topology_tx += 1 + edges_read;
            totals.cpu_bytes += edges_read * 4 + 8;
            return &merge[..];
        }
        let degree = self.graph.degree(v) as usize;
        let edges_read = degree.min(fanout) as u64;
        totals.sampled_edges += edges_read;
        if self.topology_placement == TopologyPlacement::ReplicatedGpu {
            totals.topology_hits += 1;
            return self.graph.neighbors(v);
        }
        if let Some((cache, slot)) = self.layout.for_gpu(gpu) {
            if let Some((hit, data)) = cache.lookup_topology(slot, v) {
                if let CacheHit::Peer(owner) = hit {
                    totals.ensure_gpus(owner + 1);
                    totals.peer_bytes[owner] += edges_read * 4 + 8;
                }
                totals.topology_hits += 1;
                return data;
            }
        }
        totals.topology_misses += 1;
        totals.topology_tx += 1 + edges_read;
        totals.cpu_bytes += edges_read * 4 + 8;
        self.graph.neighbors(v)
    }

    /// Batched feature gather: clears `out` and fills it with the
    /// row-major features of `vertices` (in order), metering every row
    /// read locally and flushing each counter with one atomic add.
    ///
    /// Counter totals are identical to `vertices.len()` scalar
    /// [`Self::read_feature`] calls; the per-row loop performs no atomic
    /// RMW and no allocation beyond `out`'s amortized growth.
    pub fn read_features_batch(
        &self,
        gpu: GpuId,
        vertices: &[VertexId],
        out: &mut Vec<f32>,
        totals: &mut BatchTotals,
    ) {
        let row_bytes = self.features.row_bytes();
        let dim = self.features.dim();
        out.clear();
        out.reserve(vertices.len() * dim);
        totals.extracted_rows += vertices.len() as u64;
        let row_tx = self.server.pcie().transactions_for_payload(row_bytes);
        let cache_slot = self.layout.for_gpu(gpu);
        for &v in vertices {
            if let Some((cache, slot)) = cache_slot {
                if let Some((hit, data)) = cache.lookup_feature(slot, v) {
                    if let CacheHit::Peer(owner) = hit {
                        totals.ensure_gpus(owner + 1);
                        totals.peer_bytes[owner] += row_bytes;
                    }
                    totals.feature_hits += 1;
                    out.extend_from_slice(data);
                    continue;
                }
            }
            totals.feature_misses += 1;
            totals.feature_tx += row_tx;
            totals.cpu_bytes += row_bytes;
            out.extend_from_slice(self.features.row(v));
        }
        self.flush_totals(gpu, totals);
    }

    /// Flushes locally accumulated `totals` into the shared meters: one
    /// atomic add per non-zero counter, then clears `totals` for reuse.
    pub fn flush_totals(&self, gpu: GpuId, totals: &mut BatchTotals) {
        let meters = &self.meters[gpu];
        meters.topology_hits.add(totals.topology_hits);
        meters.topology_misses.add(totals.topology_misses);
        meters.feature_hits.add(totals.feature_hits);
        meters.feature_misses.add(totals.feature_misses);
        meters.sampled_edges.add(totals.sampled_edges);
        meters.extracted_rows.add(totals.extracted_rows);
        if totals.topology_tx > 0 {
            self.server
                .pcm()
                .add(gpu, TrafficKind::Topology, totals.topology_tx);
        }
        if totals.feature_tx > 0 {
            self.server
                .pcm()
                .add(gpu, TrafficKind::Feature, totals.feature_tx);
        }
        if totals.cpu_bytes > 0 {
            self.server
                .traffic()
                .add(gpu, Source::Cpu, totals.cpu_bytes);
        }
        for (owner, &bytes) in totals.peer_bytes.iter().enumerate() {
            if bytes > 0 {
                self.server.traffic().add(gpu, Source::Gpu(owner), bytes);
            }
        }
        totals.topology_hits = 0;
        totals.topology_misses = 0;
        totals.feature_hits = 0;
        totals.feature_misses = 0;
        totals.sampled_edges = 0;
        totals.extracted_rows = 0;
        totals.topology_tx = 0;
        totals.feature_tx = 0;
        totals.cpu_bytes = 0;
        totals.peer_bytes.fill(0);
    }

    /// Records a completed subgraph block (one hop of one mini-batch) of
    /// `edges` edges built on `gpu`.
    pub fn note_block(&self, gpu: GpuId, edges: u64) {
        self.meters[gpu].blocks.inc();
        self.block_edges.observe(edges);
    }

    /// Whether `v`'s feature read from `gpu` would hit the cache (local or
    /// peer). Used for hit-rate reporting without charging traffic.
    pub fn feature_would_hit(&self, gpu: GpuId, v: VertexId) -> bool {
        self.layout
            .for_gpu(gpu)
            .map(|(cache, _)| cache.has_feature(v))
            .unwrap_or(false)
    }

    /// Whether a topology read of `v` from `gpu` avoids PCIe. Dirty
    /// overlay rows never hit: their cached copies are stale.
    pub fn topology_would_hit(&self, gpu: GpuId, v: VertexId) -> bool {
        if self.topology_dirty(v) {
            return false;
        }
        if self.topology_placement == TopologyPlacement::ReplicatedGpu {
            return true;
        }
        self.layout
            .for_gpu(gpu)
            .map(|(cache, _)| cache.has_topology(v))
            .unwrap_or(false)
    }
}

/// Open-addressing membership set over the indices Floyd's algorithm has
/// already chosen.
///
/// The old implementation scanned a `Vec` per draw (`chosen.contains`),
/// making `sample_from` O(fanout²); this probe table answers the same
/// membership query in expected O(1) without sorting — sorting would
/// reorder the output and change the sampled id sequence. The table is
/// reused across calls (cleared in O(capacity) ≈ O(fanout)) so the
/// batched sampling path allocates nothing per vertex.
#[derive(Debug, Clone, Default)]
pub struct FloydSet {
    /// Linear-probe table of chosen indices; `usize::MAX` = empty.
    table: Vec<usize>,
    mask: usize,
}

impl FloydSet {
    const EMPTY: usize = usize::MAX;

    /// An empty set; the table is sized lazily when a sampling call
    /// resets it for a fanout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the set and sizes it for `fanout` insertions (load factor
    /// at most 1/2).
    fn reset(&mut self, fanout: usize) {
        let capacity = (fanout * 2).next_power_of_two().max(8);
        if self.table.len() < capacity {
            self.table = vec![Self::EMPTY; capacity];
        } else {
            self.table.fill(Self::EMPTY);
        }
        self.mask = capacity - 1;
    }

    #[inline]
    fn slot_of(&self, value: usize) -> usize {
        // Fibonacci hashing spreads consecutive indices across the table.
        (value.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.mask
    }

    /// Whether `value` was inserted since the last reset.
    #[inline]
    fn contains(&self, value: usize) -> bool {
        let mut slot = self.slot_of(value);
        loop {
            match self.table[slot] {
                Self::EMPTY => return false,
                x if x == value => return true,
                _ => slot = (slot + 1) & self.mask,
            }
        }
    }

    /// Inserts `value` (must not already be present).
    #[inline]
    fn insert(&mut self, value: usize) {
        let mut slot = self.slot_of(value);
        while self.table[slot] != Self::EMPTY {
            slot = (slot + 1) & self.mask;
        }
        self.table[slot] = value;
    }
}

/// Uniformly samples `min(fanout, neighbors.len())` distinct entries.
/// Matches DGL's fixed-fanout neighbor sampling: when the degree is at
/// most the fanout, all neighbors are taken.
pub fn sample_from<R: Rng + ?Sized>(
    neighbors: &[VertexId],
    fanout: usize,
    rng: &mut R,
) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(fanout.min(neighbors.len()));
    let mut seen = FloydSet::new();
    sample_from_into(neighbors, fanout, rng, &mut seen, &mut out);
    out
}

/// [`sample_from`] into caller-owned buffers: appends the sampled ids to
/// `out`, using `seen` as the membership scratch. Draws the identical RNG
/// sequence and emits the identical ids (in the identical order) as the
/// original Floyd's-algorithm implementation.
#[inline]
pub fn sample_from_into<R: Rng + ?Sized>(
    neighbors: &[VertexId],
    fanout: usize,
    rng: &mut R,
    seen: &mut FloydSet,
    out: &mut Vec<VertexId>,
) {
    if neighbors.len() <= fanout {
        out.extend_from_slice(neighbors);
        return;
    }
    // Floyd's algorithm for distinct indices.
    let n = neighbors.len();
    seen.reset(fanout);
    for j in n - fanout..n {
        let t = rng.gen_range(0..=j);
        let pick = if seen.contains(t) { j } else { t };
        seen.insert(pick);
        out.push(neighbors[pick]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_graph::GraphBuilder;
    use legion_hw::ServerSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star_graph() -> CsrGraph {
        let mut b = GraphBuilder::new(40);
        for v in 1..40 {
            b.push_edge(0, v);
        }
        b.build()
    }

    #[test]
    fn sample_from_small_degree_returns_all() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sample_from(&[1, 2, 3], 10, &mut rng), vec![1, 2, 3]);
        assert!(sample_from(&[], 5, &mut rng).is_empty());
    }

    #[test]
    fn sample_from_large_degree_returns_distinct_fanout() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool: Vec<VertexId> = (0..100).collect();
        let s = sample_from(&pool, 10, &mut rng);
        assert_eq!(s.len(), 10);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10, "samples must be distinct");
    }

    #[test]
    fn sample_from_large_fanout_pins_ids() {
        // Pins the exact Floyd's-algorithm output for a large fanout so
        // any change to the membership structure (the FloydSet replacing
        // the old O(fanout²) `Vec::contains` scan) that perturbs the RNG
        // draw sequence or the pick order fails loudly.
        let mut rng = StdRng::seed_from_u64(0xF00D);
        let pool: Vec<VertexId> = (0..1000).map(|v| v * 3).collect();
        let s = sample_from(&pool, 64, &mut rng);
        assert_eq!(s.len(), 64);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 64, "samples must be distinct");
        assert_eq!(
            s,
            vec![
                2103, 2238, 294, 2796, 1173, 2052, 681, 996, 2262, 1896, 1560, 1818, 150, 2679,
                2001, 543, 1302, 1233, 54, 888, 2361, 99, 2547, 324, 609, 2634, 9, 882, 2763, 2556,
                627, 876, 1686, 2316, 15, 2349, 2085, 1533, 2097, 1038, 1065, 408, 1224, 2034,
                2616, 2208, 2856, 2844, 381, 1608, 2199, 2121, 2010, 363, 1230, 741, 1830, 1689,
                912, 2985, 195, 963, 2439, 387
            ]
        );
    }

    #[test]
    fn sample_from_into_matches_sample_from() {
        let pool: Vec<VertexId> = (0..500).collect();
        for fanout in [1usize, 7, 63, 64, 255, 499, 500, 600] {
            let mut rng_a = StdRng::seed_from_u64(fanout as u64);
            let mut rng_b = StdRng::seed_from_u64(fanout as u64);
            let scalar = sample_from(&pool, fanout, &mut rng_a);
            let mut seen = FloydSet::new();
            let mut out = Vec::new();
            sample_from_into(&pool, fanout, &mut rng_b, &mut seen, &mut out);
            assert_eq!(scalar, out, "fanout {fanout}");
            // Both consumed the same number of RNG draws.
            assert_eq!(
                rng_a.gen::<u64>(),
                rng_b.gen::<u64>(),
                "RNG streams diverged at fanout {fanout}"
            );
        }
    }

    #[test]
    fn cpu_topology_read_charges_per_edge_transactions() {
        let g = star_graph();
        let f = FeatureTable::zeros(40, 16);
        let layout = CacheLayout::none(2);
        let server = ServerSpec::custom(2, 1 << 30, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let mut rng = StdRng::seed_from_u64(2);
        let s = engine.sample_neighbors(0, 0, 10, &mut rng);
        assert_eq!(s.len(), 10);
        // 1 offset + 10 edge transactions on GPU 0's topology counter.
        assert_eq!(server.pcm().gpu_kind(0, TrafficKind::Topology), 11);
        assert_eq!(server.traffic().cpu_to_gpu(0), 10 * 4 + 8);
    }

    #[test]
    fn replicated_gpu_topology_is_free() {
        let g = star_graph();
        let f = FeatureTable::zeros(40, 16);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::ReplicatedGpu);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = engine.sample_neighbors(0, 0, 10, &mut rng);
        assert_eq!(server.pcm().total(), 0);
        assert_eq!(server.traffic().total_cpu_bytes(), 0);
    }

    #[test]
    fn cached_topology_local_hit_is_free_peer_hit_uses_nvlink() {
        let g = star_graph();
        let f = FeatureTable::zeros(40, 16);
        let mut cc = CliqueCache::new(vec![0, 1], 40, 16);
        cc.insert_topology(0, 0, g.neighbors(0));
        let layout = CacheLayout::from_cliques(2, vec![cc]);
        let server = ServerSpec::custom(2, 1 << 30, 2).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let mut rng = StdRng::seed_from_u64(4);
        // Local hit from GPU 0.
        let _ = engine.sample_neighbors(0, 0, 5, &mut rng);
        assert_eq!(server.pcm().total(), 0);
        assert_eq!(server.traffic().total_peer_bytes(), 0);
        // Peer hit from GPU 1: NVLink bytes, still no PCIe.
        let _ = engine.sample_neighbors(1, 0, 5, &mut rng);
        assert_eq!(server.pcm().total(), 0);
        assert_eq!(server.traffic().gpu_to_gpu(0, 1), 5 * 4 + 8);
    }

    #[test]
    fn overlay_dirty_row_is_merged_and_treated_as_cpu_miss() {
        use legion_dyn::{DeltaOverlay, MutationOp};
        let g = star_graph();
        let f = FeatureTable::zeros(40, 16);
        // Cache vertex 0's (stale) topology row so a frozen engine hits.
        let mut cc = CliqueCache::new(vec![0], 40, 16);
        cc.insert_topology(0, 0, g.neighbors(0));
        let layout = CacheLayout::from_cliques(1, vec![cc]);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let ov = DeltaOverlay::new(40);
        // Drop every base edge of vertex 0 except a fresh insert.
        ov.apply(&g, &MutationOp::ChurnVertex { v: 0 });
        ov.apply(&g, &MutationOp::InsertEdge { src: 0, dst: 7 });
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva)
            .with_overlay(Some(&ov));
        assert!(engine.topology_dirty(0));
        assert!(!engine.topology_would_hit(0, 0), "dirty rows never hit");
        assert!(engine.topology_cached_anywhere(0));

        let mut rng = StdRng::seed_from_u64(9);
        // Scalar path: the stale cached row (39 neighbors) must not leak.
        let s = engine.sample_neighbors(0, 0, 10, &mut rng);
        assert_eq!(s, vec![7]);
        // Metered as a CPU UVA miss of the merged (1-edge) row.
        assert_eq!(server.pcm().gpu_kind(0, TrafficKind::Topology), 2);
        assert_eq!(server.traffic().cpu_to_gpu(0), 4 + 8);

        // Batched path agrees.
        server.reset();
        let mut seen = FloydSet::new();
        let mut out = Vec::new();
        let mut totals = BatchTotals::new(1);
        let mut merge = Vec::new();
        engine.sample_neighbors_into(
            0,
            0,
            10,
            &mut rng,
            &mut seen,
            &mut out,
            &mut totals,
            &mut merge,
        );
        assert_eq!(out, vec![7]);
        engine.flush_totals(0, &mut totals);
        assert_eq!(server.pcm().gpu_kind(0, TrafficKind::Topology), 2);

        // A clean vertex still hits the cache machinery untouched.
        assert!(!engine.topology_dirty(3));
    }

    #[test]
    fn feature_reads_charge_equation8_transactions() {
        let g = star_graph();
        // 128-dim rows: 512 bytes = 8 transactions at CLS 64.
        let f = FeatureTable::zeros(40, 128);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let _ = engine.read_feature(0, 7);
        assert_eq!(server.pcm().gpu_kind(0, TrafficKind::Feature), 8);
        assert_eq!(server.traffic().cpu_to_gpu(0), 512);
    }

    #[test]
    fn cached_feature_hits() {
        let g = star_graph();
        let f = FeatureTable::zeros(40, 4);
        let mut cc = CliqueCache::new(vec![0, 1], 40, 4);
        cc.insert_feature(1, 3, f.row(3));
        let layout = CacheLayout::from_cliques(2, vec![cc]);
        let server = ServerSpec::custom(2, 1 << 30, 2).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        // Peer hit: NVLink row bytes.
        let _ = engine.read_feature(0, 3);
        assert_eq!(server.pcm().total(), 0);
        assert_eq!(server.traffic().gpu_to_gpu(1, 0), 16);
        // Local hit: nothing at all.
        server.reset();
        let _ = engine.read_feature(1, 3);
        assert_eq!(server.pcm().total(), 0);
        assert_eq!(server.traffic().total_peer_bytes(), 0);
        // Miss: PCIe.
        let _ = engine.read_feature(0, 5);
        assert_eq!(server.traffic().cpu_to_gpu(0), 16);
        assert!(engine.feature_would_hit(0, 3));
        assert!(!engine.feature_would_hit(0, 5));
    }
}
