//! GPU-style neighbor sampling over the simulated memory hierarchy.
//!
//! In the paper every GPU runs graph sampling, feature extraction and
//! training (§5). Here the same algorithms run on the host, but every
//! topology and feature access goes through an [`access::AccessEngine`]
//! that resolves it against the unified cache and *meters* it: local GPU
//! hits are free, NVLink peer hits add to the GPU↔GPU traffic matrix, and
//! CPU fallbacks add PCM PCIe transactions plus CPU→GPU bytes — exactly
//! the quantities the paper's figures report.
//!
//! * [`access`] — cache-aware, traffic-metered topology/feature reads,
//! * [`batch`] — local/global shuffling and mini-batch generation,
//! * [`sampler`] — the L-hop fixed-fanout neighbor sampler producing
//!   message-flow blocks (Figure 1's workflow),
//! * [`extract`] — the feature extractor operator, and
//! * [`presample()`] — the pre-sampling phase that fills `H_T`, `H_F` and
//!   measures `N_TSUM` (§4.2.2 S1, Figure 6).
//!
//! # Examples
//!
//! ```
//! use legion_graph::{FeatureTable, GraphBuilder};
//! use legion_hw::ServerSpec;
//! use legion_sampling::access::{AccessEngine, CacheLayout, TopologyPlacement};
//! use legion_sampling::KHopSampler;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let g = GraphBuilder::new(4).edge(0, 1).edge(0, 2).edge(1, 3).build();
//! let f = FeatureTable::zeros(4, 8);
//! let layout = CacheLayout::none(1);
//! let server = ServerSpec::custom(1, 1 << 30, 1).build();
//! let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
//! let sampler = KHopSampler::new(vec![2, 2]);
//! let mut rng = StdRng::seed_from_u64(0);
//! let sample = sampler.sample_batch(&engine, 0, &[0], &mut rng, None);
//! // Every uncached topology read crossed (simulated) PCIe.
//! assert!(server.pcm().total() > 0);
//! assert!(sample.all_vertices.contains(&0));
//! ```

pub mod access;
pub mod batch;
pub mod extract;
pub mod presample;
pub mod sampler;

pub use access::{AccessEngine, BatchTotals, CacheLayout, FloydSet, TopologyPlacement};
pub use batch::BatchGenerator;
pub use presample::{presample, PresampleOutput};
pub use sampler::{Block, KHopSampler, MiniBatchSample, SampleScratch};

/// The paper's GraphSAGE/GCN sampling fan-outs: "The sampling fan-outs are
/// 25 and 10" for 2-hop models (§6.1).
pub const PAPER_FANOUTS: [usize; 2] = [25, 10];
