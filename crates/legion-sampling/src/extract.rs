//! The feature extractor operator (§5, operator 3).
//!
//! Gathers the feature rows of every vertex in a sampled mini-batch into a
//! dense matrix, charging each row's transfer through the access engine
//! (local hit / NVLink peer / CPU PCIe).

use legion_graph::{FeatureTable, VertexId};
use legion_hw::GpuId;

use crate::access::AccessEngine;

/// Gathers features for `vertices` on behalf of `gpu`.
///
/// Returns the dense `(len, D)` matrix in `vertices` order. Traffic is
/// booked per row on the engine's server.
pub fn extract_features(
    engine: &AccessEngine<'_>,
    gpu: GpuId,
    vertices: &[VertexId],
) -> FeatureTable {
    let dim = engine.feature_dim();
    let mut out = FeatureTable::zeros(vertices.len(), dim);
    for (i, &v) in vertices.iter().enumerate() {
        let row = engine.read_feature(gpu, v);
        out.row_mut(i as VertexId).copy_from_slice(row);
    }
    out
}

/// Hit statistics for a hypothetical extraction, without charging traffic.
/// Used by the Figure 3 / Figure 9 cache hit-rate experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitStats {
    /// Reads served from the clique cache (local or NVLink peer).
    pub hits: u64,
    /// Reads that would fall through to CPU memory.
    pub misses: u64,
}

impl HitStats {
    /// Hit rate in `[0, 1]`; 0 for no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another batch's stats.
    pub fn merge(&mut self, other: HitStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Counts cache hits/misses for a feature gather without performing it.
pub fn feature_hit_stats(engine: &AccessEngine<'_>, gpu: GpuId, vertices: &[VertexId]) -> HitStats {
    let mut stats = HitStats::default();
    for &v in vertices {
        if engine.feature_would_hit(gpu, v) {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{CacheLayout, TopologyPlacement};
    use legion_cache::CliqueCache;
    use legion_graph::{CsrGraph, FeatureTable};
    use legion_hw::ServerSpec;

    #[test]
    fn extract_gathers_in_order() {
        let g = CsrGraph::empty(4);
        let f = FeatureTable::from_flat((0..8).map(|x| x as f32).collect(), 2);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let out = extract_features(&engine, 0, &[3, 0]);
        assert_eq!(out.row(0), &[6.0, 7.0]);
        assert_eq!(out.row(1), &[0.0, 1.0]);
        // Two uncached rows of 8 bytes: 1 transaction each.
        assert_eq!(server.pcm().total(), 2);
    }

    #[test]
    fn hit_stats_reflect_cache_contents() {
        let g = CsrGraph::empty(4);
        let f = FeatureTable::zeros(4, 2);
        let mut cc = CliqueCache::new(vec![0], 4, 2);
        cc.insert_feature(0, 1, f.row(1));
        cc.insert_feature(0, 2, f.row(2));
        let layout = CacheLayout::from_cliques(1, vec![cc]);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let stats = feature_hit_stats(&engine, 0, &[0, 1, 2, 3]);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        // Stats collection charges nothing.
        assert_eq!(server.pcm().total(), 0);
    }

    #[test]
    fn empty_gather() {
        let g = CsrGraph::empty(1);
        let f = FeatureTable::zeros(1, 3);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let out = extract_features(&engine, 0, &[]);
        assert_eq!(out.num_rows(), 0);
        assert_eq!(feature_hit_stats(&engine, 0, &[]).hit_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = HitStats { hits: 1, misses: 3 };
        a.merge(HitStats { hits: 2, misses: 0 });
        assert_eq!(a, HitStats { hits: 3, misses: 3 });
    }
}
