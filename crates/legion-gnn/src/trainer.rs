//! Training and evaluation loops for the convergence experiments
//! (Figure 11: local vs. global shuffling).

use rand::Rng;

use legion_graph::VertexId;
use legion_hw::GpuId;
use legion_sampling::access::AccessEngine;
use legion_sampling::extract::extract_features;
use legion_sampling::{BatchGenerator, KHopSampler};
use legion_tensor::{Adam, Matrix, Optimizer, Tape};

use crate::model::{argmax_rows, GnnModel};

/// Trainer hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Sampling fan-outs, outermost first.
    pub fanouts: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f32,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            batch_size: 128,
            fanouts: vec![10, 5],
            learning_rate: 0.01,
        }
    }
}

/// Per-epoch training metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMetrics {
    /// Mean mini-batch loss.
    pub mean_loss: f32,
    /// Training accuracy over the epoch's seeds.
    pub train_accuracy: f64,
    /// Number of batches processed.
    pub batches: usize,
}

/// Trains one epoch of `model` on the seeds of `generator`, reading all
/// data through `engine` (so cache hits/misses and PCIe traffic are
/// accounted exactly as in the full system).
#[allow(clippy::too_many_arguments)]
pub fn train_epoch<R: Rng + ?Sized>(
    model: &mut GnnModel,
    engine: &AccessEngine<'_>,
    gpu: GpuId,
    generator: &mut BatchGenerator,
    labels: &[u32],
    config: &TrainerConfig,
    optimizer: &mut Adam,
    rng: &mut R,
) -> EpochMetrics {
    let sampler = KHopSampler::new(config.fanouts.clone());
    let mut total_loss = 0.0f64;
    let mut correct = 0usize;
    let mut seen = 0usize;
    let mut batches = 0usize;
    for batch in generator.epoch(rng) {
        let sample = sampler.sample_batch(engine, gpu, &batch, rng, None);
        let inputs = sample.input_vertices().to_vec();
        let feats = extract_features(engine, gpu, &inputs);
        let x = Matrix::from_flat(feats.num_rows(), feats.dim(), feats.as_slice().to_vec());
        let y: Vec<u32> = batch.iter().map(|&v| labels[v as usize]).collect();

        let mut tape = Tape::new();
        let (pids, logits) = model.forward(&mut tape, x, &sample);
        let loss = tape.cross_entropy_mean(logits, &y);
        tape.backward(loss);
        total_loss += tape.value(loss).get(0, 0) as f64;
        let preds = argmax_rows(tape.value(logits));
        correct += preds.iter().zip(&y).filter(|(p, l)| p == l).count();
        seen += y.len();

        let grads: Vec<Matrix> = pids.iter().map(|&p| tape.grad(p)).collect();
        let mut params = model.params();
        optimizer.step(&mut params, &grads);
        model.set_params(&params);
        batches += 1;
    }
    EpochMetrics {
        mean_loss: if batches == 0 {
            0.0
        } else {
            (total_loss / batches as f64) as f32
        },
        train_accuracy: if seen == 0 {
            0.0
        } else {
            correct as f64 / seen as f64
        },
        batches,
    }
}

/// Evaluates classification accuracy on `test_vertices` (sampled forward
/// pass, no gradient, no parameter update).
pub fn evaluate_accuracy<R: Rng + ?Sized>(
    model: &GnnModel,
    engine: &AccessEngine<'_>,
    gpu: GpuId,
    test_vertices: &[VertexId],
    labels: &[u32],
    config: &TrainerConfig,
    rng: &mut R,
) -> f64 {
    if test_vertices.is_empty() {
        return 0.0;
    }
    let sampler = KHopSampler::new(config.fanouts.clone());
    let mut correct = 0usize;
    for chunk in test_vertices.chunks(config.batch_size) {
        let sample = sampler.sample_batch(engine, gpu, chunk, rng, None);
        let inputs = sample.input_vertices().to_vec();
        let feats = extract_features(engine, gpu, &inputs);
        let x = Matrix::from_flat(feats.num_rows(), feats.dim(), feats.as_slice().to_vec());
        let logits = model.predict(x, &sample);
        let preds = argmax_rows(&logits);
        correct += preds
            .iter()
            .zip(chunk)
            .filter(|(p, &v)| **p == labels[v as usize])
            .count();
    }
    correct as f64 / test_vertices.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use legion_graph::generate::SbmConfig;
    use legion_hw::ServerSpec;
    use legion_sampling::access::{CacheLayout, TopologyPlacement};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// End-to-end learning check: a 2-layer GraphSAGE must beat random
    /// guessing by a wide margin on an easy SBM task.
    #[test]
    fn sage_learns_sbm_communities() {
        let mut rng = StdRng::seed_from_u64(11);
        let sbm = SbmConfig {
            num_vertices: 600,
            num_communities: 4,
            avg_degree: 10,
            intra_prob: 0.9,
            feature_dim: 16,
            feature_separation: 1.5,
            feature_noise: 0.4,
            hub_exponent: 0.0,
        }
        .generate(&mut rng);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let engine = AccessEngine::new(
            &sbm.graph,
            &sbm.features,
            &layout,
            &server,
            TopologyPlacement::CpuUva,
        );
        let train: Vec<u32> = (0..480).collect();
        let test: Vec<u32> = (480..600).collect();
        let config = TrainerConfig {
            batch_size: 64,
            fanouts: vec![5, 5],
            learning_rate: 0.01,
        };
        let mut model = GnnModel::new(ModelKind::GraphSage, 16, 32, 4, 2, &mut rng);
        let mut opt = Adam::new(config.learning_rate);
        let mut generator = BatchGenerator::new(train, config.batch_size);
        let mut last = EpochMetrics {
            mean_loss: f32::INFINITY,
            train_accuracy: 0.0,
            batches: 0,
        };
        for _ in 0..8 {
            last = train_epoch(
                &mut model,
                &engine,
                0,
                &mut generator,
                &sbm.labels,
                &config,
                &mut opt,
                &mut rng,
            );
        }
        assert!(last.batches > 0);
        let acc = evaluate_accuracy(&model, &engine, 0, &test, &sbm.labels, &config, &mut rng);
        assert!(acc > 0.6, "test accuracy {acc} (random would be 0.25)");
        assert!(
            last.train_accuracy > 0.6,
            "train acc {}",
            last.train_accuracy
        );
    }

    #[test]
    fn gcn_also_learns() {
        let mut rng = StdRng::seed_from_u64(12);
        let sbm = SbmConfig {
            num_vertices: 400,
            num_communities: 2,
            avg_degree: 8,
            intra_prob: 0.9,
            feature_dim: 8,
            feature_separation: 2.0,
            feature_noise: 0.3,
            hub_exponent: 0.0,
        }
        .generate(&mut rng);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let engine = AccessEngine::new(
            &sbm.graph,
            &sbm.features,
            &layout,
            &server,
            TopologyPlacement::CpuUva,
        );
        let config = TrainerConfig {
            batch_size: 64,
            fanouts: vec![4, 4],
            learning_rate: 0.02,
        };
        let mut model = GnnModel::new(ModelKind::Gcn, 8, 16, 2, 2, &mut rng);
        let mut opt = Adam::new(config.learning_rate);
        let mut generator = BatchGenerator::new((0..300).collect(), config.batch_size);
        for _ in 0..6 {
            let _ = train_epoch(
                &mut model,
                &engine,
                0,
                &mut generator,
                &sbm.labels,
                &config,
                &mut opt,
                &mut rng,
            );
        }
        let acc = evaluate_accuracy(
            &model,
            &engine,
            0,
            &(300..400).collect::<Vec<_>>(),
            &sbm.labels,
            &config,
            &mut rng,
        );
        assert!(acc > 0.7, "GCN test accuracy {acc}");
    }

    #[test]
    fn empty_test_set_scores_zero() {
        let mut rng = StdRng::seed_from_u64(13);
        let sbm = SbmConfig {
            num_vertices: 50,
            num_communities: 2,
            ..Default::default()
        }
        .generate(&mut rng);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let engine = AccessEngine::new(
            &sbm.graph,
            &sbm.features,
            &layout,
            &server,
            TopologyPlacement::CpuUva,
        );
        let model = GnnModel::new(ModelKind::Gcn, 32, 8, 2, 2, &mut rng);
        let acc = evaluate_accuracy(
            &model,
            &engine,
            0,
            &[],
            &sbm.labels,
            &TrainerConfig::default(),
            &mut rng,
        );
        assert_eq!(acc, 0.0);
    }
}
