//! GraphSAGE and GCN models over sampled mini-batches.
//!
//! The paper trains "two sampling-based GNN models: GraphSAGE and GCN,
//! which both adopt a 2-hop random neighbor sampling. The sampling
//! fan-outs are 25 and 10. The dimension of the hidden layers in both
//! models is set to 256" (§6.1). This crate implements both models over
//! the message-flow blocks produced by `legion-sampling`, with real
//! gradients via `legion-tensor`, plus the training/evaluation loops the
//! convergence experiment (Figure 11) needs.

pub mod link_prediction;
pub mod model;
pub mod trainer;

pub use link_prediction::{auc, sample_link_batch, LinkBatch};
pub use model::{GnnModel, ModelKind};
pub use trainer::{evaluate_accuracy, train_epoch, EpochMetrics, TrainerConfig};

/// The paper's hidden dimension for both models (§6.1).
pub const PAPER_HIDDEN_DIM: usize = 256;
