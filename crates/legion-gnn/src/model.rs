//! GNN model definitions: layer stacks over message-flow blocks.

use rand::Rng;

use legion_sampling::MiniBatchSample;
use legion_tensor::{Matrix, Tape, VarId};

/// Which aggregation the layers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// GraphSAGE: `h' = relu([h_self | mean(h_neigh)] W + b)`.
    GraphSage,
    /// GCN (mean with self-loop): `h' = relu((h_self + mean(h_neigh))/2 W + b)`.
    Gcn,
}

/// One layer's parameters.
#[derive(Debug, Clone)]
struct Layer {
    weight: Matrix,
    bias: Matrix,
}

/// A multi-layer GNN classifier.
///
/// Layer `l` consumes the activations of hop `L - l` sources and produces
/// activations for hop `L - l - 1` destinations; the last layer emits
/// logits for the batch seeds (no ReLU).
#[derive(Debug, Clone)]
pub struct GnnModel {
    kind: ModelKind,
    layers: Vec<Layer>,
    in_dim: usize,
    num_classes: usize,
}

impl GnnModel {
    /// Builds a model with `num_layers` layers: `in_dim -> hidden -> ...
    /// -> num_classes`.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0`.
    pub fn new<R: Rng + ?Sized>(
        kind: ModelKind,
        in_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        num_layers: usize,
        rng: &mut R,
    ) -> Self {
        assert!(num_layers > 0, "need at least one layer");
        let mut layers = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let d_in = if l == 0 { in_dim } else { hidden_dim };
            let d_out = if l == num_layers - 1 {
                num_classes
            } else {
                hidden_dim
            };
            let w_rows = match kind {
                ModelKind::GraphSage => 2 * d_in,
                ModelKind::Gcn => d_in,
            };
            layers.push(Layer {
                weight: Matrix::xavier(w_rows, d_out, rng),
                bias: Matrix::zeros(1, d_out),
            });
        }
        Self {
            kind,
            layers,
            in_dim,
            num_classes,
        }
    }

    /// Aggregation kind.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Number of layers (must match the sampler's hop count).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Expected input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output class count.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Flat parameter list (weights and biases interleaved per layer).
    pub fn params(&self) -> Vec<Matrix> {
        self.layers
            .iter()
            .flat_map(|l| [l.weight.clone(), l.bias.clone()])
            .collect()
    }

    /// Overwrites parameters from a flat list (inverse of [`params`](Self::params)).
    ///
    /// # Panics
    ///
    /// Panics on length or shape mismatch.
    pub fn set_params(&mut self, params: &[Matrix]) {
        assert_eq!(params.len(), self.layers.len() * 2, "param count mismatch");
        for (l, chunk) in self.layers.iter_mut().zip(params.chunks(2)) {
            assert_eq!(
                (chunk[0].rows(), chunk[0].cols()),
                (l.weight.rows(), l.weight.cols()),
                "weight shape mismatch"
            );
            l.weight = chunk[0].clone();
            l.bias = chunk[1].clone();
        }
    }

    /// Estimated forward+backward FLOPs for a batch (used by the pipeline
    /// time model): ~6 * sum(rows_l * w_rows_l * w_cols_l) per layer.
    pub fn training_flops(&self, sample: &MiniBatchSample) -> f64 {
        let mut flops = 0.0;
        for (l, layer) in self.layers.iter().enumerate() {
            let block = &sample.blocks[sample.blocks.len() - 1 - l];
            let rows = block.num_dst as f64;
            flops += 6.0 * rows * layer.weight.rows() as f64 * layer.weight.cols() as f64;
            // Aggregation cost: one add per edge per channel.
            flops += 2.0 * block.num_edges() as f64 * layer.weight.cols() as f64;
        }
        flops
    }

    /// Estimated forward-only FLOPs for a batch — the inference cost a
    /// serving deployment pays per micro-batch. Same per-layer shape math
    /// as [`Self::training_flops`] but without the 3x forward+backward
    /// factor: 2 FLOPs per multiply-accumulate in the layer matmul plus
    /// one aggregation pass over the block edges.
    pub fn inference_flops(&self, sample: &MiniBatchSample) -> f64 {
        let mut flops = 0.0;
        for (l, layer) in self.layers.iter().enumerate() {
            let block = &sample.blocks[sample.blocks.len() - 1 - l];
            let rows = block.num_dst as f64;
            flops += 2.0 * rows * layer.weight.rows() as f64 * layer.weight.cols() as f64;
            flops += 2.0 * block.num_edges() as f64 * layer.weight.cols() as f64;
        }
        flops
    }

    /// Builds the forward pass on `tape`, registering parameters and
    /// returning `(param_ids, logits)`. `input_features` must contain one
    /// row per vertex of the deepest block's `src_vertices`, in order.
    ///
    /// # Panics
    ///
    /// Panics if the sample's hop count differs from the layer count, or
    /// the feature matrix has the wrong shape.
    pub fn forward(
        &self,
        tape: &mut Tape,
        input_features: Matrix,
        sample: &MiniBatchSample,
    ) -> (Vec<VarId>, VarId) {
        assert_eq!(
            sample.blocks.len(),
            self.layers.len(),
            "model depth must match sampled hops"
        );
        assert_eq!(
            input_features.rows(),
            sample.input_vertices().len(),
            "one feature row per input vertex"
        );
        assert_eq!(input_features.cols(), self.in_dim, "feature dim mismatch");
        let mut param_ids = Vec::with_capacity(self.layers.len() * 2);
        let mut h = tape.constant(input_features);
        for (l, layer) in self.layers.iter().enumerate() {
            let block = &sample.blocks[sample.blocks.len() - 1 - l];
            let w = tape.param(layer.weight.clone());
            let b = tape.param(layer.bias.clone());
            param_ids.push(w);
            param_ids.push(b);
            let h_self = tape.slice_rows(h, block.num_dst);
            let h_agg = tape.edge_mean(h, &block.edge_src, &block.edge_dst, block.num_dst);
            let combined = match self.kind {
                ModelKind::GraphSage => tape.concat_cols(h_self, h_agg),
                ModelKind::Gcn => {
                    let sum = tape.add(h_self, h_agg);
                    tape.scale(sum, 0.5)
                }
            };
            let lin = tape.matmul(combined, w);
            let lin = tape.add_row(lin, b);
            h = if l + 1 < self.layers.len() {
                tape.relu(lin)
            } else {
                lin
            };
        }
        (param_ids, h)
    }

    /// Forward pass without gradients; returns seed logits.
    pub fn predict(&self, input_features: Matrix, sample: &MiniBatchSample) -> Matrix {
        let mut tape = Tape::new();
        let (_, logits) = self.forward(&mut tape, input_features, sample);
        tape.value(logits).clone()
    }
}

/// Argmax class per row of `logits`.
pub fn argmax_rows(logits: &Matrix) -> Vec<u32> {
    (0..logits.rows())
        .map(|r| {
            let row = logits.row(r);
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_graph::{FeatureTable, GraphBuilder};
    use legion_hw::ServerSpec;
    use legion_sampling::access::{AccessEngine, CacheLayout, TopologyPlacement};
    use legion_sampling::KHopSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_sample(hops: usize) -> (MiniBatchSample, Matrix) {
        let g = GraphBuilder::new(6)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(2, 4)
            .edge(1, 5)
            .build();
        let f = FeatureTable::random(6, 4, &mut StdRng::seed_from_u64(0));
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 30, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::new(vec![3; hops]);
        let mut rng = StdRng::seed_from_u64(1);
        let sample = sampler.sample_batch(&engine, 0, &[0, 1], &mut rng, None);
        let inputs = sample.input_vertices().to_vec();
        let feats = f.gather(&inputs);
        let m = Matrix::from_flat(feats.num_rows(), feats.dim(), feats.as_slice().to_vec());
        (sample, m)
    }

    #[test]
    fn forward_shapes_sage_and_gcn() {
        let (sample, feats) = make_sample(2);
        let mut rng = StdRng::seed_from_u64(2);
        for kind in [ModelKind::GraphSage, ModelKind::Gcn] {
            let model = GnnModel::new(kind, 4, 8, 3, 2, &mut rng);
            let logits = model.predict(feats.clone(), &sample);
            assert_eq!(logits.rows(), 2, "one logit row per seed");
            assert_eq!(logits.cols(), 3);
        }
    }

    #[test]
    fn param_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = GnnModel::new(ModelKind::GraphSage, 4, 8, 3, 2, &mut rng);
        let mut p = model.params();
        assert_eq!(p.len(), 4);
        p[0].scale_assign(0.0);
        model.set_params(&p);
        assert_eq!(model.params()[0].norm(), 0.0);
    }

    #[test]
    fn training_reduces_loss_on_tiny_task() {
        use legion_tensor::{Adam, Optimizer};
        let (sample, feats) = make_sample(2);
        let labels = vec![0u32, 1u32];
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = GnnModel::new(ModelKind::GraphSage, 4, 8, 2, 2, &mut rng);
        let mut opt = Adam::new(0.05);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let mut tape = Tape::new();
            let (pids, logits) = model.forward(&mut tape, feats.clone(), &sample);
            let loss = tape.cross_entropy_mean(logits, &labels);
            tape.backward(loss);
            last = tape.value(loss).get(0, 0);
            first.get_or_insert(last);
            let grads: Vec<Matrix> = pids.iter().map(|&p| tape.grad(p)).collect();
            let mut params = model.params();
            opt.step(&mut params, &grads);
            model.set_params(&params);
        }
        assert!(last < 0.3 * first.unwrap(), "first {:?} last {last}", first);
    }

    #[test]
    fn gcn_differs_from_sage() {
        let (sample, feats) = make_sample(2);
        let mut rng = StdRng::seed_from_u64(5);
        let sage = GnnModel::new(ModelKind::GraphSage, 4, 8, 3, 2, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(5);
        let gcn = GnnModel::new(ModelKind::Gcn, 4, 8, 3, 2, &mut rng2);
        assert_ne!(
            sage.predict(feats.clone(), &sample),
            gcn.predict(feats, &sample)
        );
    }

    #[test]
    fn argmax_rows_basics() {
        let m = Matrix::from_rows(&[&[0.1, 0.9], &[5.0, -1.0]]);
        assert_eq!(argmax_rows(&m), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "model depth")]
    fn depth_mismatch_panics() {
        let (sample, feats) = make_sample(2);
        let mut rng = StdRng::seed_from_u64(6);
        let model = GnnModel::new(ModelKind::Gcn, 4, 8, 3, 1, &mut rng);
        let _ = model.predict(feats, &sample);
    }

    #[test]
    fn flops_positive_and_scale_with_depth() {
        let (s2, _) = make_sample(2);
        let mut rng = StdRng::seed_from_u64(7);
        let m2 = GnnModel::new(ModelKind::GraphSage, 4, 8, 3, 2, &mut rng);
        assert!(m2.training_flops(&s2) > 0.0);
    }

    #[test]
    fn inference_is_cheaper_than_training() {
        let (s2, _) = make_sample(2);
        let mut rng = StdRng::seed_from_u64(8);
        let m = GnnModel::new(ModelKind::GraphSage, 4, 8, 3, 2, &mut rng);
        let infer = m.inference_flops(&s2);
        let train = m.training_flops(&s2);
        assert!(infer > 0.0);
        // Forward-only is strictly cheaper; the matmul term alone is 3x
        // smaller, so the total must be well under half of training.
        assert!(infer < train / 2.0, "infer {infer} train {train}");
    }
}
