//! Link prediction — the second GNN task of the paper's Table 3.
//!
//! A [`GnnModel`] is used as an *encoder*: its output layer produces an
//! embedding per seed vertex, edges are scored by the dot product of
//! their endpoint embeddings, and training minimizes binary cross-entropy
//! against positive (real) and negative (random) edges. Table 3 sizes the
//! LP training set at 80% of the graph's edges, which is why one LP epoch
//! costs minutes where a node-classification epoch costs seconds.

use std::collections::HashMap;

use rand::Rng;

use legion_graph::{CsrGraph, VertexId};
use legion_hw::GpuId;
use legion_sampling::access::AccessEngine;
use legion_sampling::extract::extract_features;
use legion_sampling::KHopSampler;
use legion_tensor::{Adam, Matrix, Optimizer, Tape};

use crate::model::GnnModel;

/// One mini-batch of edges to score: positives from the graph, negatives
/// with a random destination.
#[derive(Debug, Clone)]
pub struct LinkBatch {
    /// Source endpoint per example.
    pub src: Vec<VertexId>,
    /// Destination endpoint per example.
    pub dst: Vec<VertexId>,
    /// 1.0 for a real edge, 0.0 for a negative sample.
    pub labels: Vec<f32>,
}

impl LinkBatch {
    /// All distinct endpoints, sorted (the seeds handed to the sampler).
    pub fn seeds(&self) -> Vec<VertexId> {
        let mut s: Vec<VertexId> = self.src.iter().chain(&self.dst).copied().collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Samples `num_pos` uniform positive edges plus `neg_per_pos` negatives
/// each (uniform random destination; collisions with real edges are rare
/// on sparse graphs and tolerated, as in standard LP training).
///
/// # Panics
///
/// Panics if the graph has no edges while positives are requested.
pub fn sample_link_batch<R: Rng + ?Sized>(
    graph: &CsrGraph,
    num_pos: usize,
    neg_per_pos: usize,
    rng: &mut R,
) -> LinkBatch {
    assert!(
        graph.num_edges() > 0 || num_pos == 0,
        "cannot sample positive edges from an empty graph"
    );
    let n = graph.num_vertices() as VertexId;
    let mut src = Vec::with_capacity(num_pos * (1 + neg_per_pos));
    let mut dst = Vec::with_capacity(src.capacity());
    let mut labels = Vec::with_capacity(src.capacity());
    let offsets = graph.row_offsets();
    for _ in 0..num_pos {
        // Uniform edge: pick a random edge index, binary-search its row.
        let e = rng.gen_range(0..graph.num_edges() as u64);
        let u = offsets.partition_point(|&o| o <= e) as VertexId - 1;
        let v = graph.col_indices()[e as usize];
        src.push(u);
        dst.push(v);
        labels.push(1.0);
        for _ in 0..neg_per_pos {
            src.push(u);
            dst.push(rng.gen_range(0..n));
            labels.push(0.0);
        }
    }
    LinkBatch { src, dst, labels }
}

/// Scores a batch: encodes the seed vertices, gathers endpoint embedding
/// rows (via single-edge `edge_mean`, which is an exact differentiable
/// gather), and returns the dot-product logits plus the parameter ids.
fn score_batch(
    encoder: &GnnModel,
    tape: &mut Tape,
    input_features: Matrix,
    sample: &legion_sampling::MiniBatchSample,
    batch: &LinkBatch,
) -> (Vec<legion_tensor::VarId>, legion_tensor::VarId) {
    let (pids, embeddings) = encoder.forward(tape, input_features, sample);
    // Seed row index per vertex.
    let index: HashMap<VertexId, u32> = sample
        .seeds
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let gather = |tape: &mut Tape, emb, endpoints: &[VertexId]| {
        let edge_src: Vec<u32> = endpoints.iter().map(|v| index[v]).collect();
        let edge_dst: Vec<u32> = (0..endpoints.len() as u32).collect();
        tape.edge_mean(emb, &edge_src, &edge_dst, endpoints.len())
    };
    let src_emb = gather(tape, embeddings, &batch.src);
    let dst_emb = gather(tape, embeddings, &batch.dst);
    let scores = tape.rowwise_dot(src_emb, dst_emb);
    (pids, scores)
}

/// Trains one LP step; returns the batch loss.
#[allow(clippy::too_many_arguments)]
pub fn train_link_batch<R: Rng + ?Sized>(
    encoder: &mut GnnModel,
    engine: &AccessEngine<'_>,
    gpu: GpuId,
    sampler: &KHopSampler,
    batch: &LinkBatch,
    optimizer: &mut Adam,
    rng: &mut R,
) -> f32 {
    if batch.is_empty() {
        return 0.0;
    }
    let seeds = batch.seeds();
    let sample = sampler.sample_batch(engine, gpu, &seeds, rng, None);
    let inputs = sample.input_vertices().to_vec();
    let feats = extract_features(engine, gpu, &inputs);
    let x = Matrix::from_flat(feats.num_rows(), feats.dim(), feats.as_slice().to_vec());
    let mut tape = Tape::new();
    let (pids, scores) = score_batch(encoder, &mut tape, x, &sample, batch);
    let loss = tape.bce_with_logits_mean(scores, &batch.labels);
    tape.backward(loss);
    let value = tape.value(loss).get(0, 0);
    let grads: Vec<Matrix> = pids.iter().map(|&p| tape.grad(p)).collect();
    let mut params = encoder.params();
    optimizer.step(&mut params, &grads);
    encoder.set_params(&params);
    value
}

/// Scores a batch without training; returns the raw logits.
pub fn predict_links<R: Rng + ?Sized>(
    encoder: &GnnModel,
    engine: &AccessEngine<'_>,
    gpu: GpuId,
    sampler: &KHopSampler,
    batch: &LinkBatch,
    rng: &mut R,
) -> Vec<f32> {
    if batch.is_empty() {
        return Vec::new();
    }
    let seeds = batch.seeds();
    let sample = sampler.sample_batch(engine, gpu, &seeds, rng, None);
    let inputs = sample.input_vertices().to_vec();
    let feats = extract_features(engine, gpu, &inputs);
    let x = Matrix::from_flat(feats.num_rows(), feats.dim(), feats.as_slice().to_vec());
    let mut tape = Tape::new();
    let (_, scores) = score_batch(encoder, &mut tape, x, &sample, batch);
    tape.value(scores).as_slice().to_vec()
}

/// Area under the ROC curve of `scores` against 0/1 `labels` — the
/// standard LP quality metric. 0.5 = random.
pub fn auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "one label per score");
    let mut pairs: Vec<(f32, f32)> = scores.iter().copied().zip(labels.iter().copied()).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));
    let mut rank_sum = 0.0f64;
    let mut positives = 0u64;
    for (rank, (_, label)) in pairs.iter().enumerate() {
        if *label > 0.5 {
            rank_sum += (rank + 1) as f64;
            positives += 1;
        }
    }
    let negatives = (pairs.len() as u64).saturating_sub(positives);
    if positives == 0 || negatives == 0 {
        return 0.5;
    }
    (rank_sum - (positives * (positives + 1)) as f64 / 2.0) / (positives as f64 * negatives as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use legion_graph::generate::SbmConfig;
    use legion_hw::ServerSpec;
    use legion_sampling::access::{CacheLayout, TopologyPlacement};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn link_batch_shapes_and_seeds() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = SbmConfig {
            num_vertices: 100,
            num_communities: 2,
            ..Default::default()
        }
        .generate(&mut rng)
        .graph;
        let b = sample_link_batch(&g, 10, 2, &mut rng);
        assert_eq!(b.len(), 30);
        assert_eq!(b.labels.iter().filter(|&&l| l > 0.5).count(), 10);
        // Every positive is a real edge.
        for i in (0..30).step_by(3) {
            assert!(g.neighbors(b.src[i]).contains(&b.dst[i]));
        }
        let seeds = b.seeds();
        assert!(seeds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn auc_metric_basics() {
        // Perfect separation.
        assert!((auc(&[0.1, 0.2, 0.8, 0.9], &[0.0, 0.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // Inverted.
        assert!(auc(&[0.9, 0.8, 0.1], &[0.0, 0.0, 1.0]) < 0.01);
        // Degenerate: all one class.
        assert_eq!(auc(&[0.5, 0.6], &[1.0, 1.0]), 0.5);
    }

    #[test]
    fn link_prediction_learns_on_sbm() {
        let mut rng = StdRng::seed_from_u64(2);
        let sbm = SbmConfig {
            num_vertices: 400,
            num_communities: 4,
            avg_degree: 12,
            intra_prob: 0.95,
            feature_dim: 16,
            feature_separation: 2.0,
            feature_noise: 0.2,
            hub_exponent: 0.0,
        }
        .generate(&mut rng);
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 40, 1).build();
        let engine = AccessEngine::new(
            &sbm.graph,
            &sbm.features,
            &layout,
            &server,
            TopologyPlacement::CpuUva,
        );
        let sampler = KHopSampler::new(vec![5, 5]);
        let mut encoder = GnnModel::new(ModelKind::GraphSage, 16, 32, 16, 2, &mut rng);
        let mut opt = Adam::new(0.01);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..40 {
            let batch = sample_link_batch(&sbm.graph, 32, 1, &mut rng);
            last_loss = train_link_batch(
                &mut encoder,
                &engine,
                0,
                &sampler,
                &batch,
                &mut opt,
                &mut rng,
            );
            first_loss.get_or_insert(last_loss);
        }
        assert!(
            last_loss < 0.8 * first_loss.unwrap(),
            "loss {first_loss:?} -> {last_loss}"
        );
        // Held-out AUC well above random.
        let test = sample_link_batch(&sbm.graph, 100, 1, &mut rng);
        let scores = predict_links(&encoder, &engine, 0, &sampler, &test, &mut rng);
        let a = auc(&scores, &test.labels);
        assert!(a > 0.7, "AUC {a}");
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = CsrGraph::empty(4);
        let batch = sample_link_batch(&g, 0, 3, &mut rng);
        assert!(batch.is_empty());
        assert_eq!(auc(&[], &[]), 0.5);
    }
}
