//! Property-based tests for the GNN models over randomly sampled blocks.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use legion_gnn::link_prediction::auc;
use legion_gnn::{GnnModel, ModelKind};
use legion_graph::builder::from_edges;
use legion_graph::FeatureTable;
use legion_hw::ServerSpec;
use legion_sampling::access::{AccessEngine, CacheLayout, TopologyPlacement};
use legion_sampling::KHopSampler;
use legion_tensor::Matrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forward_always_produces_one_logit_row_per_seed(
        n in 8usize..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 1..160),
        num_seeds in 1usize..6,
        seed in 0u64..500,
        kind in prop_oneof![Just(ModelKind::GraphSage), Just(ModelKind::Gcn)],
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(s, d)| (s % n as u32, d % n as u32))
            .collect();
        let g = from_edges(n, &edges);
        let f = FeatureTable::random(n, 6, &mut StdRng::seed_from_u64(seed));
        let layout = CacheLayout::none(1);
        let server = ServerSpec::custom(1, 1 << 40, 1).build();
        let engine = AccessEngine::new(&g, &f, &layout, &server, TopologyPlacement::CpuUva);
        let sampler = KHopSampler::new(vec![3, 3]);
        let mut rng = StdRng::seed_from_u64(seed);
        let seeds: Vec<u32> = (0..num_seeds as u32).map(|i| i % n as u32).collect();
        // Seeds must be unique for a valid batch.
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let sample = sampler.sample_batch(&engine, 0, &uniq, &mut rng, None);
        let inputs = sample.input_vertices().to_vec();
        let feats = f.gather(&inputs);
        let x = Matrix::from_flat(feats.num_rows(), feats.dim(), feats.as_slice().to_vec());
        let model = GnnModel::new(kind, 6, 8, 3, 2, &mut rng);
        let logits = model.predict(x, &sample);
        prop_assert_eq!(logits.rows(), uniq.len());
        prop_assert_eq!(logits.cols(), 3);
        // Finite outputs.
        prop_assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn auc_is_invariant_to_monotone_score_transforms(
        raw in proptest::collection::vec((-5.0f32..5.0, any::<bool>()), 2..40),
    ) {
        let scores: Vec<f32> = raw.iter().map(|r| r.0).collect();
        let labels: Vec<f32> = raw.iter().map(|r| if r.1 { 1.0 } else { 0.0 }).collect();
        let a1 = auc(&scores, &labels);
        // Apply a strictly increasing transform.
        let transformed: Vec<f32> = scores.iter().map(|&s| 2.0 * s + 1.0).collect();
        let a2 = auc(&transformed, &labels);
        prop_assert!((a1 - a2).abs() < 1e-9, "{a1} vs {a2}");
        prop_assert!((0.0..=1.0).contains(&a1));
    }
}
