//! Property-based tests for the pipeline schedules.

use proptest::prelude::*;

use legion_pipeline::{epoch_time_factored, epoch_time_pipelined, epoch_time_serial, BatchCost};

fn batches_strategy() -> impl Strategy<Value = Vec<BatchCost>> {
    proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..40).prop_map(|v| {
        v.into_iter()
            .map(|(prep, train)| BatchCost { prep, train })
            .collect()
    })
}

proptest! {
    #[test]
    fn pipelined_bounded_by_bottleneck_and_serial(batches in batches_strategy()) {
        let pipe = epoch_time_pipelined(&batches);
        let serial = epoch_time_serial(&batches);
        let prep: f64 = batches.iter().map(|b| b.prep).sum();
        let train: f64 = batches.iter().map(|b| b.train).sum();
        // Can never beat the slower stage's total work...
        prop_assert!(pipe + 1e-9 >= prep.max(train));
        // ...and never exceeds fully serial execution.
        prop_assert!(pipe <= serial + 1e-9);
    }

    #[test]
    fn more_trainers_never_slow_a_factored_epoch(
        batches in batches_strategy(),
        samplers in 1usize..5,
        trainers in 1usize..5,
    ) {
        let t1 = epoch_time_factored(&batches, samplers, trainers);
        let t2 = epoch_time_factored(&batches, samplers, trainers + 1);
        prop_assert!(t2 <= t1 + 1e-9, "{t2} > {t1}");
        let t3 = epoch_time_factored(&batches, samplers + 1, trainers);
        prop_assert!(t3 <= t1 + 1e-9, "{t3} > {t1}");
    }

    #[test]
    fn factored_dominates_its_own_aggregate_work(
        batches in batches_strategy(),
        samplers in 1usize..4,
        trainers in 1usize..4,
    ) {
        let t = epoch_time_factored(&batches, samplers, trainers);
        let prep: f64 = batches.iter().map(|b| b.prep).sum();
        let train: f64 = batches.iter().map(|b| b.train).sum();
        prop_assert!(t + 1e-9 >= (prep / samplers as f64).max(train / trainers as f64));
    }

    #[test]
    fn scaling_all_costs_scales_all_schedules(batches in batches_strategy(), k in 1.0f64..5.0) {
        let scaled: Vec<BatchCost> = batches
            .iter()
            .map(|b| BatchCost { prep: b.prep * k, train: b.train * k })
            .collect();
        let rel = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs() + b.abs());
        prop_assert!(rel(epoch_time_pipelined(&scaled), k * epoch_time_pipelined(&batches)));
        prop_assert!(rel(epoch_time_serial(&scaled), k * epoch_time_serial(&batches)));
        prop_assert!(rel(
            epoch_time_factored(&scaled, 2, 2),
            k * epoch_time_factored(&batches, 2, 2)
        ));
    }
}
