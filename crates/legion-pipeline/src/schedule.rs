//! Epoch-time combinators for the three execution designs the paper
//! compares.

/// One mini-batch's stage durations on one GPU. `prep` is the sampling
//  server's work (sampling + extraction + construction, already
/// intra-batch overlapped); `train` is the backend's forward/backward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchCost {
    /// Sampling-server seconds (data preparation).
    pub prep: f64,
    /// Training-backend seconds.
    pub train: f64,
}

impl BatchCost {
    /// Intra-batch overlap (§5): "graph sampling and graph construction
    /// can be overlapped with feature extraction" — the prep stage is the
    /// max of the two, not their sum.
    pub fn overlapped(sample: f64, extract: f64, train: f64) -> Self {
        Self {
            prep: sample.max(extract),
            train,
        }
    }

    /// No intra-batch overlap: prep is the sum.
    pub fn serial(sample: f64, extract: f64, train: f64) -> Self {
        Self {
            prep: sample + extract,
            train,
        }
    }
}

/// Legion's inter-batch pipeline: "the training of batch `B_i` can be
/// overlapped with the sampling and feature extraction of batch `B_{i+1}`"
/// (§5, Figure 7). Classic two-stage pipeline makespan.
pub fn epoch_time_pipelined(batches: &[BatchCost]) -> f64 {
    if batches.is_empty() {
        return 0.0;
    }
    // Stage-1 (prep) finish time and stage-2 (train) finish time.
    let mut prep_done = 0.0f64;
    let mut train_done = 0.0f64;
    for b in batches {
        prep_done += b.prep;
        train_done = prep_done.max(train_done) + b.train;
    }
    train_done
}

/// Fully serial execution (DGL-style: prepare, then train, per batch).
pub fn epoch_time_serial(batches: &[BatchCost]) -> f64 {
    batches.iter().map(|b| b.prep + b.train).sum()
}

/// GNNLab's factored design: `samplers` GPUs do nothing but prep,
/// `trainers` GPUs do nothing but train, connected by a queue. With
/// balanced queues the epoch time is the bottleneck side's aggregate
/// work (plus one pipeline fill of the first batch's prep).
///
/// # Panics
///
/// Panics if either group is empty while there is work for it.
pub fn epoch_time_factored(batches: &[BatchCost], samplers: usize, trainers: usize) -> f64 {
    if batches.is_empty() {
        return 0.0;
    }
    assert!(samplers > 0, "factored design needs sampling GPUs");
    assert!(trainers > 0, "factored design needs training GPUs");
    let prep_work: f64 = batches.iter().map(|b| b.prep).sum();
    let train_work: f64 = batches.iter().map(|b| b.train).sum();
    let prep_rate = prep_work / samplers as f64;
    let train_rate = train_work / trainers as f64;
    let fill = batches[0].prep;
    fill + prep_rate.max(train_rate)
}

/// Picks the `(samplers, trainers)` split of `total_gpus` minimizing the
/// factored epoch time — the paper's "we adjust the numbers of sampling
/// and training GPUs such that the overall throughput is maximized"
/// (§6.2). Returns `(samplers, trainers, epoch_time)`.
///
/// `batches` must be the per-batch costs of the whole epoch measured on a
/// single GPU pair; the split scales them.
///
/// # Panics
///
/// Panics if `total_gpus < 2`.
pub fn best_factored_split(batches: &[BatchCost], total_gpus: usize) -> (usize, usize, f64) {
    assert!(total_gpus >= 2, "factored design needs at least 2 GPUs");
    (1..total_gpus)
        .map(|s| {
            let t = total_gpus - s;
            (s, t, epoch_time_factored(batches, s, t))
        })
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite times"))
        .expect("at least one split")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, prep: f64, train: f64) -> Vec<BatchCost> {
        vec![BatchCost { prep, train }; n]
    }

    #[test]
    fn pipelined_hides_shorter_stage() {
        // Train-dominated: epoch ~ first prep + n * train.
        let b = uniform(10, 1.0, 3.0);
        let t = epoch_time_pipelined(&b);
        assert!((t - (1.0 + 30.0)).abs() < 1e-9);
        // Prep-dominated: epoch ~ n * prep + last train.
        let b = uniform(10, 3.0, 1.0);
        let t = epoch_time_pipelined(&b);
        assert!((t - (30.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn pipelined_never_beats_bottleneck_or_exceeds_serial() {
        let b = vec![
            BatchCost {
                prep: 2.0,
                train: 1.0,
            },
            BatchCost {
                prep: 0.5,
                train: 4.0,
            },
            BatchCost {
                prep: 3.0,
                train: 0.2,
            },
        ];
        let pipe = epoch_time_pipelined(&b);
        let serial = epoch_time_serial(&b);
        let prep_total: f64 = b.iter().map(|x| x.prep).sum();
        let train_total: f64 = b.iter().map(|x| x.train).sum();
        assert!(pipe <= serial);
        assert!(pipe >= prep_total.max(train_total));
    }

    #[test]
    fn serial_is_plain_sum() {
        let b = uniform(4, 1.5, 2.5);
        assert!((epoch_time_serial(&b) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_epoch_is_free() {
        assert_eq!(epoch_time_pipelined(&[]), 0.0);
        assert_eq!(epoch_time_serial(&[]), 0.0);
        assert_eq!(epoch_time_factored(&[], 1, 1), 0.0);
    }

    #[test]
    fn factored_balances_by_split() {
        // prep-heavy workload: more samplers help.
        let b = uniform(100, 4.0, 1.0);
        let fast = epoch_time_factored(&b, 6, 2);
        let slow = epoch_time_factored(&b, 2, 6);
        assert!(fast < slow);
    }

    #[test]
    fn best_split_beats_fixed_splits() {
        let b = uniform(50, 2.0, 3.0);
        let (s, t, best) = best_factored_split(&b, 8);
        assert_eq!(s + t, 8);
        for s2 in 1..8 {
            let other = epoch_time_factored(&b, s2, 8 - s2);
            assert!(best <= other + 1e-9);
        }
    }

    #[test]
    fn overlapped_batchcost_takes_max() {
        let b = BatchCost::overlapped(2.0, 5.0, 1.0);
        assert_eq!(b.prep, 5.0);
        let s = BatchCost::serial(2.0, 5.0, 1.0);
        assert_eq!(s.prep, 7.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 GPUs")]
    fn best_split_needs_two_gpus() {
        let _ = best_factored_split(&uniform(1, 1.0, 1.0), 1);
    }
}
