//! Stage-duration model: traffic and FLOPs to seconds.
//!
//! PCIe time is charged per PCM *transaction* (one transferred cache line
//! of `CLS` bytes): a fine-grained 4-byte sampling read occupies a full
//! line just like a chunk of a feature row does, so bus time is
//! proportional to the transaction count. This is exactly why the paper
//! can use the transaction count `N_total` as the proxy for execution
//! time (§4.3.1) — and why sampling over UVA is so expensive: it moves
//! one line per 4 useful bytes, a 16x inflation that reproduces the
//! throughput gap of Figure 4a.
//!
//! PCIe host links are shared per switch, so concurrent GPUs divide the
//! link; NVLink transfers and GPU kernels are charged separately.

use legion_hw::{PcieModel, ServerSpec};

/// Converts per-batch resource usage into stage durations.
#[derive(Debug, Clone)]
pub struct TimeModel {
    pcie: PcieModel,
    /// GPUs sharing one PCIe host link.
    gpus_per_switch: f64,
    /// Fraction of peak bandwidth achievable for random line-granular
    /// reads (request/completion overheads).
    random_read_efficiency: f64,
    /// NVLink per-direction bandwidth, bytes/s.
    nvlink_bandwidth: f64,
    /// Per-GPU fp32 throughput, FLOP/s.
    gpu_flops: f64,
    /// GPU-side sampling throughput, edges/s (kernel cost when data is
    /// already resident).
    gpu_sample_edges_per_sec: f64,
    /// CPU-side sampling throughput, edges/s across the worker pool
    /// (PaGraph's CPU sampling path).
    cpu_sample_edges_per_sec: f64,
}

impl TimeModel {
    /// Builds the model from a server spec.
    pub fn new(spec: &ServerSpec) -> Self {
        Self {
            pcie: PcieModel::new(spec.pcie),
            gpus_per_switch: (spec.num_gpus as f64 / spec.pcie_switches as f64).max(1.0),
            random_read_efficiency: 0.6,
            nvlink_bandwidth: spec.nvlink.link_bandwidth(),
            gpu_flops: spec.gpu_flops,
            gpu_sample_edges_per_sec: 2.0e9,
            cpu_sample_edges_per_sec: 2.0e7,
        }
    }

    /// The underlying PCIe model.
    pub fn pcie(&self) -> &PcieModel {
        &self.pcie
    }

    /// Seconds consumed on the (shared) PCIe link by one PCM transaction.
    pub fn seconds_per_transaction(&self) -> f64 {
        let effective =
            self.pcie.peak_bandwidth() * self.random_read_efficiency / self.gpus_per_switch;
        self.pcie.cls() as f64 / effective
    }

    /// Seconds for the neighbor-sampling stage of one batch on one GPU.
    ///
    /// * `cpu_transactions` — PCM transactions issued for topology over
    ///   UVA (0 when the topology is GPU-resident or cached),
    /// * `edges_sampled` — total edges traversed (GPU kernel work).
    pub fn sample_seconds(&self, cpu_transactions: u64, edges_sampled: u64) -> f64 {
        cpu_transactions as f64 * self.seconds_per_transaction()
            + edges_sampled as f64 / self.gpu_sample_edges_per_sec
    }

    /// Seconds for CPU-based sampling of `edges_sampled` edges (PaGraph).
    pub fn cpu_sample_seconds(&self, edges_sampled: u64) -> f64 {
        edges_sampled as f64 / self.cpu_sample_edges_per_sec
    }

    /// Seconds for the feature-extraction stage.
    ///
    /// * `cpu_transactions` — PCM transactions for feature rows over PCIe,
    /// * `peer_bytes` — feature bytes served by NVLink peers.
    pub fn extract_seconds(&self, cpu_transactions: u64, peer_bytes: u64) -> f64 {
        cpu_transactions as f64 * self.seconds_per_transaction()
            + peer_bytes as f64 / self.nvlink_bandwidth
    }

    /// Seconds for the model-training stage of one batch.
    pub fn train_seconds(&self, flops: f64) -> f64 {
        flops / self.gpu_flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_hw::ServerSpec;

    fn model() -> TimeModel {
        TimeModel::new(&ServerSpec::dgx_v100())
    }

    #[test]
    fn sampling_wastes_lines_vs_extraction() {
        let m = model();
        // Moving 1 MB of useful edge data as 4-byte reads costs one line
        // per edge: 262144 transactions. The same MB as feature rows
        // costs 16384 transactions — 16x less bus time.
        let sample_t = m.sample_seconds(262_144, 0);
        let extract_t = m.extract_seconds(16_384, 0);
        assert!((sample_t / extract_t - 16.0).abs() < 1e-6);
    }

    #[test]
    fn time_is_proportional_to_transactions() {
        // This proportionality is what makes the paper's N_total a valid
        // proxy for execution time (§4.3.1, Figure 13).
        let m = model();
        let t1 = m.extract_seconds(1000, 0);
        let t2 = m.extract_seconds(3000, 0);
        assert!((t2 / t1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_traffic_costs_only_kernel_time() {
        let m = model();
        assert_eq!(m.sample_seconds(0, 0), 0.0);
        assert!(m.sample_seconds(0, 1_000_000) > 0.0);
        assert_eq!(m.extract_seconds(0, 0), 0.0);
    }

    #[test]
    fn nvlink_is_much_faster_than_pcie() {
        let m = model();
        // 16 MiB over PCIe lines vs. the same bytes over NVLink.
        let over_pcie = m.extract_seconds((16 << 20) / 64, 0);
        let over_nvlink = m.extract_seconds(0, 16 << 20);
        assert!(over_nvlink < over_pcie / 5.0);
    }

    #[test]
    fn cpu_sampling_is_slower_than_gpu_sampling() {
        let m = model();
        assert!(m.cpu_sample_seconds(1_000_000) > 10.0 * m.sample_seconds(0, 1_000_000));
    }

    #[test]
    fn train_time_scales_with_flops() {
        let m = model();
        assert!((m.train_seconds(2.0e12) / m.train_seconds(1.0e12) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn contention_divides_bandwidth() {
        // DGX-V100 has 2 GPUs per switch; a hypothetical 1-GPU-per-switch
        // server sees faster per-transaction time.
        let shared = TimeModel::new(&ServerSpec::dgx_v100());
        let mut solo_spec = ServerSpec::dgx_v100();
        solo_spec.pcie_switches = 8;
        let solo = TimeModel::new(&solo_spec);
        assert!(solo.seconds_per_transaction() < shared.seconds_per_transaction());
    }
}
