//! Per-GPU stage-time telemetry.
//!
//! The pipeline operates on simulated stage durations (seconds from
//! [`crate::TimeModel`]), so stage accounting is recorded explicitly
//! rather than with wall-clock timers: [`StageRecorder`] accumulates each
//! stage's simulated time into integer-nanosecond counters
//! (`stage.gpu{g}.sample_ns`, `stage.gpu{g}.extract_ns`,
//! `stage.gpu{g}.train_ns`). Integer adds commute, so per-GPU totals are
//! identical whether batches run sequentially or on parallel workers.

use legion_hw::GpuId;
use legion_telemetry::{Counter, Histogram, Registry};

/// Accumulates one GPU's simulated stage times into registry counters.
#[derive(Debug, Clone)]
pub struct StageRecorder {
    sample_ns: Counter,
    extract_ns: Counter,
    train_ns: Counter,
}

impl StageRecorder {
    /// Binds the `stage.gpu{gpu}.*_ns` counters in `registry`.
    pub fn for_gpu(registry: &Registry, gpu: GpuId) -> Self {
        Self {
            sample_ns: registry.counter(&format!("stage.gpu{gpu}.sample_ns")),
            extract_ns: registry.counter(&format!("stage.gpu{gpu}.extract_ns")),
            train_ns: registry.counter(&format!("stage.gpu{gpu}.train_ns")),
        }
    }

    /// Records one batch's stage durations (simulated seconds).
    pub fn record(&self, sample_secs: f64, extract_secs: f64, train_secs: f64) {
        self.sample_ns.add_secs(sample_secs);
        self.extract_ns.add_secs(extract_secs);
        self.train_ns.add_secs(train_secs);
    }

    /// Accumulated sampling time in seconds.
    pub fn sample_secs(&self) -> f64 {
        self.sample_ns.get_secs()
    }

    /// Accumulated extraction time in seconds.
    pub fn extract_secs(&self) -> f64 {
        self.extract_ns.get_secs()
    }

    /// Accumulated training time in seconds.
    pub fn train_secs(&self) -> f64 {
        self.train_ns.get_secs()
    }
}

/// Samples one GPU's admission-queue depth at each batch launch into a
/// power-of-two-bucketed histogram (`pipeline.gpu{g}.queue_depth`).
///
/// Queue depth at launch is the pipeline's backpressure signal: a depth
/// stuck near the queue capacity means the serving front end is routing
/// more work to this GPU than its sample→extract→infer pipeline drains.
#[derive(Debug, Clone)]
pub struct QueueDepthMeter {
    depth: Histogram,
}

impl QueueDepthMeter {
    /// Bucket upper bounds 1, 2, 4, … 4096 (depths beyond the last
    /// bound land in the implicit overflow bucket).
    fn bounds() -> Vec<u64> {
        (0..13).map(|i| 1u64 << i).collect()
    }

    /// Binds the `pipeline.gpu{gpu}.queue_depth` histogram in
    /// `registry`.
    pub fn for_gpu(registry: &Registry, gpu: GpuId) -> Self {
        Self {
            depth: registry.histogram(&format!("pipeline.gpu{gpu}.queue_depth"), &Self::bounds()),
        }
    }

    /// Records the queue depth observed at one batch launch.
    pub fn observe(&self, depth: usize) {
        self.depth.observe(depth as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_stage() {
        let reg = Registry::new();
        let rec = StageRecorder::for_gpu(&reg, 3);
        rec.record(0.5, 0.25, 1.0);
        rec.record(0.5, 0.25, 1.0);
        assert!((rec.sample_secs() - 1.0).abs() < 1e-9);
        assert!((rec.extract_secs() - 0.5).abs() < 1e-9);
        assert!((rec.train_secs() - 2.0).abs() < 1e-9);
        assert_eq!(reg.counter_value("stage.gpu3.train_ns"), 2_000_000_000);
    }

    #[test]
    fn same_registry_shares_counters() {
        let reg = Registry::new();
        let a = StageRecorder::for_gpu(&reg, 0);
        let b = StageRecorder::for_gpu(&reg, 0);
        a.record(1.0, 0.0, 0.0);
        b.record(1.0, 0.0, 0.0);
        assert!((a.sample_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn queue_depth_meter_buckets_observations() {
        let reg = Registry::new();
        let m = QueueDepthMeter::for_gpu(&reg, 1);
        m.observe(0);
        m.observe(3);
        m.observe(5000);
        let snap = reg.snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "pipeline.gpu1.queue_depth")
            .expect("histogram registered");
        assert_eq!(h.counts.iter().sum::<u64>(), 3);
    }
}
