//! The fine-grained GNN training pipeline (§5, Figure 7) as a
//! discrete-event time model.
//!
//! Legion overlaps, per GPU, the sampling server's work (batch generation,
//! neighbor sampling, feature extraction, subgraph construction) with the
//! training backend's work (forward/backward) across consecutive batches.
//! On the simulator, each batch's stage *durations* are derived from the
//! metered traffic (bytes / payload-dependent effective bandwidth) and a
//! FLOP count (FLOPs / device throughput); the schedules in [`schedule`]
//! then combine them exactly as the paper's inter-batch/intra-batch
//! pipeline, a serial baseline (DGL), or GNNLab's factored design would.
//!
//! * [`time_model::TimeModel`] — stage durations from traffic and FLOPs,
//! * [`schedule`] — pipelined / serial / factored epoch-time combinators.
//!
//! # Examples
//!
//! ```
//! use legion_pipeline::{epoch_time_pipelined, epoch_time_serial, BatchCost};
//!
//! // Four batches where preparation and training each take 1s.
//! let batches = vec![BatchCost { prep: 1.0, train: 1.0 }; 4];
//! // Serial: 8s. Pipelined: the train of batch i overlaps the prep of
//! // batch i+1, so only the first prep is exposed: 5s.
//! assert_eq!(epoch_time_serial(&batches), 8.0);
//! assert_eq!(epoch_time_pipelined(&batches), 5.0);
//! ```

pub mod schedule;
pub mod stage;
pub mod time_model;

pub use schedule::{epoch_time_factored, epoch_time_pipelined, epoch_time_serial, BatchCost};
pub use stage::{QueueDepthMeter, StageRecorder};
pub use time_model::TimeModel;
