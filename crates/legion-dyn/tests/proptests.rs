//! Property-based tests for the delta-CSR overlay.
//!
//! The contract under test: for *arbitrary* interleavings of edge
//! inserts, deletes, and vertex churns — including duplicates and
//! no-ops — the overlay's merged adjacency equals the adjacency of a
//! CSR rebuilt from scratch by replaying the same ops onto a plain
//! edge set, and compaction never changes the merged view.

use std::collections::BTreeSet;

use proptest::prelude::*;

use legion_dyn::{DeltaOverlay, MutationOp};
use legion_graph::builder::from_edges;
use legion_graph::{CsrGraph, VertexId};

/// Arbitrary base graph + mutation interleaving over `n` vertices.
fn scenario(
    max_n: usize,
    max_edges: usize,
    max_ops: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32)>, Vec<MutationOp>)> {
    (4usize..max_n).prop_flat_map(move |n| {
        let edge = (0..n as u32, 0..n as u32);
        let op = (0u8..=2, 0..n as u32, 0..n as u32).prop_map(|(kind, a, b)| match kind {
            0 => MutationOp::InsertEdge { src: a, dst: b },
            1 => MutationOp::DeleteEdge { src: a, dst: b },
            _ => MutationOp::ChurnVertex { v: a },
        });
        (
            Just(n),
            proptest::collection::vec(edge, 0..max_edges),
            proptest::collection::vec(op, 0..max_ops),
        )
    })
}

/// Reference model: replay ops onto a plain set of directed edges.
fn reference_adjacency(n: usize, graph: &CsrGraph, ops: &[MutationOp]) -> Vec<BTreeSet<VertexId>> {
    let mut adj: Vec<BTreeSet<VertexId>> = (0..n as VertexId)
        .map(|v| graph.neighbors(v).iter().copied().collect())
        .collect();
    for op in ops {
        match *op {
            MutationOp::InsertEdge { src, dst } => {
                adj[src as usize].insert(dst);
            }
            MutationOp::DeleteEdge { src, dst } => {
                adj[src as usize].remove(&dst);
            }
            MutationOp::ChurnVertex { v } => {
                adj[v as usize].clear();
            }
        }
    }
    adj
}

fn sorted_merge(ov: &DeltaOverlay, g: &CsrGraph, v: VertexId) -> Vec<VertexId> {
    let mut buf = Vec::new();
    ov.merge_into(g, v, &mut buf);
    buf.sort_unstable();
    buf
}

proptest! {
    /// Merged adjacency == from-scratch rebuild, for every vertex.
    #[test]
    fn overlay_matches_reference_model((n, edges, ops) in scenario(24, 96, 64)) {
        let g = from_edges(n, &edges);
        let ov = DeltaOverlay::new(n);
        for op in &ops {
            ov.apply(&g, op);
        }
        let reference = reference_adjacency(n, &g, &ops);
        let rebuilt = ov.rebuild_csr(&g);
        for v in 0..n as VertexId {
            let merged = sorted_merge(&ov, &g, v);
            let expect: Vec<VertexId> = reference[v as usize].iter().copied().collect();
            prop_assert_eq!(&merged, &expect, "merged view diverged at v={}", v);
            prop_assert_eq!(rebuilt.neighbors(v), &expect[..], "rebuild diverged at v={}", v);
            // Merged view has no duplicates.
            let mut dedup = merged.clone();
            dedup.dedup();
            prop_assert_eq!(merged, dedup);
        }
    }

    /// Compaction is a representation change only: the merged view and
    /// the rebuilt CSR are identical before and after, and pending
    /// deltas drop to zero.
    #[test]
    fn compaction_is_noop_on_merged_view((n, edges, ops) in scenario(24, 96, 64)) {
        let g = from_edges(n, &edges);
        let ov = DeltaOverlay::new(n);
        for op in &ops {
            ov.apply(&g, op);
        }
        let before = ov.rebuild_csr(&g);
        ov.compact(&g);
        prop_assert_eq!(ov.pending_delta_edges(), 0);
        let after = ov.rebuild_csr(&g);
        prop_assert_eq!(&before, &after);
        for v in 0..n as VertexId {
            prop_assert_eq!(sorted_merge(&ov, &g, v), before.neighbors(v).to_vec());
        }
    }

    /// Interleaving compactions *between* ops never changes the final
    /// merged view relative to applying all ops with no compaction.
    #[test]
    fn interleaved_compaction_is_transparent((n, edges, ops) in scenario(16, 64, 48)) {
        let g = from_edges(n, &edges);
        let plain = DeltaOverlay::new(n);
        let compacting = DeltaOverlay::new(n);
        for (i, op) in ops.iter().enumerate() {
            plain.apply(&g, op);
            compacting.apply(&g, op);
            if i % 5 == 4 {
                compacting.compact(&g);
            }
        }
        prop_assert_eq!(plain.rebuild_csr(&g), compacting.rebuild_csr(&g));
    }

    /// Effect accounting: an overlay sees net edge count =
    /// base + inserted - deleted, matching the rebuilt CSR exactly.
    #[test]
    fn effects_account_for_edge_count((n, edges, ops) in scenario(16, 64, 48)) {
        let g = from_edges(n, &edges);
        let ov = DeltaOverlay::new(n);
        let mut inserted = 0u64;
        let mut deleted = 0u64;
        for op in &ops {
            let e = ov.apply(&g, op);
            inserted += e.inserted;
            deleted += e.deleted;
        }
        let rebuilt = ov.rebuild_csr(&g);
        prop_assert_eq!(
            rebuilt.num_edges() as i64,
            g.num_edges() as i64 + inserted as i64 - deleted as i64
        );
    }
}
