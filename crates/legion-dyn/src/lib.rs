//! Streaming graph mutations for the Legion reproduction.
//!
//! Every workload in the rest of the workspace runs on a frozen
//! [`CsrGraph`]. Production follow/interaction graphs churn while
//! traffic flows, and Legion's envelope (hotness-ordered cache plans,
//! LDG ownership, residency routing) is computed against a static
//! topology. This crate adds the dynamic tier:
//!
//! * [`MutationLog`] — a deterministic, seedable stream of edge
//!   inserts/deletes with power-law-biased endpoints plus whole-vertex
//!   churn, generated at a configurable rate ([`ChurnConfig`]) and
//!   serializable for byte-identical replay;
//! * [`DeltaOverlay`] — an incremental delta-CSR layered over the
//!   frozen base graph: per-vertex insert lists and delete tombstones,
//!   merged at sample time behind the existing neighbor-access API,
//!   with a budgeted [`DeltaOverlay::compact`] that folds deltas into
//!   contiguous rows at batch boundaries;
//! * [`MutationSource`] — the serving-facing knob (`Generate` fresh
//!   churn from a seed, or `Replay` a logged stream).
//!
//! The overlay is deliberately graph-agnostic: it holds no reference to
//! the base graph, so callers pass it at merge/apply time and the
//! overlay can outlive borrows of the engine that reads it. Clean
//! vertices (dirty bit unset) never take the lock — the fast path is a
//! single relaxed atomic load, and the base CSR slice is served
//! zero-copy exactly as before.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use legion_graph::csr::CsrGraph;
use legion_graph::generate::Zipf;
use legion_graph::VertexId;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// XOR salt so the mutation stream is independent of the workload RNG
/// streams derived from the same `ServeConfig::seed`.
const MUTATION_STREAM_SALT: u64 = 0xd9a7_51f3_8c2e_b645;

/// Bounded retries when the sampled endpoints make an op a no-op
/// (duplicate insert, delete of an absent edge, churn of an isolated
/// vertex). Deterministic: on exhaustion the tick emits nothing.
const ENDPOINT_RETRIES: usize = 8;

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Knobs for the synthetic churn generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Mutation arrival rate (Poisson, ops per simulated second).
    pub ops_per_sec: f64,
    /// Fraction of ops that are edge inserts.
    pub insert_frac: f64,
    /// Fraction of ops that churn a whole vertex (drop all its edges).
    /// The remainder (`1 - insert_frac - churn_frac`) are edge deletes.
    pub churn_frac: f64,
    /// Zipf exponent over degree-ranked vertices for endpoint choice —
    /// high-degree (hot) vertices mutate more, mirroring follow-graph
    /// churn concentrating on popular accounts.
    pub endpoint_exponent: f64,
    /// Pending delta edges (insert list + tombstone entries) that
    /// trigger a batch-boundary compaction. `0` disables compaction.
    pub compact_threshold: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            ops_per_sec: 10_000.0,
            insert_frac: 0.6,
            churn_frac: 0.05,
            endpoint_exponent: 0.8,
            compact_threshold: 4096,
        }
    }
}

impl ChurnConfig {
    /// Validates rate and fraction ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.ops_per_sec.is_finite() && self.ops_per_sec > 0.0) {
            return Err(format!(
                "ops_per_sec must be positive: {}",
                self.ops_per_sec
            ));
        }
        for (name, f) in [
            ("insert_frac", self.insert_frac),
            ("churn_frac", self.churn_frac),
        ] {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("{name} must be in [0, 1]: {f}"));
            }
        }
        if self.insert_frac + self.churn_frac > 1.0 {
            return Err(format!(
                "insert_frac + churn_frac must not exceed 1: {} + {}",
                self.insert_frac, self.churn_frac
            ));
        }
        if !(self.endpoint_exponent.is_finite() && self.endpoint_exponent >= 0.0) {
            return Err(format!(
                "endpoint_exponent must be non-negative: {}",
                self.endpoint_exponent
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Mutation stream
// ---------------------------------------------------------------------

/// One topology mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationOp {
    /// Add directed edge `src -> dst` (no-op if already present).
    InsertEdge {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
    },
    /// Remove directed edge `src -> dst` (no-op if absent).
    DeleteEdge {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
    },
    /// Drop every out-edge of `v` (account deletion / re-keying).
    ChurnVertex {
        /// The churned vertex.
        v: VertexId,
    },
}

// The vendored serde_derive does not handle enums, so the op tags are
// written by hand against the `Value` data model.
impl Serialize for MutationOp {
    fn serialize(&self) -> serde::Value {
        let (kind, a, b) = match *self {
            MutationOp::InsertEdge { src, dst } => ("insert", src, dst),
            MutationOp::DeleteEdge { src, dst } => ("delete", src, dst),
            MutationOp::ChurnVertex { v } => ("churn", v, 0),
        };
        serde::Value::Object(vec![
            ("kind".to_string(), kind.serialize()),
            ("a".to_string(), a.serialize()),
            ("b".to_string(), b.serialize()),
        ])
    }
}

impl Deserialize for MutationOp {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| serde::Error::custom(format!("MutationOp missing `{key}`")))
        };
        let kind = match field("kind")? {
            serde::Value::Str(s) => s.clone(),
            other => return Err(serde::Error::custom(format!("bad op kind: {other:?}"))),
        };
        let a = u32::deserialize(field("a")?)?;
        let b = u32::deserialize(field("b")?)?;
        match kind.as_str() {
            "insert" => Ok(MutationOp::InsertEdge { src: a, dst: b }),
            "delete" => Ok(MutationOp::DeleteEdge { src: a, dst: b }),
            "churn" => Ok(MutationOp::ChurnVertex { v: a }),
            other => Err(serde::Error::custom(format!("unknown op kind `{other}`"))),
        }
    }
}

/// A mutation stamped with its simulated arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mutation {
    /// Arrival time in simulated seconds from run start.
    pub at: f64,
    /// The operation.
    pub op: MutationOp,
}

/// An ordered, replayable stream of mutations.
///
/// Serializes through `serde_json` losslessly (`f64` timestamps
/// round-trip exactly under the shortest-representation printer), so a
/// logged stream replays byte-identically.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MutationLog {
    /// Mutations in non-decreasing `at` order.
    pub ops: Vec<Mutation>,
}

impl MutationLog {
    /// Number of mutations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Generates a churn stream against `graph` for `horizon_s`
    /// simulated seconds.
    ///
    /// Deterministic in `(graph, cfg, seed, horizon_s)`: inter-arrivals
    /// are exponential at `cfg.ops_per_sec`, endpoints are Zipf over
    /// the degree-ranked vertex list, and every emitted op is valid
    /// against the stream-so-far (deletes hit existing edges, inserts
    /// are not duplicates, churn targets non-isolated vertices) —
    /// validity is tracked with a scratch [`DeltaOverlay`].
    ///
    /// # Panics
    ///
    /// Panics when `cfg` fails [`ChurnConfig::validate`], the graph is
    /// empty, or `horizon_s` is not finite.
    pub fn generate(graph: &CsrGraph, cfg: &ChurnConfig, seed: u64, horizon_s: f64) -> Self {
        cfg.validate().expect("invalid ChurnConfig");
        assert!(horizon_s.is_finite(), "horizon must be finite");
        let n = graph.num_vertices();
        assert!(n > 0, "cannot churn an empty graph");
        let mut rng = StdRng::seed_from_u64(seed ^ MUTATION_STREAM_SALT);

        // Degree-ranked endpoint table: rank 0 = hottest vertex.
        let mut rank: Vec<VertexId> = (0..n as VertexId).collect();
        rank.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
        let zipf = Zipf::new(n, cfg.endpoint_exponent);

        let scratch = DeltaOverlay::new(n);
        let mut row_buf = Vec::new();
        let mut ops = Vec::new();
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / cfg.ops_per_sec;
            if t >= horizon_s {
                break;
            }
            let kind: f64 = rng.gen();
            let op = if kind < cfg.insert_frac {
                (0..ENDPOINT_RETRIES).find_map(|_| {
                    let src = rank[zipf.sample(&mut rng)];
                    let dst = rank[zipf.sample(&mut rng)];
                    (src != dst && !scratch.edge_present(graph, src, dst))
                        .then_some(MutationOp::InsertEdge { src, dst })
                })
            } else if kind < cfg.insert_frac + cfg.churn_frac {
                (0..ENDPOINT_RETRIES).find_map(|_| {
                    let v = rank[zipf.sample(&mut rng)];
                    (scratch.merged_degree(graph, v) > 0).then_some(MutationOp::ChurnVertex { v })
                })
            } else {
                (0..ENDPOINT_RETRIES).find_map(|_| {
                    let src = rank[zipf.sample(&mut rng)];
                    let deg = scratch.merged_degree(graph, src);
                    if deg == 0 {
                        return None;
                    }
                    scratch.merge_into(graph, src, &mut row_buf);
                    let dst = row_buf[rng.gen_range(0..deg)];
                    Some(MutationOp::DeleteEdge { src, dst })
                })
            };
            if let Some(op) = op {
                scratch.apply(graph, &op);
                ops.push(Mutation { at: t, op });
            }
        }
        Self { ops }
    }
}

/// Where the serving engine gets its mutation stream.
#[derive(Debug, Clone)]
pub enum MutationSource {
    /// Synthesize a fresh stream from the run seed at serve time.
    Generate(ChurnConfig),
    /// Replay a previously logged stream.
    Replay {
        /// The logged stream (shared so a fleet can replay one global
        /// stream across servers without cloning).
        log: Arc<MutationLog>,
        /// Pending-delta-edge threshold for batch-boundary compaction
        /// (`0` disables), mirroring [`ChurnConfig::compact_threshold`]
        /// so `Generate` and `Replay` of the same stream stay
        /// byte-identical.
        compact_threshold: usize,
    },
}

impl MutationSource {
    /// Validates the embedded config (replay logs are always valid).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            MutationSource::Generate(cfg) => cfg.validate(),
            MutationSource::Replay { .. } => Ok(()),
        }
    }

    /// Resolves to a concrete `(log, compact_threshold)` pair,
    /// generating the stream over `[0, horizon_s)` when needed.
    pub fn resolve(
        &self,
        graph: &CsrGraph,
        seed: u64,
        horizon_s: f64,
    ) -> (Arc<MutationLog>, usize) {
        match self {
            MutationSource::Generate(cfg) => (
                Arc::new(MutationLog::generate(graph, cfg, seed, horizon_s)),
                cfg.compact_threshold,
            ),
            MutationSource::Replay {
                log,
                compact_threshold,
            } => (Arc::clone(log), *compact_threshold),
        }
    }
}

// ---------------------------------------------------------------------
// Delta-CSR overlay
// ---------------------------------------------------------------------

/// What an applied mutation actually changed (no-ops report zeros).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyEffect {
    /// Edges added (0 or 1).
    pub inserted: u64,
    /// Edges removed (1 for a delete, the merged degree for a churn).
    pub deleted: u64,
    /// 1 when this mutation dirtied a previously clean row.
    pub newly_dirty: u64,
}

impl ApplyEffect {
    /// Whether the mutation changed anything.
    pub fn changed(&self) -> bool {
        self.inserted + self.deleted > 0
    }
}

/// Per-vertex delta against the base adjacency.
#[derive(Debug, Default, Clone)]
struct DeltaRow {
    /// Edges added beyond the effective base row, in application order.
    inserts: Vec<VertexId>,
    /// Tombstones against the effective base row.
    deletes: Vec<VertexId>,
    /// Folded row from the last compaction (or vertex churn), which
    /// supersedes the base CSR slice as the effective base.
    compacted: Option<Vec<VertexId>>,
}

impl DeltaRow {
    /// Entries counted against the compaction budget.
    fn pending(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// The effective base adjacency this row's deltas apply to.
    fn base<'a>(&'a self, graph: &'a CsrGraph, v: VertexId) -> &'a [VertexId] {
        self.compacted
            .as_deref()
            .unwrap_or_else(|| graph.neighbors(v))
    }

    /// Merged adjacency: effective base minus tombstones, inserts
    /// appended in application order.
    fn merge_into(&self, graph: &CsrGraph, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        let base = self.base(graph, v);
        if self.deletes.is_empty() {
            out.extend_from_slice(base);
        } else {
            out.extend(base.iter().copied().filter(|d| !self.deletes.contains(d)));
        }
        out.extend_from_slice(&self.inserts);
    }

    fn merged_len(&self, graph: &CsrGraph, v: VertexId) -> usize {
        self.base(graph, v).len() - self.deletes.len() + self.inserts.len()
    }
}

#[derive(Debug, Default)]
struct OverlayInner {
    rows: HashMap<VertexId, DeltaRow>,
    /// Sum of `DeltaRow::pending` across rows — the compaction trigger.
    pending_delta_edges: usize,
}

/// Incremental delta-CSR over a frozen base graph.
///
/// Interior-mutable and `Sync`: readers check a lock-free dirty bitset
/// first, so vertices that never mutated cost one relaxed atomic load
/// and are then served straight from the base CSR slice. Dirty rows
/// take a read lock and merge (effective base minus tombstones, plus
/// inserts) into a caller-provided buffer.
///
/// Dirty bits are sticky: once a row has mutated, readers must keep
/// treating cached copies of it as stale even after compaction,
/// because the unified cache holds materialized topology rows that are
/// never rewritten in place.
#[derive(Debug)]
pub struct DeltaOverlay {
    /// One bit per vertex, set on first effective mutation.
    dirty: Vec<AtomicU64>,
    dirty_rows: AtomicUsize,
    compactions: AtomicU64,
    num_vertices: usize,
    inner: RwLock<OverlayInner>,
}

impl DeltaOverlay {
    /// An empty overlay for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            dirty: (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            dirty_rows: AtomicUsize::new(0),
            compactions: AtomicU64::new(0),
            num_vertices: n,
            inner: RwLock::new(OverlayInner::default()),
        }
    }

    /// Vertex-count this overlay was sized for.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Whether `v` has ever been mutated (lock-free fast path).
    #[inline]
    pub fn is_dirty(&self, v: VertexId) -> bool {
        let v = v as usize;
        debug_assert!(v < self.num_vertices);
        self.dirty[v / 64].load(Ordering::Relaxed) & (1u64 << (v % 64)) != 0
    }

    fn mark_dirty(&self, v: VertexId) -> bool {
        let v = v as usize;
        let prev = self.dirty[v / 64].fetch_or(1u64 << (v % 64), Ordering::Relaxed);
        let newly = prev & (1u64 << (v % 64)) == 0;
        if newly {
            self.dirty_rows.fetch_add(1, Ordering::Relaxed);
        }
        newly
    }

    /// Rows ever dirtied.
    pub fn dirty_rows(&self) -> usize {
        self.dirty_rows.load(Ordering::Relaxed)
    }

    /// Compactions performed.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Un-compacted delta entries (insert-list + tombstone entries).
    pub fn pending_delta_edges(&self) -> usize {
        self.inner.read().pending_delta_edges
    }

    /// Applies one mutation and reports what changed.
    ///
    /// No-ops (duplicate insert, delete of an absent edge, churn of an
    /// already-empty row) leave the overlay — and the dirty bitset —
    /// untouched.
    pub fn apply(&self, graph: &CsrGraph, op: &MutationOp) -> ApplyEffect {
        let mut inner = self.inner.write();
        let mut effect = ApplyEffect::default();
        let touched = match *op {
            MutationOp::InsertEdge { src, dst } => {
                let row = inner.rows.entry(src).or_default();
                if let Some(i) = row.deletes.iter().position(|&d| d == dst) {
                    // Re-insert after delete: drop the tombstone.
                    row.deletes.swap_remove(i);
                    inner.pending_delta_edges -= 1;
                    effect.inserted = 1;
                } else if row.base(graph, src).contains(&dst) || row.inserts.contains(&dst) {
                    // Already present.
                } else {
                    row.inserts.push(dst);
                    inner.pending_delta_edges += 1;
                    effect.inserted = 1;
                }
                src
            }
            MutationOp::DeleteEdge { src, dst } => {
                let row = inner.rows.entry(src).or_default();
                if let Some(i) = row.inserts.iter().position(|&d| d == dst) {
                    // Deleting an overlay insert cancels it.
                    row.inserts.swap_remove(i);
                    inner.pending_delta_edges -= 1;
                    effect.deleted = 1;
                } else if row.base(graph, src).contains(&dst) && !row.deletes.contains(&dst) {
                    row.deletes.push(dst);
                    inner.pending_delta_edges += 1;
                    effect.deleted = 1;
                }
                src
            }
            MutationOp::ChurnVertex { v } => {
                let row = inner.rows.entry(v).or_default();
                effect.deleted = row.merged_len(graph, v) as u64;
                let pending = row.pending();
                // The churned row's effective base becomes empty.
                *row = DeltaRow {
                    compacted: Some(Vec::new()),
                    ..DeltaRow::default()
                };
                inner.pending_delta_edges -= pending;
                v
            }
        };
        if effect.changed() && self.mark_dirty(touched) {
            effect.newly_dirty = 1;
        }
        effect
    }

    /// Whether edge `src -> dst` exists in the merged view.
    pub fn edge_present(&self, graph: &CsrGraph, src: VertexId, dst: VertexId) -> bool {
        if !self.is_dirty(src) {
            return graph.neighbors(src).contains(&dst);
        }
        let inner = self.inner.read();
        match inner.rows.get(&src) {
            Some(row) => {
                row.inserts.contains(&dst)
                    || (row.base(graph, src).contains(&dst) && !row.deletes.contains(&dst))
            }
            None => graph.neighbors(src).contains(&dst),
        }
    }

    /// Merged out-degree of `v`.
    pub fn merged_degree(&self, graph: &CsrGraph, v: VertexId) -> usize {
        if !self.is_dirty(v) {
            return graph.degree(v) as usize;
        }
        let inner = self.inner.read();
        match inner.rows.get(&v) {
            Some(row) => row.merged_len(graph, v),
            None => graph.degree(v) as usize,
        }
    }

    /// Fills `out` with the merged adjacency of `v` (clears it first).
    ///
    /// Order: effective base order with tombstoned entries dropped,
    /// then overlay inserts in application order. Clean vertices copy
    /// the base slice — callers on the hot path should check
    /// [`Self::is_dirty`] first and keep clean rows zero-copy.
    pub fn merge_into(&self, graph: &CsrGraph, v: VertexId, out: &mut Vec<VertexId>) {
        if !self.is_dirty(v) {
            out.clear();
            out.extend_from_slice(graph.neighbors(v));
            return;
        }
        let inner = self.inner.read();
        match inner.rows.get(&v) {
            Some(row) => row.merge_into(graph, v, out),
            None => {
                out.clear();
                out.extend_from_slice(graph.neighbors(v));
            }
        }
    }

    /// Folds every row with pending deltas into a contiguous
    /// `compacted` vector (the merged view), clearing its insert list
    /// and tombstones. Returns the number of rows folded; rows without
    /// pending deltas are untouched and clean rows stay zero-copy on
    /// the base CSR. A fold changes nothing about the merged view —
    /// only the representation.
    pub fn compact(&self, graph: &CsrGraph) -> usize {
        let mut inner = self.inner.write();
        let mut folded = 0usize;
        let rows = std::mem::take(&mut inner.rows);
        let mut new_rows = HashMap::with_capacity(rows.len());
        for (v, mut row) in rows {
            if row.pending() > 0 {
                let mut merged = Vec::with_capacity(row.merged_len(graph, v));
                row.merge_into(graph, v, &mut merged);
                row = DeltaRow {
                    compacted: Some(merged),
                    ..DeltaRow::default()
                };
                folded += 1;
            }
            new_rows.insert(v, row);
        }
        inner.rows = new_rows;
        inner.pending_delta_edges = 0;
        if folded > 0 {
            self.compactions.fetch_add(1, Ordering::Relaxed);
        }
        folded
    }

    /// Materializes the full merged graph as a fresh CSR with sorted,
    /// validated rows — the from-scratch rebuild the overlay must stay
    /// equivalent to (used by correctness spot-checks and proptests).
    pub fn rebuild_csr(&self, graph: &CsrGraph) -> CsrGraph {
        let n = self.num_vertices;
        let mut row_offsets = Vec::with_capacity(n + 1);
        row_offsets.push(0u64);
        let mut col_indices = Vec::with_capacity(graph.num_edges());
        let mut buf = Vec::new();
        for v in 0..n as VertexId {
            self.merge_into(graph, v, &mut buf);
            buf.sort_unstable();
            col_indices.extend_from_slice(&buf);
            row_offsets.push(col_indices.len() as u64);
        }
        CsrGraph::from_parts(row_offsets, col_indices).expect("merged rows form a valid CSR")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_graph::GraphBuilder;

    fn line_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as VertexId - 1 {
            b.push_edge(v, v + 1);
        }
        b.build()
    }

    fn ring_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as VertexId {
            b.push_edge(v, (v + 1) % n as VertexId);
            b.push_edge(v, (v + 3) % n as VertexId);
        }
        b.build()
    }

    #[test]
    fn clean_vertex_is_not_dirty_and_merges_to_base() {
        let g = ring_graph(16);
        let ov = DeltaOverlay::new(16);
        assert!(!ov.is_dirty(5));
        let mut buf = Vec::new();
        ov.merge_into(&g, 5, &mut buf);
        assert_eq!(&buf[..], g.neighbors(5));
        assert_eq!(ov.dirty_rows(), 0);
    }

    #[test]
    fn insert_appears_delete_disappears() {
        let g = line_graph(8);
        let ov = DeltaOverlay::new(8);
        let e = ov.apply(&g, &MutationOp::InsertEdge { src: 0, dst: 5 });
        assert_eq!((e.inserted, e.deleted, e.newly_dirty), (1, 0, 1));
        assert!(ov.edge_present(&g, 0, 5));
        assert!(ov.is_dirty(0));

        let e = ov.apply(&g, &MutationOp::DeleteEdge { src: 0, dst: 1 });
        assert_eq!((e.inserted, e.deleted, e.newly_dirty), (0, 1, 0));
        assert!(!ov.edge_present(&g, 0, 1));

        let mut buf = Vec::new();
        ov.merge_into(&g, 0, &mut buf);
        assert_eq!(buf, vec![5]);
        assert_eq!(ov.merged_degree(&g, 0), 1);
    }

    #[test]
    fn duplicate_and_absent_ops_are_noops() {
        let g = line_graph(8);
        let ov = DeltaOverlay::new(8);
        // Insert an edge that already exists in the base.
        let e = ov.apply(&g, &MutationOp::InsertEdge { src: 2, dst: 3 });
        assert!(!e.changed());
        assert!(!ov.is_dirty(2), "no-op must not dirty the row");
        // Delete an edge that does not exist.
        let e = ov.apply(&g, &MutationOp::DeleteEdge { src: 2, dst: 7 });
        assert!(!e.changed());
        // Double-insert through the overlay.
        assert!(ov
            .apply(&g, &MutationOp::InsertEdge { src: 2, dst: 6 })
            .changed());
        assert!(!ov
            .apply(&g, &MutationOp::InsertEdge { src: 2, dst: 6 })
            .changed());
    }

    #[test]
    fn reinsert_after_delete_restores_edge() {
        let g = line_graph(8);
        let ov = DeltaOverlay::new(8);
        assert!(ov
            .apply(&g, &MutationOp::DeleteEdge { src: 3, dst: 4 })
            .changed());
        assert!(!ov.edge_present(&g, 3, 4));
        assert!(ov
            .apply(&g, &MutationOp::InsertEdge { src: 3, dst: 4 })
            .changed());
        assert!(ov.edge_present(&g, 3, 4));
        assert_eq!(ov.pending_delta_edges(), 0, "tombstone cancelled");
    }

    #[test]
    fn churn_empties_row_and_allows_reinserts() {
        let g = ring_graph(12);
        let ov = DeltaOverlay::new(12);
        let deg = g.degree(4);
        let e = ov.apply(&g, &MutationOp::ChurnVertex { v: 4 });
        assert_eq!(e.deleted, deg);
        assert_eq!(ov.merged_degree(&g, 4), 0);
        assert!(ov
            .apply(&g, &MutationOp::InsertEdge { src: 4, dst: 9 })
            .changed());
        let mut buf = Vec::new();
        ov.merge_into(&g, 4, &mut buf);
        assert_eq!(buf, vec![9]);
        // Churning the now-emptied-then-refilled row again drops 1.
        assert_eq!(ov.apply(&g, &MutationOp::ChurnVertex { v: 4 }).deleted, 1);
        assert_eq!(ov.apply(&g, &MutationOp::ChurnVertex { v: 4 }).deleted, 0);
    }

    #[test]
    fn compaction_preserves_merged_view_and_resets_pending() {
        let g = ring_graph(32);
        let ov = DeltaOverlay::new(32);
        for i in 0..10u32 {
            ov.apply(
                &g,
                &MutationOp::InsertEdge {
                    src: i,
                    dst: (i + 7) % 32,
                },
            );
            ov.apply(
                &g,
                &MutationOp::DeleteEdge {
                    src: i,
                    dst: (i + 1) % 32,
                },
            );
        }
        assert!(ov.pending_delta_edges() > 0);
        let before = ov.rebuild_csr(&g);
        let folded = ov.compact(&g);
        assert!(folded > 0);
        assert_eq!(ov.pending_delta_edges(), 0);
        assert_eq!(ov.compactions(), 1);
        let after = ov.rebuild_csr(&g);
        assert_eq!(before, after);
        // A second compact with nothing pending folds nothing.
        assert_eq!(ov.compact(&g), 0);
        assert_eq!(ov.compactions(), 1);
    }

    #[test]
    fn generate_is_deterministic_and_valid() {
        let g = ring_graph(64);
        let cfg = ChurnConfig::default();
        let a = MutationLog::generate(&g, &cfg, 42, 0.01);
        let b = MutationLog::generate(&g, &cfg, 42, 0.01);
        assert_eq!(a, b, "same seed must generate the same stream");
        let c = MutationLog::generate(&g, &cfg, 43, 0.01);
        assert_ne!(a, c, "different seed must diverge");
        assert!(!a.is_empty(), "10ms at 10k ops/s should emit ops");

        // Every op is valid against the stream-so-far.
        let ov = DeltaOverlay::new(64);
        let mut last = 0.0;
        for m in &a.ops {
            assert!(m.at >= last, "timestamps must be non-decreasing");
            last = m.at;
            let effect = ov.apply(&g, &m.op);
            assert!(effect.changed(), "generated op {:?} was a no-op", m.op);
        }
    }

    #[test]
    fn generate_respects_op_mix() {
        let g = ring_graph(128);
        let cfg = ChurnConfig {
            insert_frac: 1.0,
            churn_frac: 0.0,
            ..ChurnConfig::default()
        };
        let log = MutationLog::generate(&g, &cfg, 7, 0.02);
        assert!(log
            .ops
            .iter()
            .all(|m| matches!(m.op, MutationOp::InsertEdge { .. })));
    }

    #[test]
    fn log_json_roundtrip_is_lossless() {
        let g = ring_graph(64);
        let log = MutationLog::generate(&g, &ChurnConfig::default(), 11, 0.005);
        let json = serde_json::to_string(&log).unwrap();
        let back: MutationLog = serde_json::from_str(&json).unwrap();
        assert_eq!(log, back);
        let json2 = serde_json::to_string(&back).unwrap();
        assert_eq!(json, json2, "re-serialization must be byte-identical");
    }

    #[test]
    fn source_resolve_generate_matches_replay() {
        let g = ring_graph(64);
        let cfg = ChurnConfig::default();
        let gen = MutationSource::Generate(cfg.clone());
        let (log, thr) = gen.resolve(&g, 5, 0.01);
        let replay = MutationSource::Replay {
            log: Arc::clone(&log),
            compact_threshold: thr,
        };
        let (log2, thr2) = replay.resolve(&g, 999, 123.0);
        assert_eq!(*log, *log2);
        assert_eq!(thr, thr2);
        assert_eq!(thr, cfg.compact_threshold);
    }

    #[test]
    fn config_validation_rejects_bad_fields() {
        let ok = ChurnConfig::default();
        assert!(ok.validate().is_ok());
        assert!(ChurnConfig {
            ops_per_sec: 0.0,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(ChurnConfig {
            insert_frac: 1.5,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(ChurnConfig {
            insert_frac: 0.8,
            churn_frac: 0.3,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(ChurnConfig {
            endpoint_exponent: f64::NAN,
            ..ok
        }
        .validate()
        .is_err());
    }
}
