//! Telemetry for the Legion simulator: a lock-free metric registry with
//! counters, gauges, fixed-bucket histograms, and scoped stage timers.
//!
//! # Design
//!
//! Registration (name → handle) takes a mutex, but that happens once per
//! metric — typically at construction of the server / engines. The hot
//! paths (PCIe transaction metering, cache hit accounting, per-stage
//! time accumulation) clone an [`Counter`] handle, which is just an
//! `Arc<AtomicU64>`, and update it with a relaxed atomic add: no locks,
//! no allocation, safe from any thread.
//!
//! # Determinism
//!
//! Counters and histograms hold integers. Integer addition commutes, so
//! a metric's final value is independent of thread interleaving — which
//! is what lets two same-seed epoch runs produce byte-identical
//! [`Snapshot`] JSON even when the runner is parallel. Simulated stage
//! durations are therefore stored as integer **nanoseconds**
//! ([`Counter::add_secs`]) rather than accumulated floats. Gauges store
//! `f64` bits and are meant for values written once from a single
//! thread (epoch totals, model outputs). [`StageTimer`] measures real
//! wall-clock time; keep wall metrics out of snapshots you intend to
//! compare across runs.
//!
//! Metric names follow a dotted scheme with zero-based device indices,
//! e.g. `pcm.gpu0.topology_tx`, `traffic.dst1.src0_bytes`,
//! `stage.gpu2.sample_ns`, `cache.gpu0.feature_hits`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

pub mod snapshot;

pub use snapshot::{CounterSample, GaugeSample, HistogramSample, Snapshot};

/// Nanoseconds per second, the resolution of stage-time counters.
pub const NANOS_PER_SEC: f64 = 1e9;

/// A monotonically increasing integer metric.
///
/// Cloning is cheap and shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    fn new() -> Self {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        if delta != 0 {
            self.cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds a simulated duration in seconds, stored as integer
    /// nanoseconds so accumulation order cannot affect the total.
    #[inline]
    pub fn add_secs(&self, secs: f64) {
        debug_assert!(secs >= 0.0, "negative stage duration");
        self.add((secs * NANOS_PER_SEC).round() as u64);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// The current value interpreted as nanoseconds, in seconds.
    #[inline]
    pub fn get_secs(&self) -> f64 {
        self.get() as f64 / NANOS_PER_SEC
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins `f64` metric (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            cell: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.cell.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }

    /// Resets the gauge to zero.
    pub fn reset(&self) {
        self.set(0.0);
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds (inclusive) of each bucket; an implicit overflow
    /// bucket follows the last bound.
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let idx = self.inner.bounds.partition_point(|&bound| bound < value);
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Index of the bucket `value` falls into (the final index is the
    /// overflow bucket). `observe(value)` increments exactly this
    /// bucket — exposed so batch-local accumulators can tally bucket
    /// counts without touching the shared atomics per observation.
    #[inline]
    pub fn bucket_index(&self, value: u64) -> usize {
        self.inner.bounds.partition_point(|&bound| bound < value)
    }

    /// Number of buckets, including the overflow bucket — the length
    /// `merge_counts` expects.
    pub fn num_buckets(&self) -> usize {
        self.inner.counts.len()
    }

    /// Merges a batch-local tally into the histogram: `counts[i]`
    /// observations in bucket `i` (indexed as by
    /// [`bucket_index`](Self::bucket_index)) summing to `sum`. One
    /// atomic add per non-zero bucket plus one for the sum — the bulk
    /// equivalent of `counts[i]` calls to [`observe`](Self::observe),
    /// and bit-identical to them because bucket counts and the sum are
    /// commutative integers.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` differs from
    /// [`num_buckets`](Self::num_buckets).
    pub fn merge_counts(&self, counts: &[u64], sum: u64) {
        assert_eq!(
            counts.len(),
            self.inner.counts.len(),
            "bucket tally length must match the histogram"
        );
        for (slot, &c) in self.inner.counts.iter().zip(counts) {
            if c > 0 {
                slot.fetch_add(c, Ordering::Relaxed);
            }
        }
        if sum > 0 {
            self.inner.sum.fetch_add(sum, Ordering::Relaxed);
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.inner.bounds
    }

    /// Per-bucket counts (the final entry is the overflow bucket).
    pub fn counts(&self) -> Vec<u64> {
        self.inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) of the observed
    /// distribution by linear interpolation within the winning bucket.
    ///
    /// The bucket holding the target rank is located by cumulative count;
    /// the returned value interpolates between the bucket's lower and
    /// upper bounds proportionally to the rank's position inside it.
    /// Ranks landing in the overflow bucket saturate at the last finite
    /// bound — the histogram cannot resolve beyond it. An empty histogram
    /// reports 0.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let counts = self.counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, in [1, total].
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let bounds = self.bounds();
        let mut below = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if below + c >= rank {
                if i == bounds.len() {
                    // Overflow bucket: saturate at the last finite bound.
                    return bounds.last().copied().unwrap_or(u64::MAX);
                }
                let lower = if i == 0 { 0 } else { bounds[i - 1] };
                let upper = bounds[i];
                let into = (rank - below) as f64 / c as f64;
                return lower + ((upper - lower) as f64 * into).round() as u64;
            }
            below += c;
        }
        unreachable!("rank {rank} exceeds total {total}")
    }

    /// Clears all buckets.
    pub fn reset(&self) {
        for c in &self.inner.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.inner.sum.store(0, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

impl RegistryInner {
    fn find<T: Clone>(entries: &[(String, T)], name: &str) -> Option<T> {
        entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    }
}

/// The metric registry: name → handle, get-or-register semantics.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use. The returned handle updates lock-free.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        if let Some(c) = RegistryInner::find(&inner.counters, name) {
            return c;
        }
        let c = Counter::new();
        inner.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        if let Some(g) = RegistryInner::find(&inner.gauges, name) {
            return g;
        }
        let g = Gauge::new();
        inner.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Returns the histogram registered under `name`, creating it with
    /// the given bucket bounds on first use.
    ///
    /// # Panics
    ///
    /// Panics if the name exists with different bounds — that is a
    /// naming-scheme bug, not a runtime condition.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut inner = self.inner.lock();
        if let Some(h) = RegistryInner::find(&inner.histograms, name) {
            assert_eq!(
                h.bounds(),
                bounds,
                "histogram `{name}` re-registered with different bounds"
            );
            return h;
        }
        let h = Histogram::new(bounds);
        inner.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// The value of a counter, or 0 if it was never registered.
    pub fn counter_value(&self, name: &str) -> u64 {
        RegistryInner::find(&self.inner.lock().counters, name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// The value of a gauge, or 0.0 if it was never registered.
    pub fn gauge_value(&self, name: &str) -> f64 {
        RegistryInner::find(&self.inner.lock().gauges, name)
            .map(|g| g.get())
            .unwrap_or(0.0)
    }

    /// Sums every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.inner
            .lock()
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, c)| c.get())
            .sum()
    }

    /// Starts a wall-clock timer that adds elapsed nanoseconds to
    /// `name` when dropped. Wall metrics are nondeterministic; keep
    /// them out of snapshots compared across runs.
    pub fn stage_timer(&self, name: &str) -> StageTimer {
        StageTimer {
            counter: self.counter(name),
            start: Instant::now(),
        }
    }

    /// Resets every registered metric to zero, keeping registrations
    /// (and therefore handle bindings) intact.
    pub fn reset(&self) {
        let inner = self.inner.lock();
        for (_, c) in &inner.counters {
            c.reset();
        }
        for (_, g) in &inner.gauges {
            g.reset();
        }
        for (_, h) in &inner.histograms {
            h.reset();
        }
    }

    /// A point-in-time copy of every metric, sorted by name so equal
    /// registries serialize to identical JSON regardless of
    /// registration order.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock();
        let mut counters: Vec<CounterSample> = inner
            .counters
            .iter()
            .map(|(name, c)| CounterSample {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSample> = inner
            .gauges
            .iter()
            .map(|(name, g)| GaugeSample {
                name: name.clone(),
                value: g.get(),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSample> = inner
            .histograms
            .iter()
            .map(|(name, h)| HistogramSample {
                name: name.clone(),
                bounds: h.bounds().to_vec(),
                counts: h.counts(),
                sum: h.sum(),
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Scoped wall-clock timer returned by [`Registry::stage_timer`].
///
/// Adds the elapsed nanoseconds to its counter when dropped.
pub struct StageTimer {
    counter: Counter,
    start: Instant,
}

impl StageTimer {
    /// Stops the timer early, recording the elapsed time now.
    pub fn stop(self) {}
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.counter
            .add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_get_or_register_shares_the_cell() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter_value("x"), 4);
        assert_eq!(a.get(), 4);
    }

    #[test]
    fn counters_are_safe_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("hot");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn seconds_roundtrip_through_nanos() {
        let reg = Registry::new();
        let c = reg.counter("stage.gpu0.sample_ns");
        c.add_secs(1.25);
        c.add_secs(0.75);
        assert_eq!(c.get(), 2_000_000_000);
        assert!((c.get_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_last_write_wins() {
        let reg = Registry::new();
        let g = reg.gauge("alpha");
        g.set(0.35);
        g.set(0.5);
        assert_eq!(reg.gauge_value("alpha"), 0.5);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.counts(), vec![2, 2, 0, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5126);
    }

    #[test]
    fn merge_counts_is_bit_identical_to_per_observation_recording() {
        let reg = Registry::new();
        let scalar = reg.histogram("lat.scalar", &[10, 100, 1000]);
        let bulk = reg.histogram("lat.bulk", &[10, 100, 1000]);
        let values = [5u64, 10, 11, 100, 101, 5000, 7, 999];
        for &v in &values {
            scalar.observe(v);
        }
        let mut tally = vec![0u64; bulk.num_buckets()];
        let mut sum = 0u64;
        for &v in &values {
            tally[bulk.bucket_index(v)] += 1;
            sum += v;
        }
        bulk.merge_counts(&tally, sum);
        assert_eq!(scalar.counts(), bulk.counts());
        assert_eq!(scalar.sum(), bulk.sum());
        assert_eq!(scalar.quantile(0.99), bulk.quantile(0.99));
    }

    #[test]
    #[should_panic(expected = "bucket tally length")]
    fn merge_counts_rejects_mismatched_tallies() {
        let reg = Registry::new();
        let h = reg.histogram("lat.bad", &[10, 100]);
        h.merge_counts(&[1, 2], 3);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        let reg = Registry::new();
        let h = reg.histogram("q", &[100, 200]);
        // Ten observations in the (100, 200] bucket.
        for _ in 0..10 {
            h.observe(150);
        }
        // Rank 5 of 10 sits halfway through the bucket: 100 + 100 * 5/10.
        assert_eq!(h.quantile(0.5), 150);
        assert_eq!(h.quantile(1.0), 200);
        // Rank 1 of 10: 100 + 100 * 1/10.
        assert_eq!(h.quantile(0.0), 110);
    }

    #[test]
    fn quantile_crosses_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("q2", &[10, 20, 40]);
        for v in [5, 5, 5, 5, 15, 15, 15, 30, 30, 30] {
            h.observe(v);
        }
        // p40 = rank 4: last of the 4 in [0, 10] -> 10.
        assert_eq!(h.quantile(0.4), 10);
        // p50 = rank 5: first of 3 in (10, 20] -> 10 + 10/3 ~ 13.
        assert_eq!(h.quantile(0.5), 13);
        // p99 = rank 10: last of 3 in (20, 40] -> 40.
        assert_eq!(h.quantile(0.99), 40);
    }

    #[test]
    fn quantile_saturates_in_overflow_bucket() {
        let reg = Registry::new();
        let h = reg.histogram("q3", &[10, 100]);
        h.observe(5);
        h.observe(1_000_000);
        h.observe(2_000_000);
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.quantile(1.0), 100);
        // The low observation still resolves normally.
        assert!(h.quantile(0.1) <= 10);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let reg = Registry::new();
        let h = reg.histogram("q4", &[1, 2]);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let reg = Registry::new();
        let h = reg.histogram("q5", &[1, 2, 4, 8, 16, 32, 64]);
        for v in 0..100u64 {
            h.observe(v % 50);
        }
        let mut prev = 0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile(q);
            assert!(v >= prev, "quantile not monotone at q={q}");
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_bad_q() {
        let reg = Registry::new();
        let h = reg.histogram("q6", &[1]);
        let _ = h.quantile(1.5);
    }

    #[test]
    fn counter_sum_by_prefix() {
        let reg = Registry::new();
        reg.counter("pcm.gpu0.topology_tx").add(7);
        reg.counter("pcm.gpu1.topology_tx").add(5);
        reg.counter("pcm.gpu0.feature_tx").add(100);
        assert_eq!(reg.counter_sum("pcm.gpu0."), 107);
        assert_eq!(reg.counter_sum("pcm."), 112);
    }

    #[test]
    fn reset_keeps_bindings() {
        let reg = Registry::new();
        let c = reg.counter("x");
        c.add(9);
        reg.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(reg.counter_value("x"), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_independent_of_registration_order() {
        let a = Registry::new();
        a.counter("b").add(2);
        a.counter("a").add(1);
        a.gauge("z").set(3.0);
        let b = Registry::new();
        b.gauge("z").set(3.0);
        b.counter("a").add(1);
        b.counter("b").add(2);
        assert_eq!(a.snapshot(), b.snapshot());
        let snap = a.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn stage_timer_records_on_drop() {
        let reg = Registry::new();
        {
            let _t = reg.stage_timer("wall.test_ns");
        }
        // Can't assert much about wall time beyond "it ran".
        assert!(reg.counter_value("wall.test_ns") > 0 || cfg!(miri));
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let reg = Registry::new();
        reg.counter("pcm.gpu0.topology_tx").add(42);
        reg.gauge("epoch.seconds").set(1.5);
        reg.histogram("deg", &[1, 8]).observe(3);
        let snap = reg.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
