//! Serializable point-in-time metric snapshots.

use serde::{Deserialize, Serialize};

/// One counter's name and value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Dotted metric name, e.g. `pcm.gpu0.topology_tx`.
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge's name and value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Dotted metric name, e.g. `epoch.seconds`.
    pub name: String,
    /// Gauge value at snapshot time.
    pub value: f64,
}

/// One histogram's name, bucket layout, and contents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Dotted metric name.
    pub name: String,
    /// Inclusive upper bounds of each bucket.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; the final entry is the overflow bucket, so
    /// `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
}

/// A sorted, serializable copy of every metric in a registry.
///
/// Two registries holding the same metric values produce equal
/// snapshots — and, because entries are sorted by name and all numbers
/// are integers or single `f64` gauges, byte-identical JSON.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSample>,
}

impl Snapshot {
    /// The value of the named counter, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// The value of the named gauge, or 0.0 if absent.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges
            .iter()
            .find(|g| g.name == name)
            .map(|g| g.value)
            .unwrap_or(0.0)
    }

    /// Sums every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .map(|c| c.value)
            .sum()
    }

    /// The named histogram sample, or `None` if absent — the accessor
    /// cross-registry aggregation uses to merge per-server latency
    /// histograms (via [`Histogram::merge_counts`](crate::Histogram::merge_counts))
    /// into a fleet-level one.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }
}
