//! Scale-out serving fleet: the fourth tier of the hierarchy.
//!
//! Legion's unified cache exploits the *machine-internal* hierarchy
//! (GPU → NVLink clique → machine). This crate extends the same design
//! one level up — **cluster → machine → clique → GPU** — by simulating
//! `N` full multi-GPU servers behind a shard-residency front tier:
//!
//! * **Server sharding** ([`plan_fleet`]) — the graph is partitioned
//!   across servers with the *same* edge-cut partitioner
//!   ([`legion_partition::LdgPartitioner`]) the machine tier uses for
//!   NVLink cliques, so neighborhoods stay server-local for the same
//!   reason they stay clique-local.
//! * **Hot-head replication** — the globally hottest vertices (ranked
//!   by the warmup hotness curve, exactly the signal the machine-tier
//!   planner uses) are replicated to *every* server, sized by the same
//!   marginal-gain rule as
//!   [`legion_serve::adaptive_replicated_rows`]: replicate row `r`
//!   while serving it locally on all `N` servers beats giving its `N-1`
//!   copies' slots to the shard tail.
//! * **Front-tier routing** ([`serve_fleet`]) — each request is scored
//!   against every server's owned set (shard + replicated head) by a
//!   [`legion_router::Dispatcher`] over single-server groups: coverage
//!   first, projected queue depth as the tie-break, spill to the
//!   least-loaded server past the threshold. The server-level decision
//!   happens *before* `legion-router` picks a clique inside the chosen
//!   machine.
//! * **Cross-server reads** — a routed server still misses sometimes;
//!   rows it does not own are charged through
//!   [`legion_hw::NetModel`] (per-message overhead + bandwidth
//!   saturation + round-trip waves, integer-ns quantized) via
//!   [`legion_serve::RemoteConfig`], so mis-routed traffic costs wire
//!   time instead of being silently local.
//!
//! Each server then runs the full single-machine engine
//! ([`legion_serve::serve_requests`]) — its own cliques, caches,
//! admission queues, and (optionally) out-of-core store — over its
//! routed slice of the global request stream.
//!
//! # Determinism
//!
//! The global workload is generated from the base config's seed with
//! the exact code `legion_serve::serve` uses; routing is a pure
//! function of the plan and arrival order (the random baseline draws
//! from its own salted seed); every per-server run is the deterministic
//! single-machine engine; and the fleet snapshot is integers plus
//! once-written gauges. The same `(graph, spec, config, fleet)` tuple
//! therefore reproduces byte-identical [`FleetReport::metrics`], and a
//! single-server fleet is byte-identical to the non-fleet engine.
//!
//! # Fleet telemetry
//!
//! | Metric | Kind | Meaning |
//! |---|---|---|
//! | `fleet.offered` / `fleet.completed` / `fleet.shed` | counter | cluster-wide request conservation triple |
//! | `fleet.server{s}.routed` / `.spilled` | counter | front-tier placements into server `s` (coverage-chosen vs load-spilled) |
//! | `fleet.server{s}.shed` | counter | requests server `s` shed at its own admission queues |
//! | `fleet.server{s}.remote_reads` / `.remote_bytes` | counter | cross-server feature reads server `s` issued, and their wire bytes |
//! | `fleet.server{s}.hit_rate` | gauge | server `s`'s GPU feature-cache hit rate |
//! | `fleet.replicated_rows` | counter | hot-head rows replicated to every server |
//! | `fleet.shard{s}.vertices` | counter | vertices the edge-cut partitioner assigned to server `s` |
//! | `fleet.locality` | gauge | mean fraction of each routed probe resident on the chosen server |
//! | `fleet.latency_us` | histogram | per-server latency histograms merged cluster-wide |
//! | `fleet.p50_us` / `.p95_us` / `.p99_us` | gauge | quantiles of the merged latency histogram |
//! | `fleet.makespan_s` / `.throughput_rps` | gauge | cluster run summary (max per-server makespan; completed / makespan) |
//! | `fleet.uplink.servers` / `.oversubscription` / `.nic_serialization` / `.stretch` | gauge | shared-uplink contention model in effect (only when [`FleetConfig::uplink`] is set) |
//! | `fleet.uplink.coalesced_msgs` / `.dedup_hits` | counter | cluster-wide sums of the per-server coalescing counters (only when [`FleetConfig::coalesce`] is on) |
//! | `fleet.resize.count` / `.refill_rows` / `.refill_bytes` / `.refill_us` | counter | drift-driven head resizes committed, replica rows refilled, their wire bytes and integer-µs refill time (only when [`FleetConfig::resize_on_drift`] is on) |
//! | `fleet.resize.head_rows` | gauge | replicated-head rows after the final resize (same condition) |

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use legion_graph::{CsrGraph, FeatureTable, VertexId};
use legion_hw::{NetGeneration, NetModel, ServerSpec, UplinkConfig};
use legion_partition::{LdgPartitioner, Partitioner};
use legion_router::Dispatcher;
use legion_serve::{
    adaptive_replicated_rows, estimate_capacity_rps, generate_workload_classed, latency_buckets,
    serve_requests, warmup_hot_vertices_weighted, ClassSampler, CoalesceConfig, MutationOp,
    MutationSource, PriorityClass, RemoteConfig, Request, ServeConfig, ServeReport, TargetSampler,
    WindowEstimator,
};
use legion_telemetry::{Registry, Snapshot};

/// Salt of the random-server baseline's RNG stream.
const RANDOM_ROUTE_SALT: u64 = 0xf1ee_7a11_0c8e_55aa;

/// Wire payload of one cross-server mutation notification: a packed
/// op tag plus two vertex ids (the timestamp rides in the message
/// header the [`NetModel`] overhead already accounts for).
const MUTATION_NOTIFY_PAYLOAD_BYTES: u64 = 12;

/// How the front tier picks a server for each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetPolicy {
    /// Shard-residency routing: coverage of the request's probe against
    /// each server's owned set, projected load as the tie-break, spill
    /// past the threshold — the fleet-level mirror of the machine
    /// tier's residency router.
    Residency,
    /// Uniform random server choice from a salted seed — the baseline
    /// the head-to-head sweep compares against.
    Random,
}

impl FleetPolicy {
    /// Stable lowercase name for tables and JSON rows.
    pub fn as_str(&self) -> &'static str {
        match self {
            FleetPolicy::Residency => "residency",
            FleetPolicy::Random => "random",
        }
    }
}

/// Configuration of the fleet tier around a base [`ServeConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Simulated servers in the fleet.
    pub num_servers: usize,
    /// Cluster fabric connecting them; defaults to a kernel-bypass
    /// RDMA fabric at 400 G line rate ([`NetModel::rdma`]) — the class
    /// of interconnect billion-scale GPU clusters deploy.
    pub net: NetModel,
    /// Front-tier routing policy.
    pub policy: FleetPolicy,
    /// Leading neighbors of each target added to the routing probe
    /// (mirrors [`legion_serve::RouterConfig`]'s probe).
    pub probe_neighbors: usize,
    /// Fraction of a server's total queue capacity
    /// (`queue_capacity * num_gpus`) at which the front tier spills to
    /// the least-loaded server.
    pub spill_threshold: f64,
    /// Fixed replicated-head size; `None` (the default) sizes it
    /// adaptively from the warmup hotness curve.
    pub replicate_rows: Option<usize>,
    /// Per-server drain rate the projected-load model assumes,
    /// requests/s; `None` measures it with
    /// [`legion_serve::estimate_capacity_rps`] on one probe server.
    pub drain_rps: Option<f64>,
    /// Shared-uplink contention ([`legion_hw::UplinkConfig`]): per-NIC
    /// serialization plus ToR oversubscription, applied to every
    /// server's remote waves at fleet concurrency. `None` (the
    /// default) charges each server's waves on an exclusive fabric —
    /// byte-identical to the pre-contention fleet.
    pub uplink: Option<UplinkConfig>,
    /// Per-owner coalescing of each server's remote waves: dedupe
    /// within the staging window, bucket misses by owning shard, one
    /// batched message per owner per batch. `false` (the default)
    /// keeps the flat per-row pool, byte-identical to the
    /// pre-coalescing fleet.
    pub coalesce: bool,
    /// Batches a fetched remote row stays deduplicable in the
    /// coalescing staging window (ignored unless `coalesce`).
    pub coalesce_window: u64,
    /// Drift-driven replica resizing: feed the front tier's routed
    /// probes into a [`legion_serve::WindowEstimator`], and when the
    /// windowed hot set drifts away from the replicated head
    /// (rank-overlap trigger), re-run the adaptive marginal-gain rule
    /// on the window curve, resize every server's replicated head at
    /// the next bucket boundary (refills charged through the cluster
    /// [`NetModel`]), and re-route through refreshed dispatcher
    /// groups. `false` (the default) keeps the warmup-planned head for
    /// the whole run, byte-identical to the pre-resize fleet.
    pub resize_on_drift: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            num_servers: 2,
            net: NetModel::rdma(NetGeneration::Eth400G),
            policy: FleetPolicy::Residency,
            probe_neighbors: 8,
            spill_threshold: 0.75,
            replicate_rows: None,
            drain_rps: None,
            uplink: None,
            coalesce: false,
            coalesce_window: 4,
            resize_on_drift: false,
        }
    }
}

impl FleetConfig {
    /// Checks the invariants [`serve_fleet`] relies on.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on the first violated
    /// invariant.
    pub fn validate(&self) {
        assert!(self.num_servers > 0, "num_servers must be positive");
        assert!(
            self.spill_threshold > 0.0 && self.spill_threshold <= 1.0,
            "spill_threshold must be in (0, 1]"
        );
        if let Some(d) = self.drain_rps {
            assert!(d > 0.0, "drain_rps must be positive");
        }
        if let Some(up) = self.uplink {
            up.validate();
        }
    }

    /// The cluster network model with the uplink contention term
    /// attached (when configured).
    pub fn effective_net(&self) -> NetModel {
        match self.uplink {
            Some(up) => self.net.with_contention(up),
            None => self.net,
        }
    }
}

/// The fleet's placement: which server owns which vertex.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// `shard[v]` — the server the edge-cut partitioner assigned vertex
    /// `v` to (all zeros for a single-server fleet).
    pub shard: Vec<u32>,
    /// Vertices of each shard, per server.
    pub shard_sizes: Vec<usize>,
    /// The globally hot head replicated to every server, descending
    /// warmup hotness.
    pub replicated: Vec<VertexId>,
    /// Per-server ownership bitmaps (shard ∪ replicated head) — what
    /// [`RemoteConfig`] hands each server's engine.
    pub owned: Vec<Arc<Vec<bool>>>,
}

/// Shards the graph across `fleet.num_servers` servers with the LDG
/// edge-cut partitioner and replicates the warmup-hot head to every
/// server, sized by the adaptive marginal-gain rule (or the fixed
/// [`FleetConfig::replicate_rows`] override). Deterministic: the
/// partitioner is RNG-free and the hotness curve derives from
/// `base.seed`.
pub fn plan_fleet(graph: &CsrGraph, base: &ServeConfig, fleet: &FleetConfig) -> FleetPlan {
    fleet.validate();
    let n = fleet.num_servers;
    let num_vertices = graph.num_vertices();
    let shard = if n > 1 {
        LdgPartitioner::default().partition(graph, n)
    } else {
        vec![0u32; num_vertices]
    };
    let mut shard_sizes = vec![0usize; n];
    for &s in &shard {
        shard_sizes[s as usize] += 1;
    }
    let replicated: Vec<VertexId> = if n > 1 {
        let all: Vec<VertexId> = (0..num_vertices as VertexId).collect();
        let mut warm = TargetSampler::new(all, base.zipf_exponent, 0, 0);
        let (hot, weight) = warmup_hot_vertices_weighted(
            graph,
            &mut warm,
            base.warmup_requests,
            &base.fanouts,
            base.seed,
        );
        // The replication budget is one shard's worth of rows: the head
        // a server replicates displaces shard-tail residency of the
        // same size, which is exactly the trade the adaptive rule
        // prices (`G` = servers instead of cliques).
        let budget = shard_sizes.iter().copied().max().unwrap_or(0);
        let rows = fleet
            .replicate_rows
            .unwrap_or_else(|| adaptive_replicated_rows(&hot, &weight, budget, n))
            .min(hot.len());
        hot.into_iter().take(rows).collect()
    } else {
        Vec::new()
    };
    let owned: Vec<Arc<Vec<bool>>> = (0..n)
        .map(|s| {
            let mut o: Vec<bool> = shard.iter().map(|&p| p as usize == s).collect();
            for &v in &replicated {
                o[v as usize] = true;
            }
            Arc::new(o)
        })
        .collect();
    FleetPlan {
        shard,
        shard_sizes,
        replicated,
        owned,
    }
}

/// Summary of one fleet run; `metrics` is the fleet-level registry
/// snapshot (per-server routing counters, merged latency histogram,
/// locality), and `per_server` holds each machine's full
/// [`ServeReport`].
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Front-tier routing policy of the run.
    pub policy: FleetPolicy,
    /// Servers in the fleet.
    pub num_servers: usize,
    /// Requests offered by the global workload.
    pub offered: u64,
    /// Requests completed across all servers.
    pub completed: u64,
    /// Requests shed across all servers.
    pub shed: u64,
    /// Cluster-wide latency quantiles (merged histogram), microseconds.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Latest per-server completion, simulated seconds.
    pub makespan_s: f64,
    /// Completed requests per simulated second, cluster-wide.
    pub throughput_rps: f64,
    /// Mean fraction of each routed probe resident on the chosen
    /// server.
    pub locality: f64,
    /// Hot-head rows replicated to every server.
    pub replicated_rows: usize,
    /// Cross-server feature reads, cluster-wide.
    pub remote_reads: u64,
    /// Wire bytes those reads moved.
    pub remote_bytes: u64,
    /// Messages actually put on the wire for those reads: per-owner
    /// batches when coalescing is on, one per row otherwise.
    pub remote_msgs: u64,
    /// Remote fetches absorbed by the coalescing window (rows already
    /// staged by a recent batch), cluster-wide.
    pub dedup_hits: u64,
    /// Drift-driven replica-head resizes the front tier committed.
    pub resizes: u64,
    /// Each server's full single-machine report, in server order.
    pub per_server: Vec<ServeReport>,
    /// Fleet-level telemetry snapshot.
    pub metrics: Snapshot,
}

/// Minimum seals between head resizes (lets a refreshed routing table
/// take effect before the window can trigger again).
const RESIZE_COOLDOWN_SEALS: u32 = 1;

/// Rank-overlap fraction below which the replicated head counts as
/// stale: fewer than this share of the window's hottest vertices still
/// sit in the head. High enough that a head resized off a
/// mid-transition window keeps correcting as the window cleans up,
/// low enough that steady-state rank jitter never triggers.
const RESIZE_MIN_OVERLAP: f64 = 0.7;

/// Drift-driven replica resizing at the front tier.
///
/// The same sliding-window hotness estimator the per-server `Replan`
/// policy uses ([`legion_serve::WindowEstimator`]) is fed the routed
/// probes; when a sealed bucket shows the windowed hot set has drifted
/// away from the replicated head (rank overlap below
/// [`RESIZE_MIN_OVERLAP`]), the head is re-sized with the *same*
/// marginal-gain rule that sized it at plan time
/// ([`adaptive_replicated_rows`]) — but on the live window curve
/// instead of the stale warmup curve. Every server's ownership bitmap
/// is updated, new replicas are refilled over the cluster network
/// (charged through [`NetModel`] at fleet concurrency), and the
/// dispatcher's groups are refreshed so routing follows the new head
/// immediately. Resizes commit only at bucket boundaries — the routing
/// analog of the engine's batch-boundary plan swaps.
struct HeadResizer {
    window: WindowEstimator,
    /// Current replicated head, descending window hotness.
    head: Vec<VertexId>,
    /// `is_replicated[v]` — membership mirror of `head`.
    is_replicated: Vec<bool>,
    budget: usize,
    row_bytes: u64,
    net: NetModel,
    num_servers: usize,
    coalesce: bool,
    cooldown: u32,
    resizes: u64,
    refill_rows: u64,
    refill_bytes: u64,
    refill_s: f64,
}

impl HeadResizer {
    fn new(
        plan: &FleetPlan,
        base: &ServeConfig,
        fleet: &FleetConfig,
        num_vertices: usize,
        row_bytes: u64,
    ) -> Self {
        // Size buckets so the sliding window spans at most half a
        // drift period: a rotation then dominates the window within
        // half a period instead of being diluted by a full period of
        // stale traffic. Non-drifting configs fall back to a small
        // fixed fraction of the stream.
        let bucket = if base.drift_period > 0 {
            (base.drift_period / (2 * base.replan.window_buckets.max(1))).max(32)
        } else {
            (base.num_requests / 64).max(32)
        };
        let mut is_replicated = vec![false; num_vertices];
        for &v in &plan.replicated {
            is_replicated[v as usize] = true;
        }
        Self {
            window: WindowEstimator::new(num_vertices, bucket, base.replan.window_buckets),
            head: plan.replicated.clone(),
            is_replicated,
            budget: plan.shard_sizes.iter().copied().max().unwrap_or(0),
            row_bytes,
            net: fleet.effective_net(),
            num_servers: fleet.num_servers,
            coalesce: fleet.coalesce,
            cooldown: 0,
            resizes: 0,
            refill_rows: 0,
            refill_bytes: 0,
            refill_s: 0.0,
        }
    }

    /// Whether the sealed window has drifted away from the current
    /// head: rank overlap of the window's top-`|head|` vertices against
    /// the head below [`RESIZE_MIN_OVERLAP`]. An empty head goes stale
    /// as soon as the window sees any traffic (the warmup rule may
    /// have had nothing to replicate).
    fn stale(&self) -> bool {
        if self.head.is_empty() {
            return !self.window.top_feature_vertices(1).is_empty();
        }
        let top = self.window.top_feature_vertices(self.head.len());
        if top.is_empty() {
            return false;
        }
        let hits = top
            .iter()
            .filter(|&&v| self.is_replicated[v as usize])
            .count();
        (hits as f64) < RESIZE_MIN_OVERLAP * top.len() as f64
    }

    /// Re-sizes the replicated head from the window curve, updates the
    /// ownership bitmaps, charges the refill, and refreshes the
    /// dispatcher's routing groups. Returns whether anything changed.
    fn resize(
        &mut self,
        shard: &[u32],
        owned: &mut [Arc<Vec<bool>>],
        dispatcher: &mut Dispatcher,
    ) -> bool {
        let weights = self.window.feat().row(0);
        let hot = self.window.top_feature_vertices(self.budget);
        let rows =
            adaptive_replicated_rows(&hot, weights, self.budget, self.num_servers).min(hot.len());
        let new_head: Vec<VertexId> = hot.into_iter().take(rows).collect();
        if new_head == self.head {
            return false;
        }
        let mut in_new = vec![false; self.is_replicated.len()];
        for &v in &new_head {
            in_new[v as usize] = true;
        }
        let mut owner_payload_rows = vec![0u64; self.num_servers];
        for (s, owned_s) in owned.iter_mut().enumerate() {
            let o = Arc::make_mut(owned_s);
            // Replicas the new head drops fall back to shard-only
            // ownership; rows the server's own shard holds stay put.
            for &v in &self.head {
                if !in_new[v as usize] && shard[v as usize] as usize != s {
                    o[v as usize] = false;
                }
            }
            // New replicas this server lacks are refilled from their
            // owning shards over the cluster fabric.
            let mut added = 0u64;
            owner_payload_rows.iter_mut().for_each(|r| *r = 0);
            for &v in &new_head {
                if !o[v as usize] {
                    o[v as usize] = true;
                    added += 1;
                    owner_payload_rows[shard[v as usize] as usize] += 1;
                }
            }
            if added > 0 {
                self.refill_rows += added;
                if self.coalesce {
                    let payloads: Vec<u64> = owner_payload_rows
                        .iter()
                        .filter(|&&r| r > 0)
                        .map(|&r| r * self.row_bytes)
                        .collect();
                    self.refill_bytes += payloads
                        .iter()
                        .map(|&p| self.net.bytes_for_payload(p))
                        .sum::<u64>();
                    self.refill_s += self
                        .net
                        .coalesced_read_seconds_at(&payloads, self.num_servers);
                } else {
                    self.refill_bytes += added * self.net.bytes_for_payload(self.row_bytes);
                    self.refill_s +=
                        self.net
                            .read_seconds_at(added, self.row_bytes, self.num_servers);
                }
            }
        }
        for &v in &self.head {
            self.is_replicated[v as usize] = false;
        }
        for &v in &new_head {
            self.is_replicated[v as usize] = true;
        }
        self.head = new_head;
        self.resizes += 1;
        // Re-route: every server's owned set changed shape.
        let mut owned_list = Vec::new();
        for (s, owned_s) in owned.iter().enumerate() {
            owned_list.clear();
            owned_list.extend(
                owned_s
                    .iter()
                    .enumerate()
                    .filter(|&(_, &o)| o)
                    .map(|(v, _)| v as VertexId),
            );
            dispatcher.refresh_group(s, &owned_list);
        }
        true
    }

    /// Feeds one routed request into the window and commits a resize
    /// at bucket boundaries when the head has gone stale.
    fn observe(
        &mut self,
        probe: &[VertexId],
        covered: usize,
        shard: &[u32],
        owned: &mut [Arc<Vec<bool>>],
        dispatcher: &mut Dispatcher,
    ) {
        for &v in probe {
            self.window.note_feature(v);
        }
        self.window
            .note_batch(1, covered as u64, (probe.len() - covered) as u64, 0);
        if self.window.seal_if_due().is_none() {
            return;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return;
        }
        if self.stale() && self.resize(shard, owned, dispatcher) {
            self.cooldown = RESIZE_COOLDOWN_SEALS;
        }
    }
}

/// Runs the full fleet simulation: plan placement, generate the global
/// workload from `base.seed` (byte-identical to
/// [`legion_serve::serve`]'s stream), route every request through the
/// front tier, run each server's engine over its slice, and merge the
/// results.
///
/// Each server is built fresh from `spec`. A single-server fleet skips
/// the remote tier entirely, so its one [`ServeReport`] is
/// byte-identical to `legion_serve::serve` on the same config.
///
/// # Panics
///
/// Panics if `base` or `fleet` is invalid, or if `base.remote` is
/// already set (the fleet owns that field).
pub fn serve_fleet(
    graph: &CsrGraph,
    features: &FeatureTable,
    spec: &ServerSpec,
    base: &ServeConfig,
    fleet: &FleetConfig,
) -> FleetReport {
    base.validate();
    fleet.validate();
    assert!(
        base.remote.is_none(),
        "base.remote is owned by the fleet tier"
    );
    let n = fleet.num_servers;
    let plan = plan_fleet(graph, base, fleet);

    // The global open-loop workload — the exact stream `serve` would
    // generate for this config.
    let all_targets: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
    let mut target_sampler = TargetSampler::new(
        all_targets,
        base.zipf_exponent,
        base.drift_period,
        base.drift_stride,
    );
    if base.classes.mix[PriorityClass::Interactive.index()] > 0.0 {
        target_sampler = target_sampler.with_interactive_boost(base.classes.interactive_boost);
    }
    let mut class_sampler = ClassSampler::new(base.classes.mix, base.seed);
    let mut workload_rng = StdRng::seed_from_u64(base.seed);
    let requests = generate_workload_classed(
        &base.arrival,
        &mut target_sampler,
        &mut class_sampler,
        base.num_requests,
        &mut workload_rng,
    );

    // Streaming mutations under the fleet: topology is replicated on
    // every server (only features are sharded), so the global stream is
    // resolved ONCE — from the base seed and the global horizon — and
    // every engine replays the identical log. The shard owner of each
    // mutated vertex applies the op authoritatively and notifies the
    // other `n - 1` servers; that fan-out is charged to the fabric
    // below as fixed-size control messages.
    let fleet_mutations = base.mutations.as_ref().map(|src| {
        let horizon = requests.last().map(|r| r.arrival).unwrap_or(0.0);
        src.resolve(graph, base.seed, horizon)
    });

    // Front tier: a Dispatcher over single-server groups, scored on
    // each server's owned set. Projected load is analytic — a server's
    // backlog is what the front tier sent it minus what a server
    // draining at `drain_rps` since time zero could have retired —
    // because the fleet router cannot see inside remote machines'
    // queues, only its own bookkeeping.
    let server_backlog = base.queue_capacity * spec.num_gpus;
    let spill_len = (fleet.spill_threshold * server_backlog as f64).ceil() as usize;
    let groups: Vec<Vec<usize>> = (0..n).map(|s| vec![s]).collect();
    let mut dispatcher = Dispatcher::new(groups, graph.num_vertices(), spill_len);
    // Ownership bitmaps start as the plan's; drift-driven resizing
    // (below) mutates this copy at bucket boundaries, so the engines
    // later receive the post-resize maps.
    let mut owned: Vec<Arc<Vec<bool>>> = plan.owned.clone();
    let mut owned_list = Vec::new();
    for (s, owned_s) in owned.iter().enumerate() {
        owned_list.clear();
        owned_list.extend(
            owned_s
                .iter()
                .enumerate()
                .filter(|&(_, &o)| o)
                .map(|(v, _)| v as VertexId),
        );
        dispatcher.refresh_group(s, &owned_list);
    }
    let drain = fleet
        .drain_rps
        .unwrap_or_else(|| estimate_capacity_rps(graph, features, &spec.build(), base));
    let net = fleet.effective_net();
    let row_bytes = features.row_bytes();
    let shard_arc = fleet.coalesce.then(|| Arc::new(plan.shard.clone()));
    let mut resizer = (fleet.resize_on_drift && n > 1)
        .then(|| HeadResizer::new(&plan, base, fleet, graph.num_vertices(), row_bytes));

    let mut routed = vec![0u64; n];
    let mut spilled = vec![0u64; n];
    let mut assigned = vec![0u64; n];
    let mut depths = vec![0usize; n];
    let mut streams: Vec<Vec<Request>> = vec![Vec::new(); n];
    let mut probe: Vec<VertexId> = Vec::new();
    let mut covered = 0u64;
    let mut probed = 0u64;
    let mut random_rng = StdRng::seed_from_u64(base.seed ^ RANDOM_ROUTE_SALT);
    for r in &requests {
        probe.clear();
        probe.push(r.target);
        probe.extend(
            graph
                .neighbors(r.target)
                .iter()
                .take(fleet.probe_neighbors)
                .copied(),
        );
        let s = match fleet.policy {
            FleetPolicy::Residency => {
                let could_drain = (r.arrival * drain) as u64;
                for (d, &a) in depths.iter_mut().zip(&assigned) {
                    *d = a.saturating_sub(could_drain) as usize;
                }
                let dec = dispatcher.route(&probe, &depths);
                if dec.spilled {
                    spilled[dec.gpu] += 1;
                } else {
                    routed[dec.gpu] += 1;
                }
                dec.gpu
            }
            FleetPolicy::Random => {
                let s = random_rng.gen_range(0..n);
                routed[s] += 1;
                s
            }
        };
        let score = dispatcher.score(s, &probe);
        covered += score as u64;
        probed += probe.len() as u64;
        assigned[s] += 1;
        streams[s].push(*r);
        if let Some(rz) = resizer.as_mut() {
            rz.observe(&probe, score, &plan.shard, &mut owned, &mut dispatcher);
        }
    }
    let locality = if probed > 0 {
        covered as f64 / probed as f64
    } else {
        1.0
    };

    // Run each server's full single-machine engine over its slice. A
    // single-server fleet gets no remote tier: every row is local, the
    // engine is the non-fleet engine byte-for-byte.
    let reports: Vec<ServeReport> = (0..n)
        .map(|s| {
            let server = spec.build();
            let mut cfg = base.clone();
            cfg.remote = (n > 1).then(|| RemoteConfig {
                owned: Arc::clone(&owned[s]),
                net,
                coalesce: shard_arc.as_ref().map(|shard| CoalesceConfig {
                    shard: Arc::clone(shard),
                    num_servers: n,
                    window_batches: fleet.coalesce_window,
                }),
                concurrent_servers: n,
            });
            if let Some((log, compact_threshold)) = &fleet_mutations {
                cfg.mutations = Some(MutationSource::Replay {
                    log: Arc::clone(log),
                    compact_threshold: *compact_threshold,
                });
            }
            serve_requests(graph, features, &server, &cfg, &streams[s])
        })
        .collect();

    // Fleet registry: routing outcomes, per-server summaries, and the
    // merged latency histogram. Counters and histogram buckets are
    // integers; every gauge is written exactly once.
    let registry = Registry::new();
    let mut completed = 0u64;
    let mut shed = 0u64;
    let mut remote_reads = 0u64;
    let mut remote_bytes = 0u64;
    let mut coalesced_msgs = 0u64;
    let mut dedup_hits = 0u64;
    let mut makespan = 0.0f64;
    let merged = registry.histogram("fleet.latency_us", &latency_buckets());
    for (s, report) in reports.iter().enumerate() {
        completed += report.completed;
        shed += report.shed;
        makespan = makespan.max(report.makespan_s);
        let reads = report.metrics.counter("serve.remote.reads");
        let bytes = report.metrics.counter("serve.remote.bytes");
        remote_reads += reads;
        remote_bytes += bytes;
        coalesced_msgs += report.metrics.counter("serve.remote.coalesced_msgs");
        dedup_hits += report.metrics.counter("serve.remote.dedup_hits");
        registry
            .counter(&format!("fleet.server{s}.routed"))
            .add(routed[s]);
        registry
            .counter(&format!("fleet.server{s}.spilled"))
            .add(spilled[s]);
        registry
            .counter(&format!("fleet.server{s}.shed"))
            .add(report.shed);
        registry
            .counter(&format!("fleet.server{s}.remote_reads"))
            .add(reads);
        registry
            .counter(&format!("fleet.server{s}.remote_bytes"))
            .add(bytes);
        registry
            .counter(&format!("fleet.shard{s}.vertices"))
            .add(plan.shard_sizes[s] as u64);
        let hits: u64 = report
            .metrics
            .counters
            .iter()
            .filter(|c| c.name.starts_with("cache.gpu") && c.name.ends_with(".feature_hits"))
            .map(|c| c.value)
            .sum();
        let misses: u64 = report
            .metrics
            .counters
            .iter()
            .filter(|c| c.name.starts_with("cache.gpu") && c.name.ends_with(".feature_misses"))
            .map(|c| c.value)
            .sum();
        let rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        registry
            .gauge(&format!("fleet.server{s}.hit_rate"))
            .set(rate);
        if let Some(h) = report.metrics.histogram("serve.latency_us") {
            merged.merge_counts(&h.counts, h.sum);
        }
    }
    registry.counter("fleet.offered").add(requests.len() as u64);
    registry.counter("fleet.completed").add(completed);
    registry.counter("fleet.shed").add(shed);
    registry
        .counter("fleet.replicated_rows")
        .add(plan.replicated.len() as u64);
    // Contention, coalescing, and resize telemetry register only when
    // the corresponding feature is on, so defaults-off snapshots stay
    // byte-identical to earlier releases.
    if let Some(up) = fleet.uplink {
        registry.gauge("fleet.uplink.servers").set(n as f64);
        registry
            .gauge("fleet.uplink.oversubscription")
            .set(up.oversubscription);
        registry
            .gauge("fleet.uplink.nic_serialization")
            .set(up.nic_serialization);
        registry.gauge("fleet.uplink.stretch").set(up.stretch(n));
    }
    if fleet.coalesce && n > 1 {
        registry
            .counter("fleet.uplink.coalesced_msgs")
            .add(coalesced_msgs);
        registry.counter("fleet.uplink.dedup_hits").add(dedup_hits);
    }
    // Mutation fan-out: each op is applied by its shard owner and
    // broadcast to the other servers as a fixed-size control message
    // charged through the fabric model. Registered only when churn is
    // on, so frozen-fleet snapshots keep their exact name set.
    if let Some((log, _)) = &fleet_mutations {
        let applied = log.ops.len() as u64;
        let mut owned_ops = vec![0u64; n];
        for m in &log.ops {
            let v = match m.op {
                MutationOp::InsertEdge { src, .. } | MutationOp::DeleteEdge { src, .. } => src,
                MutationOp::ChurnVertex { v } => v,
            };
            owned_ops[plan.shard[v as usize] as usize] += 1;
        }
        let notify_msgs = applied * (n as u64 - 1);
        let notify_bytes = notify_msgs * net.bytes_for_payload(MUTATION_NOTIFY_PAYLOAD_BYTES);
        registry.counter("fleet.mut.applied").add(applied);
        registry.counter("fleet.mut.notify_msgs").add(notify_msgs);
        registry.counter("fleet.mut.notify_bytes").add(notify_bytes);
        for (s, count) in owned_ops.iter().enumerate() {
            registry
                .counter(&format!("fleet.server{s}.mut_owned"))
                .add(*count);
        }
    }
    let resizes = resizer.as_ref().map_or(0, |rz| rz.resizes);
    if let Some(rz) = &resizer {
        registry.counter("fleet.resize.count").add(rz.resizes);
        registry
            .counter("fleet.resize.refill_rows")
            .add(rz.refill_rows);
        registry
            .counter("fleet.resize.refill_bytes")
            .add(rz.refill_bytes);
        registry
            .counter("fleet.resize.refill_us")
            .add((rz.refill_s * 1e6).round() as u64);
        registry
            .gauge("fleet.resize.head_rows")
            .set(rz.head.len() as f64);
    }
    let throughput = if makespan > 0.0 {
        completed as f64 / makespan
    } else {
        0.0
    };
    registry.gauge("fleet.locality").set(locality);
    registry
        .gauge("fleet.p50_us")
        .set(merged.quantile(0.50) as f64);
    registry
        .gauge("fleet.p95_us")
        .set(merged.quantile(0.95) as f64);
    registry
        .gauge("fleet.p99_us")
        .set(merged.quantile(0.99) as f64);
    registry.gauge("fleet.makespan_s").set(makespan);
    registry.gauge("fleet.throughput_rps").set(throughput);

    FleetReport {
        policy: fleet.policy,
        num_servers: n,
        offered: requests.len() as u64,
        completed,
        shed,
        p50_us: merged.quantile(0.50),
        p95_us: merged.quantile(0.95),
        p99_us: merged.quantile(0.99),
        makespan_s: makespan,
        throughput_rps: throughput,
        locality,
        replicated_rows: plan.replicated.len(),
        remote_reads,
        remote_bytes,
        remote_msgs: if fleet.coalesce && n > 1 {
            coalesced_msgs
        } else {
            remote_reads
        },
        dedup_hits,
        resizes,
        per_server: reports,
        metrics: registry.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_graph::GraphBuilder;
    use legion_serve::{ArrivalProcess, PolicyKind};

    fn tiny_graph() -> (CsrGraph, FeatureTable) {
        let mut b = GraphBuilder::new(256);
        for v in 0..256u32 {
            for d in 1..6u32 {
                b.push_edge(v, (v + d * 7) % 256);
            }
        }
        let g = b.build();
        let f = FeatureTable::zeros(256, 16);
        (g, f)
    }

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            arrival: ArrivalProcess::Poisson { rate: 20_000.0 },
            num_requests: 400,
            max_batch: 8,
            max_wait: 5e-4,
            queue_capacity: 64,
            cache_rows_per_gpu: 32,
            warmup_requests: 64,
            fanouts: vec![3, 2],
            policy: PolicyKind::Fifo,
            ..ServeConfig::default()
        }
    }

    fn tiny_fleet(n: usize) -> FleetConfig {
        FleetConfig {
            num_servers: n,
            drain_rps: Some(5_000.0),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn plan_reuses_the_edge_cut_partitioner_verbatim() {
        let (g, _) = tiny_graph();
        let plan = plan_fleet(&g, &tiny_config(), &tiny_fleet(3));
        let direct = LdgPartitioner::default().partition(&g, 3);
        assert_eq!(plan.shard, direct);
        // And it is stable across calls.
        let again = plan_fleet(&g, &tiny_config(), &tiny_fleet(3));
        assert_eq!(plan.shard, again.shard);
        assert_eq!(plan.replicated, again.replicated);
    }

    #[test]
    fn ownership_covers_shard_and_replicated_head() {
        let (g, _) = tiny_graph();
        let plan = plan_fleet(&g, &tiny_config(), &tiny_fleet(4));
        for v in 0..g.num_vertices() {
            let owner = plan.shard[v] as usize;
            assert!(plan.owned[owner][v], "shard owner must own its vertex");
        }
        for &v in &plan.replicated {
            for o in &plan.owned {
                assert!(o[v as usize], "replicated head must be owned everywhere");
            }
        }
        let sizes: usize = plan.shard_sizes.iter().sum();
        assert_eq!(sizes, g.num_vertices());
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let (g, f) = tiny_graph();
        let spec = legion_hw::ServerSpec::custom(2, 1 << 30, 1);
        let run = || serve_fleet(&g, &f, &spec, &tiny_config(), &tiny_fleet(2));
        let a = run();
        let b = run();
        assert_eq!(
            serde_json::to_string(&a.metrics).unwrap(),
            serde_json::to_string(&b.metrics).unwrap()
        );
        assert_eq!(a.p99_us, b.p99_us);
    }

    /// Frozen fleets (`mutations: None`, the default) must register
    /// none of the mutation counter families — fleet-level or inside
    /// any per-server snapshot.
    #[test]
    fn mutations_off_fleet_registers_no_mutation_metrics() {
        let (g, f) = tiny_graph();
        let spec = legion_hw::ServerSpec::custom(2, 1 << 30, 1);
        let report = serve_fleet(&g, &f, &spec, &tiny_config(), &tiny_fleet(2));
        assert!(!report
            .metrics
            .counters
            .iter()
            .any(|c| c.name.starts_with("fleet.mut.") || c.name.contains(".mut_owned")));
        for per in &report.per_server {
            assert!(!per.metrics.counters.iter().any(|c| {
                c.name.starts_with("graph.mut.") || c.name.starts_with("serve.invalidate.")
            }));
        }
    }

    /// A churn-enabled fleet replays one global log on every server
    /// (identical overlay state cluster-wide), meters the owner-side
    /// applies and the `n - 1` notification fan-out through the fabric
    /// model, and stays deterministic.
    #[test]
    fn churn_fleet_replays_one_log_and_meters_the_notify_fanout() {
        let (g, f) = tiny_graph();
        let spec = legion_hw::ServerSpec::custom(2, 1 << 30, 1);
        let mut config = tiny_config();
        config.mutations = Some(MutationSource::Generate(legion_serve::ChurnConfig {
            ops_per_sec: 100_000.0,
            ..legion_serve::ChurnConfig::default()
        }));
        let n = 2usize;
        let run = || serve_fleet(&g, &f, &spec, &config, &tiny_fleet(n));
        let report = run();
        assert_eq!(report.completed + report.shed, report.offered);
        let applied = report.metrics.counter("fleet.mut.applied");
        assert!(applied > 0, "churn must stream mutations into the fleet");
        assert_eq!(
            report.metrics.counter("fleet.mut.notify_msgs"),
            applied * (n as u64 - 1),
            "every op notifies the other servers"
        );
        assert!(report.metrics.counter("fleet.mut.notify_bytes") > 0);
        let owned: u64 = (0..n)
            .map(|s| {
                report
                    .metrics
                    .counter(&format!("fleet.server{s}.mut_owned"))
            })
            .sum();
        assert_eq!(owned, applied, "shard owners partition the stream");
        // Every server replayed the same global log: identical applied
        // op totals in each per-server snapshot.
        let per_applied: Vec<u64> = report
            .per_server
            .iter()
            .map(|r| {
                r.metrics.counter("graph.mut.inserts") + r.metrics.counter("graph.mut.deletes")
            })
            .collect();
        assert!(per_applied[0] > 0);
        assert!(
            per_applied.iter().all(|&a| a == per_applied[0]),
            "replicated replay must apply the same ops everywhere"
        );
        let again = run();
        assert_eq!(
            serde_json::to_string(&report.metrics).unwrap(),
            serde_json::to_string(&again.metrics).unwrap()
        );
    }

    #[test]
    fn conservation_holds_cluster_wide() {
        let (g, f) = tiny_graph();
        let spec = legion_hw::ServerSpec::custom(2, 1 << 30, 1);
        let report = serve_fleet(&g, &f, &spec, &tiny_config(), &tiny_fleet(3));
        assert_eq!(report.offered, 400);
        assert_eq!(report.completed + report.shed, report.offered);
        let per_server: u64 = report.per_server.iter().map(|r| r.offered).sum();
        assert_eq!(per_server, report.offered, "streams partition the workload");
        let routed: u64 = (0..3)
            .map(|s| {
                report.metrics.counter(&format!("fleet.server{s}.routed"))
                    + report.metrics.counter(&format!("fleet.server{s}.spilled"))
            })
            .sum();
        assert_eq!(routed, report.offered);
    }

    #[test]
    fn single_server_fleet_matches_the_non_fleet_engine() {
        let (g, f) = tiny_graph();
        let spec = legion_hw::ServerSpec::custom(2, 1 << 30, 1);
        let config = tiny_config();
        let fleet = serve_fleet(&g, &f, &spec, &config, &tiny_fleet(1));
        let solo = legion_serve::serve(&g, &f, &spec.build(), &config);
        assert_eq!(fleet.per_server.len(), 1);
        assert_eq!(
            serde_json::to_string(&fleet.per_server[0].metrics).unwrap(),
            serde_json::to_string(&solo.metrics).unwrap()
        );
        assert_eq!(fleet.completed, solo.completed);
        assert_eq!(fleet.remote_reads, 0);
    }

    #[test]
    fn residency_routing_is_more_local_than_random() {
        let (g, f) = tiny_graph();
        let spec = legion_hw::ServerSpec::custom(2, 1 << 30, 1);
        let config = tiny_config();
        let res = serve_fleet(&g, &f, &spec, &config, &tiny_fleet(4));
        let rand = serve_fleet(
            &g,
            &f,
            &spec,
            &config,
            &FleetConfig {
                policy: FleetPolicy::Random,
                ..tiny_fleet(4)
            },
        );
        assert!(
            res.locality > rand.locality,
            "residency locality {} must beat random {}",
            res.locality,
            rand.locality
        );
        assert!(
            res.remote_reads < rand.remote_reads,
            "residency remote reads {} must undercut random {}",
            res.remote_reads,
            rand.remote_reads
        );
        assert!(rand.remote_reads > 0, "random routing must go remote");
    }

    #[test]
    fn coalescing_cuts_messages_and_bytes_but_not_reads() {
        let (g, f) = tiny_graph();
        let spec = legion_hw::ServerSpec::custom(2, 1 << 30, 1);
        let config = tiny_config();
        // Random routing maximizes remote traffic, giving coalescing
        // the most to chew on.
        let base_fleet = FleetConfig {
            policy: FleetPolicy::Random,
            ..tiny_fleet(3)
        };
        let off = serve_fleet(&g, &f, &spec, &config, &base_fleet);
        let on = serve_fleet(
            &g,
            &f,
            &spec,
            &config,
            &FleetConfig {
                coalesce: true,
                ..base_fleet
            },
        );
        assert!(off.remote_reads > 0, "random routing must go remote");
        assert_eq!(
            off.remote_msgs, off.remote_reads,
            "uncoalesced wire messages are one per row"
        );
        assert!(
            on.remote_msgs < on.remote_reads,
            "coalescing must batch rows into fewer messages ({} vs {} reads)",
            on.remote_msgs,
            on.remote_reads
        );
        assert!(
            on.remote_bytes < off.remote_bytes,
            "per-owner batches must shed per-message overhead ({} vs {})",
            on.remote_bytes,
            off.remote_bytes
        );
        assert!(
            on.dedup_hits > 0,
            "the staging window must absorb repeated rows"
        );
        assert_eq!(
            on.metrics.counter("fleet.uplink.coalesced_msgs"),
            on.remote_msgs
        );
        assert_eq!(
            off.metrics.counter("fleet.uplink.coalesced_msgs"),
            0,
            "coalescing metrics must not register when the feature is off"
        );
    }

    #[test]
    fn uplink_contention_slows_the_fleet_and_registers_gauges() {
        let (g, f) = tiny_graph();
        let spec = legion_hw::ServerSpec::custom(2, 1 << 30, 1);
        let config = tiny_config();
        let base_fleet = FleetConfig {
            policy: FleetPolicy::Random,
            ..tiny_fleet(3)
        };
        let calm = serve_fleet(&g, &f, &spec, &config, &base_fleet);
        let uplink = UplinkConfig {
            oversubscription: 8.0,
            nic_serialization: 0.5,
        };
        let contended = serve_fleet(
            &g,
            &f,
            &spec,
            &config,
            &FleetConfig {
                uplink: Some(uplink),
                ..base_fleet
            },
        );
        assert!(
            contended.makespan_s >= calm.makespan_s,
            "a contended uplink cannot finish earlier ({} vs {})",
            contended.makespan_s,
            calm.makespan_s
        );
        assert_eq!(
            contended.metrics.gauge("fleet.uplink.stretch"),
            uplink.stretch(3)
        );
        let json = serde_json::to_string(&calm.metrics).unwrap();
        assert!(
            !json.contains("fleet.uplink"),
            "uplink gauges must not register when contention is off"
        );
    }

    #[test]
    fn drift_resize_commits_and_recovers_locality() {
        let (g, f) = tiny_graph();
        let spec = legion_hw::ServerSpec::custom(2, 1 << 30, 1);
        // A hard mid-stream rotation: the warmup head goes cold at
        // request 600.
        let config = ServeConfig {
            num_requests: 1200,
            drift_period: 600,
            drift_stride: 96,
            ..tiny_config()
        };
        let frozen = serve_fleet(&g, &f, &spec, &config, &tiny_fleet(3));
        let resized = serve_fleet(
            &g,
            &f,
            &spec,
            &config,
            &FleetConfig {
                resize_on_drift: true,
                ..tiny_fleet(3)
            },
        );
        assert!(resized.resizes >= 1, "the rotation must trigger a resize");
        // At this toy scale (weak Zipf over 256 vertices) replication
        // barely moves locality either way; the realistic-scale
        // recovery claim lives in servectl's drift scenario. Here we
        // pin that tracking the window never costs more than a point.
        assert!(
            resized.locality >= frozen.locality - 0.01,
            "a resized head must stay within a point of a frozen one ({} vs {})",
            resized.locality,
            frozen.locality
        );
        assert_eq!(
            resized.metrics.counter("fleet.resize.count"),
            resized.resizes
        );
        assert!(
            resized.metrics.counter("fleet.resize.refill_rows") > 0,
            "growing the head must refill replicas over the wire"
        );
        let json = serde_json::to_string(&frozen.metrics).unwrap();
        assert!(
            !json.contains("fleet.resize"),
            "resize counters must not register when the feature is off"
        );
    }

    #[test]
    fn defaults_off_fleet_config_is_byte_identical_to_explicit_off() {
        let (g, f) = tiny_graph();
        let spec = legion_hw::ServerSpec::custom(2, 1 << 30, 1);
        let config = tiny_config();
        let implicit = serve_fleet(&g, &f, &spec, &config, &tiny_fleet(2));
        let explicit = serve_fleet(
            &g,
            &f,
            &spec,
            &config,
            &FleetConfig {
                uplink: None,
                coalesce: false,
                resize_on_drift: false,
                ..tiny_fleet(2)
            },
        );
        assert_eq!(
            serde_json::to_string(&implicit.metrics).unwrap(),
            serde_json::to_string(&explicit.metrics).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "num_servers must be positive")]
    fn zero_servers_invalid() {
        FleetConfig {
            num_servers: 0,
            ..FleetConfig::default()
        }
        .validate();
    }
}
