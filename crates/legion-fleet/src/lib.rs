//! Scale-out serving fleet: the fourth tier of the hierarchy.
//!
//! Legion's unified cache exploits the *machine-internal* hierarchy
//! (GPU → NVLink clique → machine). This crate extends the same design
//! one level up — **cluster → machine → clique → GPU** — by simulating
//! `N` full multi-GPU servers behind a shard-residency front tier:
//!
//! * **Server sharding** ([`plan_fleet`]) — the graph is partitioned
//!   across servers with the *same* edge-cut partitioner
//!   ([`legion_partition::LdgPartitioner`]) the machine tier uses for
//!   NVLink cliques, so neighborhoods stay server-local for the same
//!   reason they stay clique-local.
//! * **Hot-head replication** — the globally hottest vertices (ranked
//!   by the warmup hotness curve, exactly the signal the machine-tier
//!   planner uses) are replicated to *every* server, sized by the same
//!   marginal-gain rule as
//!   [`legion_serve::adaptive_replicated_rows`]: replicate row `r`
//!   while serving it locally on all `N` servers beats giving its `N-1`
//!   copies' slots to the shard tail.
//! * **Front-tier routing** ([`serve_fleet`]) — each request is scored
//!   against every server's owned set (shard + replicated head) by a
//!   [`legion_router::Dispatcher`] over single-server groups: coverage
//!   first, projected queue depth as the tie-break, spill to the
//!   least-loaded server past the threshold. The server-level decision
//!   happens *before* `legion-router` picks a clique inside the chosen
//!   machine.
//! * **Cross-server reads** — a routed server still misses sometimes;
//!   rows it does not own are charged through
//!   [`legion_hw::NetModel`] (per-message overhead + bandwidth
//!   saturation + round-trip waves, integer-ns quantized) via
//!   [`legion_serve::RemoteConfig`], so mis-routed traffic costs wire
//!   time instead of being silently local.
//!
//! Each server then runs the full single-machine engine
//! ([`legion_serve::serve_requests`]) — its own cliques, caches,
//! admission queues, and (optionally) out-of-core store — over its
//! routed slice of the global request stream.
//!
//! # Determinism
//!
//! The global workload is generated from the base config's seed with
//! the exact code `legion_serve::serve` uses; routing is a pure
//! function of the plan and arrival order (the random baseline draws
//! from its own salted seed); every per-server run is the deterministic
//! single-machine engine; and the fleet snapshot is integers plus
//! once-written gauges. The same `(graph, spec, config, fleet)` tuple
//! therefore reproduces byte-identical [`FleetReport::metrics`], and a
//! single-server fleet is byte-identical to the non-fleet engine.
//!
//! # Fleet telemetry
//!
//! | Metric | Kind | Meaning |
//! |---|---|---|
//! | `fleet.offered` / `fleet.completed` / `fleet.shed` | counter | cluster-wide request conservation triple |
//! | `fleet.server{s}.routed` / `.spilled` | counter | front-tier placements into server `s` (coverage-chosen vs load-spilled) |
//! | `fleet.server{s}.shed` | counter | requests server `s` shed at its own admission queues |
//! | `fleet.server{s}.remote_reads` / `.remote_bytes` | counter | cross-server feature reads server `s` issued, and their wire bytes |
//! | `fleet.server{s}.hit_rate` | gauge | server `s`'s GPU feature-cache hit rate |
//! | `fleet.replicated_rows` | counter | hot-head rows replicated to every server |
//! | `fleet.shard{s}.vertices` | counter | vertices the edge-cut partitioner assigned to server `s` |
//! | `fleet.locality` | gauge | mean fraction of each routed probe resident on the chosen server |
//! | `fleet.latency_us` | histogram | per-server latency histograms merged cluster-wide |
//! | `fleet.p50_us` / `.p95_us` / `.p99_us` | gauge | quantiles of the merged latency histogram |
//! | `fleet.makespan_s` / `.throughput_rps` | gauge | cluster run summary (max per-server makespan; completed / makespan) |

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use legion_graph::{CsrGraph, FeatureTable, VertexId};
use legion_hw::{NetGeneration, NetModel, ServerSpec};
use legion_partition::{LdgPartitioner, Partitioner};
use legion_router::Dispatcher;
use legion_serve::{
    adaptive_replicated_rows, estimate_capacity_rps, generate_workload_classed, latency_buckets,
    serve_requests, warmup_hot_vertices_weighted, ClassSampler, PriorityClass, RemoteConfig,
    Request, ServeConfig, ServeReport, TargetSampler,
};
use legion_telemetry::{Registry, Snapshot};

/// Salt of the random-server baseline's RNG stream.
const RANDOM_ROUTE_SALT: u64 = 0xf1ee_7a11_0c8e_55aa;

/// How the front tier picks a server for each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetPolicy {
    /// Shard-residency routing: coverage of the request's probe against
    /// each server's owned set, projected load as the tie-break, spill
    /// past the threshold — the fleet-level mirror of the machine
    /// tier's residency router.
    Residency,
    /// Uniform random server choice from a salted seed — the baseline
    /// the head-to-head sweep compares against.
    Random,
}

impl FleetPolicy {
    /// Stable lowercase name for tables and JSON rows.
    pub fn as_str(&self) -> &'static str {
        match self {
            FleetPolicy::Residency => "residency",
            FleetPolicy::Random => "random",
        }
    }
}

/// Configuration of the fleet tier around a base [`ServeConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Simulated servers in the fleet.
    pub num_servers: usize,
    /// Cluster fabric connecting them; defaults to a kernel-bypass
    /// RDMA fabric at 400 G line rate ([`NetModel::rdma`]) — the class
    /// of interconnect billion-scale GPU clusters deploy.
    pub net: NetModel,
    /// Front-tier routing policy.
    pub policy: FleetPolicy,
    /// Leading neighbors of each target added to the routing probe
    /// (mirrors [`legion_serve::RouterConfig`]'s probe).
    pub probe_neighbors: usize,
    /// Fraction of a server's total queue capacity
    /// (`queue_capacity * num_gpus`) at which the front tier spills to
    /// the least-loaded server.
    pub spill_threshold: f64,
    /// Fixed replicated-head size; `None` (the default) sizes it
    /// adaptively from the warmup hotness curve.
    pub replicate_rows: Option<usize>,
    /// Per-server drain rate the projected-load model assumes,
    /// requests/s; `None` measures it with
    /// [`legion_serve::estimate_capacity_rps`] on one probe server.
    pub drain_rps: Option<f64>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            num_servers: 2,
            net: NetModel::rdma(NetGeneration::Eth400G),
            policy: FleetPolicy::Residency,
            probe_neighbors: 8,
            spill_threshold: 0.75,
            replicate_rows: None,
            drain_rps: None,
        }
    }
}

impl FleetConfig {
    /// Checks the invariants [`serve_fleet`] relies on.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on the first violated
    /// invariant.
    pub fn validate(&self) {
        assert!(self.num_servers > 0, "num_servers must be positive");
        assert!(
            self.spill_threshold > 0.0 && self.spill_threshold <= 1.0,
            "spill_threshold must be in (0, 1]"
        );
        if let Some(d) = self.drain_rps {
            assert!(d > 0.0, "drain_rps must be positive");
        }
    }
}

/// The fleet's placement: which server owns which vertex.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// `shard[v]` — the server the edge-cut partitioner assigned vertex
    /// `v` to (all zeros for a single-server fleet).
    pub shard: Vec<u32>,
    /// Vertices of each shard, per server.
    pub shard_sizes: Vec<usize>,
    /// The globally hot head replicated to every server, descending
    /// warmup hotness.
    pub replicated: Vec<VertexId>,
    /// Per-server ownership bitmaps (shard ∪ replicated head) — what
    /// [`RemoteConfig`] hands each server's engine.
    pub owned: Vec<Arc<Vec<bool>>>,
}

/// Shards the graph across `fleet.num_servers` servers with the LDG
/// edge-cut partitioner and replicates the warmup-hot head to every
/// server, sized by the adaptive marginal-gain rule (or the fixed
/// [`FleetConfig::replicate_rows`] override). Deterministic: the
/// partitioner is RNG-free and the hotness curve derives from
/// `base.seed`.
pub fn plan_fleet(graph: &CsrGraph, base: &ServeConfig, fleet: &FleetConfig) -> FleetPlan {
    fleet.validate();
    let n = fleet.num_servers;
    let num_vertices = graph.num_vertices();
    let shard = if n > 1 {
        LdgPartitioner::default().partition(graph, n)
    } else {
        vec![0u32; num_vertices]
    };
    let mut shard_sizes = vec![0usize; n];
    for &s in &shard {
        shard_sizes[s as usize] += 1;
    }
    let replicated: Vec<VertexId> = if n > 1 {
        let all: Vec<VertexId> = (0..num_vertices as VertexId).collect();
        let mut warm = TargetSampler::new(all, base.zipf_exponent, 0, 0);
        let (hot, weight) = warmup_hot_vertices_weighted(
            graph,
            &mut warm,
            base.warmup_requests,
            &base.fanouts,
            base.seed,
        );
        // The replication budget is one shard's worth of rows: the head
        // a server replicates displaces shard-tail residency of the
        // same size, which is exactly the trade the adaptive rule
        // prices (`G` = servers instead of cliques).
        let budget = shard_sizes.iter().copied().max().unwrap_or(0);
        let rows = fleet
            .replicate_rows
            .unwrap_or_else(|| adaptive_replicated_rows(&hot, &weight, budget, n))
            .min(hot.len());
        hot.into_iter().take(rows).collect()
    } else {
        Vec::new()
    };
    let owned: Vec<Arc<Vec<bool>>> = (0..n)
        .map(|s| {
            let mut o: Vec<bool> = shard.iter().map(|&p| p as usize == s).collect();
            for &v in &replicated {
                o[v as usize] = true;
            }
            Arc::new(o)
        })
        .collect();
    FleetPlan {
        shard,
        shard_sizes,
        replicated,
        owned,
    }
}

/// Summary of one fleet run; `metrics` is the fleet-level registry
/// snapshot (per-server routing counters, merged latency histogram,
/// locality), and `per_server` holds each machine's full
/// [`ServeReport`].
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Front-tier routing policy of the run.
    pub policy: FleetPolicy,
    /// Servers in the fleet.
    pub num_servers: usize,
    /// Requests offered by the global workload.
    pub offered: u64,
    /// Requests completed across all servers.
    pub completed: u64,
    /// Requests shed across all servers.
    pub shed: u64,
    /// Cluster-wide latency quantiles (merged histogram), microseconds.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Latest per-server completion, simulated seconds.
    pub makespan_s: f64,
    /// Completed requests per simulated second, cluster-wide.
    pub throughput_rps: f64,
    /// Mean fraction of each routed probe resident on the chosen
    /// server.
    pub locality: f64,
    /// Hot-head rows replicated to every server.
    pub replicated_rows: usize,
    /// Cross-server feature reads, cluster-wide.
    pub remote_reads: u64,
    /// Wire bytes those reads moved.
    pub remote_bytes: u64,
    /// Each server's full single-machine report, in server order.
    pub per_server: Vec<ServeReport>,
    /// Fleet-level telemetry snapshot.
    pub metrics: Snapshot,
}

/// Runs the full fleet simulation: plan placement, generate the global
/// workload from `base.seed` (byte-identical to
/// [`legion_serve::serve`]'s stream), route every request through the
/// front tier, run each server's engine over its slice, and merge the
/// results.
///
/// Each server is built fresh from `spec`. A single-server fleet skips
/// the remote tier entirely, so its one [`ServeReport`] is
/// byte-identical to `legion_serve::serve` on the same config.
///
/// # Panics
///
/// Panics if `base` or `fleet` is invalid, or if `base.remote` is
/// already set (the fleet owns that field).
pub fn serve_fleet(
    graph: &CsrGraph,
    features: &FeatureTable,
    spec: &ServerSpec,
    base: &ServeConfig,
    fleet: &FleetConfig,
) -> FleetReport {
    base.validate();
    fleet.validate();
    assert!(
        base.remote.is_none(),
        "base.remote is owned by the fleet tier"
    );
    let n = fleet.num_servers;
    let plan = plan_fleet(graph, base, fleet);

    // The global open-loop workload — the exact stream `serve` would
    // generate for this config.
    let all_targets: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
    let mut target_sampler = TargetSampler::new(
        all_targets,
        base.zipf_exponent,
        base.drift_period,
        base.drift_stride,
    );
    if base.classes.mix[PriorityClass::Interactive.index()] > 0.0 {
        target_sampler = target_sampler.with_interactive_boost(base.classes.interactive_boost);
    }
    let mut class_sampler = ClassSampler::new(base.classes.mix, base.seed);
    let mut workload_rng = StdRng::seed_from_u64(base.seed);
    let requests = generate_workload_classed(
        &base.arrival,
        &mut target_sampler,
        &mut class_sampler,
        base.num_requests,
        &mut workload_rng,
    );

    // Front tier: a Dispatcher over single-server groups, scored on
    // each server's owned set. Projected load is analytic — a server's
    // backlog is what the front tier sent it minus what a server
    // draining at `drain_rps` since time zero could have retired —
    // because the fleet router cannot see inside remote machines'
    // queues, only its own bookkeeping.
    let server_backlog = base.queue_capacity * spec.num_gpus;
    let spill_len = (fleet.spill_threshold * server_backlog as f64).ceil() as usize;
    let groups: Vec<Vec<usize>> = (0..n).map(|s| vec![s]).collect();
    let mut dispatcher = Dispatcher::new(groups, graph.num_vertices(), spill_len);
    let mut owned_list = Vec::new();
    for s in 0..n {
        owned_list.clear();
        owned_list.extend(
            plan.owned[s]
                .iter()
                .enumerate()
                .filter(|&(_, &o)| o)
                .map(|(v, _)| v as VertexId),
        );
        dispatcher.refresh_group(s, &owned_list);
    }
    let drain = fleet
        .drain_rps
        .unwrap_or_else(|| estimate_capacity_rps(graph, features, &spec.build(), base));

    let mut routed = vec![0u64; n];
    let mut spilled = vec![0u64; n];
    let mut assigned = vec![0u64; n];
    let mut depths = vec![0usize; n];
    let mut streams: Vec<Vec<Request>> = vec![Vec::new(); n];
    let mut probe: Vec<VertexId> = Vec::new();
    let mut covered = 0u64;
    let mut probed = 0u64;
    let mut random_rng = StdRng::seed_from_u64(base.seed ^ RANDOM_ROUTE_SALT);
    for r in &requests {
        probe.clear();
        probe.push(r.target);
        probe.extend(
            graph
                .neighbors(r.target)
                .iter()
                .take(fleet.probe_neighbors)
                .copied(),
        );
        let s = match fleet.policy {
            FleetPolicy::Residency => {
                let could_drain = (r.arrival * drain) as u64;
                for (d, &a) in depths.iter_mut().zip(&assigned) {
                    *d = a.saturating_sub(could_drain) as usize;
                }
                let dec = dispatcher.route(&probe, &depths);
                if dec.spilled {
                    spilled[dec.gpu] += 1;
                } else {
                    routed[dec.gpu] += 1;
                }
                dec.gpu
            }
            FleetPolicy::Random => {
                let s = random_rng.gen_range(0..n);
                routed[s] += 1;
                s
            }
        };
        covered += dispatcher.score(s, &probe) as u64;
        probed += probe.len() as u64;
        assigned[s] += 1;
        streams[s].push(*r);
    }
    let locality = if probed > 0 {
        covered as f64 / probed as f64
    } else {
        1.0
    };

    // Run each server's full single-machine engine over its slice. A
    // single-server fleet gets no remote tier: every row is local, the
    // engine is the non-fleet engine byte-for-byte.
    let net = fleet.net;
    let reports: Vec<ServeReport> = (0..n)
        .map(|s| {
            let server = spec.build();
            let mut cfg = base.clone();
            cfg.remote = (n > 1).then(|| RemoteConfig {
                owned: Arc::clone(&plan.owned[s]),
                net,
            });
            serve_requests(graph, features, &server, &cfg, &streams[s])
        })
        .collect();

    // Fleet registry: routing outcomes, per-server summaries, and the
    // merged latency histogram. Counters and histogram buckets are
    // integers; every gauge is written exactly once.
    let registry = Registry::new();
    let mut completed = 0u64;
    let mut shed = 0u64;
    let mut remote_reads = 0u64;
    let mut remote_bytes = 0u64;
    let mut makespan = 0.0f64;
    let merged = registry.histogram("fleet.latency_us", &latency_buckets());
    for (s, report) in reports.iter().enumerate() {
        completed += report.completed;
        shed += report.shed;
        makespan = makespan.max(report.makespan_s);
        let reads = report.metrics.counter("serve.remote.reads");
        let bytes = report.metrics.counter("serve.remote.bytes");
        remote_reads += reads;
        remote_bytes += bytes;
        registry
            .counter(&format!("fleet.server{s}.routed"))
            .add(routed[s]);
        registry
            .counter(&format!("fleet.server{s}.spilled"))
            .add(spilled[s]);
        registry
            .counter(&format!("fleet.server{s}.shed"))
            .add(report.shed);
        registry
            .counter(&format!("fleet.server{s}.remote_reads"))
            .add(reads);
        registry
            .counter(&format!("fleet.server{s}.remote_bytes"))
            .add(bytes);
        registry
            .counter(&format!("fleet.shard{s}.vertices"))
            .add(plan.shard_sizes[s] as u64);
        let hits: u64 = report
            .metrics
            .counters
            .iter()
            .filter(|c| c.name.starts_with("cache.gpu") && c.name.ends_with(".feature_hits"))
            .map(|c| c.value)
            .sum();
        let misses: u64 = report
            .metrics
            .counters
            .iter()
            .filter(|c| c.name.starts_with("cache.gpu") && c.name.ends_with(".feature_misses"))
            .map(|c| c.value)
            .sum();
        let rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        registry
            .gauge(&format!("fleet.server{s}.hit_rate"))
            .set(rate);
        if let Some(h) = report.metrics.histogram("serve.latency_us") {
            merged.merge_counts(&h.counts, h.sum);
        }
    }
    registry.counter("fleet.offered").add(requests.len() as u64);
    registry.counter("fleet.completed").add(completed);
    registry.counter("fleet.shed").add(shed);
    registry
        .counter("fleet.replicated_rows")
        .add(plan.replicated.len() as u64);
    let throughput = if makespan > 0.0 {
        completed as f64 / makespan
    } else {
        0.0
    };
    registry.gauge("fleet.locality").set(locality);
    registry
        .gauge("fleet.p50_us")
        .set(merged.quantile(0.50) as f64);
    registry
        .gauge("fleet.p95_us")
        .set(merged.quantile(0.95) as f64);
    registry
        .gauge("fleet.p99_us")
        .set(merged.quantile(0.99) as f64);
    registry.gauge("fleet.makespan_s").set(makespan);
    registry.gauge("fleet.throughput_rps").set(throughput);

    FleetReport {
        policy: fleet.policy,
        num_servers: n,
        offered: requests.len() as u64,
        completed,
        shed,
        p50_us: merged.quantile(0.50),
        p95_us: merged.quantile(0.95),
        p99_us: merged.quantile(0.99),
        makespan_s: makespan,
        throughput_rps: throughput,
        locality,
        replicated_rows: plan.replicated.len(),
        remote_reads,
        remote_bytes,
        per_server: reports,
        metrics: registry.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_graph::GraphBuilder;
    use legion_serve::{ArrivalProcess, PolicyKind};

    fn tiny_graph() -> (CsrGraph, FeatureTable) {
        let mut b = GraphBuilder::new(256);
        for v in 0..256u32 {
            for d in 1..6u32 {
                b.push_edge(v, (v + d * 7) % 256);
            }
        }
        let g = b.build();
        let f = FeatureTable::zeros(256, 16);
        (g, f)
    }

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            arrival: ArrivalProcess::Poisson { rate: 20_000.0 },
            num_requests: 400,
            max_batch: 8,
            max_wait: 5e-4,
            queue_capacity: 64,
            cache_rows_per_gpu: 32,
            warmup_requests: 64,
            fanouts: vec![3, 2],
            policy: PolicyKind::Fifo,
            ..ServeConfig::default()
        }
    }

    fn tiny_fleet(n: usize) -> FleetConfig {
        FleetConfig {
            num_servers: n,
            drain_rps: Some(5_000.0),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn plan_reuses_the_edge_cut_partitioner_verbatim() {
        let (g, _) = tiny_graph();
        let plan = plan_fleet(&g, &tiny_config(), &tiny_fleet(3));
        let direct = LdgPartitioner::default().partition(&g, 3);
        assert_eq!(plan.shard, direct);
        // And it is stable across calls.
        let again = plan_fleet(&g, &tiny_config(), &tiny_fleet(3));
        assert_eq!(plan.shard, again.shard);
        assert_eq!(plan.replicated, again.replicated);
    }

    #[test]
    fn ownership_covers_shard_and_replicated_head() {
        let (g, _) = tiny_graph();
        let plan = plan_fleet(&g, &tiny_config(), &tiny_fleet(4));
        for v in 0..g.num_vertices() {
            let owner = plan.shard[v] as usize;
            assert!(plan.owned[owner][v], "shard owner must own its vertex");
        }
        for &v in &plan.replicated {
            for o in &plan.owned {
                assert!(o[v as usize], "replicated head must be owned everywhere");
            }
        }
        let sizes: usize = plan.shard_sizes.iter().sum();
        assert_eq!(sizes, g.num_vertices());
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let (g, f) = tiny_graph();
        let spec = legion_hw::ServerSpec::custom(2, 1 << 30, 1);
        let run = || serve_fleet(&g, &f, &spec, &tiny_config(), &tiny_fleet(2));
        let a = run();
        let b = run();
        assert_eq!(
            serde_json::to_string(&a.metrics).unwrap(),
            serde_json::to_string(&b.metrics).unwrap()
        );
        assert_eq!(a.p99_us, b.p99_us);
    }

    #[test]
    fn conservation_holds_cluster_wide() {
        let (g, f) = tiny_graph();
        let spec = legion_hw::ServerSpec::custom(2, 1 << 30, 1);
        let report = serve_fleet(&g, &f, &spec, &tiny_config(), &tiny_fleet(3));
        assert_eq!(report.offered, 400);
        assert_eq!(report.completed + report.shed, report.offered);
        let per_server: u64 = report.per_server.iter().map(|r| r.offered).sum();
        assert_eq!(per_server, report.offered, "streams partition the workload");
        let routed: u64 = (0..3)
            .map(|s| {
                report.metrics.counter(&format!("fleet.server{s}.routed"))
                    + report.metrics.counter(&format!("fleet.server{s}.spilled"))
            })
            .sum();
        assert_eq!(routed, report.offered);
    }

    #[test]
    fn single_server_fleet_matches_the_non_fleet_engine() {
        let (g, f) = tiny_graph();
        let spec = legion_hw::ServerSpec::custom(2, 1 << 30, 1);
        let config = tiny_config();
        let fleet = serve_fleet(&g, &f, &spec, &config, &tiny_fleet(1));
        let solo = legion_serve::serve(&g, &f, &spec.build(), &config);
        assert_eq!(fleet.per_server.len(), 1);
        assert_eq!(
            serde_json::to_string(&fleet.per_server[0].metrics).unwrap(),
            serde_json::to_string(&solo.metrics).unwrap()
        );
        assert_eq!(fleet.completed, solo.completed);
        assert_eq!(fleet.remote_reads, 0);
    }

    #[test]
    fn residency_routing_is_more_local_than_random() {
        let (g, f) = tiny_graph();
        let spec = legion_hw::ServerSpec::custom(2, 1 << 30, 1);
        let config = tiny_config();
        let res = serve_fleet(&g, &f, &spec, &config, &tiny_fleet(4));
        let rand = serve_fleet(
            &g,
            &f,
            &spec,
            &config,
            &FleetConfig {
                policy: FleetPolicy::Random,
                ..tiny_fleet(4)
            },
        );
        assert!(
            res.locality > rand.locality,
            "residency locality {} must beat random {}",
            res.locality,
            rand.locality
        );
        assert!(
            res.remote_reads < rand.remote_reads,
            "residency remote reads {} must undercut random {}",
            res.remote_reads,
            rand.remote_reads
        );
        assert!(rand.remote_reads > 0, "random routing must go remote");
    }

    #[test]
    #[should_panic(expected = "num_servers must be positive")]
    fn zero_servers_invalid() {
        FleetConfig {
            num_servers: 0,
            ..FleetConfig::default()
        }
        .validate();
    }
}
