//! Quiver-plus: NVLink-clique hash cache, replicated across cliques
//! (§3.1, §6.3.1).
//!
//! "Quiver replicates feature cache between NVLink cliques and averagely
//! hashes the features among GPUs in the same NVLink clique." The plus
//! variant swaps Quiver's in-degree hotness for the pre-sampling metric
//! (as the paper does for the Figure 9 comparison). Cache capacity scales
//! with the clique size but stops growing beyond it — the Figure 2
//! flat-line once GPU count exceeds `K_g`.

use legion_partition::detect_cliques;
use legion_sampling::access::{CacheLayout, TopologyPlacement};
use legion_sampling::{presample, KHopSampler};

use crate::policy::{build_feature_cache_hashed, hotness_order, in_degree_hotness};
use crate::{BuildContext, ScheduleKind, SystemError, SystemSetup};

/// Hotness metric for the Quiver cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuiverHotness {
    /// Original Quiver: vertex in-degree.
    InDegree,
    /// Quiver-plus: pre-sampling access frequency.
    Presampling,
}

/// Builds the Quiver(-plus) setup.
///
/// # Errors
///
/// [`SystemError::GpuOom`] / [`SystemError::CpuOom`] on capacity failures.
pub fn setup(ctx: &BuildContext<'_>, hotness: QuiverHotness) -> Result<SystemSetup, SystemError> {
    let n = ctx.server.num_gpus();
    let needed = ctx.dataset.topology_bytes() + ctx.dataset.feature_bytes();
    let available = ctx.server.spec().cpu_memory;
    if needed > available {
        return Err(SystemError::CpuOom { needed, available });
    }
    let cliques = detect_cliques(ctx.server.nvlink());
    let tablets = ctx.even_tablets(n);
    let global_hotness = match hotness {
        QuiverHotness::InDegree => in_degree_hotness(&ctx.dataset.graph),
        QuiverHotness::Presampling => {
            let gpus: Vec<usize> = (0..n).collect();
            let sampler = KHopSampler::new(ctx.fanouts.clone());
            let pres = presample(
                &ctx.dataset.graph,
                &ctx.dataset.features,
                ctx.server,
                &gpus,
                &tablets,
                &sampler,
                ctx.batch_size,
                ctx.presample_epochs,
                ctx.seed,
            );
            pres.h_f.column_wise_sum()
        }
    };
    let order = hotness_order(&global_hotness);
    let budget = ctx.per_gpu_cache_budget();
    // The same clique-level cache content is replicated in every clique.
    let clique_caches = cliques
        .iter()
        .map(|gpus| {
            build_feature_cache_hashed(
                &ctx.dataset.features,
                ctx.dataset.graph.num_vertices(),
                ctx.server,
                gpus,
                &order,
                budget,
            )
        })
        .collect::<Result<Vec<_>, _>>()
        .map_err(SystemError::GpuOom)?;
    Ok(SystemSetup {
        name: match hotness {
            QuiverHotness::InDegree => "Quiver".to_string(),
            QuiverHotness::Presampling => "Quiver-plus".to_string(),
        },
        layout: CacheLayout::from_cliques(n, clique_caches),
        tablets,
        topology_placement: TopologyPlacement::CpuUva,
        schedule: ScheduleKind::Pipelined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_graph::dataset::spec_by_name;
    use legion_hw::ServerSpec;

    fn ctx_on<'a>(
        ds: &'a legion_graph::Dataset,
        server: &'a legion_hw::MultiGpuServer,
    ) -> BuildContext<'a> {
        BuildContext {
            dataset: ds,
            server,
            fanouts: vec![5, 5],
            batch_size: 64,
            presample_epochs: 1,
            reserved_per_gpu: 0,
            cache_budget_override: None,
            seed: 5,
        }
    }

    #[test]
    fn quiver_replicates_across_cliques() {
        let ds = spec_by_name("PR").unwrap().instantiate(2000, 1);
        let mut spec = ServerSpec::custom(4, 1 << 30, 2);
        spec.gpu_memory = 32 * 1024;
        let server = spec.build();
        let s = setup(&ctx_on(&ds, &server), QuiverHotness::Presampling).unwrap();
        assert_eq!(s.layout.cliques.len(), 2, "two NVLink pairs");
        // Same vertex set cached in both cliques (replication).
        let nv = ds.graph.num_vertices() as u32;
        let in0: Vec<bool> = (0..nv)
            .map(|v| s.layout.cliques[0].has_feature(v))
            .collect();
        let in1: Vec<bool> = (0..nv)
            .map(|v| s.layout.cliques[1].has_feature(v))
            .collect();
        assert_eq!(in0, in1);
        // But within a clique, no duplication between the two GPUs.
        let cc = &s.layout.cliques[0];
        assert!(cc.cache(0).feature_entries() > 0);
        assert!(cc.cache(1).feature_entries() > 0);
    }

    #[test]
    fn in_degree_variant_differs_from_presampling() {
        let ds = spec_by_name("PA").unwrap().instantiate(2000, 1);
        let mut spec = ServerSpec::custom(2, 1 << 30, 2);
        spec.gpu_memory = 16 * 1024;
        let server = spec.build();
        let a = setup(&ctx_on(&ds, &server), QuiverHotness::InDegree).unwrap();
        server.reset();
        let b = setup(&ctx_on(&ds, &server), QuiverHotness::Presampling).unwrap();
        assert_eq!(a.name, "Quiver");
        assert_eq!(b.name, "Quiver-plus");
    }

    #[test]
    fn single_clique_server_has_one_cache() {
        let ds = spec_by_name("PR").unwrap().instantiate(2000, 1);
        let mut spec = ServerSpec::dgx_a100();
        spec.gpu_memory = 1 << 20;
        let server = spec.build();
        let s = setup(&ctx_on(&ds, &server), QuiverHotness::Presampling).unwrap();
        assert_eq!(s.layout.cliques.len(), 1);
        assert_eq!(s.layout.cliques[0].gpus().len(), 8);
    }
}
