//! Baseline GNN-system models: DGL (UVA), GNNLab, PaGraph, PaGraph-plus
//! and Quiver-plus.
//!
//! Each baseline is a *setup builder*: it decides where topology and
//! features live, which GPU trains which seeds, what each GPU caches, and
//! which execution schedule applies — producing a [`SystemSetup`] the
//! shared epoch runner (in `legion-core`) executes and meters. The
//! builders allocate real (simulated) device memory, so the paper's OOM
//! outcomes (GNNLab on UKS/DGX-V100, PaGraph's CPU OOM; Figure 8) fall
//! out of the same capacity checks.
//!
//! * [`dgl`] — no cache, topology + features in CPU, UVA access, serial
//!   execution,
//! * [`gnnlab`] — factored design (dedicated sampling GPUs holding the
//!   full topology), globally-replicated pre-sampling-hotness feature
//!   cache,
//! * [`pagraph`] — self-reliant partitions with L-hop extension, CPU
//!   sampling, in-degree feature cache; plus the PaGraph-plus variant
//!   (edge-cut partitioning + pre-sampling hotness),
//! * [`quiver`] — NVLink-clique hash cache replicated across cliques, and
//! * [`policy`] — the shared cache-construction helpers.
//!
//! # Examples
//!
//! ```
//! use legion_baselines::{dgl, BuildContext, ScheduleKind};
//! use legion_graph::dataset::spec_by_name;
//! use legion_hw::ServerSpec;
//!
//! let dataset = spec_by_name("PR").unwrap().instantiate(2000, 1);
//! let server = ServerSpec::dgx_v100().build();
//! let ctx = BuildContext {
//!     dataset: &dataset,
//!     server: &server,
//!     fanouts: vec![25, 10],
//!     batch_size: 128,
//!     presample_epochs: 1,
//!     reserved_per_gpu: 0,
//!     cache_budget_override: None,
//!     seed: 1,
//! };
//! let setup = dgl::setup(&ctx).unwrap();
//! assert_eq!(setup.schedule, ScheduleKind::Serial);
//! assert!(setup.layout.cliques.is_empty()); // DGL caches nothing.
//! ```

pub mod dgl;
pub mod gnnlab;
pub mod pagraph;
pub mod policy;
pub mod quiver;

use legion_graph::{Dataset, VertexId};
use legion_hw::{GpuId, HwError, MultiGpuServer};
use legion_sampling::access::{CacheLayout, TopologyPlacement};

/// How the system schedules sampling vs. training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Legion-style inter-batch pipeline on every GPU.
    Pipelined,
    /// Serial prepare-then-train per batch (DGL).
    Serial,
    /// GNNLab's factored design: dedicated sampler and trainer GPUs.
    Factored {
        /// GPUs doing nothing but sampling (hold the full topology).
        samplers: Vec<GpuId>,
        /// GPUs doing nothing but training (hold the feature cache).
        trainers: Vec<GpuId>,
    },
    /// CPU worker threads do the sampling (PaGraph).
    CpuSampling,
}

/// Everything the epoch runner needs to execute one system.
#[derive(Debug)]
pub struct SystemSetup {
    /// Display name ("DGL", "GNNLab", ...).
    pub name: String,
    /// Cache layout (may be empty).
    pub layout: CacheLayout,
    /// Per-GPU training seed tablets (indexed by GPU id; samplers in a
    /// factored design have empty tablets).
    pub tablets: Vec<Vec<VertexId>>,
    /// Where the full topology lives for sampling.
    pub topology_placement: TopologyPlacement,
    /// Execution schedule.
    pub schedule: ScheduleKind,
}

/// Why a system could not be set up — the paper's "x" marks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// A GPU allocation failed.
    GpuOom(HwError),
    /// Host memory exceeded (PaGraph's redundant storage, DGL on graphs
    /// larger than CPU memory).
    CpuOom {
        /// Bytes the system would need.
        needed: u64,
        /// Host bytes available.
        available: u64,
    },
    /// The configuration is impossible (e.g. factored design with < 2
    /// GPUs).
    Infeasible(String),
}

impl From<HwError> for SystemError {
    fn from(e: HwError) -> Self {
        SystemError::GpuOom(e)
    }
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::GpuOom(e) => write!(f, "GPU OOM: {e}"),
            SystemError::CpuOom { needed, available } => {
                write!(f, "CPU OOM: need {needed} bytes, have {available}")
            }
            SystemError::Infeasible(why) => write!(f, "infeasible: {why}"),
        }
    }
}

impl std::error::Error for SystemError {}

/// Shared inputs for all setup builders.
pub struct BuildContext<'a> {
    /// The dataset (graph + features + training set).
    pub dataset: &'a Dataset,
    /// The simulated server whose memory/counters are used.
    pub server: &'a MultiGpuServer,
    /// Sampling fan-outs (outermost first).
    pub fanouts: Vec<usize>,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Pre-sampling epochs for hotness-based policies.
    pub presample_epochs: usize,
    /// Bytes reserved per GPU for model/intermediate buffers.
    pub reserved_per_gpu: u64,
    /// When set, caps the per-GPU cache budget (used by the fixed
    /// cache-ratio experiments, e.g. "5% |V| on every GPU" in Figs. 2/3/9).
    pub cache_budget_override: Option<u64>,
    /// RNG seed.
    pub seed: u64,
}

impl<'a> BuildContext<'a> {
    /// Per-GPU cache budget after the training reservation (or the
    /// explicit override when one is set).
    pub fn per_gpu_cache_budget(&self) -> u64 {
        let free = self
            .server
            .spec()
            .gpu_memory
            .saturating_sub(self.reserved_per_gpu);
        match self.cache_budget_override {
            Some(cap) => cap.min(free),
            None => free,
        }
    }

    /// Splits the training set evenly across `k` GPUs by hash (the
    /// global-shuffle systems' effective per-GPU seed assignment).
    pub fn even_tablets(&self, k: usize) -> Vec<Vec<VertexId>> {
        legion_partition::hash::hash_split(&self.dataset.train_vertices, k)
    }
}
