//! PaGraph and PaGraph-plus (§3.1).
//!
//! **PaGraph** partitions with a self-reliant strategy, extends each
//! partition with the full L-hop neighborhood of its training vertices
//! (duplicating hub vertices everywhere), samples on the CPU, and caches
//! the highest *in-degree* vertices of each partition on its GPU. The
//! L-hop duplication also inflates host memory — "PaGraph runs out of the
//! CPU memory for most graphs except PR on DGX-V100" (§6.2) — which this
//! module reproduces with an explicit host-memory check.
//!
//! **PaGraph-plus** is the paper's improved variant (§3.1): XtraPulp-style
//! edge-cut-minimizing partitioning (our LDG) and a pre-sampling hotness
//! metric instead of in-degree, run inside the Legion runtime (GPU
//! sampling, pipelined). It fixes the duplication but keeps per-GPU
//! caches, whose hit rates are unbalanced across partitions (Figure 3).

use legion_graph::VertexId;
use legion_sampling::access::{CacheLayout, TopologyPlacement};
use legion_sampling::{presample, KHopSampler};

use legion_partition::pagraph::pagraph_partition;
use legion_partition::{HashPartitioner, LdgPartitioner, Partitioner};

use crate::policy::{build_feature_cache_single, hotness_order, in_degree_hotness};
use crate::{BuildContext, ScheduleKind, SystemError, SystemSetup};

/// Host-memory inflation factor for PaGraph's redundant intermediate
/// buffers on top of the duplicated L-hop partition storage (§6.2).
pub const PAGRAPH_HOST_OVERHEAD: f64 = 1.5;

/// Builds the original PaGraph setup.
///
/// # Errors
///
/// [`SystemError::CpuOom`] when the duplicated partitions plus buffers
/// exceed host memory (the common case on large graphs).
pub fn setup(ctx: &BuildContext<'_>) -> Result<SystemSetup, SystemError> {
    let n = ctx.server.num_gpus();
    let hops = ctx.fanouts.len() as u32;
    let plan = pagraph_partition(
        &ctx.dataset.graph,
        &ctx.dataset.train_vertices,
        n,
        hops,
        &HashPartitioner,
    );
    // Host memory: every partition stores its closure's topology and
    // features; hubs are stored once per partition.
    let dup = plan.duplication_factor();
    let base = (ctx.dataset.topology_bytes() + ctx.dataset.feature_bytes()) as f64;
    let needed = (base * dup * PAGRAPH_HOST_OVERHEAD) as u64;
    let available = ctx.server.spec().cpu_memory;
    if needed > available {
        return Err(SystemError::CpuOom { needed, available });
    }
    // Per-GPU cache: highest in-degree vertices of the GPU's own
    // (extended) partition.
    let in_deg = in_degree_hotness(&ctx.dataset.graph);
    let budget = ctx.per_gpu_cache_budget();
    let mut cliques = Vec::with_capacity(n);
    let mut tablets: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    for (gpu, part) in plan.partitions.iter().enumerate() {
        let mut order = part.vertices.clone();
        order.sort_by(|&a, &b| in_deg[b as usize].cmp(&in_deg[a as usize]).then(a.cmp(&b)));
        cliques.push(
            build_feature_cache_single(
                &ctx.dataset.features,
                ctx.dataset.graph.num_vertices(),
                ctx.server,
                gpu,
                &order,
                budget,
            )
            .map_err(SystemError::GpuOom)?,
        );
        tablets.push(part.train_vertices.clone());
    }
    Ok(SystemSetup {
        name: "PaGraph".to_string(),
        layout: CacheLayout::from_cliques(n, cliques),
        tablets,
        topology_placement: TopologyPlacement::CpuUva,
        schedule: ScheduleKind::CpuSampling,
    })
}

/// Builds the PaGraph-plus cache design (inside the Legion runtime).
pub fn setup_plus(ctx: &BuildContext<'_>) -> Result<SystemSetup, SystemError> {
    let n = ctx.server.num_gpus();
    let partitioner = LdgPartitioner::default();
    let assignment = partitioner.partition(&ctx.dataset.graph, n);
    let mut tablets: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for &v in &ctx.dataset.train_vertices {
        tablets[assignment[v as usize] as usize].push(v);
    }
    // Per-GPU pre-sampling on the GPU's own tablet.
    let gpus: Vec<usize> = (0..n).collect();
    let sampler = KHopSampler::new(ctx.fanouts.clone());
    let pres = presample(
        &ctx.dataset.graph,
        &ctx.dataset.features,
        ctx.server,
        &gpus,
        &tablets,
        &sampler,
        ctx.batch_size,
        ctx.presample_epochs,
        ctx.seed,
    );
    let budget = ctx.per_gpu_cache_budget();
    let mut cliques = Vec::with_capacity(n);
    for gpu in 0..n {
        let order = hotness_order(pres.h_f.row(gpu));
        cliques.push(
            build_feature_cache_single(
                &ctx.dataset.features,
                ctx.dataset.graph.num_vertices(),
                ctx.server,
                gpu,
                &order,
                budget,
            )
            .map_err(SystemError::GpuOom)?,
        );
    }
    Ok(SystemSetup {
        name: "PaGraph-plus".to_string(),
        layout: CacheLayout::from_cliques(n, cliques),
        tablets,
        topology_placement: TopologyPlacement::CpuUva,
        schedule: ScheduleKind::Pipelined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_graph::dataset::spec_by_name;
    use legion_hw::{ServerSpec, GIB};

    fn ctx_on<'a>(
        ds: &'a legion_graph::Dataset,
        server: &'a legion_hw::MultiGpuServer,
    ) -> BuildContext<'a> {
        BuildContext {
            dataset: ds,
            server,
            fanouts: vec![5, 5],
            batch_size: 64,
            presample_epochs: 1,
            reserved_per_gpu: 0,
            cache_budget_override: None,
            seed: 4,
        }
    }

    #[test]
    fn pagraph_ooms_on_small_host() {
        let ds = spec_by_name("PA").unwrap().instantiate(2000, 1);
        let mut spec = ServerSpec::custom(4, GIB, 2);
        // Host fits the raw dataset but not the duplicated partitions.
        spec.cpu_memory = ds.topology_bytes() + ds.feature_bytes();
        let server = spec.build();
        assert!(matches!(
            setup(&ctx_on(&ds, &server)),
            Err(SystemError::CpuOom { .. })
        ));
    }

    #[test]
    fn pagraph_sets_up_on_big_host() {
        let ds = spec_by_name("PR").unwrap().instantiate(2000, 1);
        let server = ServerSpec::custom(4, GIB, 2).build();
        let s = setup(&ctx_on(&ds, &server)).unwrap();
        assert_eq!(s.schedule, ScheduleKind::CpuSampling);
        assert_eq!(s.layout.cliques.len(), 4);
        // Tablets cover the training set.
        let total: usize = s.tablets.iter().map(|t| t.len()).sum();
        assert_eq!(total, ds.train_vertices.len());
    }

    #[test]
    fn pagraph_plus_uses_pipelined_gpu_sampling() {
        let ds = spec_by_name("PR").unwrap().instantiate(2000, 1);
        let server = ServerSpec::custom(4, GIB, 2).build();
        let s = setup_plus(&ctx_on(&ds, &server)).unwrap();
        assert_eq!(s.schedule, ScheduleKind::Pipelined);
        assert_eq!(s.layout.cliques.len(), 4);
        for cc in &s.layout.cliques {
            assert_eq!(cc.gpus().len(), 1, "per-GPU caches, no NVLink use");
        }
    }

    #[test]
    fn pagraph_plus_caches_differ_across_gpus() {
        // Different partitions have different hot sets; unlike GNNLab the
        // replicas must NOT be identical.
        let ds = spec_by_name("PR").unwrap().instantiate(1000, 1);
        let mut spec = ServerSpec::custom(2, GIB, 2);
        spec.gpu_memory = 64 * 1024; // Small cache to force selectivity.
        let server = spec.build();
        let s = setup_plus(&ctx_on(&ds, &server)).unwrap();
        let c0: Vec<bool> = (0..1000)
            .map(|v| s.layout.cliques[0].has_feature(v))
            .collect();
        let c1: Vec<bool> = (0..1000)
            .map(|v| s.layout.cliques[1].has_feature(v))
            .collect();
        assert_ne!(c0, c1, "partition-local caches should differ");
    }
}
