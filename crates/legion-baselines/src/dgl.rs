//! DGL v0.9 in UVA mode (§6.2 baseline configuration).
//!
//! "DGL uses the UVA mode, where sampling is performed in GPU, and the
//! topology and features are all stored in CPU memory." No GPU cache, no
//! pipeline: every topology and feature byte crosses PCIe every epoch.

use legion_sampling::access::{CacheLayout, TopologyPlacement};

use crate::{BuildContext, ScheduleKind, SystemError, SystemSetup};

/// Builds the DGL(UVA) setup.
///
/// # Errors
///
/// [`SystemError::CpuOom`] when graph + features exceed host memory.
pub fn setup(ctx: &BuildContext<'_>) -> Result<SystemSetup, SystemError> {
    let needed = ctx.dataset.topology_bytes() + ctx.dataset.feature_bytes();
    let available = ctx.server.spec().cpu_memory;
    if needed > available {
        return Err(SystemError::CpuOom { needed, available });
    }
    let n = ctx.server.num_gpus();
    Ok(SystemSetup {
        name: "DGL".to_string(),
        layout: CacheLayout::none(n),
        tablets: ctx.even_tablets(n),
        topology_placement: TopologyPlacement::CpuUva,
        schedule: ScheduleKind::Serial,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_graph::dataset::spec_by_name;
    use legion_hw::ServerSpec;

    #[test]
    fn dgl_has_no_cache_and_serial_schedule() {
        let ds = spec_by_name("PR").unwrap().instantiate(1000, 1);
        let server = ServerSpec::dgx_v100().build();
        let ctx = BuildContext {
            dataset: &ds,
            server: &server,
            fanouts: vec![5, 5],
            batch_size: 64,
            presample_epochs: 1,
            reserved_per_gpu: 0,
            cache_budget_override: None,
            seed: 1,
        };
        let s = setup(&ctx).unwrap();
        assert!(s.layout.cliques.is_empty());
        assert_eq!(s.schedule, ScheduleKind::Serial);
        assert_eq!(s.topology_placement, TopologyPlacement::CpuUva);
        let total: usize = s.tablets.iter().map(|t| t.len()).sum();
        assert_eq!(total, ds.train_vertices.len());
        // No GPU memory consumed.
        assert_eq!(server.allocated_bytes(0), 0);
    }

    #[test]
    fn dgl_cpu_ooms_on_oversized_graph() {
        let ds = spec_by_name("PR").unwrap().instantiate(1000, 1);
        let mut spec = ServerSpec::dgx_v100();
        spec.cpu_memory = 1024; // Absurdly small host.
        let server = spec.build();
        let ctx = BuildContext {
            dataset: &ds,
            server: &server,
            fanouts: vec![5, 5],
            batch_size: 64,
            presample_epochs: 1,
            reserved_per_gpu: 0,
            cache_budget_override: None,
            seed: 1,
        };
        assert!(matches!(setup(&ctx), Err(SystemError::CpuOom { .. })));
    }
}
