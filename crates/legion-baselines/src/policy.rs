//! Shared cache-construction helpers for the baseline policies.

use legion_cache::CliqueCache;
use legion_graph::{CsrGraph, FeatureTable, VertexId};
use legion_hw::{GpuId, HwError, MultiGpuServer};
use legion_partition::hash::hash_part_salted;

/// Orders all vertices by descending hotness (ties: ascending id).
pub fn hotness_order(hotness: &[u64]) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = (0..hotness.len() as VertexId).collect();
    order.sort_by(|&a, &b| {
        hotness[b as usize]
            .cmp(&hotness[a as usize])
            .then(a.cmp(&b))
    });
    order
}

/// In-degree of every vertex — PaGraph's and Quiver's original hotness
/// metric ("PaGraph and Quiver use the in-degree of vertexes as the
/// hotness metric", §7).
pub fn in_degree_hotness(graph: &CsrGraph) -> Vec<u64> {
    let t = graph.transpose();
    (0..graph.num_vertices() as VertexId)
        .map(|v| t.degree(v))
        .collect()
}

/// Number of feature rows fitting in `bytes`.
pub fn rows_in_budget(features: &FeatureTable, bytes: u64) -> usize {
    let row = features.row_bytes();
    bytes.checked_div(row).unwrap_or(0) as usize
}

/// Builds one single-GPU feature cache holding the first `budget_bytes`
/// worth of `order`, allocating on the server.
pub fn build_feature_cache_single(
    features: &FeatureTable,
    num_vertices: usize,
    server: &MultiGpuServer,
    gpu: GpuId,
    order: &[VertexId],
    budget_bytes: u64,
) -> Result<CliqueCache, HwError> {
    let rows = rows_in_budget(features, budget_bytes).min(order.len());
    server.alloc(gpu, rows as u64 * features.row_bytes())?;
    let mut cc = CliqueCache::new(vec![gpu], num_vertices, features.dim());
    for &v in &order[..rows] {
        cc.insert_feature(0, v, features.row(v));
    }
    Ok(cc)
}

/// Replicates the same top-of-`order` cache on every listed GPU
/// (GNNLab's multi-GPU cache, §3.1). Returns one single-GPU clique per
/// GPU — replicas never serve peers.
pub fn build_feature_caches_replicated(
    features: &FeatureTable,
    num_vertices: usize,
    server: &MultiGpuServer,
    gpus: &[GpuId],
    order: &[VertexId],
    per_gpu_bytes: u64,
) -> Result<Vec<CliqueCache>, HwError> {
    gpus.iter()
        .map(|&g| {
            build_feature_cache_single(features, num_vertices, server, g, order, per_gpu_bytes)
        })
        .collect()
}

/// Builds one NVLink-clique cache where the top `K_g * capacity` vertices
/// of `order` are hash-distributed across the clique's GPUs (Quiver's
/// intra-clique mechanism: "averagely hashes the features among GPUs in
/// the same NVLink clique", §3.1).
pub fn build_feature_cache_hashed(
    features: &FeatureTable,
    num_vertices: usize,
    server: &MultiGpuServer,
    clique_gpus: &[GpuId],
    order: &[VertexId],
    per_gpu_bytes: u64,
) -> Result<CliqueCache, HwError> {
    let kg = clique_gpus.len();
    let per_gpu_rows = rows_in_budget(features, per_gpu_bytes);
    let mut cc = CliqueCache::new(clique_gpus.to_vec(), num_vertices, features.dim());
    let mut filled = vec![0usize; kg];
    for &v in order {
        if filled.iter().all(|&f| f >= per_gpu_rows) {
            break;
        }
        let slot = hash_part_salted(v, kg, 2) as usize;
        if filled[slot] >= per_gpu_rows {
            // This GPU's share is full; the vertex is skipped (hash
            // distribution does not rebalance).
            continue;
        }
        cc.insert_feature(slot, v, features.row(v));
        filled[slot] += 1;
    }
    for (slot, &g) in clique_gpus.iter().enumerate() {
        server.alloc(g, filled[slot] as u64 * features.row_bytes())?;
    }
    Ok(cc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_graph::GraphBuilder;
    use legion_hw::ServerSpec;

    fn features(n: usize) -> FeatureTable {
        FeatureTable::from_flat((0..n * 2).map(|x| x as f32).collect(), 2)
    }

    #[test]
    fn hotness_order_sorts_desc_with_id_ties() {
        assert_eq!(hotness_order(&[5, 9, 9, 1]), vec![1, 2, 0, 3]);
    }

    #[test]
    fn in_degree_hotness_counts_incoming() {
        let g = GraphBuilder::new(3)
            .edge(0, 2)
            .edge(1, 2)
            .edge(2, 0)
            .build();
        assert_eq!(in_degree_hotness(&g), vec![1, 0, 2]);
    }

    #[test]
    fn single_cache_respects_budget() {
        let f = features(10);
        let server = ServerSpec::custom(1, 1 << 20, 1).build();
        let order: Vec<VertexId> = (0..10).collect();
        // 3 rows of 8 bytes fit in 25 bytes.
        let cc = build_feature_cache_single(&f, 10, &server, 0, &order, 25).unwrap();
        assert_eq!(cc.cache(0).feature_entries(), 3);
        assert!(cc.has_feature(0) && cc.has_feature(2));
        assert!(!cc.has_feature(3));
        assert_eq!(server.allocated_bytes(0), 24);
    }

    #[test]
    fn replicated_caches_have_identical_contents() {
        let f = features(8);
        let server = ServerSpec::custom(4, 1 << 20, 1).build();
        let order: Vec<VertexId> = vec![7, 6, 5, 4, 3, 2, 1, 0];
        let caches =
            build_feature_caches_replicated(&f, 8, &server, &[0, 1, 2, 3], &order, 16).unwrap();
        assert_eq!(caches.len(), 4);
        for cc in &caches {
            assert!(cc.has_feature(7) && cc.has_feature(6));
            assert!(!cc.has_feature(5));
        }
    }

    #[test]
    fn hashed_cache_distributes_without_duplication() {
        let f = features(100);
        let server = ServerSpec::custom(2, 1 << 20, 2).build();
        let order: Vec<VertexId> = (0..100).collect();
        let cc = build_feature_cache_hashed(&f, 100, &server, &[0, 1], &order, 10 * 8).unwrap();
        let total = cc.cache(0).feature_entries() + cc.cache(1).feature_entries();
        assert!(total <= 20);
        assert!(total >= 15, "hash split should fill most slots: {total}");
        // No vertex cached twice.
        let mut seen = 0;
        for v in 0..100u32 {
            if cc.has_feature(v) {
                seen += 1;
            }
        }
        assert_eq!(seen, total);
    }

    #[test]
    fn oom_propagates() {
        let f = features(10);
        let server = ServerSpec::custom(1, 4, 1).build();
        let order: Vec<VertexId> = (0..10).collect();
        let err = build_feature_cache_single(&f, 10, &server, 0, &order, 80);
        assert!(matches!(err, Err(HwError::OutOfMemory { .. })));
    }

    #[test]
    fn zero_budget_zero_rows() {
        let f = features(4);
        assert_eq!(rows_in_budget(&f, 0), 0);
        assert_eq!(rows_in_budget(&f, 7), 0);
        assert_eq!(rows_in_budget(&f, 8), 1);
    }
}
