//! GNNLab's factored design (§3.1, §7).
//!
//! GNNLab dedicates some GPUs exclusively to sampling — each sampler
//! holds the *entire* graph topology ("the topology has to be completely
//! stored in a single GPU", §3.2) — and the rest exclusively to training,
//! each trainer holding an identical (replicated) feature cache of the
//! globally hottest vertices, ranked by a pre-sampling pass.
//!
//! Consequences this module reproduces:
//!
//! * topology larger than a GPU ⇒ out-of-memory (UKS on DGX-V100 in
//!   Figure 8),
//! * cache capacity capped at one GPU regardless of GPU count (the
//!   flat-lining curves of Figure 2),
//! * only the trainer subset contributes training throughput (§6.2).

use legion_sampling::access::{CacheLayout, TopologyPlacement};
use legion_sampling::{presample, KHopSampler};

use crate::policy::{build_feature_caches_replicated, hotness_order};
use crate::{BuildContext, ScheduleKind, SystemError, SystemSetup};

/// Builds the GNNLab setup with `num_samplers` dedicated sampling GPUs.
///
/// # Errors
///
/// * [`SystemError::Infeasible`] if the split leaves no trainers/samplers,
/// * [`SystemError::GpuOom`] if the topology replica or the feature cache
///   does not fit,
/// * [`SystemError::CpuOom`] if host memory cannot hold the dataset.
pub fn setup(ctx: &BuildContext<'_>, num_samplers: usize) -> Result<SystemSetup, SystemError> {
    let n = ctx.server.num_gpus();
    if num_samplers == 0 || num_samplers >= n {
        return Err(SystemError::Infeasible(format!(
            "factored split {num_samplers}/{} needs both groups non-empty",
            n - num_samplers
        )));
    }
    let needed = ctx.dataset.topology_bytes() + ctx.dataset.feature_bytes();
    let available = ctx.server.spec().cpu_memory;
    if needed > available {
        return Err(SystemError::CpuOom { needed, available });
    }
    let samplers: Vec<usize> = (0..num_samplers).collect();
    let trainers: Vec<usize> = (num_samplers..n).collect();

    // Each sampler GPU holds the full topology (plus reservation).
    let topo_bytes = ctx.dataset.topology_bytes();
    for &g in &samplers {
        ctx.server
            .alloc(g, topo_bytes + ctx.reserved_per_gpu)
            .map_err(SystemError::GpuOom)?;
    }

    // Pre-sampling on trainer tablets (global shuffle) for the hotness
    // rank; GNNLab's cache is keyed on global access frequency.
    let tablets = ctx.even_tablets(trainers.len());
    let sampler_alg = KHopSampler::new(ctx.fanouts.clone());
    let pres = presample(
        &ctx.dataset.graph,
        &ctx.dataset.features,
        ctx.server,
        &trainers,
        &tablets,
        &sampler_alg,
        ctx.batch_size,
        ctx.presample_epochs,
        ctx.seed,
    );
    let global_hotness = pres.h_f.column_wise_sum();
    let order = hotness_order(&global_hotness);

    // Identical feature cache replicated on every trainer.
    let per_gpu_budget = ctx.per_gpu_cache_budget();
    let cliques = build_feature_caches_replicated(
        &ctx.dataset.features,
        ctx.dataset.graph.num_vertices(),
        ctx.server,
        &trainers,
        &order,
        per_gpu_budget,
    )
    .map_err(SystemError::GpuOom)?;

    // Tablets indexed by GPU id: samplers own none.
    let mut tablets_by_gpu = vec![Vec::new(); n];
    for (i, &g) in trainers.iter().enumerate() {
        tablets_by_gpu[g] = tablets[i].clone();
    }

    Ok(SystemSetup {
        name: format!("GNNLab({}s/{}t)", samplers.len(), trainers.len()),
        layout: CacheLayout::from_cliques(n, cliques),
        tablets: tablets_by_gpu,
        // Samplers hold the topology locally; the runner treats sampling
        // as PCIe-free, which ReplicatedGpu expresses.
        topology_placement: TopologyPlacement::ReplicatedGpu,
        schedule: ScheduleKind::Factored { samplers, trainers },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_graph::dataset::spec_by_name;
    use legion_hw::{ServerSpec, GIB};

    fn ctx_on<'a>(
        ds: &'a legion_graph::Dataset,
        server: &'a legion_hw::MultiGpuServer,
    ) -> BuildContext<'a> {
        BuildContext {
            dataset: ds,
            server,
            fanouts: vec![5, 5],
            batch_size: 64,
            presample_epochs: 1,
            reserved_per_gpu: 0,
            cache_budget_override: None,
            seed: 3,
        }
    }

    #[test]
    fn factored_setup_allocates_topology_on_samplers() {
        let ds = spec_by_name("PR").unwrap().instantiate(1000, 1);
        let server = ServerSpec::custom(4, GIB, 2).build();
        let s = setup(&ctx_on(&ds, &server), 1).unwrap();
        match &s.schedule {
            ScheduleKind::Factored { samplers, trainers } => {
                assert_eq!(samplers, &vec![0]);
                assert_eq!(trainers, &vec![1, 2, 3]);
            }
            other => panic!("wrong schedule {other:?}"),
        }
        // Sampler GPU holds the topology.
        assert_eq!(server.allocated_bytes(0), ds.topology_bytes());
        // Trainers hold identical caches (same byte count).
        assert_eq!(server.allocated_bytes(1), server.allocated_bytes(2));
        assert!(server.allocated_bytes(1) > 0);
        // Sampler GPUs train nothing.
        assert!(s.tablets[0].is_empty());
        assert!(!s.tablets[1].is_empty());
    }

    #[test]
    fn topology_bigger_than_gpu_is_oom() {
        let ds = spec_by_name("PR").unwrap().instantiate(1000, 1);
        // GPU smaller than the topology.
        let server = ServerSpec::custom(4, ds.topology_bytes() / 2, 2).build();
        assert!(matches!(
            setup(&ctx_on(&ds, &server), 1),
            Err(SystemError::GpuOom(_))
        ));
    }

    #[test]
    fn degenerate_splits_rejected() {
        let ds = spec_by_name("PR").unwrap().instantiate(1000, 1);
        let server = ServerSpec::custom(4, GIB, 2).build();
        assert!(matches!(
            setup(&ctx_on(&ds, &server), 0),
            Err(SystemError::Infeasible(_))
        ));
        assert!(matches!(
            setup(&ctx_on(&ds, &server), 4),
            Err(SystemError::Infeasible(_))
        ));
    }
}
