//! PCIe bandwidth and transaction model.
//!
//! Two paper observations drive this module:
//!
//! * Figure 4a: effective PCIe throughput collapses for small payloads —
//!   "a large number of sampling PCIe transactions with small payload sizes
//!   will increase the CPU-GPU PCIe contention and lead to low bandwidth
//!   utilization" (§3.2). We model this with a latency/overhead term per
//!   request: `throughput(p) = peak * p / (p + overhead)`.
//! * Equation 8: PCM counts one transaction per transferred cache line
//!   (`CLS`, 64 bytes on the paper's machines), so moving one `D`-dim
//!   feature row costs `ceil(D * 4 / CLS)` transactions.

/// PCIe generation of the host links (Table 1: 3.0x16 or 4.0x16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcieGeneration {
    /// PCIe 3.0 x16 — ~16 GB/s raw, ~13 GB/s achievable.
    Gen3x16,
    /// PCIe 4.0 x16 — ~32 GB/s raw, ~26 GB/s achievable.
    Gen4x16,
}

impl PcieGeneration {
    /// Achievable peak bandwidth in bytes/s for large sequential payloads.
    pub fn peak_bandwidth(self) -> f64 {
        match self {
            PcieGeneration::Gen3x16 => 13.0e9,
            PcieGeneration::Gen4x16 => 26.0e9,
        }
    }
}

/// Transferred cache-line size used by PCM transaction counting; "CLS
/// equals 64 in our machine settings" (§4.3.2).
pub const DEFAULT_CLS: u64 = 64;

/// Per-request overhead in equivalent bytes: header + completion latency.
/// Chosen so that 64 B random reads achieve well under 10% of peak and
/// ~64 KiB payloads exceed 99% — matching the shape of Figure 4a.
pub const DEFAULT_REQUEST_OVERHEAD_BYTES: f64 = 512.0;

/// Analytic PCIe link model.
///
/// # Examples
///
/// ```
/// use legion_hw::{PcieGeneration, PcieModel};
///
/// let pcie = PcieModel::new(PcieGeneration::Gen3x16);
/// // A 128-dim f32 feature row costs ceil(512 / 64) = 8 transactions.
/// assert_eq!(pcie.transactions_for_payload(512), 8);
/// // Small payloads waste most of the link.
/// assert!(pcie.effective_bandwidth(64.0) < 0.2 * pcie.peak_bandwidth());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieModel {
    generation: PcieGeneration,
    cls: u64,
    overhead_bytes: f64,
}

impl PcieModel {
    /// A model with default CLS and request overhead.
    pub fn new(generation: PcieGeneration) -> Self {
        Self {
            generation,
            cls: DEFAULT_CLS,
            overhead_bytes: DEFAULT_REQUEST_OVERHEAD_BYTES,
        }
    }

    /// Overrides the cache-line size.
    ///
    /// # Panics
    ///
    /// Panics if `cls == 0`.
    pub fn with_cls(mut self, cls: u64) -> Self {
        assert!(cls > 0, "cache line size must be positive");
        self.cls = cls;
        self
    }

    /// Overrides the per-request overhead.
    pub fn with_overhead(mut self, bytes: f64) -> Self {
        self.overhead_bytes = bytes;
        self
    }

    /// The link generation.
    pub fn generation(&self) -> PcieGeneration {
        self.generation
    }

    /// Cache-line size (`CLS`).
    #[inline]
    pub fn cls(&self) -> u64 {
        self.cls
    }

    /// Peak achievable bandwidth in bytes/s.
    #[inline]
    pub fn peak_bandwidth(&self) -> f64 {
        self.generation.peak_bandwidth()
    }

    /// Effective throughput in bytes/s when every request carries
    /// `payload_bytes` of useful data (Figure 4a's x-axis).
    pub fn effective_bandwidth(&self, payload_bytes: f64) -> f64 {
        if payload_bytes <= 0.0 {
            return 0.0;
        }
        self.peak_bandwidth() * payload_bytes / (payload_bytes + self.overhead_bytes)
    }

    /// PCM transactions for a single request of `payload_bytes`
    /// (`ceil(payload / CLS)`, minimum 1 for a non-empty payload).
    #[inline]
    pub fn transactions_for_payload(&self, payload_bytes: u64) -> u64 {
        payload_bytes.div_ceil(self.cls)
    }

    /// Seconds to move `total_bytes` issued as requests of
    /// `payload_bytes` each.
    pub fn transfer_seconds(&self, total_bytes: u64, payload_bytes: f64) -> f64 {
        if total_bytes == 0 {
            return 0.0;
        }
        total_bytes as f64 / self.effective_bandwidth(payload_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_bandwidths_ordered_by_generation() {
        assert!(
            PcieGeneration::Gen4x16.peak_bandwidth() > PcieGeneration::Gen3x16.peak_bandwidth()
        );
    }

    #[test]
    fn effective_bandwidth_monotone_in_payload() {
        let m = PcieModel::new(PcieGeneration::Gen3x16);
        let mut prev = 0.0;
        for p in [4.0, 64.0, 512.0, 4096.0, 65536.0, 1048576.0] {
            let bw = m.effective_bandwidth(p);
            assert!(bw > prev, "bandwidth must grow with payload");
            prev = bw;
        }
        assert!(prev <= m.peak_bandwidth());
    }

    #[test]
    fn large_payload_approaches_peak() {
        let m = PcieModel::new(PcieGeneration::Gen4x16);
        assert!(m.effective_bandwidth((1u64 << 20) as f64) > 0.99 * m.peak_bandwidth());
    }

    #[test]
    fn tiny_payload_is_terrible() {
        // This is the sampling-vs-extraction gap of Figure 4a.
        let m = PcieModel::new(PcieGeneration::Gen3x16);
        assert!(m.effective_bandwidth(4.0) < 0.02 * m.peak_bandwidth());
    }

    #[test]
    fn transactions_round_up_to_cache_lines() {
        let m = PcieModel::new(PcieGeneration::Gen3x16);
        assert_eq!(m.transactions_for_payload(0), 0);
        assert_eq!(m.transactions_for_payload(1), 1);
        assert_eq!(m.transactions_for_payload(64), 1);
        assert_eq!(m.transactions_for_payload(65), 2);
        // 128-dim f32 feature: Equation 8 with D=128.
        assert_eq!(m.transactions_for_payload(128 * 4), 8);
    }

    #[test]
    fn custom_cls_respected() {
        let m = PcieModel::new(PcieGeneration::Gen3x16).with_cls(32);
        assert_eq!(m.transactions_for_payload(64), 2);
    }

    #[test]
    fn transfer_seconds_scale_linearly() {
        let m = PcieModel::new(PcieGeneration::Gen3x16);
        let t1 = m.transfer_seconds(1_000_000, 4096.0);
        let t2 = m.transfer_seconds(2_000_000, 4096.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert_eq!(m.transfer_seconds(0, 4096.0), 0.0);
    }

    #[test]
    fn zero_payload_bandwidth_is_zero() {
        let m = PcieModel::new(PcieGeneration::Gen3x16);
        assert_eq!(m.effective_bandwidth(0.0), 0.0);
    }
}
