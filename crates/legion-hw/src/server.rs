//! Multi-GPU server presets (Table 1) and the assembled simulated machine.

use std::sync::Arc;

use legion_telemetry::Registry;
use parking_lot::Mutex;

use crate::device::{GpuDevice, HwError};
use crate::nvlink::NvLinkTopology;
use crate::pcie::{PcieGeneration, PcieModel};
use crate::pcm::PcmCounters;
use crate::traffic::TrafficMatrix;
use crate::{GpuId, GIB};

/// Static description of a server, mirroring one column of Table 1.
#[derive(Debug, Clone)]
pub struct ServerSpec {
    /// Server name as used in the paper.
    pub name: &'static str,
    /// Number of GPUs.
    pub num_gpus: usize,
    /// Per-GPU memory in bytes.
    pub gpu_memory: u64,
    /// NVLink topology (`M_T`).
    pub nvlink: NvLinkTopology,
    /// Host link generation.
    pub pcie: PcieGeneration,
    /// Number of PCIe switches; GPUs are spread evenly across them.
    pub pcie_switches: usize,
    /// Host (CPU) memory in bytes.
    pub cpu_memory: u64,
    /// Number of CPU sockets (PCM reports per-socket maxima).
    pub sockets: usize,
    /// Per-GPU fp32 throughput in FLOP/s, for pipeline timing.
    pub gpu_flops: f64,
}

impl ServerSpec {
    /// DGX-V100: 8× 16 GB V100, two NVLink cliques of four
    /// (`K_c = 2, K_g = 4`), PCIe 3.0 x16, 384 GB host memory.
    pub fn dgx_v100() -> Self {
        Self {
            name: "DGX-V100",
            num_gpus: 8,
            gpu_memory: 16 * GIB,
            nvlink: NvLinkTopology::disjoint_cliques(8, 4),
            pcie: PcieGeneration::Gen3x16,
            pcie_switches: 4,
            cpu_memory: 384 * GIB,
            sockets: 2,
            gpu_flops: 14.0e12,
        }
    }

    /// Siton: 8× 40 GB A100, four NVLink cliques of two
    /// (`K_c = 4, K_g = 2`), PCIe 4.0 x16, 1 TB host memory.
    pub fn siton() -> Self {
        Self {
            name: "Siton",
            num_gpus: 8,
            gpu_memory: 40 * GIB,
            nvlink: NvLinkTopology::disjoint_cliques(8, 2),
            pcie: PcieGeneration::Gen4x16,
            pcie_switches: 2,
            cpu_memory: 1024 * GIB,
            sockets: 2,
            gpu_flops: 19.5e12,
        }
    }

    /// DGX-A100: 8× A100 (capped at 40 GB as in §6.1), one NVSwitch clique
    /// of eight (`K_c = 1, K_g = 8`), PCIe 4.0 x16, 1 TB host memory.
    pub fn dgx_a100() -> Self {
        Self {
            name: "DGX-A100",
            num_gpus: 8,
            gpu_memory: 40 * GIB,
            nvlink: NvLinkTopology::fully_connected(8),
            pcie: PcieGeneration::Gen4x16,
            pcie_switches: 4,
            cpu_memory: 1024 * GIB,
            sockets: 2,
            gpu_flops: 19.5e12,
        }
    }

    /// A down-scaled custom server, handy for tests: `num_gpus` devices of
    /// `gpu_memory` bytes in NVLink cliques of `clique_size`.
    pub fn custom(num_gpus: usize, gpu_memory: u64, clique_size: usize) -> Self {
        Self {
            name: "custom",
            num_gpus,
            gpu_memory,
            nvlink: NvLinkTopology::disjoint_cliques(num_gpus, clique_size),
            pcie: PcieGeneration::Gen3x16,
            pcie_switches: num_gpus.max(1),
            cpu_memory: 64 * GIB,
            sockets: 1,
            gpu_flops: 14.0e12,
        }
    }

    /// The CPU socket a GPU's PCIe link hangs off: GPUs are split evenly
    /// across sockets in id order (as on the Table 1 machines). The paper
    /// reports "the maximum PCIe counter value across different sockets"
    /// (§6.2).
    pub fn socket_of(&self, gpu: crate::GpuId) -> usize {
        if self.sockets <= 1 || self.num_gpus == 0 {
            return 0;
        }
        let per_socket = self.num_gpus.div_ceil(self.sockets);
        (gpu / per_socket).min(self.sockets - 1)
    }

    /// Restricts the spec to its first `n` GPUs, preserving the clique
    /// structure where possible (used by the Figure 2 GPU-count sweep).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `num_gpus`.
    pub fn truncated(&self, n: usize) -> Self {
        assert!(n > 0 && n <= self.num_gpus, "invalid GPU count {n}");
        let full = self.nvlink.matrix();
        let mut adj = vec![false; n * n];
        for a in 0..n {
            for b in 0..n {
                adj[a * n + b] = full[a * self.num_gpus + b];
            }
        }
        Self {
            num_gpus: n,
            nvlink: NvLinkTopology::from_matrix(n, adj)
                .with_bandwidth(self.nvlink.link_bandwidth()),
            ..self.clone()
        }
    }

    /// Builds the runnable simulated machine.
    pub fn build(&self) -> MultiGpuServer {
        MultiGpuServer::new(self.clone())
    }
}

/// The assembled simulated machine: devices + interconnect + counters.
///
/// Counters ([`PcmCounters`], [`TrafficMatrix`]) are internally
/// thread-safe; device memory is guarded by a mutex so concurrent per-GPU
/// workers can allocate safely. All counters are registered in a shared
/// [`legion_telemetry::Registry`] (see [`MultiGpuServer::telemetry`]), so
/// a [`legion_telemetry::Snapshot`] of the server captures PCM and
/// traffic-matrix state along with any pipeline metrics other components
/// registered on the same registry.
#[derive(Debug)]
pub struct MultiGpuServer {
    spec: ServerSpec,
    devices: Mutex<Vec<GpuDevice>>,
    pcie_model: PcieModel,
    pcm: PcmCounters,
    traffic: TrafficMatrix,
    telemetry: Arc<Registry>,
}

impl MultiGpuServer {
    /// Builds a fresh machine from a spec.
    pub fn new(spec: ServerSpec) -> Self {
        let telemetry = Arc::new(Registry::new());
        let devices = (0..spec.num_gpus)
            .map(|id| GpuDevice::new(id, spec.gpu_memory))
            .collect();
        let pcie_model = PcieModel::new(spec.pcie);
        let pcm = PcmCounters::with_registry(spec.num_gpus, &telemetry);
        let traffic = TrafficMatrix::with_registry(spec.num_gpus, &telemetry);
        Self {
            spec,
            devices: Mutex::new(devices),
            pcie_model,
            pcm,
            traffic,
            telemetry,
        }
    }

    /// The static spec.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.spec.num_gpus
    }

    /// NVLink topology matrix.
    pub fn nvlink(&self) -> &NvLinkTopology {
        &self.spec.nvlink
    }

    /// PCIe link model.
    pub fn pcie(&self) -> &PcieModel {
        &self.pcie_model
    }

    /// PCM transaction counters.
    pub fn pcm(&self) -> &PcmCounters {
        &self.pcm
    }

    /// Feature/topology traffic matrix.
    pub fn traffic(&self) -> &TrafficMatrix {
        &self.traffic
    }

    /// The shared metric registry backing this server's counters. Pipeline
    /// components register their own metrics here so one snapshot covers
    /// the whole machine.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// Allocates `bytes` on `gpu`.
    pub fn alloc(&self, gpu: GpuId, bytes: u64) -> Result<(), HwError> {
        let mut devs = self.devices.lock();
        devs.get_mut(gpu)
            .ok_or(HwError::NoSuchGpu(gpu))?
            .alloc(bytes)
    }

    /// Frees `bytes` on `gpu`.
    pub fn free(&self, gpu: GpuId, bytes: u64) -> Result<(), HwError> {
        let mut devs = self.devices.lock();
        devs.get_mut(gpu)
            .ok_or(HwError::NoSuchGpu(gpu))?
            .free(bytes)
    }

    /// Free bytes remaining on `gpu`.
    pub fn free_bytes(&self, gpu: GpuId) -> u64 {
        self.devices.lock()[gpu].free_bytes()
    }

    /// Allocated bytes on `gpu`.
    pub fn allocated_bytes(&self, gpu: GpuId) -> u64 {
        self.devices.lock()[gpu].allocated_bytes()
    }

    /// Maximum per-socket PCIe transaction total — the exact metric the
    /// paper's Figure 8 reports from PCM.
    pub fn max_socket_transactions(&self) -> u64 {
        let mut per_socket = vec![0u64; self.spec.sockets.max(1)];
        for gpu in 0..self.spec.num_gpus {
            per_socket[self.spec.socket_of(gpu)] += self.pcm.gpu_total(gpu);
        }
        per_socket.into_iter().max().unwrap_or(0)
    }

    /// Releases all device memory and clears all counters — including any
    /// metrics other components registered on [`Self::telemetry`].
    pub fn reset(&self) {
        for d in self.devices.lock().iter_mut() {
            d.reset();
        }
        // PCM and traffic counters live in the registry, so this clears
        // them along with every other registered metric.
        self.telemetry.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets() {
        let v = ServerSpec::dgx_v100();
        assert_eq!(v.num_gpus, 8);
        assert_eq!(v.gpu_memory, 16 * GIB);
        assert!(v.nvlink.connected(0, 3));
        assert!(!v.nvlink.connected(3, 4));

        let s = ServerSpec::siton();
        assert!(s.nvlink.connected(0, 1));
        assert!(!s.nvlink.connected(1, 2));
        assert_eq!(s.pcie, PcieGeneration::Gen4x16);

        let a = ServerSpec::dgx_a100();
        assert!(a.nvlink.connected(0, 7));
        assert_eq!(a.gpu_memory, 40 * GIB);
    }

    #[test]
    fn truncated_preserves_prefix_cliques() {
        let s = ServerSpec::dgx_v100().truncated(4);
        assert_eq!(s.num_gpus, 4);
        // First DGX-V100 clique is GPUs 0..4, still fully connected.
        assert!(s.nvlink.connected(0, 3));
        let s2 = ServerSpec::siton().truncated(3);
        assert!(s2.nvlink.connected(0, 1));
        assert!(!s2.nvlink.connected(1, 2));
    }

    #[test]
    #[should_panic(expected = "invalid GPU count")]
    fn truncated_rejects_zero() {
        let _ = ServerSpec::dgx_v100().truncated(0);
    }

    #[test]
    fn server_allocation_and_oom() {
        let srv = ServerSpec::custom(2, 100, 1).build();
        srv.alloc(0, 60).unwrap();
        assert_eq!(srv.free_bytes(0), 40);
        assert!(matches!(
            srv.alloc(0, 41),
            Err(HwError::OutOfMemory { gpu: 0, .. })
        ));
        // GPU 1 untouched.
        assert_eq!(srv.free_bytes(1), 100);
        srv.free(0, 60).unwrap();
        assert_eq!(srv.allocated_bytes(0), 0);
    }

    #[test]
    fn socket_mapping_splits_gpus_evenly() {
        let s = ServerSpec::dgx_v100();
        assert_eq!(s.sockets, 2);
        assert_eq!(s.socket_of(0), 0);
        assert_eq!(s.socket_of(3), 0);
        assert_eq!(s.socket_of(4), 1);
        assert_eq!(s.socket_of(7), 1);
        let single = ServerSpec::custom(4, 1, 1);
        assert_eq!(single.socket_of(3), 0);
    }

    #[test]
    fn max_socket_transactions_sums_per_socket() {
        use crate::pcm::TrafficKind;
        let srv = ServerSpec::dgx_v100().build();
        // Socket 0 gets 10 + 5, socket 1 gets 7.
        srv.pcm().add(0, TrafficKind::Feature, 10);
        srv.pcm().add(2, TrafficKind::Topology, 5);
        srv.pcm().add(6, TrafficKind::Feature, 7);
        assert_eq!(srv.max_socket_transactions(), 15);
    }

    #[test]
    fn alloc_on_missing_gpu_fails() {
        let srv = ServerSpec::custom(1, 10, 1).build();
        assert_eq!(srv.alloc(5, 1), Err(HwError::NoSuchGpu(5)));
    }

    #[test]
    fn reset_clears_memory_and_counters() {
        use crate::pcm::TrafficKind;
        use crate::traffic::Source;
        let srv = ServerSpec::custom(2, 100, 2).build();
        srv.alloc(1, 50).unwrap();
        srv.pcm().add(0, TrafficKind::Feature, 3);
        srv.traffic().add(0, Source::Cpu, 64);
        srv.reset();
        assert_eq!(srv.allocated_bytes(1), 0);
        assert_eq!(srv.pcm().total(), 0);
        assert_eq!(srv.traffic().total_cpu_bytes(), 0);
    }
}
