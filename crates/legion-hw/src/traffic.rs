//! Source→destination byte traffic matrix.
//!
//! Figure 10 of the paper records "the data transferring volumes of feature
//! extraction on each GPU in the format of a traffic matrix. The rows and
//! columns of each matrix denote the destination and source of data
//! transferring"; the extra right-most column is CPU→GPU volume over PCIe.
//! [`TrafficMatrix`] is exactly that structure.

use legion_telemetry::{Counter, Registry};

use crate::GpuId;

/// Where a transfer originated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Another GPU's memory (over NVLink or PCIe P2P).
    Gpu(GpuId),
    /// Host (CPU) memory over PCIe.
    Cpu,
}

/// Byte counts per `(destination GPU, source)` pair. Thread-safe.
///
/// Each cell is a [`legion_telemetry::Counter`] registered as
/// `traffic.dst{d}.src{s}_bytes` (GPU→GPU) or `traffic.dst{d}.cpu_bytes`
/// (CPU→GPU), so the Figure 10 matrices appear in metric snapshots.
///
/// # Examples
///
/// ```
/// use legion_hw::traffic::{Source, TrafficMatrix};
///
/// let m = TrafficMatrix::new(2);
/// m.add(0, Source::Cpu, 100);
/// m.add(0, Source::Gpu(1), 40);
/// assert_eq!(m.cpu_to_gpu(0), 100);
/// assert_eq!(m.gpu_to_gpu(1, 0), 40);
/// assert_eq!(m.max_cpu_column(), 100);
/// ```
#[derive(Debug)]
pub struct TrafficMatrix {
    n: usize,
    /// Row-major `(dst, src)` GPU→GPU bytes.
    gpu: Vec<Counter>,
    /// CPU→GPU bytes per destination.
    cpu: Vec<Counter>,
}

/// The registry name of one traffic-matrix cell.
pub fn traffic_counter_name(dst: GpuId, src: Source) -> String {
    match src {
        Source::Gpu(s) => format!("traffic.dst{dst}.src{s}_bytes"),
        Source::Cpu => format!("traffic.dst{dst}.cpu_bytes"),
    }
}

impl TrafficMatrix {
    /// A standalone zeroed matrix for `num_gpus` GPUs, backed by a
    /// private registry.
    pub fn new(num_gpus: usize) -> Self {
        Self::with_registry(num_gpus, &Registry::new())
    }

    /// A matrix bound into `registry` under the `traffic.dst{d}.*` names.
    pub fn with_registry(num_gpus: usize, registry: &Registry) -> Self {
        Self {
            n: num_gpus,
            gpu: (0..num_gpus * num_gpus)
                .map(|i| {
                    let (dst, src) = (i / num_gpus, i % num_gpus);
                    registry.counter(&traffic_counter_name(dst, Source::Gpu(src)))
                })
                .collect(),
            cpu: (0..num_gpus)
                .map(|dst| registry.counter(&traffic_counter_name(dst, Source::Cpu)))
                .collect(),
        }
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.n
    }

    /// Records `bytes` arriving at `dst` from `src`.
    ///
    /// # Panics
    ///
    /// Panics if any GPU index is out of range.
    pub fn add(&self, dst: GpuId, src: Source, bytes: u64) {
        match src {
            Source::Cpu => self.cpu[dst].add(bytes),
            Source::Gpu(s) => self.gpu[dst * self.n + s].add(bytes),
        };
    }

    /// Bytes moved from `src` GPU into `dst` GPU.
    pub fn gpu_to_gpu(&self, src: GpuId, dst: GpuId) -> u64 {
        self.gpu[dst * self.n + src].get()
    }

    /// Bytes moved from CPU memory into `dst` (the red column of Fig. 10).
    pub fn cpu_to_gpu(&self, dst: GpuId) -> u64 {
        self.cpu[dst].get()
    }

    /// Total CPU→GPU bytes over all destinations.
    pub fn total_cpu_bytes(&self) -> u64 {
        self.cpu.iter().map(|c| c.get()).sum()
    }

    /// Total GPU→GPU bytes over all pairs.
    pub fn total_peer_bytes(&self) -> u64 {
        self.gpu.iter().map(|c| c.get()).sum()
    }

    /// The largest per-GPU CPU→GPU volume. The paper notes "it is the GPU
    /// with the largest CPU-GPU data transferring volume that dominates the
    /// overall performance" (§6.3.2).
    pub fn max_cpu_column(&self) -> u64 {
        self.cpu.iter().map(|c| c.get()).max().unwrap_or(0)
    }

    /// Clears all counters.
    pub fn reset(&self) {
        for c in self.gpu.iter().chain(self.cpu.iter()) {
            c.reset();
        }
    }

    /// Dense snapshot: `rows[dst] = [src0, src1, ..., cpu]`, matching the
    /// Figure 10 layout (green GPU columns then the red CPU column).
    pub fn snapshot(&self) -> Vec<Vec<u64>> {
        (0..self.n)
            .map(|dst| {
                let mut row: Vec<u64> = (0..self.n).map(|src| self.gpu_to_gpu(src, dst)).collect();
                row.push(self.cpu_to_gpu(dst));
                row
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_destination_and_source() {
        let m = TrafficMatrix::new(3);
        m.add(2, Source::Gpu(0), 11);
        m.add(2, Source::Gpu(0), 9);
        m.add(1, Source::Cpu, 5);
        assert_eq!(m.gpu_to_gpu(0, 2), 20);
        assert_eq!(m.gpu_to_gpu(2, 0), 0);
        assert_eq!(m.cpu_to_gpu(1), 5);
    }

    #[test]
    fn totals_and_max() {
        let m = TrafficMatrix::new(2);
        m.add(0, Source::Cpu, 7);
        m.add(1, Source::Cpu, 3);
        m.add(0, Source::Gpu(1), 4);
        assert_eq!(m.total_cpu_bytes(), 10);
        assert_eq!(m.total_peer_bytes(), 4);
        assert_eq!(m.max_cpu_column(), 7);
    }

    #[test]
    fn snapshot_layout_matches_figure10() {
        let m = TrafficMatrix::new(2);
        m.add(0, Source::Gpu(1), 8);
        m.add(0, Source::Cpu, 2);
        let s = m.snapshot();
        assert_eq!(s, vec![vec![0, 8, 2], vec![0, 0, 0]]);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = TrafficMatrix::new(2);
        m.add(0, Source::Cpu, 1);
        m.add(1, Source::Gpu(0), 1);
        m.reset();
        assert_eq!(m.total_cpu_bytes() + m.total_peer_bytes(), 0);
    }

    #[test]
    fn zero_gpu_matrix_is_empty() {
        let m = TrafficMatrix::new(0);
        assert_eq!(m.max_cpu_column(), 0);
        assert!(m.snapshot().is_empty());
    }
}
