//! Simulated multi-GPU server hardware for the Legion reproduction.
//!
//! The paper's evaluation platforms (Table 1) are DGX-V100, Siton and
//! DGX-A100 servers. This crate models the pieces of those machines that
//! Legion's design actually depends on:
//!
//! * [`device::GpuDevice`] — per-GPU memory capacity with byte-accurate
//!   allocation accounting (so out-of-memory — the "x" marks in Figures 8
//!   and 12 — is a first-class, reproducible outcome),
//! * [`nvlink::NvLinkTopology`] — the NVLink adjacency matrix `M_T` that
//!   hierarchical partitioning consumes (§4.1 S1),
//! * [`pcie::PcieModel`] — payload-size-dependent effective throughput
//!   (Figure 4a) and cache-line-granular transaction counting (`CLS`, used
//!   by the cost model's Equation 8),
//! * [`pcm::PcmCounters`] — the Intel PCM stand-in that tallies CPU→GPU
//!   PCIe transactions per socket (`N_TSUM` in §4.2.2),
//! * [`net::NetModel`] — the cluster-interconnect extension of the same
//!   analytic shape (per-message overhead + bandwidth + round-trip
//!   waves) that prices cross-server feature reads in the fleet tier,
//! * [`traffic::TrafficMatrix`] — GPU↔GPU / CPU→GPU byte matrices
//!   (Figure 10), and
//! * [`server::MultiGpuServer`] — Table 1 presets tying it all together.

pub mod device;
pub mod net;
pub mod nvlink;
pub mod pcie;
pub mod pcm;
pub mod server;
pub mod traffic;

pub use device::{GpuDevice, HwError};
pub use net::{NetGeneration, NetModel, UplinkConfig};
pub use nvlink::NvLinkTopology;
pub use pcie::{PcieGeneration, PcieModel};
pub use pcm::PcmCounters;
pub use server::{MultiGpuServer, ServerSpec};
pub use traffic::TrafficMatrix;

/// Index of a GPU within a server (0-based).
pub type GpuId = usize;

/// One gibibyte, for readable capacity constants.
pub const GIB: u64 = 1024 * 1024 * 1024;

/// One mebibyte.
pub const MIB: u64 = 1024 * 1024;
