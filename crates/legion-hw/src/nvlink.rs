//! NVLink topology matrix and clique structure.
//!
//! Hierarchical partitioning (§4.1) takes "an NVLink topology matrix `M_T`
//! of the underlying multi-GPU server" as input and runs MaxCliqueDyn over
//! it to find NVLink cliques. This module holds the matrix; the clique
//! *detection* algorithm lives in `legion-partition::clique` (it is part of
//! the paper's contribution pipeline, not of the hardware).

use crate::GpuId;

/// Symmetric boolean adjacency matrix over GPUs: `true` when the two GPUs
/// are directly connected by NVLink.
///
/// # Examples
///
/// ```
/// use legion_hw::NvLinkTopology;
///
/// // Siton: 8 GPUs in 4 NVLink pairs.
/// let t = NvLinkTopology::disjoint_cliques(8, 2);
/// assert!(t.connected(0, 1));
/// assert!(!t.connected(1, 2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NvLinkTopology {
    n: usize,
    adj: Vec<bool>,
    /// Per-direction NVLink bandwidth between connected peers, bytes/s.
    link_bandwidth: f64,
}

/// Default per-direction NVLink bandwidth (NVLink 2.0-class, ~150 GB/s
/// aggregate between clique peers). The paper treats NVLink as "much higher
/// bandwidth than PCIe" and neglects its traffic in the cost model
/// (§4.3.1 footnote); the constant only matters for pipeline timing.
pub const DEFAULT_NVLINK_BANDWIDTH: f64 = 150.0e9;

impl NvLinkTopology {
    /// A topology with no NVLinks at all (every GPU is its own clique).
    pub fn none(n: usize) -> Self {
        Self {
            n,
            adj: vec![false; n * n],
            link_bandwidth: DEFAULT_NVLINK_BANDWIDTH,
        }
    }

    /// All GPUs pairwise connected (one big clique; DGX-A100 NVSwitch).
    pub fn fully_connected(n: usize) -> Self {
        let mut t = Self::none(n);
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    t.set_connected(a, b);
                }
            }
        }
        t
    }

    /// `n / clique_size` disjoint cliques of `clique_size` consecutive
    /// GPUs. `disjoint_cliques(8, 2)` is Siton (`K_c = 4, K_g = 2`);
    /// `disjoint_cliques(8, 4)` is DGX-V100 (`K_c = 2, K_g = 4`).
    ///
    /// # Panics
    ///
    /// Panics if `clique_size == 0` or does not divide `n`.
    pub fn disjoint_cliques(n: usize, clique_size: usize) -> Self {
        assert!(clique_size > 0, "clique size must be positive");
        assert!(
            n.is_multiple_of(clique_size),
            "{n} GPUs cannot be split into cliques of {clique_size}"
        );
        let mut t = Self::none(n);
        for base in (0..n).step_by(clique_size) {
            for a in base..base + clique_size {
                for b in base..base + clique_size {
                    if a != b {
                        t.set_connected(a, b);
                    }
                }
            }
        }
        t
    }

    /// Builds from an explicit adjacency matrix (row-major, `n * n`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `n * n`, not symmetric, or has a true
    /// diagonal entry.
    pub fn from_matrix(n: usize, adj: Vec<bool>) -> Self {
        assert_eq!(adj.len(), n * n, "adjacency matrix must be n*n");
        for a in 0..n {
            assert!(!adj[a * n + a], "GPU {a} cannot NVLink to itself");
            for b in 0..n {
                assert_eq!(adj[a * n + b], adj[b * n + a], "matrix must be symmetric");
            }
        }
        Self {
            n,
            adj,
            link_bandwidth: DEFAULT_NVLINK_BANDWIDTH,
        }
    }

    /// Overrides the per-link bandwidth.
    pub fn with_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.link_bandwidth = bytes_per_sec;
        self
    }

    /// Number of GPUs.
    #[inline]
    pub fn num_gpus(&self) -> usize {
        self.n
    }

    /// Whether `a` and `b` are NVLink-connected.
    #[inline]
    pub fn connected(&self, a: GpuId, b: GpuId) -> bool {
        a != b && self.adj[a * self.n + b]
    }

    /// Per-direction NVLink bandwidth in bytes/s.
    #[inline]
    pub fn link_bandwidth(&self) -> f64 {
        self.link_bandwidth
    }

    fn set_connected(&mut self, a: GpuId, b: GpuId) {
        self.adj[a * self.n + b] = true;
        self.adj[b * self.n + a] = true;
    }

    /// GPUs directly connected to `g`.
    pub fn peers(&self, g: GpuId) -> Vec<GpuId> {
        (0..self.n).filter(|&o| self.connected(g, o)).collect()
    }

    /// Row-major copy of the adjacency matrix (the `M_T` handed to clique
    /// detection).
    pub fn matrix(&self) -> Vec<bool> {
        self.adj.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_has_no_links() {
        let t = NvLinkTopology::none(4);
        for a in 0..4 {
            for b in 0..4 {
                assert!(!t.connected(a, b));
            }
            assert!(t.peers(a).is_empty());
        }
    }

    #[test]
    fn fully_connected_links_all_pairs() {
        let t = NvLinkTopology::fully_connected(8);
        for a in 0..8 {
            assert_eq!(t.peers(a).len(), 7);
            assert!(!t.connected(a, a));
        }
    }

    #[test]
    fn disjoint_cliques_of_two() {
        let t = NvLinkTopology::disjoint_cliques(8, 2);
        assert!(t.connected(4, 5));
        assert!(!t.connected(3, 4));
        assert_eq!(t.peers(6), vec![7]);
    }

    #[test]
    fn disjoint_cliques_of_four() {
        let t = NvLinkTopology::disjoint_cliques(8, 4);
        assert!(t.connected(0, 3));
        assert!(!t.connected(3, 4));
        assert_eq!(t.peers(1), vec![0, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot be split")]
    fn uneven_cliques_panic() {
        let _ = NvLinkTopology::disjoint_cliques(8, 3);
    }

    #[test]
    fn from_matrix_roundtrip() {
        let t = NvLinkTopology::disjoint_cliques(4, 2);
        let rebuilt = NvLinkTopology::from_matrix(4, t.matrix());
        assert_eq!(t, rebuilt);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_matrix_rejects_asymmetric() {
        let mut adj = vec![false; 4];
        adj[1] = true; // 0 -> 1 but not 1 -> 0.
        let _ = NvLinkTopology::from_matrix(2, adj);
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn from_matrix_rejects_self_loop() {
        let mut adj = vec![false; 4];
        adj[0] = true;
        let _ = NvLinkTopology::from_matrix(2, adj);
    }
}
