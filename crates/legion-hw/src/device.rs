//! Simulated GPU device with byte-accurate memory accounting.
//!
//! The paper's systems differ mainly in *what they put where*: replicated
//! feature caches, whole-topology-in-one-GPU (which "sets a hard limit on
//! the scale of the graph", §3.2), reserved training buffers. A device that
//! tracks every allocation lets those placement decisions succeed or OOM
//! exactly as on real hardware.

use crate::{GpuId, GIB};

/// Errors raised by the simulated hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwError {
    /// An allocation did not fit into the remaining device memory.
    OutOfMemory {
        /// Device that rejected the allocation.
        gpu: GpuId,
        /// Bytes requested.
        requested: u64,
        /// Bytes still free at the time of the request.
        available: u64,
    },
    /// An operation referenced a GPU index outside the server.
    NoSuchGpu(GpuId),
    /// A free exceeded the currently allocated amount (double free).
    FreeUnderflow {
        /// Device on which the bogus free happened.
        gpu: GpuId,
        /// Bytes the caller attempted to free.
        freed: u64,
        /// Bytes actually allocated.
        allocated: u64,
    },
}

impl std::fmt::Display for HwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HwError::OutOfMemory {
                gpu,
                requested,
                available,
            } => write!(
                f,
                "GPU {gpu} out of memory: requested {requested} bytes, {available} available"
            ),
            HwError::NoSuchGpu(g) => write!(f, "no such GPU: {g}"),
            HwError::FreeUnderflow {
                gpu,
                freed,
                allocated,
            } => write!(
                f,
                "GPU {gpu} free underflow: freeing {freed} bytes with only {allocated} allocated"
            ),
        }
    }
}

impl std::error::Error for HwError {}

/// A single simulated GPU.
///
/// # Examples
///
/// ```
/// use legion_hw::{GpuDevice, GIB};
///
/// let mut gpu = GpuDevice::new(0, 16 * GIB);
/// gpu.alloc(4 * GIB).unwrap();
/// assert_eq!(gpu.free_bytes(), 12 * GIB);
/// assert!(gpu.alloc(13 * GIB).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuDevice {
    id: GpuId,
    capacity: u64,
    allocated: u64,
}

impl GpuDevice {
    /// A device with the given memory capacity in bytes.
    pub fn new(id: GpuId, capacity: u64) -> Self {
        Self {
            id,
            capacity,
            allocated: 0,
        }
    }

    /// A 16 GB V100-class device.
    pub fn v100(id: GpuId) -> Self {
        Self::new(id, 16 * GIB)
    }

    /// A 40 GB A100-class device (the paper caps DGX-A100 GPUs at 40 GB).
    pub fn a100_40g(id: GpuId) -> Self {
        Self::new(id, 40 * GIB)
    }

    /// Device index within its server.
    #[inline]
    pub fn id(&self) -> GpuId {
        self.id
    }

    /// Total memory capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    #[inline]
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    /// Bytes still free.
    #[inline]
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.allocated
    }

    /// Reserves `bytes` of device memory.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), HwError> {
        if bytes > self.free_bytes() {
            return Err(HwError::OutOfMemory {
                gpu: self.id,
                requested: bytes,
                available: self.free_bytes(),
            });
        }
        self.allocated += bytes;
        Ok(())
    }

    /// Releases `bytes` of device memory.
    pub fn free(&mut self, bytes: u64) -> Result<(), HwError> {
        if bytes > self.allocated {
            return Err(HwError::FreeUnderflow {
                gpu: self.id,
                freed: bytes,
                allocated: self.allocated,
            });
        }
        self.allocated -= bytes;
        Ok(())
    }

    /// Releases everything.
    pub fn reset(&mut self) {
        self.allocated = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut g = GpuDevice::new(3, 100);
        g.alloc(60).unwrap();
        g.alloc(40).unwrap();
        assert_eq!(g.free_bytes(), 0);
        g.free(50).unwrap();
        assert_eq!(g.allocated_bytes(), 50);
        g.reset();
        assert_eq!(g.allocated_bytes(), 0);
    }

    #[test]
    fn oom_reports_request_and_available() {
        let mut g = GpuDevice::new(1, 10);
        g.alloc(7).unwrap();
        let err = g.alloc(4).unwrap_err();
        assert_eq!(
            err,
            HwError::OutOfMemory {
                gpu: 1,
                requested: 4,
                available: 3
            }
        );
    }

    #[test]
    fn free_underflow_detected() {
        let mut g = GpuDevice::new(0, 10);
        g.alloc(2).unwrap();
        assert!(matches!(g.free(3), Err(HwError::FreeUnderflow { .. })));
    }

    #[test]
    fn zero_byte_alloc_always_succeeds() {
        let mut g = GpuDevice::new(0, 0);
        g.alloc(0).unwrap();
        assert_eq!(g.free_bytes(), 0);
    }

    #[test]
    fn presets_have_table1_capacities() {
        assert_eq!(GpuDevice::v100(0).capacity(), 16 * GIB);
        assert_eq!(GpuDevice::a100_40g(0).capacity(), 40 * GIB);
    }

    #[test]
    fn errors_display() {
        let e = HwError::OutOfMemory {
            gpu: 2,
            requested: 5,
            available: 1,
        };
        assert!(e.to_string().contains("GPU 2 out of memory"));
        assert!(HwError::NoSuchGpu(9).to_string().contains('9'));
    }
}
