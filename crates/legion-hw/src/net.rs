//! Analytic cluster-interconnect model for cross-server feature reads.
//!
//! The fleet tier (cluster → machine → clique → GPU) needs a cost for a
//! feature row that lives on *another* server's shard. This module
//! mirrors the shape of [`crate::PcieModel`] and
//! `legion_store::NvmeModel`: a payload-dependent effective-bandwidth
//! curve (`throughput(p) = peak * p / (p + overhead)`), plus the two
//! properties that make a datacenter network behave unlike a local bus —
//! a *round-trip latency* per request wave (an RPC to the owning server
//! and back) and a bounded *in-flight window* (requests beyond the
//! window wait for the next wave). Every output is a deterministic
//! function of the request stream and is quantized to whole nanoseconds,
//! so fleet runs stay byte-identical per seed on the same integer-ns
//! horizon as the rest of the simulator.

/// Network fabric class connecting the servers of a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetGeneration {
    /// 100 GbE RoCE-style fabric — ~12.5 GB/s per-link line rate.
    Eth100G,
    /// 400 GbE / NDR-class fabric — ~50 GB/s per-link line rate.
    Eth400G,
}

impl NetGeneration {
    /// Achievable peak per-link bandwidth in bytes/s for large,
    /// well-batched transfers.
    pub fn peak_bandwidth(self) -> f64 {
        match self {
            NetGeneration::Eth100G => 12.5e9,
            NetGeneration::Eth400G => 50.0e9,
        }
    }
}

/// Per-message overhead in equivalent bytes: Ethernet + IP + transport
/// headers and the NIC doorbell. Heavier than the PCIe link's 512 B
/// because each read is a full RPC, lighter than NVMe's FTL traversal.
pub const DEFAULT_MESSAGE_OVERHEAD_BYTES: f64 = 4096.0;

/// Base round-trip latency per request wave, seconds (~25 us — a
/// kernel-bypass RPC across a top-of-rack switch and back).
pub const DEFAULT_RTT_S: f64 = 25e-6;

/// Requests a server keeps in flight concurrently; reads beyond this
/// wait for the next round-trip wave.
pub const DEFAULT_MAX_INFLIGHT: u64 = 64;

/// Per-message overhead of a one-sided RDMA read: just the transport
/// header and completion-queue entry — no kernel, no RPC framing.
pub const RDMA_MESSAGE_OVERHEAD_BYTES: f64 = 256.0;

/// Round-trip latency of a one-sided RDMA read across a rack switch
/// (~3 us): the fabric class Legion-scale GPU clusters actually deploy.
pub const RDMA_RTT_S: f64 = 3e-6;

/// Nanoseconds per second, for the integer-ns quantization.
const NANOS_PER_SEC: f64 = 1e9;

/// Shared-uplink contention: what happens when several servers' remote
/// waves cross the fabric *at the same time*.
///
/// The uncontended [`NetModel::read_seconds`] charges each server's
/// wave as if it had the fabric to itself. A real rack does not work
/// that way: every server's NIC also serializes the traffic it *serves*
/// to its peers, and all the servers' flows funnel through a shared
/// top-of-rack uplink that is provisioned below their aggregate line
/// rate (the oversubscription factor). This config captures both
/// effects as a deterministic stretch on the bandwidth term when `k`
/// servers are concurrently active:
///
/// ```text
/// stretch(k) = (1 + (F - 1) * (k - 1) / k)   // ToR oversubscription
///            * (1 + s * (k - 1))             // NIC serialization
/// ```
///
/// where `F = oversubscription` and `s = nic_serialization`. Both
/// factors are exactly `1` at `k = 1` (a lone server sees the
/// uncontended fabric) and strictly increase with `k`: the ToR term
/// approaches the full oversubscription factor `F` as every flow's
/// probability of colliding on the shared uplink grows with `(k-1)/k`,
/// and the NIC term adds a fixed serialization fraction per concurrent
/// peer whose shard reads this server must also serve. Round-trip
/// latency is unaffected — contention queues bytes, not handshakes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UplinkConfig {
    /// ToR oversubscription factor `F >= 1`: the shared uplink carries
    /// `1/F` of the servers' aggregate line rate when all of them
    /// burst at once. `1.0` models a non-blocking fabric.
    pub oversubscription: f64,
    /// Fraction of a peer's concurrent wave that serializes through
    /// this server's NIC path (the reads it serves to others share the
    /// same links its own requests use). `0.0` disables the term.
    pub nic_serialization: f64,
}

impl Default for UplinkConfig {
    /// A 4:1 oversubscribed ToR — the common datacenter provisioning —
    /// with a 5% per-peer NIC serialization tax.
    fn default() -> Self {
        Self {
            oversubscription: 4.0,
            nic_serialization: 0.05,
        }
    }
}

impl UplinkConfig {
    /// Checks the invariants the contention model relies on.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on the first violated
    /// invariant.
    pub fn validate(&self) {
        assert!(
            self.oversubscription >= 1.0,
            "uplink oversubscription must be >= 1"
        );
        assert!(
            self.nic_serialization >= 0.0,
            "nic_serialization must be non-negative"
        );
    }

    /// The bandwidth-term stretch when `concurrent` servers issue
    /// remote waves at once: exactly `1.0` at one server,
    /// monotonically increasing, bounded by
    /// `oversubscription * (1 + nic_serialization * (k - 1))`.
    pub fn stretch(&self, concurrent: usize) -> f64 {
        let k = concurrent.max(1) as f64;
        let tor = 1.0 + (self.oversubscription - 1.0) * (k - 1.0) / k;
        let nic = 1.0 + self.nic_serialization * (k - 1.0);
        tor * nic
    }
}

/// Analytic cluster-network read model.
///
/// # Examples
///
/// ```
/// use legion_hw::{NetGeneration, NetModel};
///
/// let net = NetModel::new(NetGeneration::Eth100G);
/// // One remote 512 B feature row is latency-bound, far below peak.
/// assert!(net.effective_bandwidth(512.0) < 0.2 * net.peak_bandwidth());
/// // A single remote read pays at least one round trip.
/// assert!(net.read_seconds(1, 512) >= 25e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    generation: NetGeneration,
    overhead_bytes: f64,
    rtt_s: f64,
    max_inflight: u64,
    contention: Option<UplinkConfig>,
}

impl NetModel {
    /// A model with default message overhead, RTT, and in-flight window.
    pub fn new(generation: NetGeneration) -> Self {
        Self {
            generation,
            overhead_bytes: DEFAULT_MESSAGE_OVERHEAD_BYTES,
            rtt_s: DEFAULT_RTT_S,
            max_inflight: DEFAULT_MAX_INFLIGHT,
            contention: None,
        }
    }

    /// A kernel-bypass RDMA fabric of the given line rate: one-sided
    /// reads with [`RDMA_MESSAGE_OVERHEAD_BYTES`] of header and
    /// [`RDMA_RTT_S`] per wave — microsecond-class remote memory, the
    /// deployment the fleet tier defaults to.
    pub fn rdma(generation: NetGeneration) -> Self {
        Self::new(generation)
            .with_overhead(RDMA_MESSAGE_OVERHEAD_BYTES)
            .with_rtt(RDMA_RTT_S)
    }

    /// Overrides the per-message overhead.
    pub fn with_overhead(mut self, bytes: f64) -> Self {
        self.overhead_bytes = bytes;
        self
    }

    /// Overrides the round-trip latency.
    pub fn with_rtt(mut self, seconds: f64) -> Self {
        self.rtt_s = seconds;
        self
    }

    /// Overrides the in-flight request window.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn with_max_inflight(mut self, window: u64) -> Self {
        assert!(window > 0, "in-flight window must be positive");
        self.max_inflight = window;
        self
    }

    /// Enables the shared-uplink contention model; see
    /// [`UplinkConfig`]. The default `None` keeps every wave charged
    /// at the uncontended fabric — byte-identical to the pre-contention
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if `uplink` is invalid ([`UplinkConfig::validate`]).
    pub fn with_contention(mut self, uplink: UplinkConfig) -> Self {
        uplink.validate();
        self.contention = Some(uplink);
        self
    }

    /// The shared-uplink contention config, if enabled.
    #[inline]
    pub fn contention(&self) -> Option<UplinkConfig> {
        self.contention
    }

    /// The fabric class.
    pub fn generation(&self) -> NetGeneration {
        self.generation
    }

    /// Maximum concurrent in-flight requests.
    #[inline]
    pub fn max_inflight(&self) -> u64 {
        self.max_inflight
    }

    /// Round-trip time per wave, in seconds.
    #[inline]
    pub fn rtt_seconds(&self) -> f64 {
        self.rtt_s
    }

    /// Peak per-link bandwidth in bytes/s.
    #[inline]
    pub fn peak_bandwidth(&self) -> f64 {
        self.generation.peak_bandwidth()
    }

    /// Effective throughput in bytes/s when every message carries
    /// `payload_bytes` of useful data — the same saturation curve as
    /// the PCIe and NVMe models with per-RPC overhead.
    pub fn effective_bandwidth(&self, payload_bytes: f64) -> f64 {
        if payload_bytes <= 0.0 {
            return 0.0;
        }
        self.peak_bandwidth() * payload_bytes / (payload_bytes + self.overhead_bytes)
    }

    /// Bytes on the wire for a read of `payload_bytes`: the payload
    /// plus the per-message header overhead, rounded up to whole bytes.
    #[inline]
    pub fn bytes_for_payload(&self, payload_bytes: u64) -> u64 {
        payload_bytes + self.overhead_bytes.ceil() as u64
    }

    /// Seconds for a batch of `num_reads` remote reads of
    /// `payload_bytes` each: the requests complete in
    /// `ceil(num_reads / max_inflight)` waves, each paying one round
    /// trip, and the payload moves at the payload-dependent effective
    /// bandwidth. The result is quantized to whole nanoseconds so it
    /// composes with the simulator's integer-ns horizon.
    pub fn read_seconds(&self, num_reads: u64, payload_bytes: u64) -> f64 {
        self.read_seconds_at(num_reads, payload_bytes, 1)
    }

    /// [`read_seconds`](Self::read_seconds) under shared-uplink
    /// contention: the bandwidth term is stretched by
    /// [`UplinkConfig::stretch`] for `concurrent` simultaneously
    /// active servers. With no contention config, or a single active
    /// server, this is exactly the uncontended charge (same integer-ns
    /// result, bit for bit).
    pub fn read_seconds_at(&self, num_reads: u64, payload_bytes: u64, concurrent: usize) -> f64 {
        if num_reads == 0 {
            return 0.0;
        }
        let waves = num_reads.div_ceil(self.max_inflight);
        let bytes = num_reads * payload_bytes;
        let seconds = waves as f64 * self.rtt_s
            + bytes as f64 / self.effective_bandwidth(payload_bytes as f64)
                * self.stretch_for(concurrent);
        (seconds * NANOS_PER_SEC).round() / NANOS_PER_SEC
    }

    /// Seconds for one *coalesced* remote wave: one batched message per
    /// owning peer, `payloads[i]` payload bytes in message `i` (zero
    /// payloads are skipped). All messages launch inside the same
    /// in-flight window — `ceil(messages / max_inflight)` round-trip
    /// waves — and each message's bytes move at its own
    /// payload-dependent effective bandwidth, stretched by the
    /// contention model for `concurrent` active servers. This is the
    /// per-owner alternative to charging every row as its own RPC:
    /// fewer messages amortize both the per-message header overhead
    /// and the round-trip waves. Quantized to whole nanoseconds.
    pub fn coalesced_read_seconds_at(&self, payloads: &[u64], concurrent: usize) -> f64 {
        let messages = payloads.iter().filter(|&&p| p > 0).count() as u64;
        if messages == 0 {
            return 0.0;
        }
        let waves = messages.div_ceil(self.max_inflight);
        let bw: f64 = payloads
            .iter()
            .filter(|&&p| p > 0)
            .map(|&p| p as f64 / self.effective_bandwidth(p as f64))
            .sum();
        let seconds = waves as f64 * self.rtt_s + bw * self.stretch_for(concurrent);
        (seconds * NANOS_PER_SEC).round() / NANOS_PER_SEC
    }

    /// The active contention stretch for `concurrent` servers; `1.0`
    /// when contention is off — multiplying by it reproduces the
    /// uncontended arithmetic exactly.
    fn stretch_for(&self, concurrent: usize) -> f64 {
        match self.contention {
            Some(up) if concurrent > 1 => up.stretch(concurrent),
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_bandwidths_ordered_by_generation() {
        assert!(NetGeneration::Eth400G.peak_bandwidth() > NetGeneration::Eth100G.peak_bandwidth());
    }

    #[test]
    fn effective_bandwidth_monotone_in_payload() {
        let m = NetModel::new(NetGeneration::Eth100G);
        let mut prev = 0.0;
        for p in [64.0, 512.0, 4096.0, 65536.0, 1048576.0] {
            let bw = m.effective_bandwidth(p);
            assert!(bw > prev, "bandwidth must grow with payload");
            prev = bw;
        }
        assert!(prev <= m.peak_bandwidth());
    }

    #[test]
    fn network_is_slower_than_the_local_pcie_link() {
        // Remote reads only hurt if the fabric per-row cost exceeds the
        // local extraction cost; a single row must be latency-bound.
        let m = NetModel::new(NetGeneration::Eth100G);
        assert!(m.read_seconds(1, 512) >= DEFAULT_RTT_S);
        assert_eq!(m.read_seconds(0, 512), 0.0);
    }

    #[test]
    fn inflight_window_bounds_concurrency() {
        let m = NetModel::new(NetGeneration::Eth100G).with_max_inflight(8);
        let one_wave = m.read_seconds(8, 512);
        let two_waves = m.read_seconds(9, 512);
        assert!(two_waves > one_wave + 0.9 * DEFAULT_RTT_S);
        // Within one wave, the round trip is paid once.
        let partial = m.read_seconds(4, 512);
        assert!(one_wave - partial < DEFAULT_RTT_S);
    }

    #[test]
    fn batched_reads_amortize_the_round_trip() {
        let m = NetModel::new(NetGeneration::Eth100G);
        let solo = m.read_seconds(1, 512);
        let batch = m.read_seconds(64, 512);
        // 64 reads in one wave cost far less than 64 solo reads.
        assert!(batch < 0.5 * (64.0 * solo));
    }

    #[test]
    fn read_seconds_are_whole_nanoseconds() {
        let m = NetModel::new(NetGeneration::Eth100G);
        for (n, p) in [(1u64, 512u64), (37, 128), (1000, 4096), (63, 260)] {
            let s = m.read_seconds(n, p);
            let ns = s * 1e9;
            assert!(
                (ns - ns.round()).abs() < 1e-6,
                "read_seconds({n}, {p}) = {s} is not integer-ns"
            );
        }
    }

    #[test]
    fn wire_bytes_include_header_overhead() {
        let m = NetModel::new(NetGeneration::Eth100G);
        assert_eq!(m.bytes_for_payload(512), 512 + 4096);
    }

    #[test]
    fn contention_off_and_one_server_reproduce_the_uncontended_charge() {
        let plain = NetModel::rdma(NetGeneration::Eth400G);
        let contended = plain.with_contention(UplinkConfig::default());
        for (n, p) in [(1u64, 512u64), (64, 512), (300, 4096), (7, 64)] {
            // No contention config: any concurrency is charged flat.
            assert_eq!(plain.read_seconds_at(n, p, 16), plain.read_seconds(n, p));
            // Contention config but one active server: exclusive fabric.
            assert_eq!(contended.read_seconds_at(n, p, 1), plain.read_seconds(n, p));
        }
    }

    #[test]
    fn contended_time_is_monotone_in_concurrent_servers() {
        let m = NetModel::rdma(NetGeneration::Eth400G).with_contention(UplinkConfig::default());
        let mut prev = 0.0;
        for k in 1..=32 {
            let t = m.read_seconds_at(256, 512, k);
            assert!(
                t >= prev,
                "contended time must not shrink with more servers: k={k} gave {t} < {prev}"
            );
            prev = t;
        }
        // And it genuinely bites: 16 servers on a 4:1 ToR cost more
        // than double the lone-server wave.
        assert!(m.read_seconds_at(256, 512, 16) > 2.0 * m.read_seconds_at(256, 512, 1));
    }

    #[test]
    fn uplink_stretch_shape() {
        let up = UplinkConfig {
            oversubscription: 4.0,
            nic_serialization: 0.05,
        };
        assert_eq!(up.stretch(1), 1.0);
        assert!(up.stretch(2) > 1.0);
        // The ToR term approaches F; with the NIC term the product
        // keeps growing, but stays near F * nic for moderate k.
        assert!(up.stretch(1000) > 3.9);
    }

    #[test]
    fn coalesced_wave_undercuts_per_row_charging() {
        let m = NetModel::rdma(NetGeneration::Eth400G);
        // 192 rows of 512 B spread over 3 owners vs 192 individual RPCs.
        let per_row = m.read_seconds(192, 512);
        let coalesced = m.coalesced_read_seconds_at(&[64 * 512, 96 * 512, 32 * 512], 1);
        assert!(
            coalesced < per_row,
            "coalesced {coalesced} must undercut per-row {per_row}"
        );
        // Empty and zero-payload waves cost nothing.
        assert_eq!(m.coalesced_read_seconds_at(&[], 4), 0.0);
        assert_eq!(m.coalesced_read_seconds_at(&[0, 0], 4), 0.0);
        // Integer-ns quantization holds for the coalesced path too.
        let ns = coalesced * 1e9;
        assert!((ns - ns.round()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "oversubscription must be >= 1")]
    fn undersubscribed_uplink_invalid() {
        NetModel::new(NetGeneration::Eth100G).with_contention(UplinkConfig {
            oversubscription: 0.5,
            nic_serialization: 0.0,
        });
    }

    #[test]
    fn rdma_preset_is_strictly_cheaper_than_the_rpc_default() {
        let rpc = NetModel::new(NetGeneration::Eth400G);
        let rdma = NetModel::rdma(NetGeneration::Eth400G);
        assert_eq!(rdma.generation(), NetGeneration::Eth400G);
        for (n, p) in [(1u64, 512u64), (64, 512), (300, 4096)] {
            assert!(rdma.read_seconds(n, p) < rpc.read_seconds(n, p));
        }
        assert_eq!(rdma.bytes_for_payload(512), 512 + 256);
    }
}
