//! Analytic cluster-interconnect model for cross-server feature reads.
//!
//! The fleet tier (cluster → machine → clique → GPU) needs a cost for a
//! feature row that lives on *another* server's shard. This module
//! mirrors the shape of [`crate::PcieModel`] and
//! `legion_store::NvmeModel`: a payload-dependent effective-bandwidth
//! curve (`throughput(p) = peak * p / (p + overhead)`), plus the two
//! properties that make a datacenter network behave unlike a local bus —
//! a *round-trip latency* per request wave (an RPC to the owning server
//! and back) and a bounded *in-flight window* (requests beyond the
//! window wait for the next wave). Every output is a deterministic
//! function of the request stream and is quantized to whole nanoseconds,
//! so fleet runs stay byte-identical per seed on the same integer-ns
//! horizon as the rest of the simulator.

/// Network fabric class connecting the servers of a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetGeneration {
    /// 100 GbE RoCE-style fabric — ~12.5 GB/s per-link line rate.
    Eth100G,
    /// 400 GbE / NDR-class fabric — ~50 GB/s per-link line rate.
    Eth400G,
}

impl NetGeneration {
    /// Achievable peak per-link bandwidth in bytes/s for large,
    /// well-batched transfers.
    pub fn peak_bandwidth(self) -> f64 {
        match self {
            NetGeneration::Eth100G => 12.5e9,
            NetGeneration::Eth400G => 50.0e9,
        }
    }
}

/// Per-message overhead in equivalent bytes: Ethernet + IP + transport
/// headers and the NIC doorbell. Heavier than the PCIe link's 512 B
/// because each read is a full RPC, lighter than NVMe's FTL traversal.
pub const DEFAULT_MESSAGE_OVERHEAD_BYTES: f64 = 4096.0;

/// Base round-trip latency per request wave, seconds (~25 us — a
/// kernel-bypass RPC across a top-of-rack switch and back).
pub const DEFAULT_RTT_S: f64 = 25e-6;

/// Requests a server keeps in flight concurrently; reads beyond this
/// wait for the next round-trip wave.
pub const DEFAULT_MAX_INFLIGHT: u64 = 64;

/// Per-message overhead of a one-sided RDMA read: just the transport
/// header and completion-queue entry — no kernel, no RPC framing.
pub const RDMA_MESSAGE_OVERHEAD_BYTES: f64 = 256.0;

/// Round-trip latency of a one-sided RDMA read across a rack switch
/// (~3 us): the fabric class Legion-scale GPU clusters actually deploy.
pub const RDMA_RTT_S: f64 = 3e-6;

/// Nanoseconds per second, for the integer-ns quantization.
const NANOS_PER_SEC: f64 = 1e9;

/// Analytic cluster-network read model.
///
/// # Examples
///
/// ```
/// use legion_hw::{NetGeneration, NetModel};
///
/// let net = NetModel::new(NetGeneration::Eth100G);
/// // One remote 512 B feature row is latency-bound, far below peak.
/// assert!(net.effective_bandwidth(512.0) < 0.2 * net.peak_bandwidth());
/// // A single remote read pays at least one round trip.
/// assert!(net.read_seconds(1, 512) >= 25e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    generation: NetGeneration,
    overhead_bytes: f64,
    rtt_s: f64,
    max_inflight: u64,
}

impl NetModel {
    /// A model with default message overhead, RTT, and in-flight window.
    pub fn new(generation: NetGeneration) -> Self {
        Self {
            generation,
            overhead_bytes: DEFAULT_MESSAGE_OVERHEAD_BYTES,
            rtt_s: DEFAULT_RTT_S,
            max_inflight: DEFAULT_MAX_INFLIGHT,
        }
    }

    /// A kernel-bypass RDMA fabric of the given line rate: one-sided
    /// reads with [`RDMA_MESSAGE_OVERHEAD_BYTES`] of header and
    /// [`RDMA_RTT_S`] per wave — microsecond-class remote memory, the
    /// deployment the fleet tier defaults to.
    pub fn rdma(generation: NetGeneration) -> Self {
        Self::new(generation)
            .with_overhead(RDMA_MESSAGE_OVERHEAD_BYTES)
            .with_rtt(RDMA_RTT_S)
    }

    /// Overrides the per-message overhead.
    pub fn with_overhead(mut self, bytes: f64) -> Self {
        self.overhead_bytes = bytes;
        self
    }

    /// Overrides the round-trip latency.
    pub fn with_rtt(mut self, seconds: f64) -> Self {
        self.rtt_s = seconds;
        self
    }

    /// Overrides the in-flight request window.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn with_max_inflight(mut self, window: u64) -> Self {
        assert!(window > 0, "in-flight window must be positive");
        self.max_inflight = window;
        self
    }

    /// The fabric class.
    pub fn generation(&self) -> NetGeneration {
        self.generation
    }

    /// Maximum concurrent in-flight requests.
    #[inline]
    pub fn max_inflight(&self) -> u64 {
        self.max_inflight
    }

    /// Peak per-link bandwidth in bytes/s.
    #[inline]
    pub fn peak_bandwidth(&self) -> f64 {
        self.generation.peak_bandwidth()
    }

    /// Effective throughput in bytes/s when every message carries
    /// `payload_bytes` of useful data — the same saturation curve as
    /// the PCIe and NVMe models with per-RPC overhead.
    pub fn effective_bandwidth(&self, payload_bytes: f64) -> f64 {
        if payload_bytes <= 0.0 {
            return 0.0;
        }
        self.peak_bandwidth() * payload_bytes / (payload_bytes + self.overhead_bytes)
    }

    /// Bytes on the wire for a read of `payload_bytes`: the payload
    /// plus the per-message header overhead, rounded up to whole bytes.
    #[inline]
    pub fn bytes_for_payload(&self, payload_bytes: u64) -> u64 {
        payload_bytes + self.overhead_bytes.ceil() as u64
    }

    /// Seconds for a batch of `num_reads` remote reads of
    /// `payload_bytes` each: the requests complete in
    /// `ceil(num_reads / max_inflight)` waves, each paying one round
    /// trip, and the payload moves at the payload-dependent effective
    /// bandwidth. The result is quantized to whole nanoseconds so it
    /// composes with the simulator's integer-ns horizon.
    pub fn read_seconds(&self, num_reads: u64, payload_bytes: u64) -> f64 {
        if num_reads == 0 {
            return 0.0;
        }
        let waves = num_reads.div_ceil(self.max_inflight);
        let bytes = num_reads * payload_bytes;
        let seconds = waves as f64 * self.rtt_s
            + bytes as f64 / self.effective_bandwidth(payload_bytes as f64);
        (seconds * NANOS_PER_SEC).round() / NANOS_PER_SEC
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_bandwidths_ordered_by_generation() {
        assert!(NetGeneration::Eth400G.peak_bandwidth() > NetGeneration::Eth100G.peak_bandwidth());
    }

    #[test]
    fn effective_bandwidth_monotone_in_payload() {
        let m = NetModel::new(NetGeneration::Eth100G);
        let mut prev = 0.0;
        for p in [64.0, 512.0, 4096.0, 65536.0, 1048576.0] {
            let bw = m.effective_bandwidth(p);
            assert!(bw > prev, "bandwidth must grow with payload");
            prev = bw;
        }
        assert!(prev <= m.peak_bandwidth());
    }

    #[test]
    fn network_is_slower_than_the_local_pcie_link() {
        // Remote reads only hurt if the fabric per-row cost exceeds the
        // local extraction cost; a single row must be latency-bound.
        let m = NetModel::new(NetGeneration::Eth100G);
        assert!(m.read_seconds(1, 512) >= DEFAULT_RTT_S);
        assert_eq!(m.read_seconds(0, 512), 0.0);
    }

    #[test]
    fn inflight_window_bounds_concurrency() {
        let m = NetModel::new(NetGeneration::Eth100G).with_max_inflight(8);
        let one_wave = m.read_seconds(8, 512);
        let two_waves = m.read_seconds(9, 512);
        assert!(two_waves > one_wave + 0.9 * DEFAULT_RTT_S);
        // Within one wave, the round trip is paid once.
        let partial = m.read_seconds(4, 512);
        assert!(one_wave - partial < DEFAULT_RTT_S);
    }

    #[test]
    fn batched_reads_amortize_the_round_trip() {
        let m = NetModel::new(NetGeneration::Eth100G);
        let solo = m.read_seconds(1, 512);
        let batch = m.read_seconds(64, 512);
        // 64 reads in one wave cost far less than 64 solo reads.
        assert!(batch < 0.5 * (64.0 * solo));
    }

    #[test]
    fn read_seconds_are_whole_nanoseconds() {
        let m = NetModel::new(NetGeneration::Eth100G);
        for (n, p) in [(1u64, 512u64), (37, 128), (1000, 4096), (63, 260)] {
            let s = m.read_seconds(n, p);
            let ns = s * 1e9;
            assert!(
                (ns - ns.round()).abs() < 1e-6,
                "read_seconds({n}, {p}) = {s} is not integer-ns"
            );
        }
    }

    #[test]
    fn wire_bytes_include_header_overhead() {
        let m = NetModel::new(NetGeneration::Eth100G);
        assert_eq!(m.bytes_for_payload(512), 512 + 4096);
    }

    #[test]
    fn rdma_preset_is_strictly_cheaper_than_the_rpc_default() {
        let rpc = NetModel::new(NetGeneration::Eth400G);
        let rdma = NetModel::rdma(NetGeneration::Eth400G);
        assert_eq!(rdma.generation(), NetGeneration::Eth400G);
        for (n, p) in [(1u64, 512u64), (64, 512), (300, 4096)] {
            assert!(rdma.read_seconds(n, p) < rpc.read_seconds(n, p));
        }
        assert_eq!(rdma.bytes_for_payload(512), 512 + 256);
    }
}
