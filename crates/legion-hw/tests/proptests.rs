//! Property-based tests for the hardware model invariants.

use proptest::prelude::*;

use legion_hw::{GpuDevice, NvLinkTopology, PcieGeneration, PcieModel};

proptest! {
    #[test]
    fn device_accounting_never_goes_negative_or_over(
        capacity in 1u64..1_000_000,
        ops in proptest::collection::vec((any::<bool>(), 0u64..100_000), 0..64),
    ) {
        let mut gpu = GpuDevice::new(0, capacity);
        for (is_alloc, bytes) in ops {
            if is_alloc {
                let before = gpu.allocated_bytes();
                match gpu.alloc(bytes) {
                    Ok(()) => prop_assert_eq!(gpu.allocated_bytes(), before + bytes),
                    Err(_) => prop_assert_eq!(gpu.allocated_bytes(), before),
                }
            } else {
                let before = gpu.allocated_bytes();
                match gpu.free(bytes) {
                    Ok(()) => prop_assert_eq!(gpu.allocated_bytes(), before - bytes),
                    Err(_) => prop_assert_eq!(gpu.allocated_bytes(), before),
                }
            }
            prop_assert!(gpu.allocated_bytes() <= gpu.capacity());
            prop_assert_eq!(gpu.free_bytes(), gpu.capacity() - gpu.allocated_bytes());
        }
    }

    #[test]
    fn pcie_transactions_cover_payload(
        payload in 0u64..1_000_000,
        cls_pow in 4u32..10,
    ) {
        let cls = 1u64 << cls_pow;
        let model = PcieModel::new(PcieGeneration::Gen3x16).with_cls(cls);
        let tx = model.transactions_for_payload(payload);
        // Lines cover the payload with less than one line of slack.
        prop_assert!(tx * cls >= payload);
        prop_assert!(tx * cls < payload + cls);
    }

    #[test]
    fn effective_bandwidth_monotone_and_bounded(
        p1 in 1.0f64..1e6,
        p2 in 1.0f64..1e6,
    ) {
        let model = PcieModel::new(PcieGeneration::Gen4x16);
        let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(model.effective_bandwidth(lo) <= model.effective_bandwidth(hi) + 1e-9);
        prop_assert!(model.effective_bandwidth(hi) <= model.peak_bandwidth());
    }

    #[test]
    fn clique_presets_are_symmetric(n_half in 1usize..5, size_pow in 0u32..3) {
        let size = 1usize << size_pow;
        let n = n_half * 2 * size;
        let t = NvLinkTopology::disjoint_cliques(n, size);
        for a in 0..n {
            prop_assert!(!t.connected(a, a));
            for b in 0..n {
                prop_assert_eq!(t.connected(a, b), t.connected(b, a));
            }
        }
    }
}
