//! Property-based tests for the hardware model invariants.

use proptest::prelude::*;

use legion_hw::{
    GpuDevice, NetGeneration, NetModel, NvLinkTopology, PcieGeneration, PcieModel, UplinkConfig,
};

proptest! {
    #[test]
    fn device_accounting_never_goes_negative_or_over(
        capacity in 1u64..1_000_000,
        ops in proptest::collection::vec((any::<bool>(), 0u64..100_000), 0..64),
    ) {
        let mut gpu = GpuDevice::new(0, capacity);
        for (is_alloc, bytes) in ops {
            if is_alloc {
                let before = gpu.allocated_bytes();
                match gpu.alloc(bytes) {
                    Ok(()) => prop_assert_eq!(gpu.allocated_bytes(), before + bytes),
                    Err(_) => prop_assert_eq!(gpu.allocated_bytes(), before),
                }
            } else {
                let before = gpu.allocated_bytes();
                match gpu.free(bytes) {
                    Ok(()) => prop_assert_eq!(gpu.allocated_bytes(), before - bytes),
                    Err(_) => prop_assert_eq!(gpu.allocated_bytes(), before),
                }
            }
            prop_assert!(gpu.allocated_bytes() <= gpu.capacity());
            prop_assert_eq!(gpu.free_bytes(), gpu.capacity() - gpu.allocated_bytes());
        }
    }

    #[test]
    fn pcie_transactions_cover_payload(
        payload in 0u64..1_000_000,
        cls_pow in 4u32..10,
    ) {
        let cls = 1u64 << cls_pow;
        let model = PcieModel::new(PcieGeneration::Gen3x16).with_cls(cls);
        let tx = model.transactions_for_payload(payload);
        // Lines cover the payload with less than one line of slack.
        prop_assert!(tx * cls >= payload);
        prop_assert!(tx * cls < payload + cls);
    }

    #[test]
    fn effective_bandwidth_monotone_and_bounded(
        p1 in 1.0f64..1e6,
        p2 in 1.0f64..1e6,
    ) {
        let model = PcieModel::new(PcieGeneration::Gen4x16);
        let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(model.effective_bandwidth(lo) <= model.effective_bandwidth(hi) + 1e-9);
        prop_assert!(model.effective_bandwidth(hi) <= model.peak_bandwidth());
    }

    #[test]
    fn net_reads_respect_the_rtt_floor(
        reads in 1u64..10_000,
        payload in 1u64..100_000,
    ) {
        let net = NetModel::new(NetGeneration::Eth400G);
        // Any nonempty read set pays at least one round trip.
        prop_assert!(net.read_seconds(reads, payload) >= net.rtt_seconds());
    }

    #[test]
    fn net_time_is_monotone_in_payload(
        reads in 1u64..1_000,
        p1 in 1u64..100_000,
        p2 in 1u64..100_000,
    ) {
        let net = NetModel::new(NetGeneration::Eth400G);
        let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(net.read_seconds(reads, lo) <= net.read_seconds(reads, hi));
    }

    #[test]
    fn net_waves_follow_the_inflight_cap(
        reads in 1u64..100_000,
        payload in 1u64..4_096,
    ) {
        let net = NetModel::new(NetGeneration::Eth400G);
        // Total time covers ceil(reads / max_inflight) round-trip waves.
        let waves = reads.div_ceil(net.max_inflight());
        prop_assert!(net.read_seconds(reads, payload) >= waves as f64 * net.rtt_seconds());
    }

    #[test]
    fn net_contention_is_monotone_and_exact_at_one_server(
        reads in 1u64..10_000,
        payload in 1u64..100_000,
        over in 1.0f64..16.0,
        nic in 0.0f64..1.0,
        k1 in 1usize..32,
        k2 in 1usize..32,
    ) {
        let net = NetModel::new(NetGeneration::Eth400G)
            .with_contention(UplinkConfig { oversubscription: over, nic_serialization: nic });
        // One server sharing the uplink is the uncontended charge, and
        // the uncontended model at any concurrency too.
        let alone = NetModel::new(NetGeneration::Eth400G).read_seconds(reads, payload);
        prop_assert_eq!(net.read_seconds_at(reads, payload, 1), alone);
        let (lo, hi) = if k1 < k2 { (k1, k2) } else { (k2, k1) };
        prop_assert!(
            net.read_seconds_at(reads, payload, lo) <= net.read_seconds_at(reads, payload, hi)
        );
    }

    #[test]
    fn net_times_are_integer_nanosecond_quantized(
        reads in 0u64..10_000,
        payload in 1u64..100_000,
        k in 1usize..32,
    ) {
        let net = NetModel::new(NetGeneration::Eth400G)
            .with_contention(UplinkConfig::default());
        let t = net.read_seconds_at(reads, payload, k);
        let ns = t * 1e9;
        prop_assert!((ns - ns.round()).abs() < 1e-6, "not integer-ns: {} s", t);
        // And byte-identical across recomputation (pure function).
        prop_assert_eq!(
            t.to_bits(),
            net.read_seconds_at(reads, payload, k).to_bits()
        );
    }

    #[test]
    fn coalesced_reads_never_beat_the_per_message_floor(
        payloads in proptest::collection::vec(0u64..100_000, 0..64),
        k in 1usize..16,
    ) {
        let net = NetModel::new(NetGeneration::Eth400G)
            .with_contention(UplinkConfig::default());
        let t = net.coalesced_read_seconds_at(&payloads, k);
        let messages = payloads.iter().filter(|&&p| p > 0).count() as u64;
        if messages == 0 {
            prop_assert_eq!(t, 0.0);
        } else {
            let waves = messages.div_ceil(net.max_inflight());
            prop_assert!(t >= waves as f64 * net.rtt_seconds());
            // One batched message per owner never exceeds charging each
            // owner's payload as its own message.
            let per_owner: f64 = payloads
                .iter()
                .filter(|&&p| p > 0)
                .map(|&p| net.read_seconds_at(1, p, k))
                .sum();
            prop_assert!(t <= per_owner + 1e-9);
        }
    }

    #[test]
    fn clique_presets_are_symmetric(n_half in 1usize..5, size_pow in 0u32..3) {
        let size = 1usize << size_pow;
        let n = n_half * 2 * size;
        let t = NvLinkTopology::disjoint_cliques(n, size);
        for a in 0..n {
            prop_assert!(!t.connected(a, a));
            for b in 0..n {
                prop_assert_eq!(t.connected(a, b), t.connected(b, a));
            }
        }
    }
}
