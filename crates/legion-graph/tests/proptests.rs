//! Property-based tests for graph storage invariants.

use proptest::prelude::*;

use legion_graph::builder::from_edges;
use legion_graph::generate::Zipf;
use legion_graph::stats::{degree_gini, edge_cut};
use legion_graph::{CsrGraph, GraphBuilder, VertexId};

/// Arbitrary edge list over `n` vertices.
fn edges_strategy(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..max_n).prop_flat_map(move |n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..max_m))
    })
}

proptest! {
    #[test]
    fn builder_output_is_structurally_valid((n, edges) in edges_strategy(64, 256)) {
        let g = from_edges(n, &edges);
        // Round-trip through the validating constructor.
        let rebuilt = CsrGraph::from_parts(
            g.row_offsets().to_vec(),
            g.col_indices().to_vec(),
        );
        prop_assert!(rebuilt.is_ok());
        // Adjacency is sorted and deduplicated.
        for v in 0..n as VertexId {
            let nb = g.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "unsorted/duplicated");
        }
        // Every input edge is present.
        for &(s, d) in &edges {
            prop_assert!(g.neighbors(s).binary_search(&d).is_ok());
        }
    }

    #[test]
    fn transpose_is_an_involution((n, edges) in edges_strategy(48, 128)) {
        let g = from_edges(n, &edges);
        let tt = g.transpose().transpose();
        // Same edge multiset (builder sorts, so direct comparison works).
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = tt.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn symmetrize_is_idempotent((n, edges) in edges_strategy(48, 128)) {
        let g = from_edges(n, &edges);
        let s1 = g.symmetrize();
        let s2 = s1.symmetrize();
        prop_assert_eq!(&s1, &s2);
        // Symmetry: (u, v) present iff (v, u) present.
        for (u, v) in s1.edges() {
            prop_assert!(s1.neighbors(v).binary_search(&u).is_ok());
        }
    }

    #[test]
    fn induced_subgraph_never_leaks_outside_vertices(
        (n, edges) in edges_strategy(48, 128),
        keep_mask in proptest::collection::vec(any::<bool>(), 48),
    ) {
        let g = from_edges(n, &edges);
        let keep: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| keep_mask.get(v as usize).copied().unwrap_or(false))
            .collect();
        let sub = g.induced_subgraph(&keep);
        prop_assert_eq!(sub.num_vertices(), keep.len());
        // All edges stay within range, and every subgraph edge maps back
        // to an original edge.
        for (s, d) in sub.edges() {
            let os = keep[s as usize];
            let od = keep[d as usize];
            prop_assert!(g.neighbors(os).binary_search(&od).is_ok());
        }
    }

    #[test]
    fn edge_cut_bounds((n, edges) in edges_strategy(48, 128), k in 1u32..5) {
        let g = from_edges(n, &edges);
        let assignment: Vec<u32> = (0..n as u32).map(|v| v % k).collect();
        let cut = edge_cut(&g, &assignment);
        prop_assert!(cut <= g.num_edges());
        // Single part: no cut.
        let single = vec![0u32; n];
        prop_assert_eq!(edge_cut(&g, &single), 0);
    }

    #[test]
    fn gini_is_in_unit_interval((n, edges) in edges_strategy(48, 128)) {
        let g = from_edges(n, &edges);
        let gini = degree_gini(&g);
        prop_assert!((0.0..=1.0).contains(&gini), "gini {gini}");
    }

    #[test]
    fn zipf_pmf_is_normalized(n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "pmf total {total}");
        // PMF is non-increasing for positive exponents.
        if s > 0.0 {
            for k in 1..n {
                prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
            }
        }
    }

    #[test]
    fn builder_duplicate_edges_collapse(
        n in 2usize..32,
        src in 0u32..16,
        dst in 0u32..16,
        copies in 1usize..8,
    ) {
        let (src, dst) = (src % n as u32, dst % n as u32);
        let mut b = GraphBuilder::new(n);
        for _ in 0..copies {
            b.push_edge(src, dst);
        }
        let g = b.build();
        prop_assert_eq!(g.num_edges(), 1);
    }
}
