//! Dense vertex feature storage.
//!
//! Legion's feature cache stores "the feature vectors of selected hot
//! vertices in the format of a 2D array, where each row is the feature
//! vector of a selected hot vertex" (§4.2.1). [`FeatureTable`] is that 2-D
//! array, also used for the full CPU-resident feature store.

use rand::Rng;

use crate::{feature_bytes_for_dim, VertexId};

/// Row-major 2-D `f32` array: one row per vertex.
///
/// # Examples
///
/// ```
/// use legion_graph::FeatureTable;
///
/// let mut t = FeatureTable::zeros(3, 4);
/// t.row_mut(1)[2] = 7.5;
/// assert_eq!(t.row(1), &[0.0, 0.0, 7.5, 0.0]);
/// assert_eq!(t.row_bytes(), 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureTable {
    data: Vec<f32>,
    dim: usize,
}

impl FeatureTable {
    /// All-zero table with `rows` rows of `dim` columns.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        Self {
            data: vec![0.0; rows * dim],
            dim,
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dim` (with `dim > 0`).
    pub fn from_flat(data: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { data, dim }
    }

    /// Random table with entries uniform in `[-0.5, 0.5)`. Used for the
    /// paper datasets that "have no feature" and are "manually generated"
    /// (Table 2: CO, UKS, UKL, CL).
    pub fn random<R: Rng + ?Sized>(rows: usize, dim: usize, rng: &mut R) -> Self {
        let data = (0..rows * dim).map(|_| rng.gen::<f32>() - 0.5).collect();
        Self { data, dim }
    }

    /// Number of rows (vertices).
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Feature dimensionality `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bytes per feature row (`D * s_float32`, Equation 6).
    #[inline]
    pub fn row_bytes(&self) -> u64 {
        feature_bytes_for_dim(self.dim as u64)
    }

    /// Total bytes of the table.
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.num_rows() as u64 * self.row_bytes()
    }

    /// The feature row of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn row(&self, v: VertexId) -> &[f32] {
        let v = v as usize;
        &self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// Mutable feature row of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn row_mut(&mut self, v: VertexId) -> &mut [f32] {
        let v = v as usize;
        &mut self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// Gathers the rows of `vertices` into a new dense table (the feature
    /// extraction output for a mini-batch).
    pub fn gather(&self, vertices: &[VertexId]) -> FeatureTable {
        let mut out = FeatureTable::zeros(vertices.len(), self.dim);
        for (i, &v) in vertices.iter().enumerate() {
            out.row_mut(i as VertexId).copy_from_slice(self.row(v));
        }
        out
    }

    /// Flat row-major view of the whole table.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_shape() {
        let t = FeatureTable::zeros(5, 8);
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.dim(), 8);
        assert_eq!(t.total_bytes(), 5 * 8 * 4);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_flat_roundtrip() {
        let t = FeatureTable::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged() {
        let _ = FeatureTable::from_flat(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn gather_picks_rows_in_order() {
        let t = FeatureTable::from_flat(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], 2);
        let g = t.gather(&[2, 0]);
        assert_eq!(g.row(0), &[4.0, 5.0]);
        assert_eq!(g.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn gather_empty_is_empty() {
        let t = FeatureTable::zeros(3, 2);
        let g = t.gather(&[]);
        assert_eq!(g.num_rows(), 0);
    }

    #[test]
    fn random_fills_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = FeatureTable::random(10, 4, &mut rng);
        assert!(t.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
        assert!(t.as_slice().iter().any(|&x| x != 0.0));
    }
}
