//! Vertex relabeling (graph reordering).
//!
//! Production GNN systems reorder vertices so hot vertices get dense, low
//! ids — it compacts hotness metadata, improves memory locality of CSR
//! scans, and lets a cache be addressed by an id range instead of a hash
//! map. This module provides permutation plumbing with the invariant
//! tests to make that safe: a reorder is a graph isomorphism, so every
//! structural property must be preserved.

use crate::csr::CsrGraph;
use crate::dataset::Dataset;
use crate::features::FeatureTable;
use crate::VertexId;

/// A vertex permutation: `new_id[old_id]` gives the relabeled id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_of_old: Vec<VertexId>,
}

impl Permutation {
    /// Builds from a `new_of_old` mapping.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is not a permutation of `0..n`.
    pub fn new(new_of_old: Vec<VertexId>) -> Self {
        let n = new_of_old.len();
        let mut seen = vec![false; n];
        for &x in &new_of_old {
            assert!((x as usize) < n, "mapping target {x} out of range");
            assert!(!seen[x as usize], "duplicate mapping target {x}");
            seen[x as usize] = true;
        }
        Self { new_of_old }
    }

    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Self {
        Self {
            new_of_old: (0..n as VertexId).collect(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// New id of `old`.
    #[inline]
    pub fn apply(&self, old: VertexId) -> VertexId {
        self.new_of_old[old as usize]
    }

    /// The inverse mapping (`old_of_new`).
    pub fn inverse(&self) -> Permutation {
        let mut old_of_new = vec![0 as VertexId; self.new_of_old.len()];
        for (old, &new) in self.new_of_old.iter().enumerate() {
            old_of_new[new as usize] = old as VertexId;
        }
        Permutation {
            new_of_old: old_of_new,
        }
    }
}

/// Permutation sorting vertices by descending `score` (ties by ascending
/// old id) — hotness- or degree-ordered relabeling.
pub fn by_descending_score(scores: &[u64]) -> Permutation {
    let mut order: Vec<VertexId> = (0..scores.len() as VertexId).collect();
    order.sort_by(|&a, &b| scores[b as usize].cmp(&scores[a as usize]).then(a.cmp(&b)));
    // `order[rank] = old` -> `new_of_old[old] = rank`.
    let mut new_of_old = vec![0 as VertexId; scores.len()];
    for (rank, &old) in order.iter().enumerate() {
        new_of_old[old as usize] = rank as VertexId;
    }
    Permutation::new(new_of_old)
}

/// Relabels a graph under `perm`.
///
/// # Panics
///
/// Panics if `perm.len() != graph.num_vertices()`.
pub fn reorder_graph(graph: &CsrGraph, perm: &Permutation) -> CsrGraph {
    assert_eq!(
        perm.len(),
        graph.num_vertices(),
        "permutation size mismatch"
    );
    let mut builder = crate::GraphBuilder::new(graph.num_vertices())
        .with_edge_capacity(graph.num_edges())
        .keep_duplicates();
    for (s, d) in graph.edges() {
        builder.push_edge(perm.apply(s), perm.apply(d));
    }
    builder.build()
}

/// Relabels a whole dataset (graph, features, labels, training set).
pub fn reorder_dataset(dataset: &Dataset, perm: &Permutation) -> Dataset {
    let graph = reorder_graph(&dataset.graph, perm);
    let n = dataset.graph.num_vertices();
    let dim = dataset.features.dim();
    let mut features = FeatureTable::zeros(n, dim);
    for old in 0..n as VertexId {
        features
            .row_mut(perm.apply(old))
            .copy_from_slice(dataset.features.row(old));
    }
    let labels = dataset.labels.as_ref().map(|ls| {
        let mut out = vec![0u32; n];
        for (old, &l) in ls.iter().enumerate() {
            out[perm.apply(old as VertexId) as usize] = l;
        }
        out
    });
    let mut train_vertices: Vec<VertexId> = dataset
        .train_vertices
        .iter()
        .map(|&v| perm.apply(v))
        .collect();
    train_vertices.sort_unstable();
    Dataset {
        name: format!("{}+reordered", dataset.name),
        graph,
        features,
        labels,
        train_vertices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::spec_by_name;
    use crate::stats::degree_stats;

    #[test]
    fn permutation_validation() {
        let p = Permutation::new(vec![2, 0, 1]);
        assert_eq!(p.apply(0), 2);
        let inv = p.inverse();
        for v in 0..3 {
            assert_eq!(inv.apply(p.apply(v)), v);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate mapping")]
    fn rejects_non_permutation() {
        let _ = Permutation::new(vec![0, 0, 1]);
    }

    #[test]
    fn descending_score_gives_rank_zero_to_hottest() {
        let p = by_descending_score(&[5, 100, 7]);
        assert_eq!(p.apply(1), 0);
        assert_eq!(p.apply(2), 1);
        assert_eq!(p.apply(0), 2);
    }

    #[test]
    fn reorder_preserves_structure() {
        let ds = spec_by_name("PR").unwrap().instantiate(2000, 13);
        let degrees: Vec<u64> = (0..ds.graph.num_vertices() as VertexId)
            .map(|v| ds.graph.degree(v))
            .collect();
        let perm = by_descending_score(&degrees);
        let re = reorder_dataset(&ds, &perm);
        // Same vertex/edge counts; same degree multiset.
        assert_eq!(re.graph.num_vertices(), ds.graph.num_vertices());
        assert_eq!(re.graph.num_edges(), ds.graph.num_edges());
        assert_eq!(degree_stats(&re.graph), degree_stats(&ds.graph));
        // Vertex 0 is now the max-degree vertex.
        let max_deg = degrees.iter().max().copied().unwrap();
        assert_eq!(re.graph.degree(0), max_deg);
        // Every relabeled edge maps back to an original edge.
        let inv = perm.inverse();
        for (s, d) in re.graph.edges().take(2000) {
            let (os, od) = (inv.apply(s), inv.apply(d));
            assert!(ds.graph.neighbors(os).contains(&od));
        }
        // Features and labels follow their vertices.
        for old in (0..ds.graph.num_vertices() as VertexId).step_by(97) {
            assert_eq!(re.features.row(perm.apply(old)), ds.features.row(old));
            if let (Some(a), Some(b)) = (&re.labels, &ds.labels) {
                assert_eq!(a[perm.apply(old) as usize], b[old as usize]);
            }
        }
        // Training set is the same set of (relabeled) vertices.
        assert_eq!(re.train_vertices.len(), ds.train_vertices.len());
    }

    #[test]
    fn identity_reorder_is_noop() {
        let ds = spec_by_name("PA").unwrap().instantiate(4000, 13);
        let re = reorder_dataset(&ds, &Permutation::identity(ds.graph.num_vertices()));
        assert_eq!(re.graph, ds.graph);
        assert_eq!(re.features.as_slice(), ds.features.as_slice());
        assert_eq!(re.train_vertices, ds.train_vertices);
    }
}
