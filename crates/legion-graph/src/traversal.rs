//! Graph traversals used by partitioners and experiment drivers.

use std::collections::VecDeque;

use crate::csr::CsrGraph;
use crate::VertexId;

/// Breadth-first search from `source`, returning hop distance per vertex
/// (`u32::MAX` for unreachable vertices).
pub fn bfs_distances(g: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Collects all vertices within `hops` hops of any seed (including seeds).
/// This is the "L-hop neighbor inclusion" PaGraph applies when extending
/// partitions (§3.1), and the source of its cache duplication.
pub fn l_hop_closure(g: &CsrGraph, seeds: &[VertexId], hops: u32) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut level = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    for &s in seeds {
        assert!((s as usize) < n, "seed out of range");
        if level[s as usize] == u32::MAX {
            level[s as usize] = 0;
            queue.push_back(s);
        }
    }
    let mut out = Vec::new();
    while let Some(v) = queue.pop_front() {
        let d = level[v as usize];
        out.push(v);
        if d == hops {
            continue;
        }
        for &u in g.neighbors(v) {
            if level[u as usize] == u32::MAX {
                level[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Weakly connected components over the symmetrized graph. Returns
/// `(component_id_per_vertex, component_count)`.
pub fn connected_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    let sym = g.symmetrize();
    let n = sym.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as VertexId {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = next;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &u in sym.neighbors(v) {
                if comp[u as usize] == u32::MAX {
                    comp[u as usize] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path4() -> CsrGraph {
        GraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .build()
    }

    #[test]
    fn bfs_on_path() {
        let g = path4();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        // Directed: nothing reachable backwards from 3.
        let d = bfs_distances(&g, 3);
        assert_eq!(d[3], 0);
        assert_eq!(d[0], u32::MAX);
    }

    #[test]
    fn l_hop_closure_bounds_depth() {
        let g = path4();
        assert_eq!(l_hop_closure(&g, &[0], 0), vec![0]);
        assert_eq!(l_hop_closure(&g, &[0], 2), vec![0, 1, 2]);
        assert_eq!(l_hop_closure(&g, &[0], 9), vec![0, 1, 2, 3]);
    }

    #[test]
    fn l_hop_closure_merges_seeds() {
        let g = path4();
        assert_eq!(l_hop_closure(&g, &[0, 3], 1), vec![0, 1, 3]);
    }

    #[test]
    fn components_on_disconnected_graph() {
        let g = GraphBuilder::new(5).edge(0, 1).edge(3, 4).build();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn components_single_component() {
        let (comp, count) = connected_components(&path4());
        assert_eq!(count, 1);
        assert!(comp.iter().all(|&c| c == 0));
    }
}
