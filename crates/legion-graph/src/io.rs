//! Binary (de)serialization of graphs and datasets.
//!
//! An open-source release of Legion needs to persist preprocessed data:
//! the paper amortizes its partitioning cost because "we only partition
//! the graph once but can use the partitioning results for multiple GNN
//! training jobs" (§6.6) — which requires writing artifacts to disk. The
//! format is a simple little-endian container:
//!
//! ```text
//! magic "LGN1" | num_vertices u64 | num_edges u64 | feature_dim u64 |
//! has_labels u8 | num_train u64 |
//! row_offsets  (num_vertices + 1) x u64 |
//! col_indices  num_edges x u32 |
//! features     num_vertices * feature_dim x f32 |
//! labels       (num_vertices x u32, if has_labels) |
//! train        num_train x u32
//! ```

use std::io::{self, Read, Write};
use std::path::Path;

use crate::csr::CsrGraph;
use crate::dataset::Dataset;
use crate::features::FeatureTable;
use crate::VertexId;

const MAGIC: &[u8; 4] = b"LGN1";

/// Errors from loading a serialized dataset.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the expected magic.
    BadMagic,
    /// Structural invariants failed after decoding.
    Corrupt(String),
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::BadMagic => write!(f, "not a Legion dataset file"),
            IoError::Corrupt(why) => write!(f, "corrupt dataset: {why}"),
        }
    }
}

impl std::error::Error for IoError {}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_u32_slice<W: Write>(w: &mut W, vs: &[u32]) -> io::Result<()> {
    for &v in vs {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u32_vec<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<u32>> {
    let mut buf = vec![0u8; n * 4];
    r.read_exact(&mut buf)?;
    Ok(buf
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Serializes a dataset to a writer.
pub fn write_dataset<W: Write>(w: &mut W, dataset: &Dataset) -> io::Result<()> {
    w.write_all(MAGIC)?;
    let g = &dataset.graph;
    write_u64(w, g.num_vertices() as u64)?;
    write_u64(w, g.num_edges() as u64)?;
    write_u64(w, dataset.features.dim() as u64)?;
    w.write_all(&[dataset.labels.is_some() as u8])?;
    write_u64(w, dataset.train_vertices.len() as u64)?;
    for &o in g.row_offsets() {
        write_u64(w, o)?;
    }
    write_u32_slice(w, g.col_indices())?;
    for &x in dataset.features.as_slice() {
        w.write_all(&x.to_le_bytes())?;
    }
    if let Some(labels) = &dataset.labels {
        write_u32_slice(w, labels)?;
    }
    write_u32_slice(w, &dataset.train_vertices)?;
    Ok(())
}

/// Deserializes a dataset from a reader.
pub fn read_dataset<R: Read>(r: &mut R, name: &str) -> Result<Dataset, IoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(IoError::BadMagic);
    }
    let n = read_u64(r)? as usize;
    let m = read_u64(r)? as usize;
    let dim = read_u64(r)? as usize;
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let has_labels = flag[0] != 0;
    let num_train = read_u64(r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(r)?);
    }
    let cols = read_u32_vec(r, m)?;
    let graph = CsrGraph::from_parts(offsets, cols)
        .map_err(|e| IoError::Corrupt(format!("invalid CSR: {e}")))?;
    let mut fbuf = vec![0u8; n * dim * 4];
    r.read_exact(&mut fbuf)?;
    let feats: Vec<f32> = fbuf
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let features = FeatureTable::from_flat(feats, dim.max(1));
    let labels = if has_labels {
        Some(read_u32_vec(r, n)?)
    } else {
        None
    };
    let train_vertices: Vec<VertexId> = read_u32_vec(r, num_train)?;
    for &v in &train_vertices {
        if v as usize >= n {
            return Err(IoError::Corrupt(format!("train vertex {v} out of range")));
        }
    }
    Ok(Dataset {
        name: name.to_string(),
        graph,
        features,
        labels,
        train_vertices,
    })
}

/// Writes a dataset to a file path.
pub fn save_dataset<P: AsRef<Path>>(path: P, dataset: &Dataset) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_dataset(&mut f, dataset)
}

/// Reads a dataset from a file path.
pub fn load_dataset<P: AsRef<Path>>(path: P) -> Result<Dataset, IoError> {
    let name = path
        .as_ref()
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset")
        .to_string();
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_dataset(&mut f, &name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::spec_by_name;

    fn roundtrip(dataset: &Dataset) -> Dataset {
        let mut buf = Vec::new();
        write_dataset(&mut buf, dataset).unwrap();
        read_dataset(&mut io::Cursor::new(buf), "roundtrip").unwrap()
    }

    #[test]
    fn labeled_dataset_roundtrips() {
        let ds = spec_by_name("PR").unwrap().instantiate(2000, 5);
        let back = roundtrip(&ds);
        assert_eq!(back.graph, ds.graph);
        assert_eq!(back.features.as_slice(), ds.features.as_slice());
        assert_eq!(back.labels, ds.labels);
        assert_eq!(back.train_vertices, ds.train_vertices);
    }

    #[test]
    fn unlabeled_dataset_roundtrips() {
        let ds = spec_by_name("PA").unwrap().instantiate(4000, 5);
        assert!(ds.labels.is_none());
        let back = roundtrip(&ds);
        assert_eq!(back.graph, ds.graph);
        assert!(back.labels.is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_dataset(&mut io::Cursor::new(b"NOPE....".to_vec()), "x").unwrap_err();
        assert!(matches!(err, IoError::BadMagic));
    }

    #[test]
    fn truncated_file_is_io_error() {
        let ds = spec_by_name("PR").unwrap().instantiate(2000, 5);
        let mut buf = Vec::new();
        write_dataset(&mut buf, &ds).unwrap();
        buf.truncate(buf.len() / 2);
        let err = read_dataset(&mut io::Cursor::new(buf), "x").unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
    }

    #[test]
    fn corrupt_csr_detected() {
        let ds = spec_by_name("PR").unwrap().instantiate(2000, 5);
        let mut buf = Vec::new();
        write_dataset(&mut buf, &ds).unwrap();
        // Smash a row offset (bytes 29..37 are within the offsets array).
        for b in &mut buf[40..48] {
            *b = 0xFF;
        }
        let err = read_dataset(&mut io::Cursor::new(buf), "x").unwrap_err();
        assert!(matches!(err, IoError::Corrupt(_) | IoError::Io(_)));
    }

    #[test]
    fn file_save_load_roundtrip() {
        let ds = spec_by_name("PR").unwrap().instantiate(2000, 6);
        let path = std::env::temp_dir().join("legion_io_test.lgn");
        save_dataset(&path, &ds).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(back.graph, ds.graph);
        assert_eq!(back.name, "legion_io_test");
        let _ = std::fs::remove_file(path);
    }
}
