//! Edge-list ingestion into [`CsrGraph`].

use crate::csr::CsrGraph;
use crate::VertexId;

/// Incremental builder that collects `(src, dst)` pairs and finalizes them
/// into a sorted, de-duplicated CSR graph.
///
/// # Examples
///
/// ```
/// use legion_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(2).edge(1, 0).edge(0, 1).edge(1, 0).build();
/// // Duplicates removed, adjacency sorted.
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.neighbors(1), &[0]);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    dedup: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
            dedup: true,
        }
    }

    /// Pre-allocates space for `n` edges.
    pub fn with_edge_capacity(mut self, n: usize) -> Self {
        self.edges.reserve(n);
        self
    }

    /// Keeps parallel edges instead of de-duplicating (default: dedup).
    pub fn keep_duplicates(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Adds a directed edge. Endpoints outside the vertex range are a
    /// programming error and will panic at [`build`](Self::build) time.
    pub fn edge(mut self, src: VertexId, dst: VertexId) -> Self {
        self.edges.push((src, dst));
        self
    }

    /// Adds a directed edge via mutable reference (for loops).
    pub fn push_edge(&mut self, src: VertexId, dst: VertexId) {
        self.edges.push((src, dst));
    }

    /// Adds every edge in `it`.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, it: I) {
        self.edges.extend(it);
    }

    /// Number of edges buffered so far (before dedup).
    pub fn buffered_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into a CSR graph.
    ///
    /// # Panics
    ///
    /// Panics if any buffered edge references a vertex `>= num_vertices`.
    pub fn build(mut self) -> CsrGraph {
        let n = self.num_vertices;
        for &(s, d) in &self.edges {
            assert!(
                (s as usize) < n && (d as usize) < n,
                "edge ({s}, {d}) out of range for {n} vertices"
            );
        }
        self.edges.sort_unstable();
        if self.dedup {
            self.edges.dedup();
        }
        let mut offsets = vec![0u64; n + 1];
        for &(s, _) in &self.edges {
            offsets[s as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let cols = self.edges.into_iter().map(|(_, d)| d).collect();
        CsrGraph::from_parts(offsets, cols).expect("builder output is structurally valid")
    }
}

/// Builds a CSR graph directly from an edge slice (convenience wrapper).
pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> CsrGraph {
    let mut b = GraphBuilder::new(num_vertices).with_edge_capacity(edges.len());
    b.extend_edges(edges.iter().copied());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sorts_adjacency() {
        let g = GraphBuilder::new(4)
            .edge(0, 3)
            .edge(0, 1)
            .edge(0, 2)
            .build();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn build_dedups_by_default() {
        let g = GraphBuilder::new(2).edge(0, 1).edge(0, 1).build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn keep_duplicates_preserves_multiplicity() {
        let g = GraphBuilder::new(2)
            .keep_duplicates()
            .edge(0, 1)
            .edge(0, 1)
            .build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn build_panics_on_out_of_range_edge() {
        let _ = GraphBuilder::new(2).edge(0, 2).build();
    }

    #[test]
    fn empty_builder_yields_empty_graph() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn from_edges_matches_builder() {
        let e = [(0, 1), (1, 2), (2, 0)];
        let g = from_edges(3, &e);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(2), &[0]);
    }
}
