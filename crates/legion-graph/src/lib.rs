//! Graph storage and synthetic dataset substrate for the Legion reproduction.
//!
//! The Legion paper ("Legion: Automatically Pushing the Envelope of Multi-GPU
//! System for Billion-Scale GNN Training", USENIX ATC 2023) evaluates on
//! billion-scale graphs stored in compressed sparse row (CSR) format with
//! `u64` row offsets and `u32` column indices (see the paper's Equation 3).
//! This crate provides:
//!
//! * [`csr::CsrGraph`] — the CSR topology structure used everywhere else,
//! * [`builder::GraphBuilder`] — edge-list ingestion with sorting and
//!   de-duplication,
//! * [`generate`] — R-MAT, Chung-Lu, Erdős–Rényi and stochastic-block-model
//!   generators used to synthesize scaled-down stand-ins for the paper's
//!   datasets (Products, Paper100M, Com-Friendster, UK-Union, UK-2014,
//!   Clue-web),
//! * [`features::FeatureTable`] — the dense 2-D feature array cached by the
//!   unified cache,
//! * [`dataset`] — a registry of the paper's Table 2 datasets at laptop
//!   scale, and
//! * [`stats`] / [`traversal`] — degree/skew statistics and traversals used
//!   by the partitioners and experiment drivers.

pub mod builder;
pub mod csr;
pub mod dataset;
pub mod features;
pub mod generate;
pub mod io;
pub mod reorder;
pub mod stats;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use dataset::{Dataset, DatasetSpec};
pub use features::FeatureTable;

/// Vertex identifier. The paper stores CSR column indices as `Uint32`.
pub type VertexId = u32;

/// Edge index into the CSR column array. The paper stores row offsets as
/// `Uint64`; at our simulation scale `u64` is also what the cost model's
/// Equation 3 assumes (`s_uint64` bytes per row pointer).
pub type EdgeIndex = u64;

/// Number of bytes used to store one CSR row offset (`s_uint64` in Eq. 3).
pub const ROW_OFFSET_BYTES: u64 = 8;

/// Number of bytes used to store one CSR column index (`s_uint32` in Eq. 3).
pub const COL_INDEX_BYTES: u64 = 4;

/// Number of bytes used to store one feature scalar (`s_float32` in Eq. 6).
pub const FEATURE_SCALAR_BYTES: u64 = 4;

/// Bytes of topology cache occupied by one vertex with `degree` out-edges,
/// per the paper's Equation 3: `nc(v) * s_uint32 + s_uint64`.
#[inline]
pub fn topology_bytes_for_degree(degree: u64) -> u64 {
    degree * COL_INDEX_BYTES + ROW_OFFSET_BYTES
}

/// Bytes of feature cache occupied by one vertex with `dim`-dimensional
/// features, per the paper's Equation 6: `D * s_float32`.
#[inline]
pub fn feature_bytes_for_dim(dim: u64) -> u64 {
    dim * FEATURE_SCALAR_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_bytes_matches_equation_3() {
        // A vertex with 10 neighbors costs 10 * 4 + 8 bytes.
        assert_eq!(topology_bytes_for_degree(10), 48);
        // An isolated vertex still costs one row offset.
        assert_eq!(topology_bytes_for_degree(0), 8);
    }

    #[test]
    fn feature_bytes_matches_equation_6() {
        assert_eq!(feature_bytes_for_dim(128), 512);
        assert_eq!(feature_bytes_for_dim(0), 0);
    }
}
