//! Compressed-sparse-row graph topology.
//!
//! This is the structure Legion's topology cache holds per hot vertex: the
//! row offsets are `u64` and the column (neighbor) indices are `u32`, exactly
//! the data types the paper's cost model assumes in Equation 3.

use crate::{topology_bytes_for_degree, EdgeIndex, VertexId, COL_INDEX_BYTES, ROW_OFFSET_BYTES};

/// A directed graph in compressed-sparse-row layout.
///
/// Invariants (enforced by [`CsrGraph::from_parts`] and the builder):
///
/// * `row_offsets.len() == num_vertices + 1`,
/// * `row_offsets` is non-decreasing and `row_offsets[0] == 0`,
/// * `row_offsets[num_vertices] == col_indices.len()`,
/// * every column index is `< num_vertices`.
///
/// # Examples
///
/// ```
/// use legion_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(3).edge(0, 1).edge(0, 2).edge(2, 1).build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// assert_eq!(g.degree(1), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    row_offsets: Vec<EdgeIndex>,
    col_indices: Vec<VertexId>,
}

/// Errors that can arise when constructing a [`CsrGraph`] from raw parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// `row_offsets` is empty (it must contain at least the single `0`).
    EmptyOffsets,
    /// `row_offsets[0]` is not zero.
    NonZeroFirstOffset,
    /// `row_offsets` decreases at the given vertex.
    DecreasingOffsets(usize),
    /// The final offset does not equal `col_indices.len()`.
    OffsetLengthMismatch { last_offset: u64, num_edges: usize },
    /// A column index references a vertex outside `0..num_vertices`.
    ColumnOutOfRange { edge: usize, vertex: VertexId },
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::EmptyOffsets => write!(f, "row offsets must contain at least one entry"),
            CsrError::NonZeroFirstOffset => write!(f, "row_offsets[0] must be 0"),
            CsrError::DecreasingOffsets(v) => {
                write!(f, "row offsets decrease at vertex {v}")
            }
            CsrError::OffsetLengthMismatch {
                last_offset,
                num_edges,
            } => write!(
                f,
                "last row offset {last_offset} != number of edges {num_edges}"
            ),
            CsrError::ColumnOutOfRange { edge, vertex } => {
                write!(f, "edge {edge} references out-of-range vertex {vertex}")
            }
        }
    }
}

impl std::error::Error for CsrError {}

impl CsrGraph {
    /// Builds a CSR graph from raw offset and index arrays, validating all
    /// structural invariants.
    pub fn from_parts(
        row_offsets: Vec<EdgeIndex>,
        col_indices: Vec<VertexId>,
    ) -> Result<Self, CsrError> {
        if row_offsets.is_empty() {
            return Err(CsrError::EmptyOffsets);
        }
        if row_offsets[0] != 0 {
            return Err(CsrError::NonZeroFirstOffset);
        }
        for v in 1..row_offsets.len() {
            if row_offsets[v] < row_offsets[v - 1] {
                return Err(CsrError::DecreasingOffsets(v - 1));
            }
        }
        let last = *row_offsets.last().expect("checked non-empty");
        if last != col_indices.len() as u64 {
            return Err(CsrError::OffsetLengthMismatch {
                last_offset: last,
                num_edges: col_indices.len(),
            });
        }
        let n = (row_offsets.len() - 1) as u64;
        for (e, &c) in col_indices.iter().enumerate() {
            if (c as u64) >= n {
                return Err(CsrError::ColumnOutOfRange { edge: e, vertex: c });
            }
        }
        Ok(Self {
            row_offsets,
            col_indices,
        })
    }

    /// An empty graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Self {
            row_offsets: vec![0; n + 1],
            col_indices: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col_indices.len()
    }

    /// Out-degree of `v` (the paper's `nc(v)`).
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        let v = v as usize;
        self.row_offsets[v + 1] - self.row_offsets[v]
    }

    /// Out-neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        let lo = self.row_offsets[v] as usize;
        let hi = self.row_offsets[v + 1] as usize;
        &self.col_indices[lo..hi]
    }

    /// The raw row offset array (`num_vertices + 1` entries).
    #[inline]
    pub fn row_offsets(&self) -> &[EdgeIndex] {
        &self.row_offsets
    }

    /// The raw column index array.
    #[inline]
    pub fn col_indices(&self) -> &[VertexId] {
        &self.col_indices
    }

    /// Iterates over all `(src, dst)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&u| (v, u)))
    }

    /// Total bytes needed to store this topology in the cost model's CSR
    /// accounting: one `u64` row offset per vertex plus one `u32` per edge.
    pub fn topology_bytes(&self) -> u64 {
        self.num_vertices() as u64 * ROW_OFFSET_BYTES + self.num_edges() as u64 * COL_INDEX_BYTES
    }

    /// Bytes this single vertex's adjacency occupies in a topology cache
    /// (Equation 3 of the paper).
    #[inline]
    pub fn vertex_topology_bytes(&self, v: VertexId) -> u64 {
        topology_bytes_for_degree(self.degree(v))
    }

    /// Returns the transposed (reverse-edge) graph. Used to convert between
    /// out-edge CSR and in-edge CSC views, e.g. for in-degree hotness
    /// metrics (PaGraph's cache policy) and GCN normalization.
    pub fn transpose(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut deg = vec![0u64; n];
        for &c in &self.col_indices {
            deg[c as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut cursor = offsets.clone();
        let mut cols = vec![0 as VertexId; self.num_edges()];
        for v in 0..n as VertexId {
            for &u in self.neighbors(v) {
                let slot = cursor[u as usize];
                cols[slot as usize] = v;
                cursor[u as usize] += 1;
            }
        }
        CsrGraph {
            row_offsets: offsets,
            col_indices: cols,
        }
    }

    /// Returns the symmetrized graph: for every edge `(u, v)` both `(u, v)`
    /// and `(v, u)` exist exactly once (self-loops kept once). Partitioners
    /// operate on the symmetric structure.
    pub fn symmetrize(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.num_edges() * 2);
        for (u, v) in self.edges() {
            pairs.push((u, v));
            if u != v {
                pairs.push((v, u));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut offsets = vec![0u64; n + 1];
        for &(u, _) in &pairs {
            offsets[u as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let cols = pairs.into_iter().map(|(_, v)| v).collect();
        CsrGraph {
            row_offsets: offsets,
            col_indices: cols,
        }
    }

    /// Extracts the subgraph induced on `vertices`, relabeling vertices to
    /// `0..vertices.len()` in the given order. Edges whose endpoint is not
    /// in `vertices` are dropped. Used by PaGraph-style self-reliant
    /// partitions.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> CsrGraph {
        let mut remap = vec![VertexId::MAX; self.num_vertices()];
        for (new, &old) in vertices.iter().enumerate() {
            remap[old as usize] = new as VertexId;
        }
        let mut offsets = Vec::with_capacity(vertices.len() + 1);
        offsets.push(0u64);
        let mut cols = Vec::new();
        for &old in vertices {
            for &nb in self.neighbors(old) {
                let r = remap[nb as usize];
                if r != VertexId::MAX {
                    cols.push(r);
                }
            }
            offsets.push(cols.len() as u64);
        }
        CsrGraph {
            row_offsets: offsets,
            col_indices: cols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        GraphBuilder::new(4)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(2, 3)
            .build()
    }

    #[test]
    fn from_parts_accepts_valid() {
        let g = CsrGraph::from_parts(vec![0, 2, 2, 3], vec![1, 2, 0]).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[VertexId]);
    }

    #[test]
    fn from_parts_rejects_empty_offsets() {
        assert_eq!(
            CsrGraph::from_parts(vec![], vec![]),
            Err(CsrError::EmptyOffsets)
        );
    }

    #[test]
    fn from_parts_rejects_nonzero_start() {
        assert_eq!(
            CsrGraph::from_parts(vec![1, 1], vec![0]),
            Err(CsrError::NonZeroFirstOffset)
        );
    }

    #[test]
    fn from_parts_rejects_decreasing() {
        assert_eq!(
            CsrGraph::from_parts(vec![0, 2, 1], vec![0, 1]),
            Err(CsrError::DecreasingOffsets(1))
        );
    }

    #[test]
    fn from_parts_rejects_length_mismatch() {
        assert!(matches!(
            CsrGraph::from_parts(vec![0, 3], vec![0]),
            Err(CsrError::OffsetLengthMismatch { .. })
        ));
    }

    #[test]
    fn from_parts_rejects_out_of_range_column() {
        assert!(matches!(
            CsrGraph::from_parts(vec![0, 1], vec![5]),
            Err(CsrError::ColumnOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        for v in 0..5 {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(0), &[] as &[VertexId]);
        // Transposing twice restores edge multiset.
        let tt = t.transpose();
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = tt.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn symmetrize_makes_edges_bidirectional() {
        let g = diamond();
        let s = g.symmetrize();
        assert_eq!(s.num_edges(), 8);
        assert_eq!(s.neighbors(3), &[1, 2]);
        assert_eq!(s.neighbors(0), &[1, 2]);
    }

    #[test]
    fn symmetrize_keeps_self_loop_once() {
        let g = GraphBuilder::new(2).edge(0, 0).edge(0, 1).build();
        let s = g.symmetrize();
        assert_eq!(s.neighbors(0), &[0, 1]);
        assert_eq!(s.neighbors(1), &[0]);
    }

    #[test]
    fn induced_subgraph_relabels_and_filters() {
        let g = diamond();
        let sub = g.induced_subgraph(&[0, 1, 3]);
        assert_eq!(sub.num_vertices(), 3);
        // 0 -> 1 survives (0->1), 0 -> 2 dropped, 1 -> 3 becomes 1 -> 2.
        assert_eq!(sub.neighbors(0), &[1]);
        assert_eq!(sub.neighbors(1), &[2]);
        assert_eq!(sub.neighbors(2), &[] as &[VertexId]);
    }

    #[test]
    fn topology_bytes_accounts_rows_and_cols() {
        let g = diamond();
        assert_eq!(g.topology_bytes(), 4 * 8 + 4 * 4);
        assert_eq!(g.vertex_topology_bytes(0), 2 * 4 + 8);
    }

    #[test]
    fn edges_iterator_yields_all_edges() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }
}
