//! R-MAT (recursive matrix) graph generator.
//!
//! R-MAT recursively subdivides the adjacency matrix into quadrants with
//! probabilities `(a, b, c, d)` and drops each edge into a quadrant chosen
//! independently per level. With the classic `(0.57, 0.19, 0.19, 0.05)`
//! parameters it produces the skewed, community-ish structure of web crawls
//! — our stand-in for UK-Union / UK-2014 / Clue-web.

use rand::Rng;

use crate::csr::CsrGraph;
use crate::GraphBuilder;
use crate::VertexId;

/// Configuration for the R-MAT generator.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the number of vertices (the graph has `2^scale` vertices).
    pub scale: u32,
    /// Average out-degree; `edges = num_vertices * edge_factor`.
    pub edge_factor: usize,
    /// Quadrant probabilities; must be non-negative and sum to ~1.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Noise added per recursion level to avoid exact self-similarity.
    pub noise: f64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        Self {
            scale: 14,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }
    }
}

impl RmatConfig {
    /// Generates the graph with the given RNG. Duplicate edges are removed,
    /// so the realized edge count can be slightly below
    /// `2^scale * edge_factor`.
    ///
    /// # Panics
    ///
    /// Panics if the quadrant probabilities are invalid.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> CsrGraph {
        let d = 1.0 - self.a - self.b - self.c;
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && d >= -1e-9,
            "R-MAT quadrant probabilities must be non-negative and sum to <= 1"
        );
        let n = 1usize << self.scale;
        let m = n * self.edge_factor;
        let mut builder = GraphBuilder::new(n).with_edge_capacity(m);
        for _ in 0..m {
            let (src, dst) = self.one_edge(rng);
            builder.push_edge(src, dst);
        }
        builder.build()
    }

    fn one_edge<R: Rng + ?Sized>(&self, rng: &mut R) -> (VertexId, VertexId) {
        let mut row = 0usize;
        let mut col = 0usize;
        for level in (0..self.scale).rev() {
            // Perturb the quadrant probabilities a little per level.
            let mut jitter = |p: f64| {
                let eps: f64 = rng.gen_range(-self.noise..=self.noise);
                (p * (1.0 + eps)).max(0.0)
            };
            let a = jitter(self.a);
            let b = jitter(self.b);
            let c = jitter(self.c);
            let d = jitter(1.0 - self.a - self.b - self.c);
            let total = a + b + c + d;
            let u: f64 = rng.gen_range(0.0..total);
            let bit = 1usize << level;
            if u < a {
                // Upper-left: nothing to add.
            } else if u < a + b {
                col |= bit;
            } else if u < a + b + c {
                row |= bit;
            } else {
                row |= bit;
                col |= bit;
            }
        }
        (row as VertexId, col as VertexId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_vertex_count() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = RmatConfig {
            scale: 10,
            edge_factor: 8,
            ..Default::default()
        }
        .generate(&mut rng);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 0);
        assert!(g.num_edges() <= 1024 * 8);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = RmatConfig {
            scale: 12,
            edge_factor: 16,
            ..Default::default()
        }
        .generate(&mut rng);
        let stats = degree_stats(&g);
        // R-MAT concentrates edges: the max degree far exceeds the mean.
        assert!(
            stats.max as f64 > 8.0 * stats.mean,
            "max {} mean {}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let cfg = RmatConfig {
            scale: 9,
            edge_factor: 4,
            ..Default::default()
        };
        let g1 = cfg.generate(&mut StdRng::seed_from_u64(5));
        let g2 = cfg.generate(&mut StdRng::seed_from_u64(5));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "quadrant probabilities")]
    fn rejects_bad_probabilities() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = RmatConfig {
            a: 0.9,
            b: 0.9,
            c: 0.9,
            ..Default::default()
        }
        .generate(&mut rng);
    }
}
