//! Erdős–Rényi `G(n, m)` random graphs.
//!
//! Used as the unskewed control in ablations: under uniform access the
//! hotness-ranked caches of the paper lose their advantage, which several
//! tests assert explicitly.

use rand::Rng;

use crate::csr::CsrGraph;
use crate::GraphBuilder;
use crate::VertexId;

/// Configuration for the `G(n, m)` generator.
#[derive(Debug, Clone, Copy)]
pub struct ErdosRenyiConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Target number of directed edges (before de-duplication).
    pub num_edges: usize,
    /// Allow self-loops (default: false).
    pub self_loops: bool,
}

impl Default for ErdosRenyiConfig {
    fn default() -> Self {
        Self {
            num_vertices: 1000,
            num_edges: 8000,
            self_loops: false,
        }
    }
}

impl ErdosRenyiConfig {
    /// Generates the graph.
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices == 0`, or if self-loops are disabled and
    /// `num_vertices == 1` while edges are requested.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> CsrGraph {
        assert!(self.num_vertices > 0, "graph must have vertices");
        assert!(
            self.self_loops || self.num_vertices > 1 || self.num_edges == 0,
            "cannot draw loop-free edges on a single vertex"
        );
        let n = self.num_vertices as VertexId;
        let mut builder = GraphBuilder::new(self.num_vertices).with_edge_capacity(self.num_edges);
        let mut produced = 0usize;
        while produced < self.num_edges {
            let s = rng.gen_range(0..n);
            let d = rng.gen_range(0..n);
            if !self.self_loops && s == d {
                continue;
            }
            builder.push_edge(s, d);
            produced += 1;
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basic_generation() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = ErdosRenyiConfig::default().generate(&mut rng);
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.num_edges() > 7000, "dedup removed too many edges");
    }

    #[test]
    fn degrees_are_flat() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = ErdosRenyiConfig {
            num_vertices: 2000,
            num_edges: 40_000,
            self_loops: false,
        }
        .generate(&mut rng);
        let s = degree_stats(&g);
        // Poisson(20): max degree stays within a small factor of the mean.
        assert!(
            (s.max as f64) < 3.0 * s.mean,
            "max {} mean {}",
            s.max,
            s.mean
        );
    }

    #[test]
    fn zero_edges_ok() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = ErdosRenyiConfig {
            num_vertices: 5,
            num_edges: 0,
            self_loops: false,
        }
        .generate(&mut rng);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "single vertex")]
    fn single_vertex_no_loops_panics() {
        let mut rng = StdRng::seed_from_u64(14);
        let _ = ErdosRenyiConfig {
            num_vertices: 1,
            num_edges: 1,
            self_loops: false,
        }
        .generate(&mut rng);
    }
}
