//! Chung–Lu random graphs with a Zipf expected-degree sequence.
//!
//! Each edge endpoint is drawn independently from a Zipf distribution over
//! vertices, so vertex `k`'s expected degree is proportional to
//! `1/(k+1)^s`. This reproduces the power-law degree skew of social
//! networks (the paper's Com-Friendster stand-in) with a directly tunable
//! exponent.

use rand::Rng;

use crate::csr::CsrGraph;
use crate::generate::zipf::Zipf;
use crate::GraphBuilder;
use crate::VertexId;

/// Configuration for the Chung–Lu generator.
#[derive(Debug, Clone, Copy)]
pub struct ChungLuConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Target number of directed edges (before de-duplication).
    pub num_edges: usize,
    /// Zipf exponent of the expected-degree sequence (0 = uniform).
    pub exponent: f64,
    /// When true, vertex IDs are shuffled so hot vertices are not the
    /// lowest IDs (avoids accidental locality artifacts in caches).
    pub shuffle_ids: bool,
    /// Number of planted communities (0 or 1 disables community
    /// structure). Real social/citation graphs are both skewed *and*
    /// clustered; partition-based caching (PaGraph-plus, Legion) relies
    /// on that clustering.
    pub num_communities: usize,
    /// Probability that an edge stays inside its source's community.
    pub community_bias: f64,
}

impl Default for ChungLuConfig {
    fn default() -> Self {
        Self {
            num_vertices: 10_000,
            num_edges: 160_000,
            exponent: 0.8,
            shuffle_ids: true,
            num_communities: 0,
            community_bias: 0.0,
        }
    }
}

impl ChungLuConfig {
    /// Generates the graph. Self-loops are rejected and duplicates removed.
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices == 0`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> CsrGraph {
        assert!(self.num_vertices > 0, "graph must have vertices");
        let n = self.num_vertices;
        let zipf = Zipf::new(n, self.exponent);
        // Communities are contiguous blocks in *rank* space; each block
        // gets its own Zipf head so every community has local hubs.
        let communities = self.num_communities.max(1).min(n);
        let block = n.div_ceil(communities);
        let block_zipf = if communities > 1 {
            Some(Zipf::new(block, self.exponent))
        } else {
            None
        };
        let perm = if self.shuffle_ids {
            random_permutation(n, rng)
        } else {
            (0..n as VertexId).collect()
        };
        let mut builder = GraphBuilder::new(n).with_edge_capacity(self.num_edges);
        let mut produced = 0usize;
        let mut attempts = 0usize;
        let max_attempts = self.num_edges.saturating_mul(4).max(16);
        while produced < self.num_edges && attempts < max_attempts {
            attempts += 1;
            let s = zipf.sample(rng);
            let d = match &block_zipf {
                Some(bz) if rng.gen::<f64>() < self.community_bias => {
                    let start = (s / block) * block;
                    (start + bz.sample(rng)).min(n - 1)
                }
                _ => zipf.sample(rng),
            };
            if s == d {
                continue;
            }
            builder.push_edge(perm[s], perm[d]);
            produced += 1;
        }
        builder.build()
    }
}

/// Fisher–Yates permutation of `0..n`.
pub(crate) fn random_permutation<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<VertexId> {
    let mut p: Vec<VertexId> = (0..n as VertexId).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        p.swap(i, j);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_vertex_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = ChungLuConfig {
            num_vertices: 500,
            num_edges: 4000,
            ..Default::default()
        }
        .generate(&mut rng);
        assert_eq!(g.num_vertices(), 500);
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn no_self_loops() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = ChungLuConfig {
            num_vertices: 200,
            num_edges: 2000,
            ..Default::default()
        }
        .generate(&mut rng);
        for (s, d) in g.edges() {
            assert_ne!(s, d);
        }
    }

    #[test]
    fn higher_exponent_more_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let flat = ChungLuConfig {
            num_vertices: 2000,
            num_edges: 20_000,
            exponent: 0.0,
            shuffle_ids: false,
            ..Default::default()
        }
        .generate(&mut rng);
        let skew = ChungLuConfig {
            num_vertices: 2000,
            num_edges: 20_000,
            exponent: 1.0,
            shuffle_ids: false,
            ..Default::default()
        }
        .generate(&mut rng);
        let a = degree_stats(&flat.symmetrize());
        let b = degree_stats(&skew.symmetrize());
        assert!(b.max > a.max, "skewed max {} flat max {}", b.max, a.max);
    }

    #[test]
    fn community_bias_creates_locality() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = ChungLuConfig {
            num_vertices: 4000,
            num_edges: 40_000,
            exponent: 0.8,
            shuffle_ids: false,
            num_communities: 8,
            community_bias: 0.8,
        };
        let g = cfg.generate(&mut rng);
        let block = 4000usize.div_ceil(8);
        let intra = g
            .edges()
            .filter(|&(s, d)| (s as usize) / block == (d as usize) / block)
            .count();
        let frac = intra as f64 / g.num_edges() as f64;
        // >= bias (global draws also land intra sometimes).
        assert!(frac > 0.7, "intra fraction {frac}");
        // Control: no communities -> intra fraction near 1/8 (plus the
        // Zipf head concentration, which inflates it somewhat).
        let flat = ChungLuConfig {
            num_communities: 0,
            community_bias: 0.0,
            ..cfg
        }
        .generate(&mut rng);
        let intra_flat = flat
            .edges()
            .filter(|&(s, d)| (s as usize) / block == (d as usize) / block)
            .count();
        let frac_flat = intra_flat as f64 / flat.num_edges() as f64;
        assert!(frac_flat < frac - 0.2, "flat {frac_flat} vs biased {frac}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = random_permutation(100, &mut rng);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
