//! Planted-partition stochastic block model with learnable labels.
//!
//! The convergence experiment (paper Figure 11) compares local vs. global
//! shuffling on real training dynamics, so the task must be genuinely
//! learnable. The SBM plants `k` communities, wires vertices preferentially
//! within their community, assigns the community as the classification
//! label, and emits Gaussian features centred on a per-community mean —
//! i.e. both structure and features carry the label signal, as in OGB
//! Products.

use rand::Rng;

use crate::csr::CsrGraph;
use crate::features::FeatureTable;
use crate::GraphBuilder;
use crate::VertexId;

/// Configuration for the stochastic block model generator.
#[derive(Debug, Clone, Copy)]
pub struct SbmConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of planted communities (= number of class labels).
    pub num_communities: usize,
    /// Average out-degree per vertex.
    pub avg_degree: usize,
    /// Probability that an edge stays within its community.
    pub intra_prob: f64,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Distance between community feature means (higher = easier task).
    pub feature_separation: f32,
    /// Per-coordinate Gaussian noise standard deviation.
    pub feature_noise: f32,
    /// Zipf exponent for destination popularity *within* a community
    /// (0 = uniform). Real product/citation graphs have hub items; the
    /// skew is what makes hotness-ranked caching effective.
    pub hub_exponent: f64,
}

impl Default for SbmConfig {
    fn default() -> Self {
        Self {
            num_vertices: 4000,
            num_communities: 8,
            avg_degree: 16,
            intra_prob: 0.85,
            feature_dim: 32,
            feature_separation: 1.0,
            feature_noise: 0.5,
            hub_exponent: 0.0,
        }
    }
}

/// A generated SBM instance: topology, features and ground-truth labels.
#[derive(Debug, Clone)]
pub struct SbmGraph {
    /// Graph topology.
    pub graph: CsrGraph,
    /// Community-correlated dense features.
    pub features: FeatureTable,
    /// Ground-truth community label per vertex.
    pub labels: Vec<u32>,
}

impl SbmConfig {
    /// Generates the instance.
    ///
    /// # Panics
    ///
    /// Panics if `num_communities == 0` or `num_vertices < num_communities`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> SbmGraph {
        assert!(self.num_communities > 0, "need at least one community");
        assert!(
            self.num_vertices >= self.num_communities,
            "need at least one vertex per community"
        );
        let n = self.num_vertices;
        let k = self.num_communities;
        let labels: Vec<u32> = (0..n).map(|v| (v % k) as u32).collect();
        // Group members by community for fast intra-community sampling.
        let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        for (v, &c) in labels.iter().enumerate() {
            members[c as usize].push(v as VertexId);
        }
        // Per-community destination popularity: Zipf over member index
        // when hub skew is requested, so every community has hot hubs.
        let member_zipf = if self.hub_exponent > 0.0 {
            Some(crate::generate::Zipf::new(
                members.iter().map(|m| m.len()).max().unwrap_or(1),
                self.hub_exponent,
            ))
        } else {
            None
        };
        let mut builder = GraphBuilder::new(n).with_edge_capacity(n * self.avg_degree);
        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            let c = labels[v] as usize;
            for _ in 0..self.avg_degree {
                let dst = if rng.gen::<f64>() < self.intra_prob {
                    let idx = match &member_zipf {
                        Some(z) => z.sample(rng) % members[c].len(),
                        None => rng.gen_range(0..members[c].len()),
                    };
                    members[c][idx]
                } else {
                    rng.gen_range(0..n as VertexId)
                };
                if dst as usize != v {
                    builder.push_edge(v as VertexId, dst);
                }
            }
        }
        let graph = builder.build();

        // Per-community mean vectors: random unit-ish directions scaled by
        // `feature_separation`.
        let mut means = vec![vec![0f32; self.feature_dim]; k];
        for mean in &mut means {
            for x in mean.iter_mut() {
                *x = (rng.gen::<f32>() - 0.5) * 2.0 * self.feature_separation;
            }
        }
        let mut features = FeatureTable::zeros(n, self.feature_dim);
        for v in 0..n {
            let mean = &means[labels[v] as usize];
            let row = features.row_mut(v as VertexId);
            for (j, x) in row.iter_mut().enumerate() {
                *x = mean[j] + gaussian(rng) * self.feature_noise;
            }
        }
        SbmGraph {
            graph,
            features,
            labels,
        }
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn labels_cover_all_communities() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = SbmConfig {
            num_vertices: 100,
            num_communities: 5,
            ..Default::default()
        }
        .generate(&mut rng);
        for c in 0..5u32 {
            assert!(g.labels.contains(&c));
        }
        assert_eq!(g.labels.len(), 100);
        assert_eq!(g.features.num_rows(), 100);
    }

    #[test]
    fn edges_mostly_intra_community() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = SbmConfig {
            num_vertices: 1000,
            num_communities: 4,
            intra_prob: 0.9,
            ..Default::default()
        }
        .generate(&mut rng);
        let mut intra = 0usize;
        let mut total = 0usize;
        for (s, d) in g.graph.edges() {
            total += 1;
            if g.labels[s as usize] == g.labels[d as usize] {
                intra += 1;
            }
        }
        assert!(
            intra as f64 / total as f64 > 0.8,
            "intra ratio {}",
            intra as f64 / total as f64
        );
    }

    #[test]
    fn features_are_community_correlated() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SbmConfig {
            num_vertices: 400,
            num_communities: 2,
            feature_dim: 16,
            feature_separation: 2.0,
            feature_noise: 0.1,
            ..Default::default()
        };
        let g = cfg.generate(&mut rng);
        // Mean intra-class distance should be far below inter-class.
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f32>()
        };
        let v0 = g.features.row(0);
        let v2 = g.features.row(2); // Same community (labels cycle mod k).
        let v1 = g.features.row(1); // Other community.
        assert!(dist(v0, v2) < dist(v0, v1));
    }

    #[test]
    #[should_panic(expected = "at least one vertex per community")]
    fn too_few_vertices_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = SbmConfig {
            num_vertices: 2,
            num_communities: 5,
            ..Default::default()
        }
        .generate(&mut rng);
    }
}
