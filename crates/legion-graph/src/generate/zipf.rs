//! Discrete Zipf distribution sampler.
//!
//! Implemented from scratch (the offline crate set has no `rand_distr`)
//! using inverse-transform sampling over a precomputed CDF. At our
//! simulation scales (`n` up to a few million) the O(n) table and O(log n)
//! sample are perfectly adequate.

use rand::Rng;

/// Zipf distribution over `{0, 1, ..., n-1}` with exponent `s`:
/// `P(k) ∝ 1 / (k + 1)^s`.
///
/// # Examples
///
/// ```
/// use legion_graph::generate::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let z = Zipf::new(100, 1.2);
/// let mut rng = StdRng::seed_from_u64(7);
/// let k = z.sample(&mut rng);
/// assert!(k < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` outcomes with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one outcome");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating point drift on the last entry.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is exactly one outcome (degenerate distribution).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of outcome `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draws one outcome.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.1);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(10, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn head_is_heavier_than_tail() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s = 1.2 the top-10 outcomes carry well over a third of mass.
        assert!(head as f64 / trials as f64 > 0.3, "head mass {head}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn single_outcome_always_zero() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn zero_outcomes_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
