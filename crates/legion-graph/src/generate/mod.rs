//! Synthetic graph generators.
//!
//! The paper evaluates on real web/social graphs whose defining property —
//! for cache behaviour — is a heavy-tailed (power-law) degree distribution.
//! These generators synthesize scaled-down graphs with matched skew:
//!
//! * [`rmat`] — recursive-matrix (R-MAT) generator, the standard stand-in
//!   for web crawls such as UK-2014 and Clue-web,
//! * [`chung_lu`] — Chung–Lu model with a Zipf expected-degree sequence,
//!   matching social networks such as Com-Friendster,
//! * [`sbm`] — planted-partition stochastic block model with
//!   community-correlated features, giving a *learnable* classification task
//!   for the convergence experiment (Figure 11),
//! * [`erdos_renyi`] — uniform random graphs used as an unskewed control in
//!   tests and ablations, and
//! * [`zipf`] — the discrete Zipf sampler shared by the other generators.

pub mod chung_lu;
pub mod erdos_renyi;
pub mod rmat;
pub mod sbm;
pub mod zipf;

pub use chung_lu::ChungLuConfig;
pub use erdos_renyi::ErdosRenyiConfig;
pub use rmat::RmatConfig;
pub use sbm::{SbmConfig, SbmGraph};
pub use zipf::Zipf;
