//! Degree statistics and skew metrics used by experiment drivers and tests.

use crate::csr::CsrGraph;

/// Summary of an out-degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum out-degree.
    pub min: u64,
    /// Maximum out-degree.
    pub max: u64,
    /// Mean out-degree.
    pub mean: f64,
    /// Fraction of edges owned by the top 10% highest-degree vertices.
    pub top10_edge_share: f64,
}

/// Computes [`DegreeStats`] for a graph.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    assert!(g.num_vertices() > 0, "graph must have vertices");
    let mut degrees: Vec<u64> = (0..g.num_vertices() as u32).map(|v| g.degree(v)).collect();
    let min = *degrees.iter().min().expect("non-empty");
    let max = *degrees.iter().max().expect("non-empty");
    let total: u64 = degrees.iter().sum();
    let mean = total as f64 / degrees.len() as f64;
    degrees.sort_unstable_by(|a, b| b.cmp(a));
    let head = degrees.len().div_ceil(10);
    let head_sum: u64 = degrees[..head].iter().sum();
    let top10_edge_share = if total == 0 {
        0.0
    } else {
        head_sum as f64 / total as f64
    };
    DegreeStats {
        min,
        max,
        mean,
        top10_edge_share,
    }
}

/// Gini coefficient of the out-degree distribution — 0 for perfectly
/// uniform, approaching 1 for extreme skew. Used to check that synthetic
/// stand-ins match the target dataset's skew class.
pub fn degree_gini(g: &CsrGraph) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut degrees: Vec<u64> = (0..n as u32).map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    let total: u64 = degrees.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut weighted = 0.0f64;
    for (i, &d) in degrees.iter().enumerate() {
        weighted += (i as f64 + 1.0) * d as f64;
    }
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Number of edges whose endpoints fall in different parts of `assignment`
/// (the edge-cut a partitioner minimizes), counting each directed edge once.
pub fn edge_cut(g: &CsrGraph, assignment: &[u32]) -> usize {
    assert_eq!(assignment.len(), g.num_vertices());
    g.edges()
        .filter(|&(s, d)| assignment[s as usize] != assignment[d as usize])
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_on_star_graph() {
        // Vertex 0 points at everyone else.
        let mut b = GraphBuilder::new(11);
        for v in 1..11 {
            b.push_edge(0, v);
        }
        let g = b.build();
        let s = degree_stats(&g);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 10);
        assert!((s.mean - 10.0 / 11.0).abs() < 1e-12);
        // Top 10% (2 vertices) hold all edges.
        assert_eq!(s.top10_edge_share, 1.0);
    }

    #[test]
    fn gini_zero_for_regular_graph() {
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .build();
        assert!(degree_gini(&g).abs() < 1e-12);
    }

    #[test]
    fn gini_high_for_star() {
        let mut b = GraphBuilder::new(50);
        for v in 1..50 {
            b.push_edge(0, v);
        }
        let g = b.build();
        assert!(degree_gini(&g) > 0.9);
    }

    #[test]
    fn gini_zero_for_empty_graph() {
        assert_eq!(degree_gini(&CsrGraph::empty(4)), 0.0);
    }

    #[test]
    fn edge_cut_counts_cross_edges() {
        let g = GraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .build();
        // Parts {0,1} and {2,3}: only 1 -> 2 crosses.
        assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 1);
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0);
        assert_eq!(edge_cut(&g, &[0, 1, 0, 1]), 3);
    }
}
