//! Registry of the paper's Table 2 datasets at simulation scale.
//!
//! The paper evaluates on six graphs (Products, Paper100M, Com-Friendster,
//! UK-Union, UK-2014, Clue-web) up to a billion vertices. We cannot ship
//! those, so each dataset is replaced by a synthetic generator whose degree
//! skew matches its class (see DESIGN.md):
//!
//! * **PR** (OGB Products) — stochastic block model, so the classification
//!   task is learnable (needed by the Figure 11 convergence experiment),
//! * **PA/CO** (citation / social) — Chung–Lu power-law graphs,
//! * **UKS/UKL/CL** (web crawls) — R-MAT graphs.
//!
//! Vertex counts are the paper's divided by a configurable
//! `scale_divisor`; average degrees and feature dimensions are kept at the
//! paper's values so cache-size/traffic *ratios* are preserved.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::csr::CsrGraph;
use crate::features::FeatureTable;
use crate::generate::{ChungLuConfig, RmatConfig, SbmConfig};
use crate::VertexId;

/// Which synthetic generator backs a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorKind {
    /// Stochastic block model with learnable labels (OGB-like).
    Sbm,
    /// Chung–Lu power-law (social/citation-like).
    ChungLu,
    /// R-MAT (web-crawl-like).
    Rmat,
}

/// Static description of one paper dataset (one Table 2 column).
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Short name used in the paper: PR, PA, CO, UKS, UKL, CL.
    pub name: &'static str,
    /// Vertex count reported in Table 2.
    pub paper_vertices: u64,
    /// Edge count reported in Table 2.
    pub paper_edges: u64,
    /// Feature dimensionality `D` reported in Table 2.
    pub feature_dim: usize,
    /// Fraction of vertices used as training vertices (paper: 10%).
    pub train_fraction: f64,
    /// Backing generator.
    pub generator: GeneratorKind,
    /// Degree-skew knob: Zipf/R-MAT skew setting for the generator.
    pub skew: f64,
}

/// A fully materialized dataset instance.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short name (plus scale annotation).
    pub name: String,
    /// Topology.
    pub graph: CsrGraph,
    /// Dense features (always present; synthesized when the original graph
    /// has none, exactly as the paper does for CO/UKS/UKL/CL).
    pub features: FeatureTable,
    /// Class labels, present only for learnable (SBM-backed) datasets.
    pub labels: Option<Vec<u32>>,
    /// Training vertex set (the paper's 10% random selection).
    pub train_vertices: Vec<VertexId>,
}

impl Dataset {
    /// Topology storage in bytes (Table 2's "Topology Storage" analog).
    pub fn topology_bytes(&self) -> u64 {
        self.graph.topology_bytes()
    }

    /// Feature storage in bytes (Table 2's "Feature Storage" analog).
    pub fn feature_bytes(&self) -> u64 {
        self.features.total_bytes()
    }
}

/// The six Table 2 datasets.
pub const ALL_SPECS: [DatasetSpec; 6] = [
    DatasetSpec {
        name: "PR",
        paper_vertices: 2_400_000,
        paper_edges: 120_000_000,
        feature_dim: 100,
        train_fraction: 0.10,
        generator: GeneratorKind::Sbm,
        skew: 0.0,
    },
    DatasetSpec {
        name: "PA",
        paper_vertices: 111_000_000,
        paper_edges: 1_600_000_000,
        feature_dim: 128,
        train_fraction: 0.10,
        generator: GeneratorKind::ChungLu,
        skew: 0.85,
    },
    DatasetSpec {
        name: "CO",
        paper_vertices: 65_000_000,
        paper_edges: 1_800_000_000,
        feature_dim: 256,
        train_fraction: 0.10,
        generator: GeneratorKind::ChungLu,
        skew: 0.9,
    },
    DatasetSpec {
        name: "UKS",
        paper_vertices: 133_000_000,
        paper_edges: 5_500_000_000,
        feature_dim: 256,
        train_fraction: 0.10,
        generator: GeneratorKind::Rmat,
        skew: 0.57,
    },
    DatasetSpec {
        name: "UKL",
        paper_vertices: 790_000_000,
        paper_edges: 47_200_000_000,
        feature_dim: 128,
        train_fraction: 0.10,
        generator: GeneratorKind::Rmat,
        skew: 0.57,
    },
    DatasetSpec {
        name: "CL",
        paper_vertices: 1_000_000_000,
        paper_edges: 42_500_000_000,
        feature_dim: 128,
        train_fraction: 0.10,
        generator: GeneratorKind::Rmat,
        skew: 0.57,
    },
];

/// Looks up a spec by its short name (case-insensitive).
pub fn spec_by_name(name: &str) -> Option<DatasetSpec> {
    ALL_SPECS
        .iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
        .copied()
}

impl DatasetSpec {
    /// Average out-degree implied by Table 2.
    pub fn avg_degree(&self) -> usize {
        (self.paper_edges / self.paper_vertices) as usize
    }

    /// Materializes the dataset with vertex count `paper_vertices /
    /// scale_divisor` (clamped to at least 1024), keeping the paper's
    /// average degree and feature dimension.
    ///
    /// The same `(spec, scale_divisor, seed)` triple always produces the
    /// same instance.
    pub fn instantiate(&self, scale_divisor: u64, seed: u64) -> Dataset {
        assert!(scale_divisor > 0, "scale divisor must be positive");
        let n = ((self.paper_vertices / scale_divisor).max(1024)) as usize;
        let avg_degree = self.avg_degree().max(2);
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(self.name));
        let (graph, features, labels) = match self.generator {
            GeneratorKind::Sbm => {
                let sbm = SbmConfig {
                    num_vertices: n,
                    num_communities: 16,
                    avg_degree,
                    intra_prob: 0.8,
                    feature_dim: self.feature_dim,
                    feature_separation: 1.0,
                    feature_noise: 0.6,
                    hub_exponent: 1.2,
                }
                .generate(&mut rng);
                (sbm.graph, sbm.features, Some(sbm.labels))
            }
            GeneratorKind::ChungLu => {
                // Real citation/social graphs are clustered as well as
                // skewed; 64 planted communities with a 0.6 bias match the
                // locality that edge-cut partitioning exploits on
                // Paper100M / Com-Friendster.
                let g = ChungLuConfig {
                    num_vertices: n,
                    num_edges: n * avg_degree,
                    exponent: self.skew,
                    shuffle_ids: true,
                    num_communities: 64,
                    community_bias: 0.6,
                }
                .generate(&mut rng);
                let f = FeatureTable::random(n, self.feature_dim, &mut rng);
                (g, f, None)
            }
            GeneratorKind::Rmat => {
                // Round the vertex count to a power of two for R-MAT.
                let scale = (n as f64).log2().round().max(10.0) as u32;
                let g = RmatConfig {
                    scale,
                    edge_factor: avg_degree,
                    a: self.skew,
                    b: (1.0 - self.skew) / 2.2,
                    c: (1.0 - self.skew) / 2.2,
                    noise: 0.1,
                }
                .generate(&mut rng);
                let nv = g.num_vertices();
                let f = FeatureTable::random(nv, self.feature_dim, &mut rng);
                (g, f, None)
            }
        };
        let nv = graph.num_vertices();
        let train_count = ((nv as f64) * self.train_fraction).round().max(1.0) as usize;
        let train_vertices = sample_without_replacement(nv, train_count, &mut rng);
        Dataset {
            name: format!("{}/{}x", self.name, scale_divisor),
            graph,
            features,
            labels,
            train_vertices,
        }
    }
}

/// Deterministic tiny hash so each dataset gets a distinct RNG stream for
/// the same user seed.
fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Uniformly samples `k` distinct vertices out of `0..n` (partial
/// Fisher–Yates).
pub fn sample_without_replacement<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    rng: &mut R,
) -> Vec<VertexId> {
    assert!(k <= n, "cannot sample {k} of {n}");
    let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_six_specs() {
        assert_eq!(ALL_SPECS.len(), 6);
        let names: Vec<_> = ALL_SPECS.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["PR", "PA", "CO", "UKS", "UKL", "CL"]);
    }

    #[test]
    fn spec_lookup_case_insensitive() {
        assert!(spec_by_name("pr").is_some());
        assert!(spec_by_name("Ukl").is_some());
        assert!(spec_by_name("nope").is_none());
    }

    #[test]
    fn avg_degrees_match_table2_ratios() {
        assert_eq!(spec_by_name("PR").unwrap().avg_degree(), 50);
        assert_eq!(spec_by_name("PA").unwrap().avg_degree(), 14);
        assert_eq!(spec_by_name("CL").unwrap().avg_degree(), 42);
    }

    #[test]
    fn instantiate_pr_is_learnable() {
        let d = spec_by_name("PR").unwrap().instantiate(1000, 42);
        assert!(d.labels.is_some());
        assert_eq!(d.features.dim(), 100);
        assert_eq!(d.features.num_rows(), d.graph.num_vertices());
        // ~10% training vertices.
        let frac = d.train_vertices.len() as f64 / d.graph.num_vertices() as f64;
        assert!((frac - 0.10).abs() < 0.01, "train fraction {frac}");
    }

    #[test]
    fn instantiate_is_deterministic() {
        let spec = spec_by_name("PA").unwrap();
        let a = spec.instantiate(2000, 7);
        let b = spec.instantiate(2000, 7);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.train_vertices, b.train_vertices);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = spec_by_name("PA").unwrap();
        let a = spec.instantiate(2000, 7);
        let b = spec.instantiate(2000, 8);
        assert_ne!(a.graph, b.graph);
    }

    #[test]
    fn train_vertices_are_sorted_unique_in_range() {
        let d = spec_by_name("CO").unwrap().instantiate(2000, 3);
        let tv = &d.train_vertices;
        assert!(tv.windows(2).all(|w| w[0] < w[1]));
        assert!(tv.iter().all(|&v| (v as usize) < d.graph.num_vertices()));
    }

    #[test]
    fn sample_without_replacement_edges() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sample_without_replacement(5, 0, &mut rng).len(), 0);
        let all = sample_without_replacement(5, 5, &mut rng);
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_more_than_population_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample_without_replacement(3, 4, &mut rng);
    }

    #[test]
    fn storage_accessors_are_consistent() {
        let d = spec_by_name("UKS").unwrap().instantiate(4000, 1);
        assert_eq!(d.topology_bytes(), d.graph.topology_bytes());
        assert_eq!(d.feature_bytes(), d.features.total_bytes());
        assert!(d.feature_bytes() > 0);
    }
}
