//! The unified cache structure (§4.2.1).
//!
//! "The topology cache maintains out-edge neighbor IDs for each selected
//! hot vertex in the format of a compressed sparse row (CSR). As for the
//! feature cache, Legion stores the feature vectors of selected hot
//! vertices in the format of a 2D array... the selected vertices in the
//! topology and feature caches could be different."
//!
//! [`GpuUnifiedCache`] is one GPU's cache; [`CliqueCache`] groups the
//! caches of an NVLink clique and resolves lookups to *local hit*, *peer
//! (NVLink) hit* or *miss* — the classification the traffic accounting in
//! `legion-sampling` turns into PCIe/NVLink transactions.
//!
//! Lookups are on the simulator's hottest path (one per simulated vertex
//! read), so vertex→slot indexing is a dense array per cache — mirroring
//! the dense `topo_owner`/`feat_owner` arrays of [`CliqueCache`] — rather
//! than a hash map: a lookup is two array loads and a branch.

use legion_graph::{topology_bytes_for_degree, VertexId};
use legion_hw::GpuId;

/// Where a cached item was found within a clique.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheHit {
    /// In the requesting GPU's own cache.
    Local,
    /// In an NVLink peer's cache (the returned GPU id).
    Peer(GpuId),
}

/// Sentinel slot meaning "vertex not cached" in the dense slot tables.
const NO_SLOT: u32 = u32::MAX;

/// One GPU's topology + feature cache.
#[derive(Debug, Clone)]
pub struct GpuUnifiedCache {
    gpu: GpuId,
    feature_dim: usize,
    // Topology cache: CSR over the cached vertices only. `topo_slot[v]`
    // is the vertex's CSR row, or `NO_SLOT`.
    topo_slot: Vec<u32>,
    topo_entries: usize,
    topo_offsets: Vec<u64>,
    topo_cols: Vec<VertexId>,
    // Feature cache: 2-D array over the cached vertices only.
    // `feat_slot[v]` is the vertex's row, or `NO_SLOT`.
    feat_slot: Vec<u32>,
    feat_entries: usize,
    feat_data: Vec<f32>,
}

impl GpuUnifiedCache {
    /// An empty cache for `gpu` over a graph of `num_vertices` vertices,
    /// holding `feature_dim`-wide feature rows.
    pub fn new(gpu: GpuId, num_vertices: usize, feature_dim: usize) -> Self {
        Self {
            gpu,
            feature_dim,
            topo_slot: vec![NO_SLOT; num_vertices],
            topo_entries: 0,
            topo_offsets: vec![0],
            topo_cols: Vec::new(),
            feat_slot: vec![NO_SLOT; num_vertices],
            feat_entries: 0,
            feat_data: Vec::new(),
        }
    }

    /// The owning GPU.
    pub fn gpu(&self) -> GpuId {
        self.gpu
    }

    /// Inserts `v`'s adjacency into the topology cache. Re-inserting an
    /// already cached vertex is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the vertex range given at construction.
    pub fn insert_topology(&mut self, v: VertexId, neighbors: &[VertexId]) {
        if self.topo_slot[v as usize] != NO_SLOT {
            return;
        }
        let slot = self.topo_offsets.len() as u32 - 1;
        self.topo_cols.extend_from_slice(neighbors);
        self.topo_offsets.push(self.topo_cols.len() as u64);
        self.topo_slot[v as usize] = slot;
        self.topo_entries += 1;
    }

    /// Inserts `v`'s feature row. Re-inserting is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != feature_dim` or `v` is out of range.
    pub fn insert_feature(&mut self, v: VertexId, row: &[f32]) {
        assert_eq!(row.len(), self.feature_dim, "feature dim mismatch");
        if self.feat_slot[v as usize] != NO_SLOT {
            return;
        }
        let slot = (self.feat_data.len() / self.feature_dim.max(1)) as u32;
        self.feat_data.extend_from_slice(row);
        self.feat_slot[v as usize] = slot;
        self.feat_entries += 1;
    }

    /// Cached adjacency of `v`, if present.
    #[inline]
    pub fn topology(&self, v: VertexId) -> Option<&[VertexId]> {
        match self.topo_slot.get(v as usize).copied() {
            Some(slot) if slot != NO_SLOT => {
                let lo = self.topo_offsets[slot as usize] as usize;
                let hi = self.topo_offsets[slot as usize + 1] as usize;
                Some(&self.topo_cols[lo..hi])
            }
            _ => None,
        }
    }

    /// Cached feature row of `v`, if present.
    #[inline]
    pub fn feature(&self, v: VertexId) -> Option<&[f32]> {
        match self.feat_slot.get(v as usize).copied() {
            Some(slot) if slot != NO_SLOT => {
                let lo = slot as usize * self.feature_dim;
                Some(&self.feat_data[lo..lo + self.feature_dim])
            }
            _ => None,
        }
    }

    /// Number of vertices in the topology cache.
    pub fn topology_entries(&self) -> usize {
        self.topo_entries
    }

    /// Number of vertices in the feature cache.
    pub fn feature_entries(&self) -> usize {
        self.feat_entries
    }

    /// Bytes of topology payload cached, per Equation 3 accounting.
    pub fn topology_bytes(&self) -> u64 {
        self.topo_entries as u64 * legion_graph::ROW_OFFSET_BYTES
            + self.topo_cols.len() as u64 * legion_graph::COL_INDEX_BYTES
    }

    /// Bytes of feature payload cached, per Equation 6 accounting.
    pub fn feature_bytes(&self) -> u64 {
        self.feat_entries as u64 * legion_graph::feature_bytes_for_dim(self.feature_dim as u64)
    }

    /// Bytes `v`'s adjacency would add to this cache.
    pub fn topology_cost(degree: u64) -> u64 {
        topology_bytes_for_degree(degree)
    }
}

/// The caches of one NVLink clique, with owner maps for O(1) clique-level
/// lookup.
#[derive(Debug, Clone)]
pub struct CliqueCache {
    /// GPU ids of the clique members, in slot order.
    gpus: Vec<GpuId>,
    /// One cache per clique slot.
    caches: Vec<GpuUnifiedCache>,
    /// `topo_owner[v]` = clique slot caching `v`'s topology, or `NONE`.
    topo_owner: Vec<u8>,
    /// `feat_owner[v]` = clique slot caching `v`'s features, or `NONE`.
    feat_owner: Vec<u8>,
}

const NONE: u8 = u8::MAX;

impl CliqueCache {
    /// Empty clique cache for the given GPU members over a graph with
    /// `num_vertices` vertices.
    ///
    /// # Panics
    ///
    /// Panics if the clique is empty or has more than 255 GPUs.
    pub fn new(gpus: Vec<GpuId>, num_vertices: usize, feature_dim: usize) -> Self {
        assert!(!gpus.is_empty(), "clique must have at least one GPU");
        assert!(gpus.len() < NONE as usize, "clique too large");
        let caches = gpus
            .iter()
            .map(|&g| GpuUnifiedCache::new(g, num_vertices, feature_dim))
            .collect();
        Self {
            gpus,
            caches,
            topo_owner: vec![NONE; num_vertices],
            feat_owner: vec![NONE; num_vertices],
        }
    }

    /// The clique's GPU ids in slot order.
    pub fn gpus(&self) -> &[GpuId] {
        &self.gpus
    }

    /// The clique slot of a GPU id, if it belongs to this clique.
    pub fn slot_of(&self, gpu: GpuId) -> Option<usize> {
        self.gpus.iter().position(|&g| g == gpu)
    }

    /// Access to a slot's cache.
    pub fn cache(&self, slot: usize) -> &GpuUnifiedCache {
        &self.caches[slot]
    }

    /// Inserts `v`'s topology into `slot`'s cache and records ownership.
    pub fn insert_topology(&mut self, slot: usize, v: VertexId, neighbors: &[VertexId]) {
        self.caches[slot].insert_topology(v, neighbors);
        self.topo_owner[v as usize] = slot as u8;
    }

    /// Inserts `v`'s features into `slot`'s cache and records ownership.
    pub fn insert_feature(&mut self, slot: usize, v: VertexId, row: &[f32]) {
        self.caches[slot].insert_feature(v, row);
        self.feat_owner[v as usize] = slot as u8;
    }

    /// Resolves a topology lookup from `from_slot`: local hit, peer hit,
    /// or `None` (CPU fallback).
    #[inline]
    pub fn lookup_topology(
        &self,
        from_slot: usize,
        v: VertexId,
    ) -> Option<(CacheHit, &[VertexId])> {
        let owner = self.topo_owner[v as usize];
        if owner == NONE {
            return None;
        }
        let owner = owner as usize;
        let data = self.caches[owner]
            .topology(v)
            .expect("owner map and cache agree");
        let hit = if owner == from_slot {
            CacheHit::Local
        } else {
            CacheHit::Peer(self.gpus[owner])
        };
        Some((hit, data))
    }

    /// Resolves a feature lookup from `from_slot`.
    #[inline]
    pub fn lookup_feature(&self, from_slot: usize, v: VertexId) -> Option<(CacheHit, &[f32])> {
        let owner = self.feat_owner[v as usize];
        if owner == NONE {
            return None;
        }
        let owner = owner as usize;
        let data = self.caches[owner]
            .feature(v)
            .expect("owner map and cache agree");
        let hit = if owner == from_slot {
            CacheHit::Local
        } else {
            CacheHit::Peer(self.gpus[owner])
        };
        Some((hit, data))
    }

    /// Whether `v`'s topology is cached anywhere in the clique.
    #[inline]
    pub fn has_topology(&self, v: VertexId) -> bool {
        self.topo_owner[v as usize] != NONE
    }

    /// Whether `v`'s features are cached anywhere in the clique.
    #[inline]
    pub fn has_feature(&self, v: VertexId) -> bool {
        self.feat_owner[v as usize] != NONE
    }

    /// All vertices whose topology is cached anywhere in the clique,
    /// in ascending id order. Residency export for the serving router.
    pub fn topology_vertices(&self) -> Vec<VertexId> {
        self.topo_owner
            .iter()
            .enumerate()
            .filter(|(_, &o)| o != NONE)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// All vertices whose features are cached anywhere in the clique,
    /// in ascending id order. Residency export for the serving router.
    pub fn feature_vertices(&self) -> Vec<VertexId> {
        self.feat_owner
            .iter()
            .enumerate()
            .filter(|(_, &o)| o != NONE)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Total topology bytes cached across the clique.
    pub fn total_topology_bytes(&self) -> u64 {
        self.caches.iter().map(|c| c.topology_bytes()).sum()
    }

    /// Total feature bytes cached across the clique.
    pub fn total_feature_bytes(&self) -> u64 {
        self.caches.iter().map(|c| c.feature_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_cache_topology_roundtrip() {
        let mut c = GpuUnifiedCache::new(0, 16, 2);
        c.insert_topology(5, &[1, 2, 3]);
        c.insert_topology(9, &[]);
        assert_eq!(c.topology(5), Some(&[1, 2, 3][..]));
        assert_eq!(c.topology(9), Some(&[][..]));
        assert_eq!(c.topology(1), None);
        assert_eq!(c.topology_entries(), 2);
        // 2 row offsets + 3 cols.
        assert_eq!(c.topology_bytes(), 2 * 8 + 3 * 4);
    }

    #[test]
    fn gpu_cache_feature_roundtrip() {
        let mut c = GpuUnifiedCache::new(0, 16, 3);
        c.insert_feature(7, &[1.0, 2.0, 3.0]);
        assert_eq!(c.feature(7), Some(&[1.0, 2.0, 3.0][..]));
        assert_eq!(c.feature(8), None);
        assert_eq!(c.feature_bytes(), 12);
    }

    #[test]
    fn reinsert_is_noop() {
        let mut c = GpuUnifiedCache::new(0, 4, 1);
        c.insert_topology(1, &[0]);
        c.insert_topology(1, &[0, 0, 0]);
        assert_eq!(c.topology(1), Some(&[0][..]));
        c.insert_feature(1, &[4.0]);
        c.insert_feature(1, &[9.0]);
        assert_eq!(c.feature(1), Some(&[4.0][..]));
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn feature_dim_enforced() {
        let mut c = GpuUnifiedCache::new(0, 16, 2);
        c.insert_feature(0, &[1.0]);
    }

    #[test]
    fn clique_lookup_local_and_peer() {
        let mut cc = CliqueCache::new(vec![4, 5], 10, 1);
        cc.insert_topology(0, 3, &[1]);
        cc.insert_feature(1, 3, &[0.5]);
        // Topology: local from slot 0, peer from slot 1.
        assert_eq!(
            cc.lookup_topology(0, 3).map(|(h, _)| h),
            Some(CacheHit::Local)
        );
        assert_eq!(
            cc.lookup_topology(1, 3).map(|(h, _)| h),
            Some(CacheHit::Peer(4))
        );
        // Feature: owned by slot 1 (GPU 5).
        assert_eq!(
            cc.lookup_feature(0, 3).map(|(h, _)| h),
            Some(CacheHit::Peer(5))
        );
        assert!(cc.lookup_feature(0, 9).is_none());
        assert!(cc.has_topology(3));
        assert!(!cc.has_feature(9));
    }

    #[test]
    fn clique_totals() {
        let mut cc = CliqueCache::new(vec![0, 1], 4, 2);
        cc.insert_topology(0, 0, &[1, 2]);
        cc.insert_topology(1, 1, &[3]);
        cc.insert_feature(0, 2, &[1.0, 2.0]);
        assert_eq!(cc.total_topology_bytes(), (8 + 2 * 4) + (8 + 4));
        assert_eq!(cc.total_feature_bytes(), 8);
    }

    #[test]
    fn clique_residency_export_is_sorted_and_complete() {
        let mut cc = CliqueCache::new(vec![0, 1], 8, 1);
        cc.insert_feature(1, 6, &[1.0]);
        cc.insert_feature(0, 2, &[2.0]);
        cc.insert_feature(0, 4, &[3.0]);
        cc.insert_topology(1, 7, &[0]);
        cc.insert_topology(0, 3, &[1, 2]);
        assert_eq!(cc.feature_vertices(), vec![2, 4, 6]);
        assert_eq!(cc.topology_vertices(), vec![3, 7]);
        let empty = CliqueCache::new(vec![2], 8, 1);
        assert!(empty.feature_vertices().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn empty_clique_rejected() {
        let _ = CliqueCache::new(vec![], 4, 1);
    }
}
