//! Cache initialization and fill-up (§4.2.2 S3).
//!
//! "Guided by this mechanism, Legion allocates memory for both the
//! topology and feature cache (TC and FC) of each GPU, and fetches the
//! corresponding topology and feature data from CPU memory to fill up each
//! GPU cache according to the corresponding cache orders in `G_T` and
//! `G_F`."
//!
//! The fill allocates real (simulated) device memory on the
//! [`MultiGpuServer`], so an over-committed plan fails with the same
//! out-of-memory error a CUDA allocation would raise.

use legion_graph::{topology_bytes_for_degree, CsrGraph, FeatureTable, VertexId};
use legion_hw::{GpuId, HwError, MultiGpuServer};

use crate::cslp::CslpOutput;
use crate::planner::CachePlan;
use crate::unified::CliqueCache;

/// Builds and fills the unified cache of one NVLink clique.
///
/// Per-GPU budgets are the clique plan divided evenly among the clique's
/// GPUs (the tablets are hash-balanced, so even shares match the paper's
/// "randomly sliced and averagely allocated" wording). Each GPU consumes
/// its own CSLP queue (`G_T[gpu]`, `G_F[gpu]`) in priority order until its
/// budget share is exhausted.
///
/// # Errors
///
/// Returns [`HwError::OutOfMemory`] if a GPU cannot hold its share on the
/// simulated server.
pub fn build_clique_cache(
    graph: &CsrGraph,
    features: &FeatureTable,
    clique_gpus: &[GpuId],
    topo_order: &CslpOutput,
    feat_order: &CslpOutput,
    plan: &CachePlan,
    server: &MultiGpuServer,
) -> Result<CliqueCache, HwError> {
    let kg = clique_gpus.len();
    assert!(kg > 0, "clique must have GPUs");
    assert_eq!(
        topo_order.per_gpu.len(),
        kg,
        "topology order shape mismatch"
    );
    assert_eq!(feat_order.per_gpu.len(), kg, "feature order shape mismatch");

    let topo_share = plan.topology_bytes() / kg as u64;
    let feat_share = plan.feature_bytes() / kg as u64;
    let mut cache = CliqueCache::new(clique_gpus.to_vec(), graph.num_vertices(), features.dim());
    let registry = server.telemetry();

    for (slot, &gpu) in clique_gpus.iter().enumerate() {
        // Topology fill-up in G_T order.
        let mut used = 0u64;
        let mut to_insert_topo: Vec<VertexId> = Vec::new();
        for &v in &topo_order.per_gpu[slot] {
            let cost = topology_bytes_for_degree(graph.degree(v));
            if used + cost > topo_share {
                break;
            }
            used += cost;
            to_insert_topo.push(v);
        }
        server.alloc(gpu, used)?;
        registry
            .counter(&format!("cache_fill.gpu{gpu}.topology_vertices"))
            .add(to_insert_topo.len() as u64);
        registry
            .counter(&format!("cache_fill.gpu{gpu}.topology_bytes"))
            .add(used);
        for v in to_insert_topo {
            cache.insert_topology(slot, v, graph.neighbors(v));
        }
        // Feature fill-up in G_F order.
        let row_bytes = features.row_bytes();
        let capacity_rows = feat_share.checked_div(row_bytes).unwrap_or(0) as usize;
        let rows = feat_order.per_gpu[slot]
            .iter()
            .take(capacity_rows)
            .copied()
            .collect::<Vec<_>>();
        server.alloc(gpu, rows.len() as u64 * row_bytes)?;
        registry
            .counter(&format!("cache_fill.gpu{gpu}.feature_rows"))
            .add(rows.len() as u64);
        registry
            .counter(&format!("cache_fill.gpu{gpu}.feature_bytes"))
            .add(rows.len() as u64 * row_bytes);
        for v in rows {
            cache.insert_feature(slot, v, features.row(v));
        }
    }
    Ok(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::CostModel;
    use crate::cslp::cslp;
    use crate::hotness::HotnessMatrix;

    use legion_graph::generate::ChungLuConfig;
    use legion_hw::ServerSpec;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn setup() -> (CsrGraph, FeatureTable, CslpOutput, CslpOutput) {
        let mut rng = StdRng::seed_from_u64(77);
        let g = ChungLuConfig {
            num_vertices: 500,
            num_edges: 5000,
            exponent: 0.8,
            shuffle_ids: false,
            ..Default::default()
        }
        .generate(&mut rng);
        let f = FeatureTable::random(500, 16, &mut rng);
        // Synthetic hotness: proportional to degree with per-GPU noise.
        let mut h_t = HotnessMatrix::new(2, 500);
        let mut h_f = HotnessMatrix::new(2, 500);
        for v in 0..500u32 {
            for gpu in 0..2 {
                let base = g.degree(v) + 1;
                h_t.add(gpu, v, base + rng.gen_range(0..3u64));
                h_f.add(gpu, v, base * 2 + rng.gen_range(0..3u64));
            }
        }
        (g, f, cslp(&h_t), cslp(&h_f))
    }

    fn plan_for(
        budget: u64,
        alpha: f64,
        setup: &(CsrGraph, FeatureTable, CslpOutput, CslpOutput),
    ) -> CachePlan {
        let (g, f, t, fo) = setup;
        let model = CostModel::new(
            g,
            &t.clique_order,
            &t.accumulated,
            &fo.clique_order,
            &fo.accumulated,
            1000,
            f.dim(),
            64,
        );
        CachePlan {
            budget,
            alpha,
            evaluation: model.evaluate(budget, alpha),
        }
    }

    #[test]
    fn fill_respects_budget_and_allocates_memory() {
        let s = setup();
        let server = ServerSpec::custom(2, 1 << 20, 2).build();
        let plan = plan_for(64 * 1024, 0.5, &s);
        let cache = build_clique_cache(&s.0, &s.1, &[0, 1], &s.2, &s.3, &plan, &server).unwrap();
        // Per-GPU shares respected.
        for slot in 0..2 {
            assert!(cache.cache(slot).topology_bytes() <= plan.topology_bytes() / 2);
            assert!(cache.cache(slot).feature_bytes() <= plan.feature_bytes() / 2);
        }
        // Device memory was actually consumed.
        let total_alloc = server.allocated_bytes(0) + server.allocated_bytes(1);
        assert_eq!(
            total_alloc,
            cache.total_topology_bytes() + cache.total_feature_bytes()
        );
        assert!(cache.total_feature_bytes() > 0);
        assert!(cache.total_topology_bytes() > 0);
    }

    #[test]
    fn fill_follows_priority_order() {
        let s = setup();
        let server = ServerSpec::custom(2, 1 << 20, 2).build();
        let plan = plan_for(16 * 1024, 0.0, &s);
        let cache = build_clique_cache(&s.0, &s.1, &[0, 1], &s.2, &s.3, &plan, &server).unwrap();
        // Every cached feature vertex must be a prefix of its GPU's G_F.
        for slot in 0..2 {
            let q = &s.3.per_gpu[slot];
            let cached = cache.cache(slot).feature_entries();
            for (i, &v) in q.iter().enumerate() {
                assert_eq!(
                    cache.cache(slot).feature(v).is_some(),
                    i < cached,
                    "vertex {v} at priority {i}"
                );
            }
        }
    }

    #[test]
    fn over_committed_plan_returns_oom() {
        let s = setup();
        // Tiny GPUs: 1 KiB each, plan wants 64 KiB.
        let server = ServerSpec::custom(2, 1024, 2).build();
        let plan = plan_for(64 * 1024, 0.5, &s);
        let err = build_clique_cache(&s.0, &s.1, &[0, 1], &s.2, &s.3, &plan, &server);
        assert!(matches!(err, Err(HwError::OutOfMemory { .. })));
    }

    #[test]
    fn zero_budget_builds_empty_cache() {
        let s = setup();
        let server = ServerSpec::custom(2, 1 << 20, 2).build();
        let plan = plan_for(0, 0.5, &s);
        let cache = build_clique_cache(&s.0, &s.1, &[0, 1], &s.2, &s.3, &plan, &server).unwrap();
        assert_eq!(cache.total_topology_bytes(), 0);
        assert_eq!(cache.total_feature_bytes(), 0);
        assert_eq!(server.allocated_bytes(0), 0);
    }

    #[test]
    fn alpha_one_caches_no_features() {
        let s = setup();
        let server = ServerSpec::custom(2, 1 << 20, 2).build();
        let plan = plan_for(32 * 1024, 1.0, &s);
        let cache = build_clique_cache(&s.0, &s.1, &[0, 1], &s.2, &s.3, &plan, &server).unwrap();
        assert_eq!(cache.total_feature_bytes(), 0);
        assert!(cache.total_topology_bytes() > 0);
    }
}
