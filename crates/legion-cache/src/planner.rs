//! Automatic cache management (§4.3): pick `(B, α)` per NVLink clique.
//!
//! `B` "is by default set as the total multi-GPU memory minus the size of
//! GPU memory reserved for GNN models and intermediate buffers in an
//! NVLink clique" (§4.3). The planner computes that default budget, runs
//! the cost-model sweep, and returns the plan with minimal predicted PCIe
//! traffic.

use crate::cost_model::{CostModel, PlanEvaluation};

/// The paper's default search interval `Δα = 0.01` (§4.3.3 footnote).
pub const DEFAULT_DELTA_ALPHA: f64 = 0.01;

/// Planner knobs.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Bytes reserved per GPU for the GNN model, activations and
    /// intermediate buffers (subtracted from the cache budget).
    pub reserved_per_gpu: u64,
    /// Search interval for `α`.
    pub delta_alpha: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            reserved_per_gpu: 2 * 1024 * 1024 * 1024,
            delta_alpha: DEFAULT_DELTA_ALPHA,
        }
    }
}

/// A chosen cache plan for one NVLink clique.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachePlan {
    /// Clique-level cache budget `B` in bytes.
    pub budget: u64,
    /// Fraction of `B` given to the topology cache.
    pub alpha: f64,
    /// The cost model's prediction for this plan.
    pub evaluation: PlanEvaluation,
}

impl CachePlan {
    /// Topology cache bytes (`m_T`).
    pub fn topology_bytes(&self) -> u64 {
        self.evaluation.m_t
    }

    /// Feature cache bytes (`m_F`).
    pub fn feature_bytes(&self) -> u64 {
        self.evaluation.m_f
    }
}

impl PlannerConfig {
    /// Clique cache budget: per-GPU free memory minus the training
    /// reservation, summed over the clique's GPUs.
    ///
    /// Returns 0 when the reservation exceeds the GPU memory.
    pub fn clique_budget(&self, gpu_memory: u64, gpus_in_clique: usize) -> u64 {
        gpu_memory.saturating_sub(self.reserved_per_gpu) * gpus_in_clique as u64
    }

    /// Runs the §4.3.3 search: sweep `α`, pick the minimal-`N_total` plan.
    pub fn plan(&self, model: &CostModel, gpu_memory: u64, gpus_in_clique: usize) -> CachePlan {
        let budget = self.clique_budget(gpu_memory, gpus_in_clique);
        let evaluation = model.best_plan(budget, self.delta_alpha);
        CachePlan {
            budget,
            alpha: evaluation.alpha,
            evaluation,
        }
    }

    /// Like [`plan`](Self::plan) but with an explicit budget (used by the
    /// Figure 13 experiment, which fixes the cache memory to 10 GB / 8 GB).
    pub fn plan_with_budget(&self, model: &CostModel, budget: u64) -> CachePlan {
        let evaluation = model.best_plan(budget, self.delta_alpha);
        CachePlan {
            budget,
            alpha: evaluation.alpha,
            evaluation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_graph::{GraphBuilder, VertexId};

    fn skewed_model(n_tsum: u64) -> CostModel {
        // 8 vertices; topology hotness heavily skewed, feature hotness
        // moderately skewed.
        let mut b = GraphBuilder::new(8);
        for v in 1..8 {
            b.push_edge(0, v);
            b.push_edge(v, 0);
        }
        let g = b.build();
        let q: Vec<VertexId> = (0..8).collect();
        let a_t = vec![500, 60, 30, 20, 10, 5, 2, 1];
        let a_f = vec![100, 90, 80, 70, 60, 50, 40, 30];
        CostModel::new(&g, &q, &a_t, &q, &a_f, n_tsum, 4, 64)
    }

    #[test]
    fn budget_subtracts_reservation() {
        let cfg = PlannerConfig {
            reserved_per_gpu: 100,
            delta_alpha: 0.1,
        };
        assert_eq!(cfg.clique_budget(1000, 4), 3600);
        // Reservation exceeding capacity saturates to zero.
        assert_eq!(cfg.clique_budget(50, 4), 0);
    }

    #[test]
    fn plan_prefers_topology_when_sampling_dominates() {
        let cfg = PlannerConfig {
            reserved_per_gpu: 0,
            delta_alpha: 0.01,
        };
        // Huge sampling traffic: worth spending cache on topology.
        let hot = cfg.plan_with_budget(&skewed_model(1_000_000), 60);
        // Zero sampling traffic: all cache should go to features.
        let cold = cfg.plan_with_budget(&skewed_model(0), 60);
        assert!(
            hot.alpha > cold.alpha,
            "hot {} cold {}",
            hot.alpha,
            cold.alpha
        );
        assert_eq!(cold.alpha, 0.0);
    }

    #[test]
    fn plan_evaluation_is_consistent() {
        let cfg = PlannerConfig {
            reserved_per_gpu: 0,
            delta_alpha: 0.05,
        };
        let model = skewed_model(1000);
        let plan = cfg.plan(&model, 100, 2);
        assert_eq!(plan.budget, 200);
        assert_eq!(plan.topology_bytes() + plan.feature_bytes(), plan.budget);
        assert_eq!(plan.evaluation.alpha, plan.alpha);
    }

    #[test]
    fn zero_budget_plan_is_all_traffic() {
        let cfg = PlannerConfig {
            reserved_per_gpu: 1 << 40,
            delta_alpha: 0.5,
        };
        let model = skewed_model(77);
        let plan = cfg.plan(&model, 100, 8);
        assert_eq!(plan.budget, 0);
        assert_eq!(plan.evaluation.n_t, 77.0);
    }
}
