//! The PCIe-traffic cost model (§4.3.2, Equations 2–8).
//!
//! Given a cache plan `(B, α)` for one NVLink clique, the model predicts
//! the PCIe traffic of the training phase:
//!
//! * topology cache size `m_T = B * α`; walking the clique topology order
//!   `Q_T` until Equation 3's cumulative CSR bytes reach `m_T` yields the
//!   cached set; Equation 4 gives the hotness-weighted reduction `R_T`
//!   and Equation 5 the residual sampling traffic
//!   `N_T = N_TSUM * (1 - R_T)`;
//! * feature cache size `m_F = B * (1 - α)`; Equations 6–8 give the
//!   residual feature traffic
//!   `N_F = ceil(D * s_float32 / CLS) * U_F`;
//! * `N_total = N_T + N_F` (Equation 2).
//!
//! Following §4.3.3, the model precomputes inclusive prefix sums of
//! per-vertex byte sizes (`S_Tsum`, `S_Fsum`) and hotness (`A_Tsum`,
//! `A_Fsum`) along `Q_T` / `Q_F`, so evaluating one plan is two binary
//! searches plus O(1) lookups.
//!
//! # Three-tier extension (out-of-core store)
//!
//! [`CostModel::evaluate_tiered`] adds a second transfer term for an
//! NVMe-backed feature tier below host DRAM. The HBM plan `(B, α)` is
//! evaluated exactly as above; the feature rows that miss HBM then
//! split by the same hotness order `Q_F` under a separate DRAM budget:
//! the next-hottest prefix stays DRAM-resident (the legacy PCIe miss
//! path, already priced by `N_F`), and the remainder lives on the SSD,
//! adding `N_NVME = ceil(D * s_float32 / BLK) * U_SSD` block
//! transactions on top of its PCIe crossing. `best_plan_tiered`
//! minimizes `N_T + N_F + w * N_NVME`, where `w` weights an NVMe block
//! against a PCIe cache line (the bandwidth ratio of the two links).
//! Placement is a pair of prefixes of `Q_F`, so it is monotone in
//! hotness by construction: a hotter vertex never lands in a colder
//! tier. With an unbounded DRAM budget the SSD prefix is empty and the
//! evaluation degenerates to the two-tier model exactly.

use legion_graph::{feature_bytes_for_dim, topology_bytes_for_degree, CsrGraph, VertexId};

/// Immutable per-clique cost model, built once per pre-sampling round.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Inclusive prefix sums of Equation 3 byte sizes along `Q_T`.
    topo_bytes_prefix: Vec<u64>,
    /// Inclusive prefix sums of topology hotness along `Q_T`.
    topo_hotness_prefix: Vec<u64>,
    /// Inclusive prefix sums of Equation 6 byte sizes along `Q_F`.
    feat_bytes_prefix: Vec<u64>,
    /// Inclusive prefix sums of feature hotness along `Q_F`.
    feat_hotness_prefix: Vec<u64>,
    /// `N_TSUM`: PCIe transactions measured by PCM during pre-sampling.
    n_tsum: u64,
    /// Equation 8's per-vertex feature transaction count
    /// `ceil(D * s_float32 / CLS)`.
    feat_tx_per_vertex: u64,
    /// Bytes of one feature row (`D * s_float32`), for tier boundaries.
    feat_row_bytes: u64,
}

/// The prediction for one cache plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEvaluation {
    /// Topology share of the budget.
    pub alpha: f64,
    /// Topology cache bytes `m_T`.
    pub m_t: u64,
    /// Feature cache bytes `m_F`.
    pub m_f: u64,
    /// Number of vertices whose topology fits (`|V_Tcache|`, a prefix of
    /// `Q_T`).
    pub topo_cached_vertices: usize,
    /// Number of vertices whose features fit (`|V_Fcache|`).
    pub feat_cached_vertices: usize,
    /// Predicted sampling PCIe transactions `N_T` (Equation 5).
    pub n_t: f64,
    /// Predicted feature PCIe transactions `N_F` (Equation 8).
    pub n_f: f64,
}

impl PlanEvaluation {
    /// `N_total` (Equation 2).
    pub fn n_total(&self) -> f64 {
        self.n_t + self.n_f
    }
}

/// The prediction for one three-tier plan: the HBM evaluation plus the
/// DRAM/SSD split of the feature rows that missed HBM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieredPlanEvaluation {
    /// The HBM plan — identical to the two-tier [`CostModel::evaluate`].
    pub plan: PlanEvaluation,
    /// Feature rows resident in host DRAM: the next-hottest prefix of
    /// `Q_F` after the HBM boundary that fits the DRAM budget.
    pub dram_feat_vertices: usize,
    /// Feature rows relegated to the SSD (the tail of `Q_F`).
    pub ssd_feat_vertices: usize,
    /// Predicted NVMe block transactions `N_NVME`: hotness-weighted SSD
    /// accesses times blocks per row.
    pub n_nvme: f64,
}

impl TieredPlanEvaluation {
    /// The weighted objective `N_T + N_F + ssd_penalty * N_NVME`. The
    /// penalty converts NVMe blocks into PCIe-transaction equivalents —
    /// the bandwidth ratio of the two links is the natural choice.
    pub fn weighted_total(&self, ssd_penalty: f64) -> f64 {
        self.plan.n_total() + ssd_penalty * self.n_nvme
    }
}

impl CostModel {
    /// Builds the model for one clique.
    ///
    /// * `graph` — the full graph (for `nc(v)`),
    /// * `q_t` / `q_f` — clique-level cache orders from CSLP,
    /// * `a_t` / `a_f` — accumulated hotness vectors indexed by vertex,
    /// * `n_tsum` — PCM-measured sampling transactions during
    ///   pre-sampling,
    /// * `feature_dim` — `D`,
    /// * `cls` — transferred cache line size.
    ///
    /// # Panics
    ///
    /// Panics if order/hotness lengths are inconsistent with the graph or
    /// `cls == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        graph: &CsrGraph,
        q_t: &[VertexId],
        a_t: &[u64],
        q_f: &[VertexId],
        a_f: &[u64],
        n_tsum: u64,
        feature_dim: usize,
        cls: u64,
    ) -> Self {
        let n = graph.num_vertices();
        assert_eq!(a_t.len(), n, "topology hotness length mismatch");
        assert_eq!(a_f.len(), n, "feature hotness length mismatch");
        assert!(q_t.len() <= n && q_f.len() <= n, "order longer than graph");
        assert!(cls > 0, "cache line size must be positive");

        let mut topo_bytes_prefix = Vec::with_capacity(q_t.len());
        let mut topo_hotness_prefix = Vec::with_capacity(q_t.len());
        let mut bytes_acc = 0u64;
        let mut hot_acc = 0u64;
        for &v in q_t {
            bytes_acc += topology_bytes_for_degree(graph.degree(v));
            hot_acc += a_t[v as usize];
            topo_bytes_prefix.push(bytes_acc);
            topo_hotness_prefix.push(hot_acc);
        }

        let row_bytes = feature_bytes_for_dim(feature_dim as u64);
        let mut feat_bytes_prefix = Vec::with_capacity(q_f.len());
        let mut feat_hotness_prefix = Vec::with_capacity(q_f.len());
        let mut fbytes_acc = 0u64;
        let mut fhot_acc = 0u64;
        for &v in q_f {
            fbytes_acc += row_bytes;
            fhot_acc += a_f[v as usize];
            feat_bytes_prefix.push(fbytes_acc);
            feat_hotness_prefix.push(fhot_acc);
        }

        Self {
            topo_bytes_prefix,
            topo_hotness_prefix,
            feat_bytes_prefix,
            feat_hotness_prefix,
            n_tsum,
            feat_tx_per_vertex: row_bytes.div_ceil(cls),
            feat_row_bytes: row_bytes,
        }
    }

    /// Total feature hotness `sum_{v in V} a_F(v)` — but restricted to the
    /// vertices present in `Q_F` (which CSLP makes all of `V`).
    fn total_feat_hotness(&self) -> u64 {
        *self.feat_hotness_prefix.last().unwrap_or(&0)
    }

    fn total_topo_hotness(&self) -> u64 {
        *self.topo_hotness_prefix.last().unwrap_or(&0)
    }

    /// `N_TSUM` as provided at construction.
    pub fn n_tsum(&self) -> u64 {
        self.n_tsum
    }

    /// Equation 8's per-vertex transaction factor.
    pub fn feature_transactions_per_vertex(&self) -> u64 {
        self.feat_tx_per_vertex
    }

    /// Largest prefix of `prefix_bytes` fitting in `budget` (binary
    /// search on the inclusive prefix-sum array).
    fn boundary(prefix_bytes: &[u64], budget: u64) -> usize {
        prefix_bytes.partition_point(|&b| b <= budget)
    }

    /// Evaluates one cache plan `(budget, alpha)`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn evaluate(&self, budget: u64, alpha: f64) -> PlanEvaluation {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        let m_t = (budget as f64 * alpha).floor() as u64;
        let m_f = budget - m_t;
        // Topology side: Equations 3-5.
        let t_boundary = Self::boundary(&self.topo_bytes_prefix, m_t);
        let cached_t_hot = if t_boundary == 0 {
            0
        } else {
            self.topo_hotness_prefix[t_boundary - 1]
        };
        let total_t = self.total_topo_hotness();
        let r_t = if total_t == 0 {
            0.0
        } else {
            cached_t_hot as f64 / total_t as f64
        };
        let n_t = self.n_tsum as f64 * (1.0 - r_t);
        // Feature side: Equations 6-8.
        let f_boundary = Self::boundary(&self.feat_bytes_prefix, m_f);
        let cached_f_hot = if f_boundary == 0 {
            0
        } else {
            self.feat_hotness_prefix[f_boundary - 1]
        };
        let u_f = self.total_feat_hotness() - cached_f_hot;
        let n_f = (self.feat_tx_per_vertex * u_f) as f64;
        PlanEvaluation {
            alpha,
            m_t,
            m_f,
            topo_cached_vertices: t_boundary,
            feat_cached_vertices: f_boundary,
            n_t,
            n_f,
        }
    }

    /// Sweeps `alpha` from 0 to 1 in steps of `delta_alpha` (§4.3.3; the
    /// paper's default interval is 0.01) and returns every evaluation.
    ///
    /// The sweep is embarrassingly parallel; chunks are evaluated on
    /// scoped worker threads, mirroring the paper's parallel search.
    pub fn sweep(&self, budget: u64, delta_alpha: f64) -> Vec<PlanEvaluation> {
        assert!(
            delta_alpha > 0.0 && delta_alpha <= 1.0,
            "delta alpha must be in (0, 1]"
        );
        // Integer-indexed steps: accumulating `a += delta_alpha` drifts
        // (0.01 is not exact in binary), which can emit a near-1.0
        // duplicate of the endpoint or skip it entirely.
        let steps: Vec<f64> = {
            let n = (1.0 / delta_alpha).round() as u64;
            let mut s: Vec<f64> = (0..=n).map(|i| (i as f64 * delta_alpha).min(1.0)).collect();
            if *s.last().expect("at least alpha=0") < 1.0 {
                s.push(1.0);
            }
            s.dedup();
            s
        };
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(steps.len().max(1));
        let chunk = steps.len().div_ceil(workers);
        let mut out: Vec<PlanEvaluation> = Vec::with_capacity(steps.len());
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = steps
                .chunks(chunk)
                .map(|alphas| {
                    scope.spawn(move |_| {
                        alphas
                            .iter()
                            .map(|&a| self.evaluate(budget, a))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("sweep worker panicked"));
            }
        })
        .expect("sweep scope");
        out
    }

    /// The plan with minimal predicted `N_total` over the sweep. Ties
    /// break toward the smaller `alpha` (less topology cache).
    pub fn best_plan(&self, budget: u64, delta_alpha: f64) -> PlanEvaluation {
        self.sweep(budget, delta_alpha)
            .into_iter()
            .min_by(|a, b| {
                a.n_total()
                    .partial_cmp(&b.n_total())
                    .expect("traffic is finite")
                    .then(a.alpha.partial_cmp(&b.alpha).expect("alpha finite"))
            })
            .expect("sweep is non-empty")
    }

    /// Evaluates one three-tier plan: the HBM plan `(hbm_budget, alpha)`
    /// exactly as [`evaluate`](Self::evaluate), then the feature rows
    /// that missed HBM split along `Q_F` under `dram_budget` — the
    /// next-hottest prefix stays in DRAM, the tail goes to the SSD and
    /// pays `ceil(row_bytes / nvme_block_bytes)` block transactions per
    /// hotness-weighted access.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]` or `nvme_block_bytes == 0`.
    pub fn evaluate_tiered(
        &self,
        hbm_budget: u64,
        dram_budget: u64,
        alpha: f64,
        nvme_block_bytes: u64,
    ) -> TieredPlanEvaluation {
        assert!(nvme_block_bytes > 0, "block size must be positive");
        let plan = self.evaluate(hbm_budget, alpha);
        let hbm_bytes = if plan.feat_cached_vertices == 0 {
            0
        } else {
            self.feat_bytes_prefix[plan.feat_cached_vertices - 1]
        };
        let d_boundary = Self::boundary(
            &self.feat_bytes_prefix,
            hbm_bytes.saturating_add(dram_budget),
        )
        .max(plan.feat_cached_vertices);
        let resident_hot = if d_boundary == 0 {
            0
        } else {
            self.feat_hotness_prefix[d_boundary - 1]
        };
        let u_ssd = self.total_feat_hotness() - resident_hot;
        let blocks_per_vertex = self.feat_row_bytes.div_ceil(nvme_block_bytes);
        TieredPlanEvaluation {
            plan,
            dram_feat_vertices: d_boundary - plan.feat_cached_vertices,
            ssd_feat_vertices: self.feat_bytes_prefix.len() - d_boundary,
            n_nvme: (blocks_per_vertex * u_ssd) as f64,
        }
    }

    /// Sweeps `alpha` over the three-tier objective, mirroring
    /// [`sweep`](Self::sweep).
    pub fn sweep_tiered(
        &self,
        hbm_budget: u64,
        dram_budget: u64,
        delta_alpha: f64,
        nvme_block_bytes: u64,
    ) -> Vec<TieredPlanEvaluation> {
        self.sweep(hbm_budget, delta_alpha)
            .into_iter()
            .map(|e| self.evaluate_tiered(hbm_budget, dram_budget, e.alpha, nvme_block_bytes))
            .collect()
    }

    /// The three-tier plan minimizing `N_T + N_F + ssd_penalty * N_NVME`
    /// over the alpha sweep. Ties break toward the smaller `alpha`.
    pub fn best_plan_tiered(
        &self,
        hbm_budget: u64,
        dram_budget: u64,
        delta_alpha: f64,
        nvme_block_bytes: u64,
        ssd_penalty: f64,
    ) -> TieredPlanEvaluation {
        assert!(ssd_penalty >= 0.0, "penalty must be non-negative");
        self.sweep_tiered(hbm_budget, dram_budget, delta_alpha, nvme_block_bytes)
            .into_iter()
            .min_by(|a, b| {
                a.weighted_total(ssd_penalty)
                    .partial_cmp(&b.weighted_total(ssd_penalty))
                    .expect("traffic is finite")
                    .then(
                        a.plan
                            .alpha
                            .partial_cmp(&b.plan.alpha)
                            .expect("alpha finite"),
                    )
            })
            .expect("sweep is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_graph::GraphBuilder;

    /// A small fixture: star-ish graph, hotness concentrated on vertex 0.
    fn fixture() -> (CsrGraph, Vec<VertexId>, Vec<u64>, Vec<VertexId>, Vec<u64>) {
        let mut b = GraphBuilder::new(6);
        for v in 1..6 {
            b.push_edge(0, v);
        }
        b.push_edge(1, 2);
        let g = b.build();
        // Hotness: v0 very hot, then decreasing.
        let a_t = vec![100, 40, 20, 10, 5, 1];
        let a_f = vec![90, 50, 25, 10, 5, 2];
        let q: Vec<VertexId> = vec![0, 1, 2, 3, 4, 5];
        (g, q.clone(), a_t, q, a_f)
    }

    fn model() -> CostModel {
        let (g, q_t, a_t, q_f, a_f) = fixture();
        CostModel::new(&g, &q_t, &a_t, &q_f, &a_f, 1000, 4, 64)
    }

    #[test]
    fn alpha_zero_means_feature_only() {
        let m = model();
        let e = m.evaluate(1000, 0.0);
        assert_eq!(e.m_t, 0);
        assert_eq!(e.topo_cached_vertices, 0);
        // No topology cache: all N_TSUM remains.
        assert_eq!(e.n_t, 1000.0);
        assert!(e.feat_cached_vertices > 0);
    }

    #[test]
    fn alpha_one_means_topology_only() {
        let m = model();
        let e = m.evaluate(1000, 1.0);
        assert_eq!(e.m_f, 0);
        assert_eq!(e.feat_cached_vertices, 0);
        // All feature hotness must cross PCIe: U_F = 182, tx/vertex = 1
        // (D=4 floats = 16 bytes, CLS=64 -> ceil=1).
        assert_eq!(e.n_f, 182.0);
    }

    #[test]
    fn huge_budget_caches_everything() {
        let m = model();
        let e = m.evaluate(1 << 30, 0.5);
        assert_eq!(e.topo_cached_vertices, 6);
        assert_eq!(e.feat_cached_vertices, 6);
        assert_eq!(e.n_t, 0.0);
        assert_eq!(e.n_f, 0.0);
        assert_eq!(e.n_total(), 0.0);
    }

    #[test]
    fn equation3_boundary_is_exact() {
        let (g, q_t, a_t, q_f, a_f) = fixture();
        let m = CostModel::new(&g, &q_t, &a_t, &q_f, &a_f, 100, 4, 64);
        // Vertex 0 costs 5*4 + 8 = 28 bytes; vertex 1 costs 1*4 + 8 = 12.
        // A 28-byte topology budget caches exactly vertex 0.
        let e = m.evaluate(28, 1.0);
        assert_eq!(e.topo_cached_vertices, 1);
        // 27 bytes caches nothing; 40 caches v0 and v1.
        assert_eq!(m.evaluate(27, 1.0).topo_cached_vertices, 0);
        assert_eq!(m.evaluate(40, 1.0).topo_cached_vertices, 2);
    }

    #[test]
    fn equation5_uses_hotness_ratio() {
        let m = model();
        // Cache exactly vertex 0's topology: R_T = 100/176.
        let e = m.evaluate(28, 1.0);
        let expected = 1000.0 * (1.0 - 100.0 / 176.0);
        assert!((e.n_t - expected).abs() < 1e-9, "n_t {}", e.n_t);
    }

    #[test]
    fn equation8_transaction_factor() {
        let (g, q_t, a_t, q_f, a_f) = fixture();
        // D = 128 floats = 512 bytes -> 8 transactions per vertex.
        let m = CostModel::new(&g, &q_t, &a_t, &q_f, &a_f, 0, 128, 64);
        assert_eq!(m.feature_transactions_per_vertex(), 8);
        let e = m.evaluate(0, 0.0);
        assert_eq!(e.n_f, 8.0 * 182.0);
    }

    #[test]
    fn n_t_monotone_nonincreasing_in_alpha() {
        let m = model();
        let evals = m.sweep(200, 0.05);
        for w in evals.windows(2) {
            assert!(w[1].n_t <= w[0].n_t + 1e-9);
            assert!(w[1].n_f + 1e-9 >= w[0].n_f);
        }
    }

    #[test]
    fn sweep_includes_endpoints_and_matches_evaluate() {
        let m = model();
        let evals = m.sweep(100, 0.25);
        assert_eq!(evals.first().map(|e| e.alpha), Some(0.0));
        assert_eq!(evals.last().map(|e| e.alpha), Some(1.0));
        for e in &evals {
            let direct = m.evaluate(100, e.alpha);
            assert_eq!(e, &direct);
        }
    }

    #[test]
    fn sweep_steps_are_strictly_increasing_with_single_endpoint() {
        let m = model();
        // 0.01 and 0.07 are not exactly representable in binary; the old
        // accumulating sweep drifted enough to duplicate or miss alpha=1.
        for delta in [0.01, 0.05, 0.07, 0.25, 0.3, 1.0] {
            let evals = m.sweep(100, delta);
            for w in evals.windows(2) {
                assert!(
                    w[1].alpha > w[0].alpha,
                    "alphas not strictly increasing at delta={delta}: \
                     {} then {}",
                    w[0].alpha,
                    w[1].alpha
                );
            }
            let ones = evals.iter().filter(|e| e.alpha == 1.0).count();
            assert_eq!(
                ones, 1,
                "alpha=1.0 must appear exactly once (delta={delta})"
            );
            assert_eq!(evals.first().map(|e| e.alpha), Some(0.0));
        }
    }

    #[test]
    fn best_plan_minimizes_total() {
        let m = model();
        let best = m.best_plan(120, 0.01);
        for e in m.sweep(120, 0.01) {
            assert!(best.n_total() <= e.n_total() + 1e-9);
        }
    }

    #[test]
    fn zero_budget_all_traffic_remains() {
        let m = model();
        let e = m.evaluate(0, 0.5);
        assert_eq!(e.n_t, 1000.0);
        assert_eq!(e.n_f, 182.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn evaluate_rejects_bad_alpha() {
        let _ = model().evaluate(10, 1.5);
    }

    #[test]
    fn empty_graph_model() {
        let g = CsrGraph::empty(0);
        let m = CostModel::new(&g, &[], &[], &[], &[], 5, 4, 64);
        let e = m.evaluate(100, 0.5);
        assert_eq!(e.n_t, 5.0);
        assert_eq!(e.n_f, 0.0);
    }

    #[test]
    fn infinite_dram_budget_degenerates_to_two_tiers() {
        let m = model();
        for alpha in [0.0, 0.25, 0.5, 1.0] {
            let tiered = m.evaluate_tiered(100, u64::MAX, alpha, 4096);
            assert_eq!(tiered.plan, m.evaluate(100, alpha));
            assert_eq!(tiered.ssd_feat_vertices, 0);
            assert_eq!(tiered.n_nvme, 0.0);
            assert_eq!(
                tiered.weighted_total(4.0),
                tiered.plan.n_total(),
                "no SSD rows, no NVMe term"
            );
        }
    }

    #[test]
    fn tier_split_partitions_the_feature_order() {
        let m = model();
        // Rows are 16 bytes (D=4): HBM feature side of (64, alpha=0)
        // holds 4 rows; a 16-byte DRAM budget holds 1 more; 1 on SSD.
        let t = m.evaluate_tiered(64, 16, 0.0, 4096);
        assert_eq!(t.plan.feat_cached_vertices, 4);
        assert_eq!(t.dram_feat_vertices, 1);
        assert_eq!(t.ssd_feat_vertices, 1);
        // The SSD tail is the coldest vertex (hotness 2), one block.
        assert_eq!(t.n_nvme, 2.0);
    }

    #[test]
    fn n_nvme_counts_whole_blocks() {
        let (g, q_t, a_t, q_f, a_f) = fixture();
        // D = 2048 floats = 8192 bytes -> 2 blocks of 4096 per row.
        let m = CostModel::new(&g, &q_t, &a_t, &q_f, &a_f, 0, 2048, 64);
        let t = m.evaluate_tiered(0, 0, 0.0, 4096);
        assert_eq!(t.ssd_feat_vertices, 6);
        assert_eq!(t.n_nvme, 2.0 * 182.0);
    }

    #[test]
    fn tiered_placement_is_monotone_in_hotness() {
        let m = model();
        for dram in [0u64, 16, 48, 1 << 20] {
            let t = m.evaluate_tiered(64, dram, 0.0, 4096);
            // Tiers are prefixes of Q_F: HBM before DRAM before SSD.
            assert!(t.plan.feat_cached_vertices + t.dram_feat_vertices + t.ssd_feat_vertices == 6);
        }
        // More DRAM never moves a vertex to a colder tier.
        let mut prev_ssd = usize::MAX;
        for dram in [0u64, 16, 32, 48, 64] {
            let t = m.evaluate_tiered(64, dram, 0.0, 4096);
            assert!(t.ssd_feat_vertices <= prev_ssd);
            prev_ssd = t.ssd_feat_vertices;
        }
    }

    #[test]
    fn best_plan_tiered_minimizes_weighted_total() {
        let m = model();
        let best = m.best_plan_tiered(120, 32, 0.01, 4096, 4.0);
        for e in m.sweep_tiered(120, 32, 0.01, 4096) {
            assert!(best.weighted_total(4.0) <= e.weighted_total(4.0) + 1e-9);
        }
    }

    #[test]
    fn ssd_penalty_steers_alpha_toward_features() {
        let m = model();
        // With a crushing penalty, the planner should not spend HBM on
        // topology while feature rows would fall to the SSD.
        let cheap = m.best_plan_tiered(64, 16, 0.25, 4096, 0.0);
        let costly = m.best_plan_tiered(64, 16, 0.25, 4096, 1.0e6);
        assert!(costly.ssd_feat_vertices <= cheap.ssd_feat_vertices);
        assert!(costly.plan.alpha <= cheap.plan.alpha);
    }
}
