//! Hotness matrices `H_T` and `H_F` (§4.2.2, Figure 6).
//!
//! "Each matrix's row represents the GPU IDs within an NVLink clique, the
//! column represents the vertex IDs, and the element `H_ij` of either
//! matrix represents the hotness of the j-th vertex in the i-th GPU."

use legion_graph::VertexId;

/// Row-major `(gpus-in-clique) x (vertices)` hotness counter matrix.
///
/// # Examples
///
/// ```
/// use legion_cache::HotnessMatrix;
///
/// let mut h = HotnessMatrix::new(2, 4);
/// h.add(0, 1, 3);
/// h.add(1, 1, 2);
/// assert_eq!(h.get(0, 1), 3);
/// assert_eq!(h.column_wise_sum()[1], 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotnessMatrix {
    num_gpus: usize,
    num_vertices: usize,
    data: Vec<u64>,
}

impl HotnessMatrix {
    /// A zeroed matrix for `num_gpus` rows over `num_vertices` columns.
    pub fn new(num_gpus: usize, num_vertices: usize) -> Self {
        Self {
            num_gpus,
            num_vertices,
            data: vec![0; num_gpus * num_vertices],
        }
    }

    /// Number of GPU rows.
    #[inline]
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// Number of vertex columns.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Increments `H[gpu][v]` by `amount`.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` or `v` is out of range.
    #[inline]
    pub fn add(&mut self, gpu: usize, v: VertexId, amount: u64) {
        assert!(gpu < self.num_gpus, "gpu row {gpu} out of range");
        self.data[gpu * self.num_vertices + v as usize] += amount;
    }

    /// Decrements `H[gpu][v]` by `amount` — the retirement half of a
    /// sliding window: when an epoch bucket ages out, its per-vertex
    /// contributions are subtracted from the aggregate matrix.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` or `v` is out of range, or if `amount` exceeds the
    /// current value (a retired bucket can only remove hotness it added).
    #[inline]
    pub fn sub(&mut self, gpu: usize, v: VertexId, amount: u64) {
        assert!(gpu < self.num_gpus, "gpu row {gpu} out of range");
        let cell = &mut self.data[gpu * self.num_vertices + v as usize];
        *cell = cell
            .checked_sub(amount)
            .expect("hotness underflow: bucket retired more than it added");
    }

    /// Reads `H[gpu][v]`.
    #[inline]
    pub fn get(&self, gpu: usize, v: VertexId) -> u64 {
        self.data[gpu * self.num_vertices + v as usize]
    }

    /// One GPU's full hotness row.
    pub fn row(&self, gpu: usize) -> &[u64] {
        &self.data[gpu * self.num_vertices..(gpu + 1) * self.num_vertices]
    }

    /// Column-wise sum — the accumulated clique-level hotness vector
    /// (`A_T` / `A_F`, Algorithm 1 step 1).
    pub fn column_wise_sum(&self) -> Vec<u64> {
        let mut acc = vec![0u64; self.num_vertices];
        for gpu in 0..self.num_gpus {
            for (a, &h) in acc.iter_mut().zip(self.row(gpu)) {
                *a += h;
            }
        }
        acc
    }

    /// Index of the GPU row with the highest hotness for vertex `v`
    /// (Algorithm 1 step 3: "assign each vertex to the GPU with the
    /// highest local hotness"). Ties break toward the lower GPU index.
    pub fn argmax_gpu(&self, v: VertexId) -> usize {
        let mut best = 0usize;
        let mut best_h = self.get(0, v);
        for gpu in 1..self.num_gpus {
            let h = self.get(gpu, v);
            if h > best_h {
                best = gpu;
                best_h = h;
            }
        }
        best
    }

    /// Merges another matrix into this one (element-wise add). Used when
    /// several pre-sampling workers contribute to the same clique.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn merge(&mut self, other: &HotnessMatrix) {
        assert_eq!(self.num_gpus, other.num_gpus, "gpu count mismatch");
        assert_eq!(
            self.num_vertices, other.num_vertices,
            "vertex count mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_roundtrip() {
        let mut h = HotnessMatrix::new(3, 5);
        h.add(2, 4, 7);
        h.add(2, 4, 1);
        assert_eq!(h.get(2, 4), 8);
        assert_eq!(h.get(0, 4), 0);
    }

    #[test]
    fn column_sum_accumulates_all_rows() {
        let mut h = HotnessMatrix::new(2, 3);
        h.add(0, 0, 1);
        h.add(1, 0, 2);
        h.add(1, 2, 5);
        assert_eq!(h.column_wise_sum(), vec![3, 0, 5]);
    }

    #[test]
    fn argmax_prefers_highest_then_lowest_index() {
        let mut h = HotnessMatrix::new(3, 2);
        h.add(1, 0, 9);
        h.add(2, 0, 4);
        assert_eq!(h.argmax_gpu(0), 1);
        // All-zero column: lowest GPU wins.
        assert_eq!(h.argmax_gpu(1), 0);
        // Tie: lower index wins.
        h.add(0, 1, 3);
        h.add(2, 1, 3);
        assert_eq!(h.argmax_gpu(1), 0);
    }

    #[test]
    fn sub_retires_previous_contributions() {
        let mut h = HotnessMatrix::new(2, 3);
        h.add(1, 2, 5);
        h.sub(1, 2, 3);
        assert_eq!(h.get(1, 2), 2);
        h.sub(1, 2, 2);
        assert_eq!(h.get(1, 2), 0);
    }

    #[test]
    #[should_panic(expected = "hotness underflow")]
    fn sub_rejects_underflow() {
        let mut h = HotnessMatrix::new(1, 1);
        h.add(0, 0, 1);
        h.sub(0, 0, 2);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = HotnessMatrix::new(1, 2);
        a.add(0, 0, 1);
        let mut b = HotnessMatrix::new(1, 2);
        b.add(0, 0, 2);
        b.add(0, 1, 3);
        a.merge(&b);
        assert_eq!(a.get(0, 0), 3);
        assert_eq!(a.get(0, 1), 3);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = HotnessMatrix::new(1, 2);
        let b = HotnessMatrix::new(2, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_rejects_bad_gpu() {
        let mut h = HotnessMatrix::new(1, 1);
        h.add(1, 0, 1);
    }
}
