//! Algorithm 1 — Complete Sharing with Local Preference (CSLP).
//!
//! CSLP turns one hotness matrix into (a) the clique-level accumulated
//! hotness vector `A`, (b) the clique-level descending hotness order `Q`,
//! and (c) per-GPU priority queues `G` where each vertex is assigned to
//! the GPU with the highest local hotness. The feature and topology
//! matrices are processed independently (the paper runs the loop once for
//! `Q_T` and once for `Q_F`).

use legion_graph::VertexId;

use crate::hotness::HotnessMatrix;

/// CSLP output for one hotness matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CslpOutput {
    /// Accumulated vertex-wise hotness (`A_T` / `A_F`), indexed by vertex.
    pub accumulated: Vec<u64>,
    /// Clique-level order (`Q_T` / `Q_F`): vertex ids sorted by descending
    /// accumulated hotness (ties: ascending vertex id, for determinism).
    pub clique_order: Vec<VertexId>,
    /// Per-GPU orders (`G_T` / `G_F`): `per_gpu[g]` lists the vertices
    /// assigned to GPU `g`, in clique-order priority.
    pub per_gpu: Vec<Vec<VertexId>>,
    /// The GPU slot each vertex was assigned to (same info as `per_gpu`,
    /// indexed by vertex).
    pub owner: Vec<u32>,
}

/// Runs CSLP on one hotness matrix.
pub fn cslp(h: &HotnessMatrix) -> CslpOutput {
    let n = h.num_vertices();
    let kg = h.num_gpus();
    // Step 1: accumulate each vertex's hotness from the K_g GPUs.
    let accumulated = h.column_wise_sum();
    // Step 2: sort vertices by descending hotness.
    let mut clique_order: Vec<VertexId> = (0..n as VertexId).collect();
    clique_order.sort_by(|&a, &b| {
        accumulated[b as usize]
            .cmp(&accumulated[a as usize])
            .then(a.cmp(&b))
    });
    // Step 3: assign each vertex to the GPU with the highest local hotness.
    let mut per_gpu: Vec<Vec<VertexId>> = vec![Vec::new(); kg];
    let mut owner = vec![0u32; n];
    for &v in &clique_order {
        let g = h.argmax_gpu(v);
        per_gpu[g].push(v);
        owner[v as usize] = g as u32;
    }
    CslpOutput {
        accumulated,
        clique_order,
        per_gpu,
        owner,
    }
}

impl CslpOutput {
    /// Total accumulated hotness (`sum_{v in V} a(v)`, the denominator of
    /// Equation 4).
    pub fn total_hotness(&self) -> u64 {
        self.accumulated.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> HotnessMatrix {
        // 2 GPUs, 4 vertices.
        //        v0  v1  v2  v3
        // gpu0 [  5,  0,  2,  1 ]
        // gpu1 [  1,  7,  2,  0 ]
        let mut h = HotnessMatrix::new(2, 4);
        h.add(0, 0, 5);
        h.add(0, 2, 2);
        h.add(0, 3, 1);
        h.add(1, 0, 1);
        h.add(1, 1, 7);
        h.add(1, 2, 2);
        h
    }

    #[test]
    fn accumulates_and_sorts() {
        let out = cslp(&example());
        assert_eq!(out.accumulated, vec![6, 7, 4, 1]);
        assert_eq!(out.clique_order, vec![1, 0, 2, 3]);
        assert_eq!(out.total_hotness(), 18);
    }

    #[test]
    fn assigns_to_locally_hottest_gpu() {
        let out = cslp(&example());
        // v0 hotter on gpu0; v1 on gpu1; v2 tie -> gpu0; v3 -> gpu0.
        assert_eq!(out.owner, vec![0, 1, 0, 0]);
        assert_eq!(out.per_gpu[0], vec![0, 2, 3]);
        assert_eq!(out.per_gpu[1], vec![1]);
    }

    #[test]
    fn per_gpu_queues_partition_all_vertices() {
        let out = cslp(&example());
        let total: usize = out.per_gpu.iter().map(|g| g.len()).sum();
        assert_eq!(total, 4);
        let mut all: Vec<VertexId> = out.per_gpu.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn per_gpu_order_respects_clique_priority() {
        let out = cslp(&example());
        // Within each GPU queue, vertices appear in clique-order.
        for q in &out.per_gpu {
            let positions: Vec<usize> = q
                .iter()
                .map(|v| out.clique_order.iter().position(|c| c == v).unwrap())
                .collect();
            assert!(positions.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn single_gpu_gets_everything_in_order() {
        let mut h = HotnessMatrix::new(1, 3);
        h.add(0, 2, 10);
        h.add(0, 0, 5);
        let out = cslp(&h);
        assert_eq!(out.per_gpu.len(), 1);
        assert_eq!(out.per_gpu[0], vec![2, 0, 1]);
    }

    #[test]
    fn all_zero_hotness_is_deterministic() {
        let h = HotnessMatrix::new(2, 3);
        let out = cslp(&h);
        assert_eq!(out.clique_order, vec![0, 1, 2]);
        assert!(out.owner.iter().all(|&o| o == 0));
    }

    #[test]
    fn empty_matrix() {
        let h = HotnessMatrix::new(2, 0);
        let out = cslp(&h);
        assert!(out.clique_order.is_empty());
        assert_eq!(out.total_hotness(), 0);
    }
}
