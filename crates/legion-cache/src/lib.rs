//! Legion's hotness-aware unified cache (C2) and automatic cache
//! management (C3).
//!
//! The unified cache (§4.2) keeps both graph topology (CSR adjacency of hot
//! vertices) and feature rows of hot vertices in GPU memory, spread across
//! an NVLink clique without replication. Construction follows the paper's
//! three steps: pre-sampling produces hotness matrices (in
//! `legion-sampling`), [`cslp()`] (Algorithm 1) orders cache candidates per
//! GPU, and [`fill`] materializes the caches under a plan chosen by the
//! [`cost_model`] + [`planner`] (§4.3, Equations 2–8).
//!
//! Module map:
//!
//! * [`hotness`] — the `H_T` / `H_F` matrices (rows = GPUs of a clique,
//!   columns = vertices),
//! * [`cslp()`] — Complete Sharing with Local Preference,
//! * [`unified`] — per-GPU topology+feature cache storage and clique-level
//!   lookup,
//! * [`cost_model`] — PCIe-traffic prediction for a cache plan `(B, α)`,
//! * [`planner`] — the parallel α sweep that picks the optimal plan, and
//! * [`fill`] — cache initialization and fill-up against the simulated
//!   server's memory budgets.
//!
//! # Examples
//!
//! Running Algorithm 1 and pricing cache plans with the cost model:
//!
//! ```
//! use legion_cache::{cslp, CostModel, HotnessMatrix};
//! use legion_graph::GraphBuilder;
//!
//! let g = GraphBuilder::new(3).edge(0, 1).edge(0, 2).edge(1, 2).build();
//! // Two GPUs; vertex 0 is hot on GPU 0, vertex 2 on GPU 1.
//! let mut h = HotnessMatrix::new(2, 3);
//! h.add(0, 0, 10);
//! h.add(1, 2, 6);
//! h.add(0, 1, 1);
//! let order = cslp(&h);
//! assert_eq!(order.clique_order[0], 0); // Hottest vertex first.
//! assert_eq!(order.owner[0], 0);        // ...owned by its hottest GPU.
//!
//! let model = CostModel::new(
//!     &g,
//!     &order.clique_order, &order.accumulated,
//!     &order.clique_order, &order.accumulated,
//!     1000, 4, 64,
//! );
//! // More budget never increases predicted PCIe traffic.
//! assert!(model.evaluate(1024, 0.5).n_total() <= model.evaluate(0, 0.5).n_total());
//! ```

pub mod cost_model;
pub mod cslp;
pub mod dynamic;
pub mod fill;
pub mod hotness;
pub mod planner;
pub mod unified;

pub use cost_model::{CostModel, PlanEvaluation, TieredPlanEvaluation};
pub use cslp::{cslp, CslpOutput};
pub use dynamic::{CacheStats, FifoCache, LruCache};
pub use fill::build_clique_cache;
pub use hotness::HotnessMatrix;
pub use planner::{CachePlan, PlannerConfig};
pub use unified::{CliqueCache, GpuUnifiedCache};
