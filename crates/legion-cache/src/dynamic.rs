//! Dynamic FIFO feature cache — the BGL-style policy the paper contrasts
//! with its static pre-sampling cache (§7: BGL "applies a FIFO dynamic
//! cache policy ... but hinders model convergence and incurs cache
//! replacement overheads").
//!
//! Legion's cache is *static*: filled once from pre-sampling hotness and
//! never mutated, so lookups are contention-free. A dynamic cache inserts
//! on every miss and evicts FIFO. This module implements the dynamic
//! policy so the ablation benches can measure both sides of the
//! trade-off: hit rate on a given access trace, and the number of
//! replacements (each of which costs device-memory writes at runtime).

use std::collections::{HashMap, VecDeque};

use legion_graph::VertexId;

/// Point-in-time statistics of a dynamic cache, returned by
/// [`FifoCache::stats`] and [`LruCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses served from the cache.
    pub hits: u64,
    /// Accesses that fell through to backing storage.
    pub misses: u64,
    /// Replacement operations — the runtime overhead a static cache
    /// avoids entirely.
    pub evictions: u64,
    /// Vertices currently resident.
    pub residents: usize,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 0 for no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// A fixed-capacity FIFO cache over vertex ids.
///
/// # Examples
///
/// ```
/// use legion_cache::dynamic::FifoCache;
///
/// let mut c = FifoCache::new(2);
/// assert!(!c.access(1)); // miss, inserted
/// assert!(c.access(1));  // hit
/// assert!(!c.access(2)); // miss, inserted
/// assert!(!c.access(3)); // miss, evicts 1
/// assert!(!c.access(1)); // miss again
/// assert_eq!(c.stats().evictions, 2);
/// ```
#[derive(Debug, Clone)]
pub struct FifoCache {
    capacity: usize,
    queue: VecDeque<VertexId>,
    resident: HashMap<VertexId, ()>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl FifoCache {
    /// A cache holding at most `capacity` vertices.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            queue: VecDeque::with_capacity(capacity),
            resident: HashMap::with_capacity(capacity),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Accesses `v`: returns true on hit; on miss, inserts `v`, evicting
    /// the oldest entry when full. Zero-capacity caches always miss
    /// without inserting.
    pub fn access(&mut self, v: VertexId) -> bool {
        if self.resident.contains_key(&v) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.capacity == 0 {
            return false;
        }
        if self.queue.len() >= self.capacity {
            if let Some(old) = self.queue.pop_front() {
                self.resident.remove(&old);
                self.evictions += 1;
            }
        }
        self.queue.push_back(v);
        self.resident.insert(v, ());
        false
    }

    /// All counters at once.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            residents: self.queue.len(),
        }
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        self.stats().hit_rate()
    }

    /// Current number of resident vertices.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Replays an access trace through a FIFO cache and, for comparison,
/// through a static cache of the same capacity preloaded with the
/// hotness-ranked top vertices (Legion's policy). Returns
/// `(fifo_hit_rate, static_hit_rate, fifo_evictions)`.
pub fn compare_fifo_vs_static(
    trace: &[VertexId],
    capacity: usize,
    hotness_order: &[VertexId],
) -> (f64, f64, u64) {
    let mut fifo = FifoCache::new(capacity);
    for &v in trace {
        fifo.access(v);
    }
    let static_set: std::collections::HashSet<VertexId> =
        hotness_order.iter().take(capacity).copied().collect();
    let static_hits = trace.iter().filter(|v| static_set.contains(v)).count();
    let static_rate = if trace.is_empty() {
        0.0
    } else {
        static_hits as f64 / trace.len() as f64
    };
    let stats = fifo.stats();
    (stats.hit_rate(), static_rate, stats.evictions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_evicts_in_insertion_order() {
        let mut c = FifoCache::new(2);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(!c.access(3)); // Evicts 1.
        assert!(c.access(2));
        assert!(c.access(3));
        assert!(!c.access(1)); // 1 was evicted; this evicts 2.
        assert!(!c.access(2));
        assert_eq!(c.stats().evictions, 3);
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut c = FifoCache::new(0);
        for v in 0..10 {
            assert!(!c.access(v % 2));
        }
        assert_eq!(c.hit_rate(), 0.0);
        assert!(c.is_empty());
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = FifoCache::new(4);
        c.access(7);
        for _ in 0..9 {
            assert!(c.access(7));
        }
        assert!((c.hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn static_cache_wins_on_skewed_stationary_traces() {
        // A Zipf-ish stationary trace: the static top-k cache should meet
        // or beat FIFO, which wastes capacity on one-off cold vertices.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let zipf = legion_graph::generate::Zipf::new(500, 1.1);
        let mut rng = StdRng::seed_from_u64(9);
        let trace: Vec<VertexId> = (0..20_000).map(|_| zipf.sample(&mut rng) as u32).collect();
        // Hotness order = frequency order (what pre-sampling estimates).
        let mut counts = vec![0u64; 500];
        for &v in &trace {
            counts[v as usize] += 1;
        }
        let mut order: Vec<VertexId> = (0..500).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(counts[v as usize]));
        let (fifo, statik, evictions) = compare_fifo_vs_static(&trace, 50, &order);
        assert!(
            statik >= fifo,
            "static {statik} should beat FIFO {fifo} on stationary skew"
        );
        // And FIFO paid for thousands of replacements doing it.
        assert!(evictions > 1000, "evictions {evictions}");
    }

    #[test]
    fn fifo_adapts_to_phase_changes() {
        // Where FIFO earns its keep: a trace whose hot set shifts.
        // Static top-k (ranked on the whole trace) splits capacity across
        // both phases; FIFO tracks the current phase.
        let mut trace = Vec::new();
        for round in 0..100 {
            for v in 0..20u32 {
                trace.push(v + if round < 50 { 0 } else { 1000 });
            }
        }
        let mut order: Vec<VertexId> = (0..20).chain(1000..1020).collect();
        order.sort_unstable();
        let (fifo, statik, _) = compare_fifo_vs_static(&trace, 20, &order);
        assert!(fifo > statik, "fifo {fifo} static {statik}");
    }

    #[test]
    fn empty_trace() {
        let (f, s, e) = compare_fifo_vs_static(&[], 4, &[]);
        assert_eq!((f, s, e), (0.0, 0.0, 0));
    }
}

/// A fixed-capacity LRU cache over vertex ids, implemented as a hash map
/// into an intrusive doubly-linked list of slots (O(1) access and evict).
///
/// Included alongside [`FifoCache`] so the ablation can compare the
/// paper's static pre-sampling cache against both classic dynamic
/// policies.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<VertexId, usize>,
    /// Slot storage: `(vertex, prev, next)`; `usize::MAX` terminates.
    slots: Vec<(VertexId, usize, usize)>,
    head: usize,
    tail: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

const NIL: usize = usize::MAX;

impl LruCache {
    /// A cache holding at most `capacity` vertices.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (_, prev, next) = self.slots[slot];
        if prev != NIL {
            self.slots[prev].2 = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].1 = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].1 = NIL;
        self.slots[slot].2 = self.head;
        if self.head != NIL {
            self.slots[self.head].1 = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Accesses `v`: returns true on hit (and refreshes recency); on miss,
    /// inserts `v`, evicting the least-recently-used entry when full.
    pub fn access(&mut self, v: VertexId) -> bool {
        if let Some(&slot) = self.map.get(&v) {
            self.hits += 1;
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return true;
        }
        self.misses += 1;
        if self.capacity == 0 {
            return false;
        }
        let slot = if self.slots.len() < self.capacity {
            self.slots.push((v, NIL, NIL));
            self.slots.len() - 1
        } else {
            // Evict the tail.
            let victim = self.tail;
            let old = self.slots[victim].0;
            self.unlink(victim);
            self.map.remove(&old);
            self.evictions += 1;
            self.slots[victim].0 = v;
            victim
        };
        self.map.insert(v, slot);
        self.push_front(slot);
        false
    }

    /// All counters at once.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            residents: self.map.len(),
        }
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        self.stats().hit_rate()
    }

    /// Current number of resident vertices.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod lru_tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1)); // 1 is now most recent.
        assert!(!c.access(3)); // Evicts 2.
        assert!(c.access(1));
        assert!(c.access(3));
        assert!(!c.access(2));
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn lru_beats_fifo_on_looping_hot_set_with_scans() {
        // A hot set that fits plus a cold scan: LRU keeps the hot set,
        // FIFO churns it out.
        let mut trace = Vec::new();
        for round in 0..500u32 {
            for h in 0..8u32 {
                trace.push(h);
            }
            // One cold vertex per round.
            trace.push(1000 + round);
        }
        let mut lru = LruCache::new(9);
        let mut fifo = FifoCache::new(9);
        for &v in &trace {
            lru.access(v);
            fifo.access(v);
        }
        assert!(
            lru.hit_rate() > fifo.hit_rate(),
            "lru {} fifo {}",
            lru.hit_rate(),
            fifo.hit_rate()
        );
        assert!(lru.hit_rate() > 0.85);
    }

    #[test]
    fn lru_zero_capacity() {
        let mut c = LruCache::new(0);
        assert!(!c.access(5));
        assert!(!c.access(5));
        assert!(c.is_empty());
    }

    #[test]
    fn lru_len_tracks_inserts() {
        let mut c = LruCache::new(3);
        for v in 0..10 {
            c.access(v);
        }
        assert_eq!(c.len(), 3);
    }
}
